"""Primitive drawable objects (Section 5.1).

"The primitive drawables include: point, line, rectangle, circle, polygon,
text, and viewer.  Each primitive drawable has an offset, a color, and a
style."  Viewers-as-drawables implement wormholes (Section 6.2).

A drawable paints itself onto a *surface* — any object offering the pixel
primitives of :class:`repro.render.canvas.Canvas` — at an anchor position in
screen pixels.  Geometry is expressed either in ``screen`` units (constant
size under zoom: labels, markers) or ``world`` units (scales with zoom: map
line segments).  Offsets use the world orientation (positive y is up) and are
flipped onto the screen's downward y axis at paint time.

Drawable constructors are registered in the expression language so display
attributes are ordinary expressions over the base tuple, e.g.::

    combine(circle(4.0, 'blue'), offset(text_of(name), 0, -10))
"""

from __future__ import annotations

import math
from typing import Any, Sequence

from repro.dbms import types as T
from repro.dbms.expr import FunctionDef, register_function
from repro.errors import DisplayError, TypeCheckError

__all__ = [
    "Color",
    "NAMED_COLORS",
    "resolve_color",
    "Style",
    "Drawable",
    "Point",
    "Line",
    "Rectangle",
    "Circle",
    "Polygon",
    "Text",
    "ViewerDrawable",
]

Color = tuple[int, int, int]

NAMED_COLORS: dict[str, Color] = {
    "black": (0, 0, 0),
    "white": (255, 255, 255),
    "red": (220, 50, 47),
    "green": (66, 133, 66),
    "blue": (38, 89, 166),
    "yellow": (212, 182, 38),
    "orange": (222, 120, 31),
    "purple": (108, 60, 133),
    "cyan": (42, 161, 152),
    "magenta": (211, 54, 130),
    "gray": (128, 128, 128),
    "lightgray": (200, 200, 200),
    "darkgray": (64, 64, 64),
    "brown": (133, 94, 66),
}


def resolve_color(color: Any) -> Color:
    """Accept a color name or an RGB triple; return an RGB triple."""
    if isinstance(color, str):
        try:
            return NAMED_COLORS[color.lower()]
        except KeyError as exc:
            known = ", ".join(sorted(NAMED_COLORS))
            raise DisplayError(f"unknown color {color!r}; known: {known}") from exc
    if (
        isinstance(color, (tuple, list))
        and len(color) == 3
        and all(isinstance(c, int) and 0 <= c <= 255 for c in color)
    ):
        return (color[0], color[1], color[2])
    raise DisplayError(f"illegal color {color!r}; want a name or an RGB triple")


class Style:
    """Stroke/fill style shared by all drawables."""

    __slots__ = ("line_width", "filled")

    def __init__(self, line_width: int = 1, filled: bool = False):
        if line_width < 1:
            raise DisplayError(f"line width must be >= 1, got {line_width}")
        self.line_width = line_width
        self.filled = filled

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Style)
            and self.line_width == other.line_width
            and self.filled == other.filled
        )

    def __repr__(self) -> str:
        return f"Style(line_width={self.line_width}, filled={self.filled})"


class Drawable:
    """Base drawable: offset + color + style + unit system."""

    kind = "abstract"

    def __init__(
        self,
        offset: tuple[float, float] = (0.0, 0.0),
        color: Any = "black",
        style: Style | None = None,
        units: str = "screen",
    ):
        if units not in ("screen", "world"):
            raise DisplayError(f"units must be 'screen' or 'world', got {units!r}")
        self.offset = (float(offset[0]), float(offset[1]))
        self.color = resolve_color(color)
        self.style = style or Style()
        self.units = units

    # -- geometry helpers ------------------------------------------------

    def _scale(self, world_scale: float) -> float:
        return world_scale if self.units == "world" else 1.0

    def _origin(
        self, anchor_x: float, anchor_y: float, world_scale: float
    ) -> tuple[float, float]:
        s = self._scale(world_scale)
        return anchor_x + self.offset[0] * s, anchor_y - self.offset[1] * s

    def with_offset(self, dx: float, dy: float) -> "Drawable":
        """A copy shifted by (dx, dy) in this drawable's units."""
        clone = self.copy()
        clone.offset = (self.offset[0] + dx, self.offset[1] + dy)
        return clone

    def with_color(self, color: Any) -> "Drawable":
        clone = self.copy()
        clone.color = resolve_color(color)
        return clone

    def copy(self) -> "Drawable":
        raise NotImplementedError

    # -- rendering protocol ----------------------------------------------

    def paint(
        self, surface: Any, anchor_x: float, anchor_y: float, world_scale: float
    ) -> None:
        """Paint onto ``surface`` anchored at screen pixel (anchor_x, anchor_y)."""
        raise NotImplementedError

    def bbox(
        self, anchor_x: float, anchor_y: float, world_scale: float
    ) -> tuple[float, float, float, float]:
        """Screen-pixel bounding box (x0, y0, x1, y1) — used for picking."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(offset={self.offset}, color={self.color}, "
            f"units={self.units!r})"
        )


class Point(Drawable):
    """A single marker, drawn as a small filled square of the line width."""

    kind = "point"

    def copy(self) -> "Point":
        return Point(self.offset, self.color, self.style, self.units)

    def paint(self, surface, anchor_x, anchor_y, world_scale) -> None:
        x, y = self._origin(anchor_x, anchor_y, world_scale)
        half = max(0, self.style.line_width - 1)
        surface.fill_rect(x - half, y - half, x + half, y + half, self.color)

    def bbox(self, anchor_x, anchor_y, world_scale):
        x, y = self._origin(anchor_x, anchor_y, world_scale)
        half = max(1, self.style.line_width)
        return (x - half, y - half, x + half, y + half)


class Line(Drawable):
    """A segment from the (offset) anchor to anchor + delta.

    ``delta`` uses the drawable's units and world orientation, which makes a
    relation of map segments directly displayable: each tuple anchors one
    endpoint, the delta reaches the other.
    """

    kind = "line"

    def __init__(
        self,
        delta: tuple[float, float],
        offset: tuple[float, float] = (0.0, 0.0),
        color: Any = "black",
        style: Style | None = None,
        units: str = "screen",
    ):
        super().__init__(offset, color, style, units)
        self.delta = (float(delta[0]), float(delta[1]))

    def copy(self) -> "Line":
        return Line(self.delta, self.offset, self.color, self.style, self.units)

    def _endpoints(self, anchor_x, anchor_y, world_scale):
        x0, y0 = self._origin(anchor_x, anchor_y, world_scale)
        s = self._scale(world_scale)
        return x0, y0, x0 + self.delta[0] * s, y0 - self.delta[1] * s

    def paint(self, surface, anchor_x, anchor_y, world_scale) -> None:
        x0, y0, x1, y1 = self._endpoints(anchor_x, anchor_y, world_scale)
        surface.draw_line(x0, y0, x1, y1, self.color, self.style.line_width)

    def bbox(self, anchor_x, anchor_y, world_scale):
        x0, y0, x1, y1 = self._endpoints(anchor_x, anchor_y, world_scale)
        return (min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))


class Rectangle(Drawable):
    """An axis-aligned rectangle centered on the (offset) anchor."""

    kind = "rectangle"

    def __init__(
        self,
        width: float,
        height: float,
        offset: tuple[float, float] = (0.0, 0.0),
        color: Any = "black",
        style: Style | None = None,
        units: str = "screen",
    ):
        super().__init__(offset, color, style, units)
        if width < 0 or height < 0:
            raise DisplayError(f"rectangle size must be non-negative, got {width}x{height}")
        self.width = float(width)
        self.height = float(height)

    def copy(self) -> "Rectangle":
        return Rectangle(
            self.width, self.height, self.offset, self.color, self.style, self.units
        )

    def _corners(self, anchor_x, anchor_y, world_scale):
        x, y = self._origin(anchor_x, anchor_y, world_scale)
        s = self._scale(world_scale)
        hw = self.width * s / 2.0
        hh = self.height * s / 2.0
        return x - hw, y - hh, x + hw, y + hh

    def paint(self, surface, anchor_x, anchor_y, world_scale) -> None:
        x0, y0, x1, y1 = self._corners(anchor_x, anchor_y, world_scale)
        if self.style.filled:
            surface.fill_rect(x0, y0, x1, y1, self.color)
        else:
            surface.draw_rect(x0, y0, x1, y1, self.color, self.style.line_width)

    def bbox(self, anchor_x, anchor_y, world_scale):
        return self._corners(anchor_x, anchor_y, world_scale)


class Circle(Drawable):
    """A circle of a given radius centered on the (offset) anchor."""

    kind = "circle"

    def __init__(
        self,
        radius: float,
        offset: tuple[float, float] = (0.0, 0.0),
        color: Any = "black",
        style: Style | None = None,
        units: str = "screen",
    ):
        super().__init__(offset, color, style, units)
        if radius < 0:
            raise DisplayError(f"circle radius must be non-negative, got {radius}")
        self.radius = float(radius)

    def copy(self) -> "Circle":
        return Circle(self.radius, self.offset, self.color, self.style, self.units)

    def paint(self, surface, anchor_x, anchor_y, world_scale) -> None:
        x, y = self._origin(anchor_x, anchor_y, world_scale)
        r = self.radius * self._scale(world_scale)
        if self.style.filled:
            surface.fill_circle(x, y, r, self.color)
        else:
            surface.draw_circle(x, y, r, self.color, self.style.line_width)

    def bbox(self, anchor_x, anchor_y, world_scale):
        x, y = self._origin(anchor_x, anchor_y, world_scale)
        r = self.radius * self._scale(world_scale)
        return (x - r, y - r, x + r, y + r)


class Polygon(Drawable):
    """A closed polygon; vertices are relative to the (offset) anchor."""

    kind = "polygon"

    def __init__(
        self,
        vertices: Sequence[tuple[float, float]],
        offset: tuple[float, float] = (0.0, 0.0),
        color: Any = "black",
        style: Style | None = None,
        units: str = "screen",
    ):
        super().__init__(offset, color, style, units)
        if len(vertices) < 3:
            raise DisplayError(
                f"polygon needs at least 3 vertices, got {len(vertices)}"
            )
        self.vertices = [(float(vx), float(vy)) for vx, vy in vertices]

    def copy(self) -> "Polygon":
        return Polygon(self.vertices, self.offset, self.color, self.style, self.units)

    def _screen_vertices(self, anchor_x, anchor_y, world_scale):
        x, y = self._origin(anchor_x, anchor_y, world_scale)
        s = self._scale(world_scale)
        return [(x + vx * s, y - vy * s) for vx, vy in self.vertices]

    def paint(self, surface, anchor_x, anchor_y, world_scale) -> None:
        pts = self._screen_vertices(anchor_x, anchor_y, world_scale)
        if self.style.filled:
            surface.fill_polygon(pts, self.color)
        else:
            surface.draw_polygon(pts, self.color, self.style.line_width)

    def bbox(self, anchor_x, anchor_y, world_scale):
        pts = self._screen_vertices(anchor_x, anchor_y, world_scale)
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return (min(xs), min(ys), max(xs), max(ys))


class Text(Drawable):
    """A text label; always screen units (legibility is zoom-invariant).

    The anchor is the center of the rendered string, matching how station
    names sit centered beneath their circles in Figure 4.
    """

    kind = "text"

    CHAR_WIDTH = 6  # 5x7 bitmap glyphs plus 1px spacing
    CHAR_HEIGHT = 7

    def __init__(
        self,
        text: str,
        offset: tuple[float, float] = (0.0, 0.0),
        color: Any = "black",
        style: Style | None = None,
    ):
        super().__init__(offset, color, style, units="screen")
        self.text = str(text)

    def copy(self) -> "Text":
        return Text(self.text, self.offset, self.color, self.style)

    def paint(self, surface, anchor_x, anchor_y, world_scale) -> None:
        x, y = self._origin(anchor_x, anchor_y, world_scale)
        width = len(self.text) * self.CHAR_WIDTH
        surface.draw_text(x - width / 2.0, y - self.CHAR_HEIGHT / 2.0, self.text, self.color)

    def bbox(self, anchor_x, anchor_y, world_scale):
        x, y = self._origin(anchor_x, anchor_y, world_scale)
        half_w = len(self.text) * self.CHAR_WIDTH / 2.0
        half_h = self.CHAR_HEIGHT / 2.0
        return (x - half_w, y - half_h, x + half_w, y + half_h)


class ViewerDrawable(Drawable):
    """A viewer onto another canvas — the wormhole primitive (Section 6.2).

    "A viewer drawable requires several parameters, including the size for
    the viewer, a destination canvas, the elevation from which the canvas is
    viewed, and the initial location."

    Destination canvases are referenced by name and resolved against a canvas
    registry at render/traversal time, so display attributes remain ordinary
    expressions of the base tuple (here the initial location is typically a
    function of the tuple, e.g. the station's id on a time-series canvas).
    """

    kind = "viewer"

    def __init__(
        self,
        destination: str,
        width: float = 60.0,
        height: float = 40.0,
        dest_elevation: float = 100.0,
        dest_location: tuple[float, float] = (0.0, 0.0),
        offset: tuple[float, float] = (0.0, 0.0),
        color: Any = "blue",
        style: Style | None = None,
    ):
        super().__init__(offset, color, style, units="screen")
        if not destination:
            raise DisplayError("wormhole needs a destination canvas name")
        if width <= 0 or height <= 0:
            raise DisplayError(f"viewer size must be positive, got {width}x{height}")
        if dest_elevation <= 0:
            raise DisplayError(
                f"destination elevation must be positive, got {dest_elevation}"
            )
        self.destination = destination
        self.width = float(width)
        self.height = float(height)
        self.dest_elevation = float(dest_elevation)
        self.dest_location = (float(dest_location[0]), float(dest_location[1]))

    def copy(self) -> "ViewerDrawable":
        return ViewerDrawable(
            self.destination,
            self.width,
            self.height,
            self.dest_elevation,
            self.dest_location,
            self.offset,
            self.color,
            self.style,
        )

    def frame(self, anchor_x, anchor_y, world_scale):
        """The wormhole's screen rectangle (x0, y0, x1, y1)."""
        x, y = self._origin(anchor_x, anchor_y, world_scale)
        return (
            x - self.width / 2.0,
            y - self.height / 2.0,
            x + self.width / 2.0,
            y + self.height / 2.0,
        )

    def paint(self, surface, anchor_x, anchor_y, world_scale) -> None:
        # The frame only; nested canvas content is painted by the scene
        # builder, which holds the canvas registry.
        x0, y0, x1, y1 = self.frame(anchor_x, anchor_y, world_scale)
        surface.draw_rect(x0, y0, x1, y1, self.color, max(1, self.style.line_width))

    def bbox(self, anchor_x, anchor_y, world_scale):
        return self.frame(anchor_x, anchor_y, world_scale)


# ---------------------------------------------------------------------------
# Expression-language constructors
# ---------------------------------------------------------------------------


def _expect_numeric(arg_types, positions, name):
    for pos in positions:
        if not T.numeric(arg_types[pos]):
            raise TypeCheckError(
                f"{name} argument {pos + 1} must be numeric, got {arg_types[pos]}"
            )


def _register_constructors() -> None:
    def point_infer(arg_types):
        if len(arg_types) == 0:
            return T.DRAWABLES
        if len(arg_types) == 1 and arg_types[0] is T.TEXT:
            return T.DRAWABLES
        raise TypeCheckError("point() or point(color)")

    register_function(
        FunctionDef(
            "point",
            point_infer,
            lambda *a: [Point(color=a[0] if a else "black")],
            "A point marker.",
        )
    )

    def circle_infer(arg_types):
        if len(arg_types) not in (1, 2):
            raise TypeCheckError("circle(radius) or circle(radius, color)")
        _expect_numeric(arg_types, [0], "circle")
        if len(arg_types) == 2 and arg_types[1] is not T.TEXT:
            raise TypeCheckError("circle color must be a text name")
        return T.DRAWABLES

    register_function(
        FunctionDef(
            "circle",
            circle_infer,
            lambda radius, color="black": [Circle(float(radius), color=color)],
            "A circle of a given radius (screen px).",
        )
    )

    def filled_circle_apply(radius, color="black"):
        return [Circle(float(radius), color=color, style=Style(filled=True))]

    register_function(
        FunctionDef("filled_circle", circle_infer, filled_circle_apply, "A disc.")
    )

    def rect_infer(arg_types):
        if len(arg_types) not in (2, 3):
            raise TypeCheckError("rect(width, height) or rect(width, height, color)")
        _expect_numeric(arg_types, [0, 1], "rect")
        if len(arg_types) == 3 and arg_types[2] is not T.TEXT:
            raise TypeCheckError("rect color must be a text name")
        return T.DRAWABLES

    register_function(
        FunctionDef(
            "rect",
            rect_infer,
            lambda w, h, color="black": [Rectangle(float(w), float(h), color=color)],
            "An outlined rectangle (screen px).",
        )
    )
    register_function(
        FunctionDef(
            "filled_rect",
            rect_infer,
            lambda w, h, color="black": [
                Rectangle(float(w), float(h), color=color, style=Style(filled=True))
            ],
            "A filled rectangle (screen px).",
        )
    )

    def line_infer(arg_types):
        if len(arg_types) not in (2, 3):
            raise TypeCheckError("line_to(dx, dy) or line_to(dx, dy, color)")
        _expect_numeric(arg_types, [0, 1], "line_to")
        if len(arg_types) == 3 and arg_types[2] is not T.TEXT:
            raise TypeCheckError("line color must be a text name")
        return T.DRAWABLES

    register_function(
        FunctionDef(
            "line_to",
            line_infer,
            lambda dx, dy, color="black": [
                Line((float(dx), float(dy)), color=color, units="world")
            ],
            "A world-unit segment from the tuple position to position+(dx,dy).",
        )
    )

    def text_infer(arg_types):
        if len(arg_types) not in (1, 2):
            raise TypeCheckError("text_of(value) or text_of(value, color)")
        if len(arg_types) == 2 and arg_types[1] is not T.TEXT:
            raise TypeCheckError("text color must be a text name")
        return T.DRAWABLES

    def text_apply(value, color="black"):
        if isinstance(value, str):
            rendered = value
        else:
            rendered = T.infer_type(value).default_display(value)
        return [Text(rendered, color=color)]

    register_function(
        FunctionDef("text_of", text_infer, text_apply, "A centered text label.")
    )

    def combine_infer(arg_types):
        if len(arg_types) < 1:
            raise TypeCheckError("combine needs at least one drawable list")
        for pos, at in enumerate(arg_types):
            if at is not T.DRAWABLES:
                raise TypeCheckError(
                    f"combine argument {pos + 1} must be drawables, got {at}"
                )
        return T.DRAWABLES

    register_function(
        FunctionDef(
            "combine",
            combine_infer,
            lambda *lists: [d for sub in lists for d in sub],
            "Concatenate drawable lists; later entries paint on top (§5.1).",
        )
    )

    def offset_infer(arg_types):
        if len(arg_types) != 3:
            raise TypeCheckError("offset(drawables, dx, dy)")
        if arg_types[0] is not T.DRAWABLES:
            raise TypeCheckError("first argument must be drawables")
        _expect_numeric(arg_types, [1, 2], "offset")
        return T.DRAWABLES

    register_function(
        FunctionDef(
            "offset",
            offset_infer,
            lambda drawables, dx, dy: [
                d.with_offset(float(dx), float(dy)) for d in drawables
            ],
            "Shift every drawable by (dx, dy) in its own units.",
        )
    )

    def recolor_infer(arg_types):
        if len(arg_types) != 2 or arg_types[0] is not T.DRAWABLES or arg_types[1] is not T.TEXT:
            raise TypeCheckError("recolor(drawables, color)")
        return T.DRAWABLES

    register_function(
        FunctionDef(
            "recolor",
            recolor_infer,
            lambda drawables, color: [d.with_color(color) for d in drawables],
            "Recolor every drawable.",
        )
    )

    def nothing_infer(arg_types):
        if arg_types:
            raise TypeCheckError("nothing() takes no arguments")
        return T.DRAWABLES

    register_function(
        FunctionDef("nothing", nothing_infer, lambda: [], "An empty display.")
    )

    def wormhole_infer(arg_types):
        if len(arg_types) != 6:
            raise TypeCheckError(
                "wormhole(destination, width, height, dest_elevation, init_x, init_y)"
            )
        if arg_types[0] is not T.TEXT:
            raise TypeCheckError("wormhole destination must be a text canvas name")
        _expect_numeric(arg_types, [1, 2, 3, 4, 5], "wormhole")
        return T.DRAWABLES

    register_function(
        FunctionDef(
            "wormhole",
            wormhole_infer,
            lambda dest, w, h, elev, ix, iy: [
                ViewerDrawable(
                    dest,
                    float(w),
                    float(h),
                    float(elev),
                    (float(ix), float(iy)),
                )
            ],
            "A viewer drawable onto another canvas (Section 6.2).",
        )
    )


_register_constructors()
