"""Elevation ranges and the elevation map (Sections 6.1 and 6.3).

"Every Tioga-2 displayable has a minimum and maximum elevation."  A relation
contributes nothing to the canvas outside its range (Set Range).  Positive
elevations are visible from above in the viewer; negative elevations are the
*underside* of the canvas, visible only in the rear view mirror after passing
through a wormhole; a range straddling zero is visible on both sides.

The *elevation map* is "a bar-chart display of the maximum/minimum elevations
and drawing order of all elements of a composite on the current canvas" and
"can be manipulated directly by the user to adjust the ranges and drawing
order of overlaid relations."  Here it is a model object: bars expose the
ranges/order, and its mutation methods are the direct-manipulation handles.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterator

from repro.errors import DisplayError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.display.displayable import Composite

__all__ = ["ElevationRange", "TOP_SIDE", "UNDER_SIDE", "ElevationBar", "ElevationMap"]

TOP_SIDE = "top"
UNDER_SIDE = "under"


class ElevationRange:
    """A [minimum, maximum] elevation interval; either bound may be infinite."""

    __slots__ = ("minimum", "maximum")

    def __init__(self, minimum: float = 0.0, maximum: float = math.inf):
        minimum = float(minimum)
        maximum = float(maximum)
        if math.isnan(minimum) or math.isnan(maximum):
            raise DisplayError("elevation bounds cannot be NaN")
        if minimum > maximum:
            raise DisplayError(
                f"elevation range minimum {minimum} exceeds maximum {maximum}"
            )
        self.minimum = minimum
        self.maximum = maximum

    def contains(self, elevation: float) -> bool:
        """True when a viewer at ``elevation`` sees this displayable."""
        return self.minimum <= elevation <= self.maximum

    def visible_topside(self) -> bool:
        """Any part of the range is at or above ground level."""
        return self.maximum >= 0.0

    def visible_underside(self) -> bool:
        """Any part of the range is at or below ground level (§6.3)."""
        return self.minimum <= 0.0

    def sides(self) -> tuple[str, ...]:
        """Which canvas sides this range is visible from."""
        sides = []
        if self.visible_topside():
            sides.append(TOP_SIDE)
        if self.visible_underside():
            sides.append(UNDER_SIDE)
        return tuple(sides)

    def intersect(self, other: "ElevationRange") -> "ElevationRange | None":
        low = max(self.minimum, other.minimum)
        high = min(self.maximum, other.maximum)
        if low > high:
            return None
        return ElevationRange(low, high)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ElevationRange)
            and self.minimum == other.minimum
            and self.maximum == other.maximum
        )

    def __repr__(self) -> str:
        return f"ElevationRange({self.minimum}, {self.maximum})"


class ElevationBar:
    """One bar of the elevation map: a component's name, range, and order."""

    __slots__ = ("name", "range", "order")

    def __init__(self, name: str, elevation_range: ElevationRange, order: int):
        self.name = name
        self.range = elevation_range
        self.order = order

    def __repr__(self) -> str:
        return f"ElevationBar({self.name!r}, {self.range!r}, order={self.order})"


class ElevationMap:
    """Direct-manipulation model over a composite's ranges and drawing order."""

    def __init__(self, composite: "Composite"):
        self._composite = composite

    def bars(self) -> list[ElevationBar]:
        """Bars in drawing order (order 0 paints first, i.e. bottom)."""
        return [
            ElevationBar(entry.relation.name, entry.relation.elevation_range, order)
            for order, entry in enumerate(self._composite.entries)
        ]

    def __iter__(self) -> Iterator[ElevationBar]:
        return iter(self.bars())

    def __len__(self) -> int:
        return len(self._composite.entries)

    def set_range(self, name: str, minimum: float, maximum: float) -> None:
        """Drag a bar's ends: adjust a component's elevation range."""
        entry = self._composite.entry_named(name)
        entry.relation = entry.relation.with_range(minimum, maximum)

    def shuffle_to_top(self, name: str) -> None:
        """Drag a bar to the top of the drawing order (Shuffle, §6.1)."""
        self._composite.shuffle_to_top(name)

    def move_to_order(self, name: str, order: int) -> None:
        """Drag a bar to an arbitrary position in the drawing order."""
        self._composite.move_to_order(name, order)
