"""Displayable types, drawables, elevation ranges, and default displays."""

from repro.display.defaults import (
    default_display_list,
    default_displayable,
    default_field_texts,
)
from repro.display.displayable import (
    SEQ_FIELD,
    Composite,
    CompositeEntry,
    Displayable,
    DisplayableRelation,
    Group,
    ensure_composite,
    ensure_group,
)
from repro.display.drawables import (
    NAMED_COLORS,
    Circle,
    Color,
    Drawable,
    Line,
    Point,
    Polygon,
    Rectangle,
    Style,
    Text,
    ViewerDrawable,
    resolve_color,
)
from repro.display.elevation import (
    TOP_SIDE,
    UNDER_SIDE,
    ElevationBar,
    ElevationMap,
    ElevationRange,
)

__all__ = [
    "Circle",
    "Color",
    "Composite",
    "CompositeEntry",
    "Displayable",
    "DisplayableRelation",
    "Drawable",
    "ElevationBar",
    "ElevationMap",
    "ElevationRange",
    "Group",
    "Line",
    "NAMED_COLORS",
    "Point",
    "Polygon",
    "Rectangle",
    "SEQ_FIELD",
    "Style",
    "TOP_SIDE",
    "Text",
    "UNDER_SIDE",
    "ViewerDrawable",
    "default_display_list",
    "default_displayable",
    "default_field_texts",
    "ensure_composite",
    "ensure_group",
    "resolve_color",
]
