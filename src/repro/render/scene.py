"""Tuple-wise scene construction and rendering (Sections 2 and 5).

"If R has location attributes x, y, l1, ..., l_{n-2} each tuple t of R is
rendered by drawing t.display at position <t.x, t.y, t.l1, ...> in n-space.
Because a visualization space may be much larger than the canvas, the viewer
filters tuples to the ranges specified by the sliders for dimensions l1, ...,
filters tuples to the visible real estate on the screen for dimensions x and
y, and then renders the tuples' display attribute to the screen."

:func:`render_composite` implements exactly that pipeline over a composite's
components in drawing order, recording culling statistics (benchmarked by the
Perf-3 experiment) and a display list of :class:`RenderedItem` records used
for picking (the Section-8 update path starts from a click).  Wormhole
drawables recursively render their destination canvas through a resolver.
"""

from __future__ import annotations

from typing import Any, Callable, NamedTuple

import numpy as np

from repro.dbms.columnar import default_columnar_config
from repro.dbms.expr import Binary, FieldRef, Literal
from repro.dbms.plan import RestrictNode, source_plan
from repro.dbms.plan_parallel import (
    default_config,
    parallelize_plan,
    plan_fingerprint,
    plan_read_set,
    result_cache,
    storage_epoch,
)
from repro.dbms.relation import table_epochs
from repro.dbms.tuples import Tuple
from repro.dbms import types as T
from repro.display.displayable import (
    SEQ_FIELD,
    Composite,
    DisplayableRelation,
    Group,
)
from repro.display.drawables import ViewerDrawable
from repro.errors import ViewerError
from repro.obs.trace import current_tracer
from repro.render.canvas import Canvas

__all__ = [
    "ViewState",
    "RenderedItem",
    "SceneStats",
    "CanvasDef",
    "CanvasResolver",
    "render_composite",
    "render_group",
    "MAX_WORMHOLE_DEPTH",
]

MAX_WORMHOLE_DEPTH = 2
"""Nested wormhole/magnifier rendering depth limit (prevents mutual-viewer
recursion from looping forever)."""

_CULL_MARGIN_PX = 120.0
"""Tuples whose anchor lies this far outside the viewport are culled before
their drawables are even constructed."""


class ViewState:
    """A viewer's position: n panning dimensions plus elevation (§2).

    ``elevation`` controls zoom: the visible world width is
    ``|elevation| * world_per_elevation``, so descending toward the canvas
    (elevation → 0) magnifies.  Negative elevations view the *underside* of
    a canvas — the rear view mirror's perspective after passing through a
    wormhole (§6.3).  Zero is illegal: at zero elevation the user is passing
    through, not viewing.  ``slider_ranges`` holds the [lo, hi] range per
    slider dimension name; relations lacking a dimension are invariant in it
    (§6.1).
    """

    def __init__(
        self,
        center: tuple[float, float] = (0.0, 0.0),
        elevation: float = 100.0,
        slider_ranges: dict[str, tuple[float, float]] | None = None,
        viewport: tuple[int, int] = (640, 480),
        world_per_elevation: float = 1.0,
    ):
        if elevation == 0:
            raise ViewerError(
                "viewer elevation cannot be zero (zero elevation passes "
                "through a wormhole); use a positive elevation above the "
                "canvas or a negative one for the underside"
            )
        if world_per_elevation <= 0:
            raise ViewerError("world_per_elevation must be positive")
        self.center = (float(center[0]), float(center[1]))
        self.elevation = float(elevation)
        self.slider_ranges = {
            dim: (float(lo), float(hi))
            for dim, (lo, hi) in (slider_ranges or {}).items()
        }
        self.viewport = (int(viewport[0]), int(viewport[1]))
        self.world_per_elevation = float(world_per_elevation)

    # -- transform --------------------------------------------------------

    @property
    def visible_world_width(self) -> float:
        return abs(self.elevation) * self.world_per_elevation

    @property
    def scale(self) -> float:
        """Pixels per world unit."""
        return self.viewport[0] / self.visible_world_width

    @property
    def visible_world_height(self) -> float:
        return self.viewport[1] / self.scale

    def to_screen(self, wx: float, wy: float) -> tuple[float, float]:
        """World → screen pixels (screen y grows downward)."""
        s = self.scale
        px = self.viewport[0] / 2.0 + (wx - self.center[0]) * s
        py = self.viewport[1] / 2.0 - (wy - self.center[1]) * s
        return px, py

    def to_world(self, px: float, py: float) -> tuple[float, float]:
        """Screen pixels → world."""
        s = self.scale
        wx = self.center[0] + (px - self.viewport[0] / 2.0) / s
        wy = self.center[1] - (py - self.viewport[1] / 2.0) / s
        return wx, wy

    def world_bounds(self) -> tuple[float, float, float, float]:
        """Visible world rectangle (x0, y0, x1, y1)."""
        half_w = self.visible_world_width / 2.0
        half_h = self.visible_world_height / 2.0
        return (
            self.center[0] - half_w,
            self.center[1] - half_h,
            self.center[0] + half_w,
            self.center[1] + half_h,
        )

    def copy(self) -> "ViewState":
        return ViewState(
            self.center,
            self.elevation,
            dict(self.slider_ranges),
            self.viewport,
            self.world_per_elevation,
        )

    def __repr__(self) -> str:
        return (
            f"ViewState(center={self.center}, elevation={self.elevation}, "
            f"sliders={self.slider_ranges})"
        )


class RenderedItem(NamedTuple):
    """One painted drawable, recorded for picking (topmost = last)."""

    bbox: tuple[float, float, float, float]
    relation_name: str
    source_table: str | None
    row: Tuple
    tuple_index: int
    drawable_kind: str
    drawable: Any


class SceneStats:
    """Culling/rendering counters (the Perf-3 experiment's measurements)."""

    def __init__(self) -> None:
        self.tuples_considered = 0
        self.tuples_rendered = 0
        self.culled_by_slider = 0
        self.culled_by_viewport = 0
        self.relations_culled_by_elevation = 0
        self.drawables_painted = 0
        #: Root plan node of each synthesized culling plan (one per relation
        #: that took the pushdown path); per-operator counters live in the
        #: nodes' ``stats``.
        self.cull_plans: list[Any] = []

    def to_dict(self) -> dict[str, int]:
        """Stable machine-readable form (run summaries, ``repro stats``)."""
        return {
            "tuples_considered": self.tuples_considered,
            "tuples_rendered": self.tuples_rendered,
            "culled_by_slider": self.culled_by_slider,
            "culled_by_viewport": self.culled_by_viewport,
            "relations_culled_by_elevation": self.relations_culled_by_elevation,
            "drawables_painted": self.drawables_painted,
            "cull_plans": len(self.cull_plans),
        }

    def __repr__(self) -> str:
        return (
            f"SceneStats(considered={self.tuples_considered}, "
            f"rendered={self.tuples_rendered}, slider={self.culled_by_slider}, "
            f"viewport={self.culled_by_viewport}, "
            f"elevation={self.relations_culled_by_elevation}, "
            f"painted={self.drawables_painted})"
        )


class CanvasDef(NamedTuple):
    """A wormhole destination: the displayable living on a named canvas plus
    its default slider ranges and zoom factor."""

    displayable: Composite | Group | DisplayableRelation
    slider_ranges: dict[str, tuple[float, float]]
    world_per_elevation: float


CanvasResolver = Callable[[str], CanvasDef]
"""Resolves a destination canvas name for nested wormhole rendering."""


def render_composite(
    canvas: Canvas,
    composite: Composite | DisplayableRelation,
    view: ViewState,
    resolver: CanvasResolver | None = None,
    depth: int = 0,
    cull: bool = True,
    stats: SceneStats | None = None,
) -> list[RenderedItem]:
    """Render a composite through a view state onto a canvas.

    Components paint in drawing order.  Returns the display list (paint
    order; pick the *last* hit for topmost).  ``cull=False`` disables slider
    and viewport filtering — the ablation arm of the culling benchmark; the
    elevation-range rule is semantic (Set Range) and always applies.
    """
    if isinstance(composite, DisplayableRelation):
        composite = Composite([composite])
    stats = stats if stats is not None else SceneStats()
    items: list[RenderedItem] = []
    tracer = current_tracer()
    for entry in composite.entries:
        relation = entry.relation
        if not relation.elevation_range.contains(view.elevation):
            stats.relations_culled_by_elevation += 1
            if tracer.enabled:
                tracer.event("render.elevation_cull", relation=relation.name)
            continue
        if not tracer.enabled:
            items.extend(
                _render_entry(canvas, entry, view, resolver, depth, cull, stats)
            )
            continue
        considered0 = stats.tuples_considered
        rendered0 = stats.tuples_rendered
        painted0 = stats.drawables_painted
        with tracer.span(
            "render.pass", relation=relation.name, depth=depth, cull=cull
        ) as span:
            items.extend(
                _render_entry(canvas, entry, view, resolver, depth, cull, stats)
            )
            span.set(
                rows_considered=stats.tuples_considered - considered0,
                rows_rendered=stats.tuples_rendered - rendered0,
                drawables_painted=stats.drawables_painted - painted0,
            )
    return items


def _render_entry(
    canvas: Canvas,
    entry,
    view: ViewState,
    resolver: CanvasResolver | None,
    depth: int,
    cull: bool,
    stats: SceneStats,
) -> list[RenderedItem]:
    """Render one composite entry — one viewer pass over one relation.

    Tries the vectorized and plan-pushdown culling paths first, then the
    general row-at-a-time path.
    """
    relation = entry.relation
    width, height = view.viewport
    scale = view.scale
    if cull:
        fast_items = _try_fast_scatter(
            canvas, entry, view, resolver, depth, stats
        )
        if fast_items is not None:
            return fast_items
        plan_items = _try_plan_cull(
            canvas, entry, view, resolver, depth, stats
        )
        if plan_items is not None:
            return plan_items
    items: list[RenderedItem] = []
    offset_x = entry.offset_for("x")
    offset_y = entry.offset_for("y")
    for index, row_view in enumerate(relation.views()):
        stats.tuples_considered += 1
        location = relation.location_of(row_view)
        if cull and _slider_culled(relation, entry, location, view):
            stats.culled_by_slider += 1
            continue
        px, py = view.to_screen(location[0] + offset_x, location[1] + offset_y)
        if cull and not (
            -_CULL_MARGIN_PX <= px <= width + _CULL_MARGIN_PX
            and -_CULL_MARGIN_PX <= py <= height + _CULL_MARGIN_PX
        ):
            stats.culled_by_viewport += 1
            continue
        drawables = relation.display_of(row_view)
        painted_any = False
        for drawable in drawables:
            bbox = drawable.bbox(px, py, scale)
            # One pixel of slack: rasterization rounds coordinates, so a
            # bbox ending fractionally off-canvas can still touch pixels.
            if cull and (
                bbox[2] < -1.0 or bbox[0] > width + 1.0
                or bbox[3] < -1.0 or bbox[1] > height + 1.0
            ):
                continue
            drawable.paint(canvas, px, py, scale)
            stats.drawables_painted += 1
            painted_any = True
            if isinstance(drawable, ViewerDrawable):
                _render_wormhole(
                    canvas, drawable, px, py, scale, resolver, depth, stats
                )
            items.append(
                RenderedItem(
                    bbox,
                    relation.name,
                    relation.source_table,
                    row_view.base,
                    index,
                    drawable.kind,
                    drawable,
                )
            )
        if painted_any:
            stats.tuples_rendered += 1
    return items


def _stored_numeric_column(relation: DisplayableRelation, attr: str) -> str | None:
    """Resolve an attribute to a stored numeric column: either the column
    itself, or a computed method that is a bare reference to one."""
    schema = relation.rows.schema
    if attr in schema:
        return attr if T.numeric(schema.type_of(attr)) else None
    if attr in relation.methods:
        method = relation.methods.get(attr)
        if isinstance(method.expr, FieldRef) and method.expr.name in schema:
            name = method.expr.name
            return name if T.numeric(schema.type_of(name)) else None
    return None


def _try_fast_scatter(
    canvas: Canvas,
    entry,
    view: ViewState,
    resolver: CanvasResolver | None,
    depth: int,
    stats: SceneStats,
) -> list[RenderedItem] | None:
    """Vectorized culling for the common scatter shape, or None to fall back.

    Applies when x, y, and every slider dimension resolve to stored numeric
    columns and the display attribute is tuple-independent (its definition
    references no fields).  Location extraction and slider/viewport culling
    run over numpy arrays; only the visible tuples reach the per-drawable
    painters — producing exactly the pixels, items, and statistics of the
    general path, just faster on large relations.
    """
    relation = entry.relation
    rows = relation.rows
    if len(rows) < 64:
        return None  # setup cost outweighs the win
    if not relation.has_custom_location or not relation.has_custom_display:
        return None
    x_col = _stored_numeric_column(relation, "x")
    y_col = _stored_numeric_column(relation, "y")
    if x_col is None or y_col is None:
        return None
    slider_cols: list[tuple[str, str]] = []
    for dim in relation.slider_dims:
        column = _stored_numeric_column(relation, dim)
        if column is None:
            return None
        slider_cols.append((dim, column))
    if "display" not in relation.methods:
        return None
    display_method = relation.methods.get("display")
    if display_method.expr is None or display_method.expr.fields_used():
        return None

    tracer = current_tracer()
    with tracer.span("render.cull", method="fast_scatter",
                     relation=relation.name) as cull_span:
        schema = rows.schema
        x_pos = schema.position(x_col)
        y_pos = schema.position(y_col)
        xs = np.fromiter(
            (row.values[x_pos] for row in rows), dtype=np.float64,
            count=len(rows)
        )
        ys = np.fromiter(
            (row.values[y_pos] for row in rows), dtype=np.float64,
            count=len(rows)
        )
        stats.tuples_considered += len(rows)

        visible = np.ones(len(rows), dtype=bool)
        for dim, column in slider_cols:
            bounds = view.slider_ranges.get(dim)
            if bounds is None:
                continue
            pos = schema.position(column)
            values = np.fromiter(
                (row.values[pos] for row in rows), dtype=np.float64,
                count=len(rows)
            ) + entry.offset_for(dim)
            visible &= (values >= bounds[0]) & (values <= bounds[1])
        stats.culled_by_slider += int(len(rows) - visible.sum())

        scale = view.scale
        width, height = view.viewport
        px = width / 2.0 + (xs + entry.offset_for("x") - view.center[0]) * scale
        py = height / 2.0 - (ys + entry.offset_for("y") - view.center[1]) * scale
        in_frame = (
            (px >= -_CULL_MARGIN_PX) & (px <= width + _CULL_MARGIN_PX)
            & (py >= -_CULL_MARGIN_PX) & (py <= height + _CULL_MARGIN_PX)
        )
        stats.culled_by_viewport += int((visible & ~in_frame).sum())
        visible &= in_frame
        indices = np.nonzero(visible)[0]
        cull_span.set(rows_in=len(rows), rows_out=int(len(indices)))

    drawables = display_method.compute(relation.methods.row_view(rows[0]))
    items: list[RenderedItem] = []
    with tracer.span("render.draw", method="fast_scatter",
                     relation=relation.name) as draw_span:
        for index in indices:
            anchor_x = float(px[index])
            anchor_y = float(py[index])
            painted_any = False
            for drawable in drawables:
                bbox = drawable.bbox(anchor_x, anchor_y, scale)
                if (bbox[2] < -1.0 or bbox[0] > width + 1.0
                        or bbox[3] < -1.0 or bbox[1] > height + 1.0):
                    continue
                drawable.paint(canvas, anchor_x, anchor_y, scale)
                stats.drawables_painted += 1
                painted_any = True
                if isinstance(drawable, ViewerDrawable):
                    _render_wormhole(
                        canvas, drawable, anchor_x, anchor_y, scale,
                        resolver, depth, stats,
                    )
                items.append(
                    RenderedItem(
                        bbox,
                        relation.name,
                        relation.source_table,
                        rows[int(index)],
                        int(index),
                        drawable.kind,
                        drawable,
                    )
                )
            if painted_any:
                stats.tuples_rendered += 1
        draw_span.set(items=len(items))
    return items


def _execute_cull_plan(viewport_node, slider_node):
    """Run a synthesized cull plan, parallel- and cache-aware.

    With no process-wide parallel config this is a plain serial execution.
    Otherwise the plan may be morsel-parallelized (output order and row
    identity are preserved, so the caller's identity walk still recovers
    original indices) and its result memoized in the process-wide result
    cache keyed by extent + source identity + storage epoch — a repeated
    pan/zoom visit of the same extent skips the cull entirely.  Entry meta
    carries the per-node counters so SceneStats stays exact on a hit.
    """
    config = default_config()
    columnar = default_columnar_config()
    if config is None and columnar is None:
        return list(viewport_node.rows_iter())

    counted = [node for node in (slider_node, viewport_node)
               if node is not None]
    key = None
    pins: tuple = ()
    epoch = None
    if config is not None and config.cache:
        fingerprint = plan_fingerprint(viewport_node)
        if fingerprint is not None:
            key, pins = fingerprint
            cached = result_cache().lookup(key)
            if cached is not None:
                rows, meta = cached
                for node, (rows_in, rows_out) in zip(counted, meta or ()):
                    node.stats.rows_in += rows_in
                    node.stats.rows_out += rows_out
                return list(rows)
            tables = plan_read_set(viewport_node)
            epoch = (table_epochs(tables) if tables is not None
                     else storage_epoch())

    # The rewrites keep row identity (columnar Restrict selects from cached
    # whole-source batches that hand back the original Tuple objects) and
    # fold per-node counters back into the synthesized Restricts, so the
    # caller's identity walk and SceneStats stay exact on every backend.
    root = viewport_node
    if config is not None and config.parallel:
        root, __ = parallelize_plan(viewport_node, config, columnar=columnar)
    if columnar is not None:
        from repro.dbms.plan_rewrite import columnarize_plan

        root, __ = columnarize_plan(root, columnar)
    kept = list(root.rows_iter())
    if key is not None and epoch is not None:
        meta = [(node.stats.rows_in, node.stats.rows_out) for node in counted]
        result_cache().store(key, kept, pins, epoch, meta=meta)
    return kept


def _try_plan_cull(
    canvas: Canvas,
    entry,
    view: ViewState,
    resolver: CanvasResolver | None,
    depth: int,
    stats: SceneStats,
) -> list[RenderedItem] | None:
    """Push slider and viewport culling into a physical plan, or None.

    Applies when x, y, and every *bounded* slider dimension resolve to
    stored numeric columns; unlike the fast-scatter path the display
    attribute may be arbitrary, because the whole point is that display
    functions are evaluated only for the tuples that survive the synthesized
    Restrict nodes.  The predicates replicate the general path's float
    arithmetic term for term, so the culling decisions — including NaN
    handling — are bit-identical; the elevation-band rule already culled
    whole relations upstream.  The synthesized plan is recorded in
    ``stats.cull_plans`` with per-operator row counts.
    """
    relation = entry.relation
    rows = relation.rows
    if not relation.has_custom_location:
        return None
    x_col = _stored_numeric_column(relation, "x")
    y_col = _stored_numeric_column(relation, "y")
    if x_col is None or y_col is None:
        return None
    bounded: list[tuple[str, str, tuple[float, float]]] = []
    for dim in relation.slider_dims:
        bounds = view.slider_ranges.get(dim)
        if bounds is None:
            continue  # the relation is invariant in unbounded dims (§6.1)
        column = _stored_numeric_column(relation, dim)
        if column is None:
            return None
        bounded.append((dim, column, bounds))

    scale = view.scale
    width, height = view.viewport

    def shifted(column: str, offset: float) -> Binary:
        return Binary("+", FieldRef(column), Literal(float(offset)))

    # px = W/2 + ((x + off) - cx) * s ;  py = H/2 - ((y + off) - cy) * s —
    # the exact association order of location_of + to_screen.
    px = Binary(
        "+",
        Literal(width / 2.0),
        Binary(
            "*",
            Binary(
                "-",
                shifted(x_col, entry.offset_for("x")),
                Literal(view.center[0]),
            ),
            Literal(scale),
        ),
    )
    py = Binary(
        "-",
        Literal(height / 2.0),
        Binary(
            "*",
            Binary(
                "-",
                shifted(y_col, entry.offset_for("y")),
                Literal(view.center[1]),
            ),
            Literal(scale),
        ),
    )
    viewport_predicate = Binary(
        "and",
        Binary(
            "and",
            Binary(
                "and",
                Binary(">=", px, Literal(-_CULL_MARGIN_PX)),
                Binary("<=", px, Literal(width + _CULL_MARGIN_PX)),
            ),
            Binary(">=", py, Literal(-_CULL_MARGIN_PX)),
        ),
        Binary("<=", py, Literal(height + _CULL_MARGIN_PX)),
    )

    node = source_plan(rows, relation.name)
    slider_node = None
    if bounded:
        predicate = None
        for dim, column, (lo, hi) in bounded:
            value = shifted(column, entry.offset_for(dim))
            part = Binary(
                "and",
                Binary(">=", value, Literal(lo)),
                Binary("<=", value, Literal(hi)),
            )
            predicate = part if predicate is None else Binary(
                "and", predicate, part
            )
        slider_node = RestrictNode(node, predicate, alias="slider cull")
        node = slider_node
    viewport_node = RestrictNode(node, viewport_predicate, alias="viewport cull")

    tracer = current_tracer()
    with tracer.span("render.cull", method="plan",
                     relation=relation.name) as cull_span:
        kept = _execute_cull_plan(viewport_node, slider_node)
        cull_span.set(rows_in=viewport_node.stats.rows_in
                      if slider_node is None else slider_node.stats.rows_in,
                      rows_out=len(kept))

    first = slider_node if slider_node is not None else viewport_node
    stats.tuples_considered += first.stats.rows_in
    if slider_node is not None:
        stats.culled_by_slider += (
            slider_node.stats.rows_in - slider_node.stats.rows_out
        )
    stats.culled_by_viewport += (
        viewport_node.stats.rows_in - viewport_node.stats.rows_out
    )
    stats.cull_plans.append(viewport_node)

    offset_x = entry.offset_for("x")
    offset_y = entry.offset_for("y")
    items: list[RenderedItem] = []
    pos = 0
    with tracer.span("render.draw", method="plan",
                     relation=relation.name) as draw_span:
        for row in kept:
            # Restrict preserves order and object identity, so the original
            # index is recovered by a forward identity walk (exact even with
            # duplicate-valued rows).
            while rows[pos] is not row:
                pos += 1
            index = pos
            pos += 1
            row_view = relation.methods.row_view(row, extra={SEQ_FIELD: index})
            location = relation.location_of(row_view)
            anchor_x, anchor_y = view.to_screen(
                location[0] + offset_x, location[1] + offset_y
            )
            drawables = relation.display_of(row_view)
            painted_any = False
            for drawable in drawables:
                bbox = drawable.bbox(anchor_x, anchor_y, scale)
                if (bbox[2] < -1.0 or bbox[0] > width + 1.0
                        or bbox[3] < -1.0 or bbox[1] > height + 1.0):
                    continue
                drawable.paint(canvas, anchor_x, anchor_y, scale)
                stats.drawables_painted += 1
                painted_any = True
                if isinstance(drawable, ViewerDrawable):
                    _render_wormhole(
                        canvas, drawable, anchor_x, anchor_y, scale,
                        resolver, depth, stats,
                    )
                items.append(
                    RenderedItem(
                        bbox,
                        relation.name,
                        relation.source_table,
                        row,
                        index,
                        drawable.kind,
                        drawable,
                    )
                )
            if painted_any:
                stats.tuples_rendered += 1
        draw_span.set(items=len(items))
    return items


def _slider_culled(
    relation: DisplayableRelation,
    entry,
    location: tuple[float, ...],
    view: ViewState,
) -> bool:
    """Filter to slider ranges; relations lacking a dimension are invariant
    in it (§6.1), so only the relation's own slider dims are checked."""
    for pos, dim in enumerate(relation.slider_dims):
        bounds = view.slider_ranges.get(dim)
        if bounds is None:
            continue
        value = location[2 + pos] + entry.offset_for(dim)
        if not bounds[0] <= value <= bounds[1]:
            return True
    return False


def _render_wormhole(
    canvas: Canvas,
    drawable: ViewerDrawable,
    px: float,
    py: float,
    scale: float,
    resolver: CanvasResolver | None,
    depth: int,
    stats: SceneStats,
) -> None:
    """Paint the destination canvas inside a wormhole frame (§6.2)."""
    if resolver is None or depth >= MAX_WORMHOLE_DEPTH:
        return
    x0, y0, x1, y1 = drawable.frame(px, py, scale)
    inner_w = max(1, int(round(x1 - x0)) - 2)
    inner_h = max(1, int(round(y1 - y0)) - 2)
    definition = resolver(drawable.destination)
    nested_view = ViewState(
        center=drawable.dest_location,
        elevation=drawable.dest_elevation,
        slider_ranges=definition.slider_ranges,
        viewport=(inner_w, inner_h),
        world_per_elevation=definition.world_per_elevation,
    )
    sub_canvas = type(canvas)(inner_w, inner_h)
    displayable = definition.displayable
    if isinstance(displayable, Group):
        render_group(sub_canvas, displayable,
                     {name: nested_view.copy() for name, __ in displayable},
                     resolver, depth + 1, stats=stats)
    else:
        render_composite(
            sub_canvas, displayable, nested_view, resolver, depth + 1, stats=stats
        )
    canvas.blit(sub_canvas, x0 + 1, y0 + 1)


def render_group(
    canvas: Canvas,
    group: Group,
    views: dict[str, ViewState],
    resolver: CanvasResolver | None = None,
    depth: int = 0,
    cull: bool = True,
    stats: SceneStats | None = None,
) -> dict[str, list[RenderedItem]]:
    """Render a group: each member in its own layout cell with its own view.

    "The viewer has a position for each of the n displayables — the user may
    independently pan and zoom in each of the grouped visualizations." (§2)
    Returns the display list per member; item bboxes are in full-canvas
    coordinates.
    """
    stats = stats if stats is not None else SceneStats()
    rows, cols = group.grid_shape()
    cell_w = canvas.width // max(1, cols)
    cell_h = canvas.height // max(1, rows)
    results: dict[str, list[RenderedItem]] = {}
    for position, (name, composite) in enumerate(group):
        row = position // cols
        col = position % cols
        if row >= rows:
            raise ViewerError(
                f"group has more members ({len(group)}) than layout cells "
                f"({rows}x{cols})"
            )
        view = views.get(name)
        if view is None:
            raise ViewerError(f"no view state for group member {name!r}")
        member_view = view.copy()
        member_view.viewport = (max(1, cell_w - 2), max(1, cell_h - 2))
        sub_canvas = type(canvas)(*member_view.viewport)
        items = render_composite(
            sub_canvas, composite, member_view, resolver, depth, cull, stats
        )
        origin_x = col * cell_w + 1
        origin_y = row * cell_h + 1
        canvas.blit(sub_canvas, origin_x, origin_y)
        canvas.draw_rect(
            col * cell_w, row * cell_h,
            col * cell_w + cell_w - 1, row * cell_h + cell_h - 1,
            (128, 128, 128),
        )
        results[name] = [
            item._replace(
                bbox=(
                    item.bbox[0] + origin_x,
                    item.bbox[1] + origin_y,
                    item.bbox[2] + origin_x,
                    item.bbox[3] + origin_y,
                )
            )
            for item in items
        ]
    return results
