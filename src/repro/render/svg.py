"""SVG vector export: an alternative surface for the scene builder.

:class:`SvgCanvas` implements the same drawing protocol as the raster
:class:`~repro.render.canvas.Canvas` (lines, rectangles, circles, polygons,
text, blitting of nested surfaces) but accumulates SVG elements instead of
painting pixels.  Any render path that accepts a canvas accepts an
``SvgCanvas`` — nested group cells, wormhole previews, and magnifying
glasses work because the scene builder constructs sub-surfaces with
``type(canvas)(w, h)``.

Use :meth:`Viewer.render` with a raster canvas for picking and pixel
assertions; use :func:`render_svg`/:meth:`SvgCanvas.to_svg` when you want a
scalable artifact to open in a browser.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.display.drawables import Color, resolve_color
from repro.errors import DisplayError
from repro.render.font import CHAR_WIDTH

__all__ = ["SvgCanvas", "render_svg"]


def _rgb(color: Color) -> str:
    r, g, b = color
    return f"rgb({r},{g},{b})"


class SvgCanvas:
    """A drawing surface that records SVG elements.

    Mirrors the raster canvas API used by drawables and the scene builder.
    Elements clip to the canvas bounds via an SVG clip path rather than
    per-primitive clipping.
    """

    def __init__(self, width: int, height: int, background: Color = (255, 255, 255)):
        if width < 1 or height < 1:
            raise DisplayError(f"canvas size must be positive, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.background = resolve_color(background)
        self.elements: list[str] = []

    # ------------------------------------------------------------------
    # The surface protocol
    # ------------------------------------------------------------------

    def clear(self) -> None:
        self.elements.clear()

    def set_pixel(self, x: float, y: float, color: Color) -> None:
        self.elements.append(
            f'<rect x="{x - 0.5:.2f}" y="{y - 0.5:.2f}" width="1" height="1" '
            f'fill="{_rgb(color)}"/>'
        )

    def draw_line(self, x0, y0, x1, y1, color: Color, width: int = 1) -> None:
        self.elements.append(
            f'<line x1="{x0:.2f}" y1="{y0:.2f}" x2="{x1:.2f}" y2="{y1:.2f}" '
            f'stroke="{_rgb(color)}" stroke-width="{width}"/>'
        )

    def draw_rect(self, x0, y0, x1, y1, color: Color, width: int = 1) -> None:
        x0, x1 = min(x0, x1), max(x0, x1)
        y0, y1 = min(y0, y1), max(y0, y1)
        self.elements.append(
            f'<rect x="{x0:.2f}" y="{y0:.2f}" width="{x1 - x0:.2f}" '
            f'height="{y1 - y0:.2f}" fill="none" stroke="{_rgb(color)}" '
            f'stroke-width="{width}"/>'
        )

    def fill_rect(self, x0, y0, x1, y1, color: Color) -> None:
        x0, x1 = min(x0, x1), max(x0, x1)
        y0, y1 = min(y0, y1), max(y0, y1)
        self.elements.append(
            f'<rect x="{x0:.2f}" y="{y0:.2f}" width="{x1 - x0:.2f}" '
            f'height="{y1 - y0:.2f}" fill="{_rgb(color)}"/>'
        )

    def draw_circle(self, cx, cy, radius, color: Color, width: int = 1) -> None:
        self.elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{max(radius, 0.5):.2f}" '
            f'fill="none" stroke="{_rgb(color)}" stroke-width="{width}"/>'
        )

    def fill_circle(self, cx, cy, radius, color: Color) -> None:
        self.elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{max(radius, 0.5):.2f}" '
            f'fill="{_rgb(color)}"/>'
        )

    def draw_polygon(self, points, color: Color, width: int = 1) -> None:
        joined = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self.elements.append(
            f'<polygon points="{joined}" fill="none" '
            f'stroke="{_rgb(color)}" stroke-width="{width}"/>'
        )

    def fill_polygon(self, points, color: Color) -> None:
        joined = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self.elements.append(
            f'<polygon points="{joined}" fill="{_rgb(color)}"/>'
        )

    def draw_text(self, x, y, text: str, color: Color) -> None:
        # The raster path paints 5x7 glyphs with the top-left at (x, y);
        # match its metrics so layouts agree between surfaces.
        size = 9
        self.elements.append(
            f'<text x="{x:.2f}" y="{y + 7:.2f}" font-family="monospace" '
            f'font-size="{size}" textLength="{len(text) * (CHAR_WIDTH + 1):.0f}" '
            f'fill="{_rgb(color)}">{escape(text)}</text>'
        )

    def blit(self, other: "SvgCanvas", x: float, y: float) -> None:
        """Embed another SVG surface translated to (x, y)."""
        if not isinstance(other, SvgCanvas):
            raise DisplayError(
                "SvgCanvas can only blit other SvgCanvas surfaces"
            )
        inner = "\n".join(other.elements)
        self.elements.append(
            f'<g transform="translate({x:.2f},{y:.2f})">'
            f'<rect x="0" y="0" width="{other.width}" height="{other.height}" '
            f'fill="{_rgb(other.background)}"/>{inner}</g>'
        )

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def svg_document(self) -> str:
        body = "\n".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<defs><clipPath id="frame"><rect x="0" y="0" '
            f'width="{self.width}" height="{self.height}"/></clipPath></defs>\n'
            f'<rect x="0" y="0" width="{self.width}" height="{self.height}" '
            f'fill="{_rgb(self.background)}"/>\n'
            f'<g clip-path="url(#frame)">\n{body}\n</g>\n</svg>\n'
        )

    def to_svg(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.svg_document())
        return path

    def __repr__(self) -> str:
        return f"SvgCanvas({self.width}x{self.height}, {len(self.elements)} elements)"


def render_svg(viewer, cull: bool = True) -> SvgCanvas:
    """Render a viewer's current position as SVG.

    The vector twin of :meth:`Viewer.render`: same displayable, same view
    states, SVG elements instead of pixels.
    """
    from repro.display.displayable import Group, ensure_composite
    from repro.render.scene import render_composite, render_group

    viewer._sync_views()
    displayable = viewer.displayable()
    canvas = SvgCanvas(viewer.width, viewer.height)
    if isinstance(displayable, Group):
        render_group(canvas, displayable, viewer.views, viewer.resolver,
                     cull=cull)
    else:
        view = viewer.views[next(iter(viewer.views))]
        view.viewport = (viewer.width, viewer.height)
        render_composite(canvas, ensure_composite(displayable), view,
                         viewer.resolver, cull=cull)
    return canvas
