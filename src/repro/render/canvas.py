"""The raster canvas: a numpy RGB framebuffer with clipped drawing primitives.

This is the stand-in for the X11/Tk surface the original system painted on.
It offers exactly the primitives the paper's drawables need — lines
(Bresenham with width), rectangles, circles (midpoint), polygons (scanline
fill), bitmap text — plus blitting (for nested wormhole/magnifier viewers),
PPM export, and an ASCII view for terminals and tests.

All coordinates are float pixels (x right, y down) and are clipped to the
canvas bounds; drawing off-canvas is silently partial, never an error.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from repro.display.drawables import Color, resolve_color
from repro.errors import DisplayError
from repro.obs.trace import current_tracer
from repro.render.font import CHAR_HEIGHT, CHAR_WIDTH, glyph_rows

__all__ = ["Canvas", "WHITE", "BLACK"]

WHITE: Color = (255, 255, 255)
BLACK: Color = (0, 0, 0)


class Canvas:
    """A width x height RGB framebuffer."""

    def __init__(self, width: int, height: int, background: Color = WHITE):
        if width < 1 or height < 1:
            raise DisplayError(f"canvas size must be positive, got {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.background = resolve_color(background)
        self.pixels = np.empty((self.height, self.width, 3), dtype=np.uint8)
        #: Primitive draw calls since creation (lines, fills, text, blits);
        #: surfaced as the ``render.draw_ops`` metric and span attribute.
        self.draw_ops = 0
        self.clear()

    def clear(self) -> None:
        self.pixels[:, :] = self.background

    # ------------------------------------------------------------------
    # Pixel access
    # ------------------------------------------------------------------

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.width and 0 <= y < self.height

    def set_pixel(self, x: float, y: float, color: Color) -> None:
        xi, yi = int(round(x)), int(round(y))
        if self.in_bounds(xi, yi):
            self.pixels[yi, xi] = color

    def pixel(self, x: int, y: int) -> Color:
        if not self.in_bounds(x, y):
            raise DisplayError(f"pixel ({x}, {y}) outside {self.width}x{self.height}")
        r, g, b = self.pixels[y, x]
        return (int(r), int(g), int(b))

    def count_nonbackground(self) -> int:
        """Number of painted pixels — the workhorse assertion in tests."""
        return int((self.pixels != np.array(self.background)).any(axis=2).sum())

    def colors_used(self) -> set[Color]:
        """Distinct non-background colors present on the canvas."""
        flat = self.pixels.reshape(-1, 3)
        unique = np.unique(flat, axis=0)
        return {
            (int(r), int(g), int(b))
            for r, g, b in unique
            if (int(r), int(g), int(b)) != self.background
        }

    def region_nonbackground(self, x0: int, y0: int, x1: int, y1: int) -> int:
        """Painted pixels within a clipped rectangle."""
        x0 = max(0, x0)
        y0 = max(0, y0)
        x1 = min(self.width, x1)
        y1 = min(self.height, y1)
        if x0 >= x1 or y0 >= y1:
            return 0
        region = self.pixels[y0:y1, x0:x1]
        return int((region != np.array(self.background)).any(axis=2).sum())

    # ------------------------------------------------------------------
    # Primitives
    # ------------------------------------------------------------------

    def _thick_point(self, x: int, y: int, color: Color, width: int) -> None:
        if width <= 1:
            if self.in_bounds(x, y):
                self.pixels[y, x] = color
            return
        half = width // 2
        x0 = max(0, x - half)
        y0 = max(0, y - half)
        x1 = min(self.width, x + half + 1)
        y1 = min(self.height, y + half + 1)
        if x0 < x1 and y0 < y1:
            self.pixels[y0:y1, x0:x1] = color

    def draw_line(
        self, x0: float, y0: float, x1: float, y1: float, color: Color, width: int = 1
    ) -> None:
        """Bresenham line with optional thickness."""
        self.draw_ops += 1
        ix0, iy0, ix1, iy1 = int(round(x0)), int(round(y0)), int(round(x1)), int(round(y1))
        dx = abs(ix1 - ix0)
        dy = -abs(iy1 - iy0)
        sx = 1 if ix0 < ix1 else -1
        sy = 1 if iy0 < iy1 else -1
        err = dx + dy
        x, y = ix0, iy0
        while True:
            self._thick_point(x, y, color, width)
            if x == ix1 and y == iy1:
                break
            e2 = 2 * err
            if e2 >= dy:
                err += dy
                x += sx
            if e2 <= dx:
                err += dx
                y += sy

    def draw_rect(
        self, x0: float, y0: float, x1: float, y1: float, color: Color, width: int = 1
    ) -> None:
        x0, x1 = min(x0, x1), max(x0, x1)
        y0, y1 = min(y0, y1), max(y0, y1)
        self.draw_line(x0, y0, x1, y0, color, width)
        self.draw_line(x1, y0, x1, y1, color, width)
        self.draw_line(x1, y1, x0, y1, color, width)
        self.draw_line(x0, y1, x0, y0, color, width)

    def fill_rect(self, x0: float, y0: float, x1: float, y1: float, color: Color) -> None:
        self.draw_ops += 1
        x0, x1 = min(x0, x1), max(x0, x1)
        y0, y1 = min(y0, y1), max(y0, y1)
        xi0 = max(0, int(round(x0)))
        yi0 = max(0, int(round(y0)))
        xi1 = min(self.width, int(round(x1)) + 1)
        yi1 = min(self.height, int(round(y1)) + 1)
        if xi0 < xi1 and yi0 < yi1:
            self.pixels[yi0:yi1, xi0:xi1] = color

    def draw_circle(
        self, cx: float, cy: float, radius: float, color: Color, width: int = 1
    ) -> None:
        """Midpoint circle."""
        self.draw_ops += 1
        r = int(round(radius))
        if r <= 0:
            self._thick_point(int(round(cx)), int(round(cy)), color, width)
            return
        cxi, cyi = int(round(cx)), int(round(cy))
        x, y = r, 0
        err = 1 - r
        while x >= y:
            for px, py in (
                (cxi + x, cyi + y), (cxi - x, cyi + y),
                (cxi + x, cyi - y), (cxi - x, cyi - y),
                (cxi + y, cyi + x), (cxi - y, cyi + x),
                (cxi + y, cyi - x), (cxi - y, cyi - x),
            ):
                self._thick_point(px, py, color, width)
            y += 1
            if err < 0:
                err += 2 * y + 1
            else:
                x -= 1
                err += 2 * (y - x) + 1

    def fill_circle(self, cx: float, cy: float, radius: float, color: Color) -> None:
        self.draw_ops += 1
        r = radius
        if r <= 0:
            self.set_pixel(cx, cy, color)
            return
        y0 = max(0, int(math.floor(cy - r)))
        y1 = min(self.height - 1, int(math.ceil(cy + r)))
        for y in range(y0, y1 + 1):
            dy = y - cy
            span = r * r - dy * dy
            if span < 0:
                continue
            half = math.sqrt(span)
            x0 = max(0, int(round(cx - half)))
            x1 = min(self.width - 1, int(round(cx + half)))
            if x0 <= x1:
                self.pixels[y, x0 : x1 + 1] = color

    def draw_polygon(
        self, points: list[tuple[float, float]], color: Color, width: int = 1
    ) -> None:
        if len(points) < 2:
            return
        for (x0, y0), (x1, y1) in zip(points, points[1:] + points[:1]):
            self.draw_line(x0, y0, x1, y1, color, width)

    def fill_polygon(self, points: list[tuple[float, float]], color: Color) -> None:
        """Even-odd scanline fill."""
        self.draw_ops += 1
        if len(points) < 3:
            return
        ys = [p[1] for p in points]
        y0 = max(0, int(math.floor(min(ys))))
        y1 = min(self.height - 1, int(math.ceil(max(ys))))
        n = len(points)
        for y in range(y0, y1 + 1):
            scan = y + 0.5
            crossings: list[float] = []
            for i in range(n):
                ax, ay = points[i]
                bx, by = points[(i + 1) % n]
                if (ay <= scan < by) or (by <= scan < ay):
                    t = (scan - ay) / (by - ay)
                    crossings.append(ax + t * (bx - ax))
            crossings.sort()
            for left, right in zip(crossings[::2], crossings[1::2]):
                xi0 = max(0, int(round(left)))
                xi1 = min(self.width - 1, int(round(right)))
                if xi0 <= xi1:
                    self.pixels[y, xi0 : xi1 + 1] = color

    def draw_text(self, x: float, y: float, text: str, color: Color) -> None:
        """Paint ``text`` with its top-left corner at (x, y)."""
        self.draw_ops += 1
        cursor = int(round(x))
        top = int(round(y))
        for char in text:
            rows = glyph_rows(char)
            for row_index, row_bits in enumerate(rows):
                py = top + row_index
                if not 0 <= py < self.height:
                    continue
                for col in range(CHAR_WIDTH):
                    if row_bits & (1 << (CHAR_WIDTH - 1 - col)):
                        px = cursor + col
                        if 0 <= px < self.width:
                            self.pixels[py, px] = color
            cursor += CHAR_WIDTH + 1

    # ------------------------------------------------------------------
    # Composition and export
    # ------------------------------------------------------------------

    def blit(self, other: "Canvas", x: float, y: float) -> None:
        """Paint another canvas onto this one with top-left at (x, y)."""
        self.draw_ops += 1
        xi, yi = int(round(x)), int(round(y))
        src_x0 = max(0, -xi)
        src_y0 = max(0, -yi)
        dst_x0 = max(0, xi)
        dst_y0 = max(0, yi)
        copy_w = min(other.width - src_x0, self.width - dst_x0)
        copy_h = min(other.height - src_y0, self.height - dst_y0)
        if copy_w <= 0 or copy_h <= 0:
            return
        self.pixels[dst_y0 : dst_y0 + copy_h, dst_x0 : dst_x0 + copy_w] = other.pixels[
            src_y0 : src_y0 + copy_h, src_x0 : src_x0 + copy_w
        ]

    def ppm_bytes(self) -> bytes:
        """The binary PPM (P6) encoding — the server's raw frame payload."""
        header = f"P6\n{self.width} {self.height}\n255\n".encode("ascii")
        return header + self.pixels.tobytes()

    def to_ppm(self, path: str | Path) -> Path:
        """Write a binary PPM (P6) image — viewable by any image tool."""
        path = Path(path)
        with current_tracer().span("canvas.export", format="ppm",
                                   px=self.width * self.height):
            path.write_bytes(self.ppm_bytes())
        return path

    def png_bytes(self) -> bytes:
        """The PNG (8-bit RGB, zlib-compressed) encoding, stdlib only."""
        import struct
        import zlib

        def chunk(tag: bytes, payload: bytes) -> bytes:
            return (
                struct.pack(">I", len(payload))
                + tag
                + payload
                + struct.pack(">I", zlib.crc32(tag + payload) & 0xFFFFFFFF)
            )

        header = struct.pack(
            ">IIBBBBB", self.width, self.height, 8, 2, 0, 0, 0
        )
        # Each scanline gets filter byte 0 (None).
        raw = b"".join(
            b"\x00" + self.pixels[y].tobytes() for y in range(self.height)
        )
        return (
            b"\x89PNG\r\n\x1a\n"
            + chunk(b"IHDR", header)
            + chunk(b"IDAT", zlib.compress(raw, level=6))
            + chunk(b"IEND", b"")
        )

    def to_png(self, path: str | Path) -> Path:
        """Write a PNG (8-bit RGB, zlib-compressed) using only the stdlib."""
        path = Path(path)
        with current_tracer().span("canvas.export", format="png",
                                   px=self.width * self.height):
            path.write_bytes(self.png_bytes())
        return path

    def to_ascii(self, columns: int = 80) -> str:
        """Downsample to an ASCII view (darker pixels → denser glyphs)."""
        columns = max(1, min(columns, self.width))
        cell_w = self.width / columns
        rows = max(1, int(round(self.height / (cell_w * 2))))
        cell_h = self.height / rows
        ramp = " .:-=+*#%@"
        lines = []
        luminance = self.pixels.astype(np.float64).mean(axis=2)
        for row in range(rows):
            y0 = int(row * cell_h)
            y1 = max(y0 + 1, int((row + 1) * cell_h))
            line_chars = []
            for col in range(columns):
                x0 = int(col * cell_w)
                x1 = max(x0 + 1, int((col + 1) * cell_w))
                mean = luminance[y0:y1, x0:x1].mean()
                darkness = 1.0 - mean / 255.0
                index = min(len(ramp) - 1, int(darkness * (len(ramp) - 1) + 0.5))
                line_chars.append(ramp[index])
            lines.append("".join(line_chars).rstrip())
        return "\n".join(lines)

    def copy(self) -> "Canvas":
        clone = Canvas(self.width, self.height, self.background)
        clone.pixels[:, :] = self.pixels
        return clone

    def __repr__(self) -> str:
        return f"Canvas({self.width}x{self.height})"
