"""Canvas-window furniture: the elevation map, slider bars, and elevation
control as rendered widgets (Section 3).

"each canvas window includes a rear view mirror, zero or more slider bars,
an elevation map, and an elevation control (a dashed line through the
elevation map)."

The models live in :mod:`repro.display.elevation` and the viewer; these
functions draw them.  The elevation map is "a bar-chart display of the
maximum/minimum elevations and drawing order of all elements of a composite"
(§6.1): one horizontal bar per component, bottom of the widget = drawing
order 0, with the dashed elevation-control line marking the viewer's current
elevation.  Elevations are plotted on a square-root axis so both map-scale
and zoomed-in ranges stay readable; infinite maxima clamp to the axis top.
"""

from __future__ import annotations

import math

from repro.display.elevation import ElevationMap
from repro.render.canvas import Canvas

__all__ = [
    "render_elevation_map",
    "render_slider_bar",
    "render_window_frame",
]

_BAR_COLOR = (90, 120, 170)
_BAR_UNDERSIDE = (170, 120, 90)
_AXIS = (60, 60, 60)
_CONTROL = (200, 40, 40)
_LABEL = (20, 20, 20)
_TRACK = (210, 210, 210)
_HANDLE = (90, 120, 170)


def _axis_position(elevation: float, max_elevation: float, height: int) -> float:
    """Map an elevation to a y pixel (0 elevation at the bottom).

    Square-root scaling; elevations clamp to [0, max_elevation].
    Undersides (negative elevations) clamp to the baseline.
    """
    clamped = min(max(elevation, 0.0), max_elevation)
    fraction = math.sqrt(clamped / max_elevation) if max_elevation > 0 else 0.0
    return (height - 1) * (1.0 - fraction)


def render_elevation_map(
    elevation_map: ElevationMap,
    current_elevation: float,
    width: int = 120,
    height: int = 160,
) -> Canvas:
    """Draw the elevation-map widget for a composite (§6.1)."""
    canvas = Canvas(width, height)
    bars = elevation_map.bars()
    label_h = 10
    plot_h = height - label_h * max(1, len(bars)) - 4
    plot_h = max(plot_h, 24)

    finite_maxima = [
        bar.range.maximum for bar in bars if math.isfinite(bar.range.maximum)
    ]
    top = max(
        [current_elevation * 2.0, 10.0]
        + [value * 1.2 for value in finite_maxima]
    )

    # Axis.
    canvas.draw_line(4, 2, 4, plot_h + 2, _AXIS)
    canvas.draw_line(4, plot_h + 2, width - 4, plot_h + 2, _AXIS)

    if bars:
        slot = (width - 16) / len(bars)
        for order, bar in enumerate(bars):
            x0 = 8 + order * slot
            x1 = x0 + max(4.0, slot - 6)
            high = bar.range.maximum if math.isfinite(bar.range.maximum) else top
            y_top = _axis_position(high, top, plot_h) + 2
            y_bottom = _axis_position(max(bar.range.minimum, 0.0), top, plot_h) + 2
            color = _BAR_COLOR if bar.range.minimum >= 0 else _BAR_UNDERSIDE
            canvas.fill_rect(x0, y_top, x1, y_bottom, color)
            # Label, one row per bar beneath the plot.
            label = bar.name[:18]
            canvas.draw_text(6, plot_h + 5 + order * label_h, label, _LABEL)

    # The elevation control: a dashed line at the current elevation.
    control_y = _axis_position(current_elevation, top, plot_h) + 2
    x = 4
    while x < width - 4:
        canvas.draw_line(x, control_y, min(x + 4, width - 4), control_y, _CONTROL)
        x += 8
    return canvas


def render_slider_bar(
    dim: str,
    bounds: tuple[float, float],
    data_range: tuple[float, float],
    width: int = 240,
    height: int = 18,
) -> Canvas:
    """Draw one slider bar: the track is the data range, the filled span the
    currently visible [lo, hi] (§3)."""
    canvas = Canvas(width, height)
    track_x0 = 60
    track_x1 = width - 8
    mid_y = height // 2
    canvas.draw_text(2, mid_y - 4, dim[:9], _LABEL)
    canvas.fill_rect(track_x0, mid_y - 2, track_x1, mid_y + 2, _TRACK)

    data_low, data_high = data_range
    span = data_high - data_low
    if span <= 0:
        span = 1.0

    def to_x(value: float) -> float:
        clamped = min(max(value, data_low), data_high)
        return track_x0 + (track_x1 - track_x0) * (clamped - data_low) / span

    low = bounds[0] if math.isfinite(bounds[0]) else data_low
    high = bounds[1] if math.isfinite(bounds[1]) else data_high
    x_low = to_x(low)
    x_high = max(to_x(high), x_low + 2)
    canvas.fill_rect(x_low, mid_y - 4, x_high, mid_y + 4, _HANDLE)
    return canvas


def render_window_frame(window, cull: bool = True) -> Canvas:
    """Assemble a full canvas-window image: the rendered canvas, the
    elevation map on the right, and slider bars beneath (§3).

    ``window`` is a :class:`repro.ui.session.CanvasWindow`.  The data range
    for each slider bar comes from the visible composite's actual values.
    """
    content = window.render(cull=cull)
    viewer = window.viewer
    emap = window.elevation_map()

    member = None
    if viewer.is_group():
        names = viewer.member_names()
        member = names[window._elevation_map_member % len(names)]
    view = viewer.view(member) if not viewer.is_group() or member else None
    elevation = (view.elevation if view is not None
                 else viewer.view(member).elevation)

    map_width = 130
    map_canvas = render_elevation_map(
        emap, elevation, width=map_width, height=min(200, content.height)
    )

    composite = viewer._member_composite(member or viewer.member_names()[0])
    slider_dims = composite.slider_dims
    slider_h = 20
    total_w = content.width + map_width + 8
    total_h = content.height + 4 + slider_h * len(slider_dims) + 4

    frame = Canvas(total_w, total_h)
    frame.blit(content, 0, 0)
    frame.draw_rect(0, 0, content.width - 1, content.height - 1, _AXIS)
    frame.blit(map_canvas, content.width + 6, 0)

    current_view = viewer.view(member) if member or not viewer.is_group() \
        else None
    for pos, dim in enumerate(slider_dims):
        bounds = (current_view.slider_ranges.get(dim, (-math.inf, math.inf))
                  if current_view is not None else (-math.inf, math.inf))
        data_values = []
        for entry in composite.entries:
            if dim not in entry.relation.slider_dims:
                continue
            offset = entry.offset_for(dim)
            for row_view in entry.relation.views():
                location = entry.relation.location_of(row_view)
                index = 2 + entry.relation.slider_dims.index(dim)
                data_values.append(location[index] + offset)
        if data_values:
            data_range = (min(data_values), max(data_values))
        else:
            data_range = (0.0, 1.0)
        bar = render_slider_bar(dim, bounds, data_range,
                                width=content.width, height=slider_h - 2)
        frame.blit(bar, 0, content.height + 4 + pos * slider_h)
    return frame
