"""The program window: rendering the boxes-and-arrows diagram (§3).

"a program window, containing a boxes-and-arrows representation of a Tioga-2
program" — Figure 1's left half.  This module draws a program graph onto a
:class:`~repro.render.canvas.Canvas` using a layered (longest-path) layout,
and produces a textual listing for terminals.

The layout is deterministic: boxes are layered by their longest distance
from a source, ordered within a layer by id, and edges drawn as straight
segments with arrowheads.  Returned geometry (box rectangles) supports
click-to-select in a front end.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.dataflow.graph import Program
from repro.render.canvas import Canvas

__all__ = ["BoxGeometry", "layout_program", "render_program", "program_listing"]

_BOX_W = 108
_BOX_H = 34
_H_GAP = 36
_V_GAP = 22
_MARGIN = 16

_BOX_FILL = (235, 240, 248)
_BOX_EDGE = (60, 70, 90)
_ARROW = (90, 90, 90)
_TEXT = (20, 20, 20)


class BoxGeometry(NamedTuple):
    """Where one box sits in the program window."""

    box_id: int
    layer: int
    rect: tuple[int, int, int, int]  # x0, y0, x1, y1

    @property
    def center(self) -> tuple[float, float]:
        x0, y0, x1, y1 = self.rect
        return ((x0 + x1) / 2.0, (y0 + y1) / 2.0)


def _layers(program: Program) -> dict[int, int]:
    """Longest-path layering: sources at layer 0."""
    layer: dict[int, int] = {}
    for box_id in program.topological_order():
        incoming = program.edges_into(box_id)
        if not incoming:
            layer[box_id] = 0
        else:
            layer[box_id] = 1 + max(layer[edge.src_box] for edge in incoming)
    return layer


def layout_program(program: Program) -> tuple[list[BoxGeometry], int, int]:
    """Compute box geometry; returns (geometries, canvas_width, canvas_height)."""
    layer_of = _layers(program)
    columns: dict[int, list[int]] = {}
    for box_id, layer in layer_of.items():
        columns.setdefault(layer, []).append(box_id)
    for members in columns.values():
        members.sort()

    geometries: list[BoxGeometry] = []
    for layer, members in sorted(columns.items()):
        x0 = _MARGIN + layer * (_BOX_W + _H_GAP)
        for row, box_id in enumerate(members):
            y0 = _MARGIN + row * (_BOX_H + _V_GAP)
            geometries.append(
                BoxGeometry(box_id, layer, (x0, y0, x0 + _BOX_W, y0 + _BOX_H))
            )

    width = _MARGIN * 2 + max(
        (geo.rect[2] for geo in geometries), default=_BOX_W
    )
    height = _MARGIN + max((geo.rect[3] for geo in geometries), default=_BOX_H)
    return geometries, max(width, 160), max(height + _MARGIN, 120)


def _box_title(program: Program, box_id: int) -> str:
    box = program.box(box_id)
    title = box.label or box.type_name
    return title if len(title) <= 16 else title[:15] + "~"


def render_program(program: Program, canvas: Canvas | None = None) -> Canvas:
    """Draw the boxes-and-arrows diagram; returns the canvas."""
    geometries, width, height = layout_program(program)
    if canvas is None:
        canvas = Canvas(width, height)
    by_id = {geo.box_id: geo for geo in geometries}

    for edge in program.edges():
        src = by_id[edge.src_box]
        dst = by_id[edge.dst_box]
        x0 = src.rect[2]
        y0 = (src.rect[1] + src.rect[3]) / 2.0
        x1 = dst.rect[0]
        y1 = (dst.rect[1] + dst.rect[3]) / 2.0
        canvas.draw_line(x0, y0, x1, y1, _ARROW)
        # Arrowhead.
        canvas.draw_line(x1, y1, x1 - 6, y1 - 4, _ARROW)
        canvas.draw_line(x1, y1, x1 - 6, y1 + 4, _ARROW)

    for geo in geometries:
        x0, y0, x1, y1 = geo.rect
        canvas.fill_rect(x0, y0, x1, y1, _BOX_FILL)
        canvas.draw_rect(x0, y0, x1, y1, _BOX_EDGE)
        title = _box_title(program, geo.box_id)
        cx = (x0 + x1) / 2.0
        canvas.draw_text(cx - len(title) * 3, y0 + 5, title, _TEXT)
        ident = f"#{geo.box_id}"
        canvas.draw_text(cx - len(ident) * 3, y0 + 18, ident, (110, 110, 110))
    return canvas


def program_listing(program: Program) -> str:
    """A textual program window for terminals: boxes by layer, then edges."""
    layer_of = _layers(program)
    lines = [f"program {program.name!r} "
             f"({len(program)} boxes, {len(program.edges())} edges)"]
    by_layer: dict[int, list[int]] = {}
    for box_id, layer in layer_of.items():
        by_layer.setdefault(layer, []).append(box_id)
    for layer in sorted(by_layer):
        for box_id in sorted(by_layer[layer]):
            box = program.box(box_id)
            label = f" {box.label!r}" if box.label else ""
            interesting = {
                key: value
                for key, value in box.params.items()
                if value is not None and key not in ("component", "member")
            }
            params = f"  {interesting}" if interesting else ""
            lines.append(f"  [{layer}] #{box_id} {box.type_name}{label}{params}")
    for edge in program.edges():
        lines.append(f"  {edge}")
    return "\n".join(lines)
