"""Software rasterizer: framebuffer canvas, bitmap font, scene building."""

from repro.render.canvas import BLACK, WHITE, Canvas
from repro.render.font import CHAR_HEIGHT, CHAR_WIDTH, GLYPHS, glyph_rows
from repro.render.program_view import (
    BoxGeometry,
    layout_program,
    program_listing,
    render_program,
)
from repro.render.svg import SvgCanvas, render_svg
from repro.render.widgets import (
    render_elevation_map,
    render_slider_bar,
    render_window_frame,
)
from repro.render.scene import (
    MAX_WORMHOLE_DEPTH,
    CanvasDef,
    CanvasResolver,
    RenderedItem,
    SceneStats,
    ViewState,
    render_composite,
    render_group,
)

__all__ = [
    "BLACK",
    "BoxGeometry",
    "CHAR_HEIGHT",
    "CHAR_WIDTH",
    "Canvas",
    "CanvasDef",
    "CanvasResolver",
    "GLYPHS",
    "MAX_WORMHOLE_DEPTH",
    "RenderedItem",
    "SceneStats",
    "SvgCanvas",
    "ViewState",
    "WHITE",
    "glyph_rows",
    "layout_program",
    "program_listing",
    "render_composite",
    "render_program",
    "render_group",
    "render_elevation_map",
    "render_slider_bar",
    "render_svg",
    "render_window_frame",
]
