"""Synthetic North-America weather data (the paper's running example).

The paper's scenario: "The data is stored in two relations: Stations, which
contains a tuple describing each weather station, and Observations, which
contains all observations (e.g., date, time, conditions) from all stations.
The data covers all of North America and contains a great deal of information
besides temperature and precipitation." (§4)

We generate a deterministic substitute: the real Louisiana stations the
figures show (names and approximate coordinates), a configurable number of
additional stations across North America (so Restrict to Louisiana matters),
and per-station observation time series with latitude and seasonal structure
spanning years before and after 1990 (Figure 11's partition).  Temperatures
are °F, precipitation inches, altitudes feet — as a 1996 NOAA feed would be.
"""

from __future__ import annotations

import datetime as _dt
import math
import random

from repro.dbms.catalog import Database
from repro.dbms.relation import Table
from repro.dbms.tuples import Schema

__all__ = [
    "LOUISIANA_STATIONS",
    "STATIONS_SCHEMA",
    "OBSERVATIONS_SCHEMA",
    "build_stations_table",
    "build_observations_table",
    "build_weather_database",
]

# name, longitude, latitude, altitude (ft) — approximate real values.
LOUISIANA_STATIONS: list[tuple[str, float, float, float]] = [
    ("New Orleans", -90.07, 29.95, 7.0),
    ("Baton Rouge", -91.15, 30.45, 56.0),
    ("Shreveport", -93.75, 32.52, 141.0),
    ("Lafayette", -92.02, 30.22, 36.0),
    ("Lake Charles", -93.22, 30.23, 13.0),
    ("Monroe", -92.12, 32.51, 72.0),
    ("Alexandria", -92.45, 31.31, 79.0),
    ("Houma", -90.72, 29.60, 10.0),
    ("Slidell", -89.78, 30.28, 27.0),
    ("Natchitoches", -93.09, 31.76, 120.0),
    ("Ruston", -92.64, 32.52, 253.0),
    ("Hammond", -90.46, 30.50, 42.0),
    ("Morgan City", -91.21, 29.70, 5.0),
    ("Bogalusa", -89.85, 30.79, 103.0),
    ("Opelousas", -92.08, 30.53, 70.0),
    ("Bastrop", -91.91, 32.78, 128.0),
    ("Minden", -93.29, 32.62, 250.0),
    ("Crowley", -92.37, 30.21, 25.0),
]

_OTHER_STATES = (
    "TX", "MS", "AR", "AL", "FL", "GA", "TN", "OK", "NM", "AZ", "CA", "OR",
    "WA", "NV", "UT", "CO", "KS", "MO", "KY", "VA", "NC", "SC", "OH", "IN",
    "IL", "MI", "WI", "MN", "IA", "NE", "SD", "ND", "MT", "ID", "WY", "NY",
    "PA", "NJ", "MD", "ME", "VT", "NH", "MA", "CT", "RI", "WV", "DE",
)

STATIONS_SCHEMA = Schema(
    [
        ("station_id", "int"),
        ("name", "text"),
        ("state", "text"),
        ("longitude", "float"),
        ("latitude", "float"),
        ("altitude", "float"),
        ("established", "date"),
    ]
)

OBSERVATIONS_SCHEMA = Schema(
    [
        ("station_id", "int"),
        ("obs_date", "date"),
        ("temperature", "float"),
        ("precipitation", "float"),
        ("wind_speed", "float"),
        ("conditions", "text"),
    ]
)

_CONDITIONS = ("clear", "cloudy", "rain", "storm", "fog")


def build_stations_table(extra_stations: int = 60, seed: int = 7) -> Table:
    """The Stations relation: Louisiana's real stations plus synthetic ones
    spread across North America."""
    rng = random.Random(seed)
    table = Table("Stations", STATIONS_SCHEMA)
    rows = []
    station_id = 1
    for name, longitude, latitude, altitude in LOUISIANA_STATIONS:
        rows.append(
            {
                "station_id": station_id,
                "name": name,
                "state": "LA",
                "longitude": longitude,
                "latitude": latitude,
                "altitude": altitude,
                "established": _dt.date(1900 + rng.randrange(0, 70), 1, 1),
            }
        )
        station_id += 1
    for __ in range(extra_stations):
        state = rng.choice(_OTHER_STATES)
        longitude = rng.uniform(-124.5, -68.0)
        latitude = rng.uniform(25.5, 49.0)
        altitude = max(0.0, rng.gauss(800.0, 900.0))
        rows.append(
            {
                "station_id": station_id,
                "name": f"Station {station_id:03d} {state}",
                "state": state,
                "longitude": round(longitude, 2),
                "latitude": round(latitude, 2),
                "altitude": round(altitude, 1),
                "established": _dt.date(1900 + rng.randrange(0, 80), 1, 1),
            }
        )
        station_id += 1
    table.insert_many(rows)
    return table


def _temperature(latitude: float, day_of_year: int, rng: random.Random) -> float:
    """°F with latitude gradient, seasonal swing, and noise."""
    base = 95.0 - 1.4 * latitude
    seasonal = 22.0 * math.sin(2.0 * math.pi * (day_of_year - 105) / 365.25)
    return round(base + seasonal + rng.gauss(0.0, 4.0), 1)


def _precipitation(latitude: float, day_of_year: int, rng: random.Random) -> float:
    """Inches per observation period; wetter in summer, never negative."""
    base = 0.12 + max(0.0, (35.0 - latitude)) * 0.015
    seasonal = 0.08 * (1.0 + math.sin(2.0 * math.pi * (day_of_year - 160) / 365.25))
    raw = rng.expovariate(1.0 / (base + seasonal))
    return round(min(raw, 8.0), 2)


def build_observations_table(
    stations: Table,
    start_year: int = 1985,
    end_year: int = 1995,
    every_days: int = 14,
    seed: int = 11,
) -> Table:
    """The Observations relation: a time series per station.

    ``every_days`` controls density (14 ≈ fortnightly).  The span straddles
    1990 so Figure 11's ``year < 1990`` / ``year >= 1990`` partition is
    non-trivial.
    """
    rng = random.Random(seed)
    table = Table("Observations", OBSERVATIONS_SCHEMA)
    start = _dt.date(start_year, 1, 1)
    end = _dt.date(end_year, 12, 31)
    step = _dt.timedelta(days=every_days)
    rows = []
    for station in stations:
        latitude = station["latitude"]
        current = start
        while current <= end:
            day_of_year = current.timetuple().tm_yday
            precipitation = _precipitation(latitude, day_of_year, rng)
            rows.append(
                {
                    "station_id": station["station_id"],
                    "obs_date": current,
                    "temperature": _temperature(latitude, day_of_year, rng),
                    "precipitation": precipitation,
                    "wind_speed": round(abs(rng.gauss(8.0, 5.0)), 1),
                    "conditions": (
                        "rain" if precipitation > 0.5 else rng.choice(_CONDITIONS)
                    ),
                }
            )
            current += step
    table.insert_many(rows)
    return table


def build_weather_database(
    extra_stations: int = 60,
    start_year: int = 1985,
    end_year: int = 1995,
    every_days: int = 14,
    seed: int = 7,
    include_map: bool = True,
) -> Database:
    """The full example database: Stations, Observations, and the state map."""
    db = Database("weather")
    stations = build_stations_table(extra_stations, seed)
    db.add_table(stations)
    db.add_table(
        build_observations_table(stations, start_year, end_year, every_days, seed + 4)
    )
    if include_map:
        from repro.data.geography import build_louisiana_map_table

        db.add_table(build_louisiana_map_table())
    return db
