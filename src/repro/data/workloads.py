"""Scalable synthetic workloads for the performance benchmarks.

The figure scenarios use the weather data; the Perf-* experiments need
size-swept inputs.  Everything is seeded and deterministic.
"""

from __future__ import annotations

import random

from repro.dbms.catalog import Database
from repro.dbms.relation import Table
from repro.dbms.tuples import Schema

__all__ = [
    "POINTS_SCHEMA",
    "build_points_table",
    "build_pairs_tables",
    "build_points_database",
]

POINTS_SCHEMA = Schema(
    [
        ("point_id", "int"),
        ("x_pos", "float"),
        ("y_pos", "float"),
        ("value", "float"),
        ("category", "text"),
    ]
)

_CATEGORIES = ("alpha", "beta", "gamma", "delta")


def build_points_table(
    name: str, count: int, seed: int = 3, spread: float = 1000.0
) -> Table:
    """``count`` random points in a ``spread``-wide square with a value."""
    rng = random.Random(seed)
    table = Table(name, POINTS_SCHEMA)
    table.insert_many(
        {
            "point_id": index + 1,
            "x_pos": rng.uniform(-spread / 2, spread / 2),
            "y_pos": rng.uniform(-spread / 2, spread / 2),
            "value": rng.uniform(0.0, 100.0),
            "category": rng.choice(_CATEGORIES),
        }
        for index in range(count)
    )
    return table


def build_pairs_tables(
    left_count: int, right_per_left: int, seed: int = 5
) -> tuple[Table, Table]:
    """A 1:N pair of tables for join benchmarks (think Stations/Observations)."""
    rng = random.Random(seed)
    left = Table(
        "Left", Schema([("key", "int"), ("payload", "float")])
    )
    left.insert_many(
        {"key": index + 1, "payload": rng.uniform(0, 1)} for index in range(left_count)
    )
    right = Table(
        "Right", Schema([("ref", "int"), ("measure", "float")])
    )
    right.insert_many(
        {"ref": rng.randrange(1, left_count + 1), "measure": rng.uniform(0, 1)}
        for __ in range(left_count * right_per_left)
    )
    return left, right


def build_points_database(count: int, seed: int = 3) -> Database:
    """A database holding one Points table of the given size."""
    db = Database("points")
    db.add_table(build_points_table("Points", count, seed))
    return db
