"""Deterministic synthetic data: the weather example and benchmark workloads."""

from repro.data.geography import (
    LOUISIANA_OUTLINE,
    MAP_SCHEMA,
    build_louisiana_map_table,
    outline_to_segments,
)
from repro.data.weather import (
    LOUISIANA_STATIONS,
    OBSERVATIONS_SCHEMA,
    STATIONS_SCHEMA,
    build_observations_table,
    build_stations_table,
    build_weather_database,
)
from repro.data.workloads import (
    POINTS_SCHEMA,
    build_pairs_tables,
    build_points_database,
    build_points_table,
)

__all__ = [
    "LOUISIANA_OUTLINE",
    "LOUISIANA_STATIONS",
    "MAP_SCHEMA",
    "OBSERVATIONS_SCHEMA",
    "POINTS_SCHEMA",
    "STATIONS_SCHEMA",
    "build_louisiana_map_table",
    "build_observations_table",
    "build_pairs_tables",
    "build_points_database",
    "build_points_table",
    "build_stations_table",
    "build_weather_database",
    "outline_to_segments",
]
