"""Map geometry: the Louisiana state outline as a relation of line segments.

Figure 7 overlays the station scatter with "a map of Louisiana ... derived
from a relation of lines defining the map".  Each tuple is one border
segment: a start point (longitude, latitude) and a delta to the end point,
displayable with the ``line_to`` world-unit drawable.  The outline is a
simplified tracing of the real border (fidelity is cosmetic; the overlay
mechanism is what the reproduction exercises).
"""

from __future__ import annotations

from repro.dbms.relation import Table
from repro.dbms.tuples import Schema

__all__ = [
    "LOUISIANA_OUTLINE",
    "MAP_SCHEMA",
    "build_louisiana_map_table",
    "outline_to_segments",
]

# Simplified Louisiana border, (longitude, latitude), drawn clockwise from
# the northwest corner.  Closed implicitly (last point joins the first).
LOUISIANA_OUTLINE: list[tuple[float, float]] = [
    (-94.04, 33.02),  # NW corner
    (-91.17, 33.00),  # north border east along 33°N
    (-91.10, 32.50),  # Mississippi river southward
    (-90.95, 32.05),
    (-91.35, 31.60),
    (-91.50, 31.20),
    (-91.60, 31.00),  # 31°N west of the river
    (-89.73, 31.00),  # east along 31°N
    (-89.83, 30.65),  # Pearl river south
    (-89.62, 30.18),
    (-89.20, 30.05),  # coastal east tip
    (-89.40, 29.40),  # delta
    (-89.10, 29.00),
    (-89.90, 29.20),
    (-90.60, 29.10),
    (-91.30, 29.50),
    (-91.85, 29.70),
    (-92.60, 29.55),
    (-93.30, 29.75),
    (-93.85, 29.70),  # SW coast
    (-93.72, 30.05),  # Sabine river north
    (-93.70, 30.60),
    (-93.55, 31.10),
    (-93.82, 31.60),
    (-94.04, 31.99),  # TX corner
]

MAP_SCHEMA = Schema(
    [
        ("segment_id", "int"),
        ("lon0", "float"),
        ("lat0", "float"),
        ("dlon", "float"),
        ("dlat", "float"),
    ]
)


def outline_to_segments(
    outline: list[tuple[float, float]],
) -> list[dict[str, float]]:
    """Close an outline polygon into per-segment rows."""
    segments = []
    count = len(outline)
    for index in range(count):
        lon0, lat0 = outline[index]
        lon1, lat1 = outline[(index + 1) % count]
        segments.append(
            {
                "segment_id": index + 1,
                "lon0": lon0,
                "lat0": lat0,
                "dlon": round(lon1 - lon0, 4),
                "dlat": round(lat1 - lat0, 4),
            }
        )
    return segments


def build_louisiana_map_table(name: str = "LouisianaMap") -> Table:
    """The map relation Figure 7 overlays under the stations."""
    table = Table(name, MAP_SCHEMA)
    table.insert_many(outline_to_segments(LOUISIANA_OUTLINE))
    return table
