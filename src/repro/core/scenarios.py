"""The paper's figures as executable scenarios.

Every screenshot figure in the paper (1, 4, 7, 8, 9, 10, 11) is reproduced
here as a builder that constructs the corresponding boxes-and-arrows program
in a fresh :class:`~repro.ui.session.Session` over the synthetic weather
database, exactly following the operations the paper narrates.  Examples run
them for humans; tests assert their semantic content; benchmarks time them.

Each builder returns a :class:`Scenario`: the session plus the ids of the
interesting boxes and canvas names.
"""

from __future__ import annotations

from typing import Any

from repro.dbms.catalog import Database
from repro.ui.session import CanvasWindow, Session

__all__ = [
    "Scenario",
    "FIGURES",
    "build_fig1_table_view",
    "build_fig4_station_map",
    "station_map_pipeline",
    "build_fig7_overlay",
    "temperature_series_pipeline",
    "build_fig8_wormholes",
    "build_fig9_magnifier",
    "build_fig10_stitch",
    "build_fig11_replicate",
]

# Elevation (world units per viewport width) conventions for the map canvas:
# Louisiana spans about 5 degrees of longitude, so elevation ~6 frames the
# state; names become legible only when zoomed beneath NAME_MAX_ELEVATION.
STATE_ELEVATION = 6.0
NAME_MAX_ELEVATION = 12.0
LOUISIANA_CENTER = (-91.8, 31.0)

# Layout of the temperature/precipitation time-series canvas: one horizontal
# band per station, x = days since the start of the data.
BAND_HEIGHT = 60.0
SERIES_X_SCALE = 0.1  # world x units per day: 11 years ≈ 400 wide


class Scenario:
    """A built scenario: the session plus named points of interest."""

    def __init__(self, session: Session, **named: Any):
        self.session = session
        self.named = named

    def __getitem__(self, key: str) -> Any:
        return self.named[key]

    def window(self, key: str = "window") -> CanvasWindow:
        return self.named[key]

    def __repr__(self) -> str:
        return f"Scenario({sorted(self.named)})"


# ---------------------------------------------------------------------------
# Figure 1: the program window and the default table view
# ---------------------------------------------------------------------------


def build_fig1_table_view(db: Database) -> Scenario:
    """Figure 1: Stations → Restrict (Louisiana) → Project → default viewer.

    "Beginning with the Stations box, the user incrementally adds boxes to
    perform standard database operations such as restricting the data to
    tuples satisfying a predicate (e.g., stations in Louisiana) and
    projecting out unneeded fields (e.g., date of construction). ... The last
    box is a viewer, which in this case displays data using a default
    two-dimensional table format."
    """
    session = Session(db, "fig1-louisiana-table")
    stations = session.add_table("Stations")
    restrict = session.add_box("Restrict", {"predicate": "state = 'LA'"})
    session.connect(stations, "out", restrict, "in")
    project = session.add_box(
        "Project", {"fields": ["name", "longitude", "latitude", "altitude"]}
    )
    session.connect(restrict, "out", project, "in")
    window = session.add_viewer(project, name="table", width=640, height=360)
    # The default display is the terminal-monitor listing: x = 0, y = tuple
    # sequence; frame the first rows.
    session.pan_to(window.name, 220.0, -8.0)
    session.set_elevation(window.name, 480.0)
    return Scenario(
        session,
        stations=stations,
        restrict=restrict,
        project=project,
        window=window,
    )


# ---------------------------------------------------------------------------
# Figure 4: the station scatter map
# ---------------------------------------------------------------------------


def station_map_pipeline(
    session: Session,
    with_names: bool = True,
    name_range: tuple[float, float] | None = None,
) -> int:
    """The Figure-4 pipeline: restrict to Louisiana, map (longitude,
    latitude) → (x, y), circle + name display, Altitude slider dimension.

    Returns the id of the last box.  ``name_range`` optionally applies the
    Figure-7 Set Range so the display is only defined at low elevations.
    """
    stations = session.add_table("Stations")
    restrict = session.add_box("Restrict", {"predicate": "state = 'LA'"})
    session.connect(stations, "out", restrict, "in")
    set_x = session.add_box("SetAttribute", {"name": "x", "definition": "longitude"})
    session.connect(restrict, "out", set_x, "in")
    set_y = session.add_box("SetAttribute", {"name": "y", "definition": "latitude"})
    session.connect(set_x, "out", set_y, "in")
    if with_names:
        display = (
            "combine(circle(4, 'blue'), offset(text_of(name), 0, -10))"
        )
    else:
        display = "filled_circle(3, 'blue')"
    set_display = session.add_box(
        "SetAttribute", {"name": "display", "definition": display}
    )
    session.connect(set_y, "out", set_display, "in")
    add_altitude = session.add_box(
        "AddAttribute",
        {"name": "Altitude", "definition": "altitude", "location": True},
    )
    session.connect(set_display, "out", add_altitude, "in")
    last = add_altitude
    if name_range is not None:
        set_range = session.add_box(
            "SetRange", {"minimum": name_range[0], "maximum": name_range[1]}
        )
        session.connect(last, "out", set_range, "in")
        last = set_range
    return last


def build_fig4_station_map(db: Database) -> Scenario:
    """Figure 4: circle + station name at each (longitude, latitude), with an
    Altitude slider dimension."""
    session = Session(db, "fig4-station-map")
    tail = station_map_pipeline(session)
    window = session.add_viewer(tail, name="stations", width=640, height=480)
    session.pan_to(window.name, *LOUISIANA_CENTER)
    session.set_elevation(window.name, STATE_ELEVATION)
    return Scenario(session, tail=tail, window=window)


# ---------------------------------------------------------------------------
# Figure 7: overlays with restricted elevation ranges (drill down in place)
# ---------------------------------------------------------------------------


def _map_pipeline(session: Session) -> int:
    """The Louisiana border as a 2-D relation of line segments."""
    map_table = session.add_table("LouisianaMap")
    set_x = session.add_box("SetAttribute", {"name": "x", "definition": "lon0"})
    session.connect(map_table, "out", set_x, "in")
    set_y = session.add_box("SetAttribute", {"name": "y", "definition": "lat0"})
    session.connect(set_x, "out", set_y, "in")
    set_display = session.add_box(
        "SetAttribute",
        {"name": "display", "definition": "line_to(dlon, dlat, 'darkgray')"},
    )
    session.connect(set_y, "out", set_display, "in")
    return set_display


def build_fig7_overlay(db: Database) -> Scenario:
    """Figure 7: state map ∪ circles-everywhere ∪ names-only-at-low-elevation.

    "a third display is overlaid to give less detail at higher elevations ...
    The ranges of the two weather station displays are set so that station
    names disappear at high elevations, where they would be illegible."  The
    2-D map is invariant under the Altitude slider (§6.1's dimension-mismatch
    rule).
    """
    session = Session(db, "fig7-overlay")
    map_tail = _map_pipeline(session)
    # Detailed display (circle + name), defined only below NAME_MAX_ELEVATION.
    detailed = station_map_pipeline(
        session, with_names=True, name_range=(0.0, NAME_MAX_ELEVATION)
    )
    # Coarse display (circle only), defined at all elevations.
    coarse = station_map_pipeline(session, with_names=False)
    overlay_low = session.add_box("Overlay")
    session.connect(map_tail, "out", overlay_low, "base")
    session.connect(coarse, "out", overlay_low, "top")
    overlay_high = session.add_box("Overlay")
    session.connect(overlay_low, "out", overlay_high, "base")
    session.connect(detailed, "out", overlay_high, "top")
    window = session.add_viewer(overlay_high, name="map", width=640, height=480)
    session.pan_to(window.name, *LOUISIANA_CENTER)
    session.set_elevation(window.name, STATE_ELEVATION)
    return Scenario(
        session,
        map_tail=map_tail,
        detailed=detailed,
        coarse=coarse,
        overlay=overlay_high,
        window=window,
    )


# ---------------------------------------------------------------------------
# Figure 8: wormholes to a time-series canvas, plus the rear view mirror
# ---------------------------------------------------------------------------


def temperature_series_pipeline(
    session: Session,
    value_field: str = "temperature",
    color: str = "red",
    value_scale: float = 0.4,
) -> int:
    """Observations ⋈ Stations for Louisiana as a banded time-series relation.

    x = days since 1985-01-01 (scaled), y = station band + scaled value; one
    horizontal band of data per station so a wormhole can land on station s.
    """
    observations = session.add_table("Observations")
    stations = session.add_table("Stations")
    la_only = session.add_box("Restrict", {"predicate": "state = 'LA'"})
    session.connect(stations, "out", la_only, "in")
    join = session.add_box(
        "Join", {"left_key": "station_id", "right_key": "station_id"}
    )
    session.connect(observations, "out", join, "left")
    session.connect(la_only, "out", join, "right")
    set_x = session.add_box(
        "SetAttribute",
        {
            "name": "x",
            "definition": (
                f"((year(obs_date) - 1985) * 365 + day_of_year(obs_date)) "
                f"* {SERIES_X_SCALE}"
            ),
        },
    )
    session.connect(join, "out", set_x, "in")
    set_y = session.add_box(
        "SetAttribute",
        {
            "name": "y",
            "definition": (
                f"station_id * {BAND_HEIGHT} + {value_field} * {value_scale}"
            ),
        },
    )
    session.connect(set_x, "out", set_y, "in")
    set_display = session.add_box(
        "SetAttribute",
        {"name": "display", "definition": f"filled_circle(1, '{color}')"},
    )
    session.connect(set_y, "out", set_display, "in")
    return set_display


def band_center(station_id: int) -> tuple[float, float]:
    """Where station ``station_id``'s band sits on the series canvas."""
    # 11 years of data; x midpoint ≈ 5.5 years in scaled units.
    mid_x = 5.5 * 365 * SERIES_X_SCALE
    return (mid_x, station_id * BAND_HEIGHT + 25.0)


def build_fig8_wormholes(db: Database) -> Scenario:
    """Figure 8: zooming into a station reveals a wormhole to its temperature
    time series; traversal populates the rear view mirror.

    "Upon zooming into an individual station s, a wormhole appears (achieved
    by a combination of modifying display functions and overlaying and
    setting ranges) that takes the user to a canvas displaying temperature
    data for each station as a function of time.  The user is initially
    positioned viewing the data for station s."
    """
    session = Session(db, "fig8-wormholes")

    # The destination canvas: temperature vs time for every LA station.
    series_tail = temperature_series_pipeline(session)
    series_window = session.add_viewer(
        series_tail, name="tempseries", width=640, height=480,
    )
    session.set_elevation(series_window.name, 200.0)

    # The map canvas of Figure 7, plus a wormhole display defined only at
    # very low elevations (it "appears upon zooming in").
    map_tail = _map_pipeline(session)
    coarse = station_map_pipeline(session, with_names=False)
    detailed = station_map_pipeline(
        session, with_names=True, name_range=(2.0, NAME_MAX_ELEVATION)
    )
    wormholes = station_map_pipeline(session, with_names=False)
    mid_x, __ = band_center(0)
    set_wormhole = session.add_box(
        "SetAttribute",
        {
            "name": "display",
            "definition": (
                "combine("
                "wormhole('tempseries', 120, 80, 60, "
                f"{mid_x}, station_id * {BAND_HEIGHT} + 25.0), "
                "offset(text_of(name), 0, -50))"
            ),
        },
    )
    session.connect(wormholes, "out", set_wormhole, "in")
    wormhole_range = session.add_box("SetRange", {"minimum": 0.0, "maximum": 2.0})
    session.connect(set_wormhole, "out", wormhole_range, "in")

    overlay1 = session.add_box("Overlay")
    session.connect(map_tail, "out", overlay1, "base")
    session.connect(coarse, "out", overlay1, "top")
    overlay2 = session.add_box("Overlay")
    session.connect(overlay1, "out", overlay2, "base")
    session.connect(detailed, "out", overlay2, "top")
    overlay3 = session.add_box("Overlay")
    session.connect(overlay2, "out", overlay3, "base")
    session.connect(wormhole_range, "out", overlay3, "top")

    # The underside of the map canvas (§6.3): return wormholes at each
    # station, visible only in the rear view mirror after passing through —
    # "a natural use of the rear view mirror is to illuminate the wormholes
    # back to the canvas from which the user came."
    underside = station_map_pipeline(session, with_names=False)
    set_return = session.add_box(
        "SetAttribute",
        {
            "name": "display",
            "definition": (
                f"combine(wormhole('map', 90, 60, {STATE_ELEVATION}, "
                "longitude, latitude), offset(text_of(name), 0, -40))"
            ),
        },
    )
    session.connect(underside, "out", set_return, "in")
    underside_range = session.add_box(
        "SetRange", {"minimum": -1e9, "maximum": -1e-9}
    )
    session.connect(set_return, "out", underside_range, "in")
    overlay4 = session.add_box("Overlay")
    session.connect(overlay3, "out", overlay4, "base")
    session.connect(underside_range, "out", overlay4, "top")

    map_window = session.add_viewer(overlay4, name="map", width=640, height=480)
    session.pan_to(map_window.name, *LOUISIANA_CENTER)
    session.set_elevation(map_window.name, STATE_ELEVATION)
    session.navigator.set_current("map")
    return Scenario(
        session,
        map_window=map_window,
        series_window=series_window,
        overlay=overlay4,
        series_tail=series_tail,
    )


# ---------------------------------------------------------------------------
# Figure 9: magnifying glass with an alternative display attribute
# ---------------------------------------------------------------------------


def build_fig9_magnifier(db: Database) -> Scenario:
    """Figure 9: a temperature-vs-time display with a magnifying glass whose
    inner viewer shows the precipitation alternative display.

    "An alternative display attribute shows precipitation vs. time ... the
    magnifying glass is realized by making the precipitation display the
    display attribute (done by the Swap Attribute box) and then viewing the
    resulting relation."
    """
    session = Session(db, "fig9-magnifier")
    series_tail = temperature_series_pipeline(session)
    # Add the alternative displays: precip display + precip y location.
    alt_display = session.add_box(
        "AddAttribute",
        {
            "name": "precip_display",
            "definition": "filled_circle(1, 'green')",
            "declared_type": "drawables",
        },
    )
    session.connect(series_tail, "out", alt_display, "in")
    alt_y = session.add_box(
        "AddAttribute",
        {
            "name": "precip_y",
            "definition": f"station_id * {BAND_HEIGHT} + precipitation * 10",
        },
    )
    session.connect(alt_display, "out", alt_y, "in")
    # The T lets both the main viewer and the magnifier branch consume the
    # relation (§4.1).
    tee = session.add_box("T", {"kind": "R"})
    session.connect(alt_y, "out", tee, "in")
    # The magnifier branch swaps display <-> precip_display and y <-> precip_y.
    swap_display = session.add_box(
        "SwapAttributes", {"first": "display", "second": "precip_display"}
    )
    session.connect(tee, "out2", swap_display, "in")
    swap_y = session.add_box(
        "SwapAttributes", {"first": "y", "second": "precip_y"}
    )
    session.connect(swap_display, "out", swap_y, "in")

    window = session.add_viewer(tee, src_port="out1", name="temperature",
                                width=640, height=480)
    new_orleans = band_center(1)
    session.pan_to(window.name, *new_orleans)
    session.set_elevation(window.name, 80.0)
    glass = window.add_magnifier(
        rect=(400.0, 160.0, 180.0, 140.0),
        magnification=4.0,
        source=lambda: session.engine.output_of(swap_y, "out"),
    )
    return Scenario(
        session,
        window=window,
        glass=glass,
        swap_tail=swap_y,
        tee=tee,
    )


# ---------------------------------------------------------------------------
# Figure 10: stitched temperature and precipitation viewers, slaved
# ---------------------------------------------------------------------------


def build_fig10_stitch(db: Database) -> Scenario:
    """Figure 10: temperature-vs-time stitched to precipitation-vs-time, with
    the precipitation display slaved to the temperature display.

    "whenever the user changes the date range under temperature, the
    precipitation display changes to display the same date range."
    """
    session = Session(db, "fig10-stitch")
    temperature = temperature_series_pipeline(
        session, value_field="temperature", color="red"
    )
    precipitation = temperature_series_pipeline(
        session, value_field="precipitation", color="green", value_scale=10.0
    )
    stitch = session.add_box(
        "Stitch",
        {"arity": 2, "layout": "horizontal",
         "names": ["temperature", "precipitation"]},
    )
    session.connect(temperature, "out", stitch, "c1")
    session.connect(precipitation, "out", stitch, "c2")
    window = session.add_viewer(stitch, name="stitched", width=800, height=400)
    start = band_center(1)
    session.pan_to(window.name, *start, member="temperature")
    session.set_elevation(window.name, 60.0, member="temperature")
    session.pan_to(window.name, *start, member="precipitation")
    session.set_elevation(window.name, 60.0, member="precipitation")
    link = session.slaving.slave(
        window.viewer, window.viewer,
        a_member="temperature", b_member="precipitation",
    )
    return Scenario(session, window=window, stitch=stitch, link=link)


# ---------------------------------------------------------------------------
# Figure 11: replication by partition
# ---------------------------------------------------------------------------


def build_fig11_replicate(db: Database) -> Scenario:
    """Figure 11: the temperature display replicated into records before 1990
    and from 1990 on.

    "a viewer showing temperature vs. time and precipitation vs. time has
    been replicated to show records for years prior to 1990 and after 1990
    separately."  The replicate goes through the overload machinery: the
    user names the relation inside the displayable the partition applies to.
    """
    session = Session(db, "fig11-replicate")
    temperature = temperature_series_pipeline(
        session, value_field="temperature", color="red"
    )
    replicate = session.add_box(
        "Replicate",
        {
            "predicates": ["year(obs_date) < 1990", "year(obs_date) >= 1990"],
            "layout": "horizontal",
        },
    )
    session.connect(temperature, "out", replicate, "in")
    window = session.add_viewer(replicate, name="replicated", width=800, height=400)
    early_center = (2.5 * 365 * SERIES_X_SCALE, band_center(1)[1])
    late_center = (8.0 * 365 * SERIES_X_SCALE, band_center(1)[1])
    session.pan_to(window.name, *early_center, member="part1")
    session.set_elevation(window.name, 60.0, member="part1")
    session.pan_to(window.name, *late_center, member="part2")
    session.set_elevation(window.name, 60.0, member="part2")
    return Scenario(session, window=window, replicate=replicate,
                    temperature=temperature)


#: The figure scenarios by CLI/server name — the shared registry behind
#: ``repro.cli`` figure flags and the server's hosted program catalog.
FIGURES: dict[str, Any] = {
    "fig1": build_fig1_table_view,
    "fig4": build_fig4_station_map,
    "fig7": build_fig7_overlay,
    "fig8": build_fig8_wormholes,
    "fig9": build_fig9_magnifier,
    "fig10": build_fig10_stitch,
    "fig11": build_fig11_replicate,
}
