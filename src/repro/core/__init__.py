"""The Tioga-2 environment facade: sessions, scenarios, and the public API.

Most applications need only::

    from repro.core import Session, build_weather_database

    db = build_weather_database()
    session = Session(db)
    stations = session.add_table("Stations")
    ...

The figure scenarios reproduce the paper's running example end to end.
"""

from repro.core.scenarios import (
    Scenario,
    band_center,
    build_fig1_table_view,
    build_fig4_station_map,
    build_fig7_overlay,
    build_fig8_wormholes,
    build_fig9_magnifier,
    build_fig10_stitch,
    build_fig11_replicate,
    station_map_pipeline,
    temperature_series_pipeline,
)
from repro.data.weather import build_weather_database
from repro.dbms.catalog import Database
from repro.ui.session import CanvasWindow, Session

__all__ = [
    "CanvasWindow",
    "Database",
    "Scenario",
    "Session",
    "band_center",
    "build_fig1_table_view",
    "build_fig4_station_map",
    "build_fig7_overlay",
    "build_fig8_wormholes",
    "build_fig9_magnifier",
    "build_fig10_stitch",
    "build_fig11_replicate",
    "build_weather_database",
    "station_map_pipeline",
    "temperature_series_pipeline",
]
