"""Exception hierarchy for the Tioga-2 reproduction.

Every user-facing failure raises a subclass of :class:`TiogaError` with a
message precise enough to act on.  The hierarchy mirrors the subsystems: the
DBMS substrate, the expression language, the dataflow graph, displayables,
viewers, and the UI session.
"""

from __future__ import annotations


class TiogaError(Exception):
    """Base class for all errors raised by this library.

    Errors that the static analyzer can also detect carry an optional
    ``diagnostic`` attribute (a :class:`repro.analyze.Diagnostic`) so the
    same failure is reportable with a stable code whether it surfaces as an
    exception or through ``repro lint``.
    """

    def __init__(self, *args, diagnostic=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.diagnostic = diagnostic


class SchemaError(TiogaError):
    """A schema is malformed or a field reference does not resolve."""


class TypeCheckError(TiogaError):
    """A value, expression, or dataflow edge fails static type checking.

    The paper (Section 2): "Any attempt to connect an output to an input of
    incompatible type is a type error."
    """


class ExpressionError(TiogaError):
    """An expression in the query language is syntactically or semantically bad.

    Parse failures carry the source text, the character offset, and the
    offending token text (``source``/``pos``/``token``) so diagnostics can
    point at the exact span.
    """

    def __init__(self, *args, source=None, pos=None, token=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.source = source
        self.pos = pos
        self.token = token


class EvaluationError(TiogaError):
    """A well-typed expression failed at evaluation time (e.g. division by zero)."""


class CatalogError(TiogaError):
    """A catalog lookup failed: unknown table, function, box, or program."""


class GraphError(TiogaError):
    """An illegal edit of the boxes-and-arrows diagram.

    Covers dangling-input deletions (Section 4.1), connecting ports that do
    not exist, cycles, and firing boxes with missing inputs.
    """


class DisplayError(TiogaError):
    """A displayable is malformed: missing x/y/display, dimension mismatch, etc."""


class ViewerError(TiogaError):
    """An illegal viewer operation: bad slider, slaving dimension mismatch, etc."""


class UpdateError(TiogaError):
    """A database update initiated from the screen could not be applied."""


class UIError(TiogaError):
    """An illegal UI session operation (bad undo, unknown window, ...)."""


class ObservabilityError(TiogaError):
    """A misuse of the tracing/metrics subsystem: conflicting metric kinds,
    malformed histogram buckets, or reading an empty histogram."""


class StaticAnalysisError(TiogaError):
    """Static analysis found errors that block execution.

    Raised by the engine's pre-flight check and the plan verifier.  The
    ``report`` attribute (when set) is the full :class:`repro.analyze.Report`.
    """

    def __init__(self, *args, report=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.report = report
