"""Command-line interface: inspect databases, run programs, render figures.

::

    python -m repro.cli init-weather --out weather.json   # write a demo DB
    python -m repro.cli tables --db weather.json          # the tables menu
    python -m repro.cli programs --db weather.json        # saved programs
    python -m repro.cli show-program --db db.json --name viz [--out p.ppm]
    python -m repro.cli run-program --db db.json --name viz --out-dir frames/
    python -m repro.cli figures --out-dir figures/ [--which fig4,fig7]
    python -m repro.cli query --db db.json --table T --where "x > 1" [--limit N]
    python -m repro.cli lint [--figure fig4 | --db db.json --name viz] [--json]
    python -m repro.cli trace fig4                        # Chrome trace_event
    python -m repro.cli stats --figure fig4 [--json]      # metrics snapshot
    python -m repro.cli why --figure fig4 --px 504 --py 352   # why-provenance
    python -m repro.cli bench-diff baselines/BENCH_parallel.json BENCH_parallel.json
    python -m repro.cli dashboard --out-dir dash/         # self-hosted telemetry

``lint`` runs the static program checker (``repro.analyze``) over a saved
program or the built-in figure scenarios (all of them by default) without
executing anything; it exits 1 when any error-severity diagnostic is found
(``--strict`` also fails on warnings).  ``lint --deep`` additionally runs
the abstract interpreter (``repro.analyze.absint``) over each program,
reporting dead predicates (``T2-W204``), statically empty results
(``T2-W205``), and hazard-impossibility proof notes (``T2-I301``).  The
diagnostic codes are cataloged in ``docs/STATIC_ANALYSIS.md``.

``trace`` renders a figure scenario (or a saved program) under an enabled
tracer with a cold engine cache and writes the spans as Chrome
``trace_event`` JSON — load it at ``chrome://tracing`` or in Perfetto to
see engine fires, plan-node execution, and render passes nested on one
timeline.  ``stats`` prints the run-summary dict (span rollups plus the
metrics registry) for a figure render; ``--check`` verifies the
process-wide metric declarations are conflict-free and ``--validate-bench``
schema-checks a ``BENCH_obs.json`` produced by the benchmark suite.
``lint --timing`` and ``explain --timing`` print a span-tree timing
breakdown of the analysis itself.  ``why`` renders a figure scenario,
picks the mark under a pixel, and walks its lineage back to the base-table
rows — a human provenance tree, or the ``repro.lineage/1`` document with
``--json`` (``--strict`` exits 1 when provenance is incomplete).  See
``docs/OBSERVABILITY.md``.

``bench-diff`` compares two ``BENCH_*.json`` files (routing on their schema
tag) and exits nonzero when any metric regresses past its threshold — the
perf-regression gate CI runs against ``benchmarks/baselines/``.
``dashboard`` records telemetry from a real figure render and renders the
self-hosted telemetry dashboard (``repro.obs.dashboard``) headless — the
reproduction visualizing its own engine; see ``docs/DASHBOARD.md``.

``run-program`` loads a saved boxes-and-arrows program, opens every viewer
box it contains, and renders each canvas to a PPM file — a headless batch
version of the interactive session.

The inspection subcommands (``lint``, ``explain``, ``stats``, ``trace``,
``render``) accept one uniform flag set from a shared parent parser:
``--json`` (machine-readable output), ``--timing`` (span-tree timing
breakdown of the run), ``--strict`` (exit nonzero on soft problems —
lint warnings, plan degradation notes, dropped trace spans, blank
canvases), ``--workers N`` (install a process-wide parallel
execution config; ``N <= 1`` forces fully serial, see
``docs/PARALLELISM.md``), and ``--columnar`` (install the vectorized
columnar backend as the process default; identical rows and pixels,
see ``docs/COLUMNAR.md``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import scenarios
from repro.data.weather import build_weather_database
from repro.dbms.algebra import limit as limit_rows
from repro.dbms.algebra import restrict_predicate
from repro.dbms.storage import load_database_file, save_database_file
from repro.display.defaults import default_field_texts
from repro.errors import TiogaError
from repro.ui.session import Session

__all__ = ["main", "build_parser"]

# The figure registry lives with the scenarios so the CLI and the server
# host the same catalog.
_FIGURES = scenarios.FIGURES


def _common_flags() -> argparse.ArgumentParser:
    """Shared parent parser for the inspection subcommands.

    ``lint``/``explain``/``stats``/``trace``/``render`` all inherit the
    same four flags instead of re-declaring per-command copies, so
    ``--json``/``--timing``/``--strict``/``--workers`` mean the same thing
    (and spell the same way) everywhere.
    """
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit machine-readable JSON instead of human-readable lines",
    )
    common.add_argument(
        "--timing", action="store_true",
        help="also print a span-tree timing breakdown of the run",
    )
    common.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on soft problems too (lint warnings, plan "
        "degradation notes, dropped trace spans, blank canvases)",
    )
    common.add_argument(
        "--workers", type=int, metavar="N",
        help="execute plans with N-way morsel parallelism and the shared "
        "result cache (N <= 1 forces fully serial execution)",
    )
    common.add_argument(
        "--columnar", action="store_true",
        help="execute eligible plan subtrees on the vectorized columnar "
        "backend (identical rows/pixels; see docs/COLUMNAR.md)",
    )
    return common


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tioga2",
        description="Tioga-2 reproduction: headless database visualization",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    common = _common_flags()

    init = commands.add_parser(
        "init-weather", help="write the synthetic weather database to JSON"
    )
    init.add_argument("--out", required=True, help="output JSON path")
    init.add_argument("--stations", type=int, default=60,
                      help="extra non-Louisiana stations")
    init.add_argument("--every-days", type=int, default=30,
                      help="observation cadence in days")

    tables = commands.add_parser("tables", help="list a database's tables")
    tables.add_argument("--db", required=True)

    programs = commands.add_parser("programs", help="list saved programs")
    programs.add_argument("--db", required=True)

    show = commands.add_parser(
        "show-program", help="print (and optionally draw) a saved program"
    )
    show.add_argument("--db", required=True)
    show.add_argument("--name", required=True)
    show.add_argument("--out", help="also render the program window to PPM")

    run = commands.add_parser(
        "run-program", help="render every canvas of a saved program"
    )
    run.add_argument("--db", required=True)
    run.add_argument("--name", required=True)
    run.add_argument("--out-dir", required=True)

    figures = commands.add_parser(
        "figures", help="regenerate the paper's figures as images"
    )
    figures.add_argument("--out-dir", required=True)
    figures.add_argument(
        "--which", default=",".join(_FIGURES),
        help=f"comma-separated subset of: {', '.join(_FIGURES)}",
    )
    figures.add_argument(
        "--format", default="ppm", choices=("ppm", "png", "svg"),
        help="image format (svg renders vectors through the SVG surface)",
    )

    query = commands.add_parser(
        "query", help="print a table, optionally filtered (terminal monitor)"
    )
    query.add_argument("--db", required=True)
    query.add_argument("--table", required=True)
    query.add_argument("--where", help="predicate in the query language")
    query.add_argument("--limit", type=int, default=20)

    boxes = commands.add_parser(
        "boxes", help="list the registered box catalog with help text"
    )
    boxes.add_argument("--topic", help="show full help for one box type")

    explain = commands.add_parser(
        "explain", parents=[common],
        help="per-operator execution profile of a program (rows in/out, "
        "batches, wall time per plan node)",
    )
    explain.add_argument("--db", help="database JSON (with --name)")
    explain.add_argument("--name", help="saved program to explain")
    explain.add_argument(
        "--figure", choices=sorted(_FIGURES),
        help="explain a built-in figure scenario instead of a saved program",
    )
    explain.add_argument("--box", type=int, help="limit to one box id")

    lint = commands.add_parser(
        "lint", parents=[common],
        help="statically check programs without executing them "
        "(schema inference, expression typechecking, dead-box analysis)",
    )
    lint.add_argument("--db", help="database JSON (with --name)")
    lint.add_argument("--name", help="saved program to lint")
    lint.add_argument(
        "--figure", choices=sorted(_FIGURES),
        help="lint one built-in figure scenario; default is all of them",
    )
    lint.add_argument(
        "--deep", action="store_true",
        help="also run the abstract interpreter over each program "
        "(value-range/nullability propagation: dead predicates T2-W204, "
        "statically empty results T2-W205, hazard-proof notes T2-I301)",
    )

    trace = commands.add_parser(
        "trace", parents=[common],
        help="render a scenario under the tracer and write a Chrome "
        "trace_event JSON (open in Perfetto or chrome://tracing)",
    )
    trace.add_argument(
        "figure", nargs="?", choices=sorted(_FIGURES),
        help="built-in figure scenario to trace (or use --db/--name)",
    )
    trace.add_argument("--db", help="database JSON (with --name)")
    trace.add_argument("--name", help="saved program to trace")
    trace.add_argument("--out", default=None,
                       help="output path for the Chrome trace JSON "
                       "(default: trace_<target>.json, deterministic so "
                       "CI artifact paths are stable)")
    trace.add_argument(
        "--warm", action="store_true",
        help="keep the engine cache warm (default is a cold run so engine "
        "fires appear in the trace)",
    )
    trace.add_argument(
        "--tree", action="store_true",
        help="also print the span tree to stdout (same as --timing)",
    )

    profile = commands.add_parser(
        "profile", parents=[common],
        help="render a scenario under the continuous statistical profiler "
        "and print folded stacks (flamegraph input) or a JSON snapshot",
    )
    profile.add_argument(
        "figure", nargs="?", choices=sorted(_FIGURES),
        help="built-in figure scenario to profile (or use --db/--name)",
    )
    profile.add_argument("--db", help="database JSON (with --name)")
    profile.add_argument("--name", help="saved program to profile")
    profile.add_argument(
        "--hz", type=float, default=200.0,
        help="sampling rate in Hz (default 200; higher resolves shorter "
        "renders at proportionally higher overhead)",
    )
    profile.add_argument(
        "--rounds", type=int, default=5,
        help="how many times to render every window (default 5; more "
        "rounds give the sampler more to catch)",
    )
    profile.add_argument(
        "--out", default=None,
        help="write folded stacks here instead of stdout",
    )
    profile.add_argument(
        "--chrome", default=None,
        help="also write the samples as Chrome trace_event JSON "
        "(instant events on named thread tracks)",
    )

    stats = commands.add_parser(
        "stats", parents=[common],
        help="run-summary telemetry for a figure render (span rollups + "
        "metrics registry), declaration checks, bench-file validation",
    )
    stats.add_argument(
        "--figure", choices=sorted(_FIGURES), default="fig4",
        help="figure scenario to render and summarize (default fig4)",
    )
    stats.add_argument(
        "--check", action="store_true",
        help="verify process-wide metric declarations are conflict-free "
        "(exit 1 on a kind conflict)",
    )
    stats.add_argument(
        "--validate-bench", metavar="PATH",
        help="schema-check a BENCH_obs.json or BENCH_parallel.json "
        "written by the benchmark suite",
    )

    why = commands.add_parser(
        "why", parents=[common],
        help="why-provenance drill-down: pick the mark under a pixel of a "
        "figure render and trace it back to base-table rows "
        "(repro.lineage/1; see docs/OBSERVABILITY.md)",
    )
    why.add_argument(
        "--figure", choices=sorted(_FIGURES), default="fig4",
        help="figure scenario to render and pick from (default fig4)",
    )
    why.add_argument("--px", type=float, required=True,
                     help="pixel x coordinate to pick")
    why.add_argument("--py", type=float, required=True,
                     help="pixel y coordinate to pick")
    why.add_argument(
        "--window", default=None,
        help="window name within the scenario (default: first window)",
    )

    bench_diff = commands.add_parser(
        "bench-diff", parents=[common],
        help="compare two BENCH_*.json files (schema-tag routed) and exit "
        "nonzero on perf regressions past the threshold",
    )
    bench_diff.add_argument("baseline", help="baseline BENCH_*.json path")
    bench_diff.add_argument("current", help="current BENCH_*.json path")
    bench_diff.add_argument(
        "--threshold", type=float, default=None, metavar="FRACTION",
        help="relative-change threshold for every metric (default: "
        "per-metric, 0.25)",
    )
    bench_diff.add_argument(
        "--min-seconds", type=float, default=None, metavar="S",
        help="ignore wall-time regressions when both sides are under S "
        "seconds (micro-benchmark noise floor, default 0.005)",
    )
    bench_diff.add_argument(
        "--update-baselines", action="store_true",
        help="schema-validate the current BENCH file and copy it over the "
        "baseline path instead of diffing (refreshes "
        "benchmarks/baselines/)",
    )

    dashboard = commands.add_parser(
        "dashboard", parents=[common],
        help="record telemetry from a figure render and render the "
        "self-hosted telemetry dashboard headless (repro.obs.dashboard)",
    )
    dashboard.add_argument(
        "--figure", choices=sorted(_FIGURES), default="fig4",
        help="figure workload to record telemetry from (default fig4)",
    )
    dashboard.add_argument("--out-dir", required=True,
                           help="directory for chart images + telemetry")
    dashboard.add_argument(
        "--renders", type=int, default=3,
        help="renders of the workload to sample across (default 3)",
    )

    render = commands.add_parser(
        "render", parents=[common],
        help="render figure scenarios to images (the inspection-flag "
        "sibling of `figures`: adds --json/--timing/--strict/--workers)",
    )
    render.add_argument("--out-dir", required=True)
    render.add_argument(
        "--which", default=",".join(_FIGURES),
        help=f"comma-separated subset of: {', '.join(_FIGURES)}",
    )
    render.add_argument(
        "--format", default="ppm", choices=("ppm", "png", "svg"),
        help="image format (svg renders vectors through the SVG surface)",
    )

    serve_cmd = commands.add_parser(
        "serve",
        help="run the multi-session visualization server (HTTP + WebSocket; "
        "see docs/SERVER.md)",
    )
    serve_cmd.add_argument("--db", help="database file to host "
                           "(default: built-in weather demo)")
    serve_cmd.add_argument("--host", default="127.0.0.1")
    serve_cmd.add_argument("--port", type=int, default=8765)
    serve_cmd.add_argument(
        "--max-queue", type=int, default=32,
        help="per-connection send-queue bound before frame coalescing "
        "(default 32)",
    )
    serve_cmd.add_argument(
        "--flight-dump",
        help="file to dump the flight recorder to on internal handler "
        "errors (JSONL)",
    )
    serve_cmd.add_argument(
        "--session-ttl", type=float, default=900.0,
        help="seconds an HTTP-created session may sit idle with no "
        "attached connection before it expires (0 disables; default 900)",
    )
    serve_cmd.add_argument(
        "--profile-hz", type=float, default=67.0,
        help="continuous-profiler sampling rate in Hz (0 disables; "
        "default 67)",
    )
    serve_cmd.add_argument(
        "--slow-ms", type=float, default=None,
        help="uniform slow-request threshold in ms for every command kind "
        "(default: the per-kind SLO table in docs/OBSERVABILITY.md)",
    )
    serve_cmd.add_argument(
        "--slow-dir", default="slowreq",
        help="directory for slow-request capture files "
        "(slowreq_<trace>.jsonl; default ./slowreq, created on first "
        "capture; empty string disables capture)",
    )
    serve_cmd.add_argument(
        "--no-request-tracing", action="store_true",
        help="disable request tracing, the request log, and the /debug "
        "request endpoints",
    )
    serve_cmd.add_argument(
        "--log-level", default="info",
        choices=["debug", "info", "warning", "error"],
        help="structured JSON log level on stderr (default info)",
    )

    client_cmd = commands.add_parser(
        "client",
        help="connect to a running server, run one command, print the "
        "JSON response",
    )
    client_cmd.add_argument(
        "--url", default="ws://127.0.0.1:8765/ws",
        help="server WebSocket URL (default ws://127.0.0.1:8765/ws)",
    )
    client_cmd.add_argument(
        "command_json", nargs="?",
        help="one protocol command as JSON, e.g. "
        '\'{"v": 1, "kind": "open_program", "name": "fig4"}\'; '
        "omit to print the server welcome",
    )
    client_cmd.add_argument(
        "--out", help="write a frame response's image bytes to this file")
    return parser


def _cmd_init_weather(args) -> int:
    db = build_weather_database(
        extra_stations=args.stations, every_days=args.every_days
    )
    path = save_database_file(db, args.out)
    print(f"wrote {path} ({', '.join(db.table_names())})")
    return 0


def _cmd_tables(args) -> int:
    db = load_database_file(args.db)
    for name in db.table_names():
        table = db.table(name)
        columns = ", ".join(
            f"{f.name}:{f.type.name}" for f in table.schema
        )
        print(f"{name}  ({len(table)} rows)  [{columns}]")
    return 0


def _cmd_programs(args) -> int:
    db = load_database_file(args.db)
    names = db.program_names()
    if not names:
        print("(no saved programs)")
    for name in names:
        print(name)
    return 0


def _cmd_show_program(args) -> int:
    db = load_database_file(args.db)
    session = Session(db)
    session.load_program(args.name)
    print(session.program_text())
    if args.out:
        canvas = session.program_window()
        canvas.to_ppm(args.out)
        print(f"program window -> {args.out}")
    return 0


def _cmd_run_program(args) -> int:
    db = load_database_file(args.db)
    session = Session(db)
    session.load_program(args.name)
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if not session.windows:
        print("program has no viewer boxes; nothing to render")
        return 1
    for name in sorted(session.windows):
        canvas = session.window(name).render()
        path = out_dir / f"{args.name}_{name}.ppm"
        canvas.to_ppm(path)
        print(f"{name}: {canvas.count_nonbackground()} px -> {path}")
    return 0


def _cmd_figures(args) -> int:
    wanted = [part.strip() for part in args.which.split(",") if part.strip()]
    unknown = [name for name in wanted if name not in _FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}; "
              f"choose from {', '.join(_FIGURES)}", file=sys.stderr)
        return 2
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    db = build_weather_database(extra_stations=40, every_days=30)
    image_format = getattr(args, "format", "ppm")
    for name in wanted:
        scenario = _FIGURES[name](db)
        window = (scenario.named.get("window")
                  or scenario.named.get("map_window"))
        path = out_dir / f"{name}.{image_format}"
        if image_format == "svg":
            from repro.render.svg import render_svg

            svg = render_svg(window.viewer)
            svg.to_svg(path)
            print(f"{name}: {len(svg.elements)} elements -> {path}")
        else:
            canvas = window.render()
            if image_format == "png":
                canvas.to_png(path)
            else:
                canvas.to_ppm(path)
            print(f"{name}: {canvas.count_nonbackground()} px -> {path}")
    return 0


def _cmd_query(args) -> int:
    db = load_database_file(args.db)
    rows = db.table(args.table).snapshot()
    if args.where:
        rows = restrict_predicate(rows, args.where)
    total = len(rows)
    rows = limit_rows(rows, args.limit)
    from repro.dbms.relation import MethodSet

    methods = MethodSet(rows.schema)
    print("  ".join(name.ljust(14) for name in rows.schema.names))
    for row in rows:
        view = methods.row_view(row)
        print("  ".join(default_field_texts(view, rows.schema)))
    if total > len(rows):
        print(f"... {total - len(rows)} more rows (use --limit)")
    return 0


def _cmd_boxes(args) -> int:
    import inspect

    from repro.dataflow.registry import box_class, box_class_names

    if args.topic:
        try:
            cls = box_class(args.topic)
        except TiogaError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(inspect.getdoc(cls) or args.topic)
        return 0
    hidden = {"_Const", "Hole"}
    for name in box_class_names():
        if name in hidden:
            continue
        doc = inspect.getdoc(box_class(name)) or ""
        first_line = doc.splitlines()[0] if doc else ""
        print(f"{name:<18} {first_line}")
    return 0


def _plan_notes(report: dict) -> list[str]:
    """Every free-form plan-node note in an ``explain_data`` report."""
    notes: list[str] = []

    def walk(tree: dict) -> None:
        notes.extend(tree.get("notes", ()))
        for child in tree.get("children", ()):
            walk(child)

    for box in report.get("boxes", ()):
        for output in box.get("outputs", ()):
            for plan in output.get("plans", ()):
                walk(plan["tree"])
    return notes


def _cmd_explain(args) -> int:
    import json as json_module

    if args.figure:
        db = build_weather_database(extra_stations=40, every_days=30)
        scenario = _FIGURES[args.figure](db)
        session = scenario.session
    else:
        if not args.db or not args.name:
            print("error: explain needs --figure, or --db with --name",
                  file=sys.stderr)
            return 2
        db = load_database_file(args.db)
        session = Session(db)
        session.load_program(args.name)

    tracer = None
    if args.timing:
        from repro.obs import Tracer, push_tracer, render_tree

        tracer = Tracer(enabled=True)
        with push_tracer(tracer):
            report = _explain_report(session, args)
    else:
        report = _explain_report(session, args)
    if args.as_json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        # The engine memoized every box output above, so the text render
        # walks the same forced plans without re-executing anything.
        from repro.dataflow.explain import explain

        print(explain(session.program, session.database,
                      engine=session.engine, box_id=args.box))
    if tracer is not None:
        print("-- timing --")
        print(render_tree(tracer))
    if args.strict:
        notes = _plan_notes(report)
        if notes:
            for note in notes:
                print(f"strict: plan degradation: {note}", file=sys.stderr)
            return 1
    return 0


def _explain_report(session, args) -> dict:
    from repro.dataflow.explain import explain_data

    return explain_data(session.program, session.database,
                        engine=session.engine, box_id=args.box)


def _cmd_lint(args) -> int:
    import json as json_module

    from repro.analyze.checker import check_program

    targets: list[tuple[str, object, object]] = []  # (name, program, database)
    if args.name:
        if not args.db:
            print("error: lint --name needs --db", file=sys.stderr)
            return 2
        db = load_database_file(args.db)
        session = Session(db)
        session.load_program(args.name)
        targets.append((args.name, session.program, db))
    else:
        db = build_weather_database(extra_stations=5, every_days=120)
        wanted = [args.figure] if args.figure else sorted(_FIGURES)
        for name in wanted:
            scenario = _FIGURES[name](db)
            targets.append((name, scenario.session.program, db))

    tracer = None
    if args.timing:
        from repro.obs import Tracer

        tracer = Tracer(enabled=True)

    failed = False
    json_out = {}
    for name, program, database in targets:
        def run_checks(program=program, database=database):
            report = check_program(program, database)
            if args.deep:
                from repro.analyze.absint import check_program_deep

                report.extend(check_program_deep(program, database))
            return report

        if tracer is not None:
            from repro.obs import push_tracer

            with push_tracer(tracer):
                report = run_checks()
        else:
            report = run_checks()
        if not report.ok or (args.strict and report.warnings()):
            failed = True
        if args.as_json:
            json_out[name] = report.to_json()
        else:
            print(f"== {name} ==")
            print(report.render())
    if args.as_json:
        print(json_module.dumps(json_out, indent=2, sort_keys=True))
    if tracer is not None:
        from repro.obs import render_tree

        print("-- timing --")
        print(render_tree(tracer))
    return 1 if failed else 0


def _traced_session(args):
    """Build the session for ``trace``: a figure scenario or saved program."""
    if args.figure:
        db = build_weather_database(extra_stations=40, every_days=30)
        scenario = _FIGURES[args.figure](db)
        return args.figure, scenario.session
    if not args.db or not args.name:
        print("error: trace needs a figure, or --db with --name",
              file=sys.stderr)
        return None, None
    db = load_database_file(args.db)
    session = Session(db)
    session.load_program(args.name)
    return args.name, session


def _cmd_trace(args) -> int:
    from repro.obs import Tracer, push_tracer, render_tree, write_chrome_trace

    target, session = _traced_session(args)
    if session is None:
        return 2
    if not session.windows:
        print("program has no viewer boxes; nothing to trace",
              file=sys.stderr)
        return 1
    tracer = Tracer(enabled=True)
    if not args.warm:
        # Cold run: drop memoized box outputs so engine fires (and the plan
        # nodes they execute) land inside the trace, not just cache hits.
        session.engine.invalidate()
    with push_tracer(tracer):
        for name in sorted(session.windows):
            session.window(name).render()
    if args.out is None:
        # Deterministic default keyed on the traced target, so repeated CI
        # runs (and their artifact globs) see a stable filename.
        safe = "".join(ch if ch.isalnum() or ch in "-_" else "_"
                       for ch in str(target))
        args.out = f"trace_{safe}.json"
    path = write_chrome_trace(tracer, args.out, process_name=f"repro {target}")
    spans = len(tracer.finished())
    if args.as_json:
        import json as json_module

        print(json_module.dumps(
            {"target": target, "spans": spans, "dropped": tracer.dropped,
             "out": str(path)},
            indent=2, sort_keys=True,
        ))
    else:
        print(f"{target}: {spans} spans -> {path}")
    if tracer.dropped:
        print(f"warning: {tracer.dropped} spans dropped (buffer full)",
              file=sys.stderr)
    if args.tree or args.timing:
        print(render_tree(tracer))
    if args.strict and tracer.dropped:
        return 1
    return 0


def _cmd_stats(args) -> int:
    import json as json_module

    from repro.obs import (
        ObservabilityError,
        Tracer,
        check_declarations,
        global_registry,
        push_tracer,
        run_summary,
        validate_any_bench,
    )

    if args.validate_bench:
        payload = json_module.loads(Path(args.validate_bench).read_text())
        # Route by the payload's own schema tag: BENCH_obs.json carries
        # repro.bench/1, BENCH_parallel.json repro.bench.parallel/1,
        # BENCH_columnar.json repro.bench.columnar/1.
        try:
            validate_any_bench(payload)
        except ObservabilityError as exc:
            print(f"invalid bench summary: {exc}", file=sys.stderr)
            return 1
        print(f"{args.validate_bench}: ok "
              f"({len(payload.get('benchmarks', []))} benchmarks)")
        return 0

    # Pre-register the execution counter set (cache.hit/miss/evict via the
    # process-wide ResultCache; parallel.morsels and the columnar pair
    # explicitly) so one `stats` invocation surfaces the full counter
    # taxonomy even when the run happens not to exercise the cache, the
    # morsel pool, or the columnar backend — the snapshot then always
    # carries the complete, pinned key set.
    from repro.analyze.absint import PROOFS_COUNTER
    from repro.dbms.expr_compile import ELIDED_COUNTER
    from repro.dbms.plan_parallel import result_cache

    result_cache()
    global_registry().counter("parallel.morsels", "morsel tasks executed")
    global_registry().counter(
        "columnar.batches", "column batches produced by columnar kernels")
    global_registry().counter(
        "columnar.fallback",
        "column batches re-evaluated on the row path after a data hazard")
    # The absint pair's declaration strings live next to the code that
    # increments them; importing the tuples keeps `--check` conflict-free.
    global_registry().counter(*PROOFS_COUNTER)
    global_registry().counter(*ELIDED_COUNTER)
    # Same convention for the lineage counters: cold runs (capture off, no
    # why-walks) still emit the full lineage.* key set with zero totals.
    from repro.obs.lineage import (
        DROPPED_COUNTER,
        MAPPINGS_COUNTER,
        WALKS_COUNTER,
    )

    global_registry().counter(*MAPPINGS_COUNTER)
    global_registry().counter(*DROPPED_COUNTER)
    global_registry().counter(*WALKS_COUNTER)
    # And the server family (sessions/commands/frame_ms/...), so the stats
    # snapshot pins the full metric surface a serving process exposes.
    from repro.server.app import register_server_metrics

    register_server_metrics(global_registry())

    db = build_weather_database(extra_stations=40, every_days=30)
    scenario = _FIGURES[args.figure](db)
    session = scenario.session
    tracer = Tracer(enabled=True)
    session.engine.invalidate()
    with push_tracer(tracer):
        for name in sorted(session.windows):
            session.window(name).render()

    if args.check:
        # The render above populated the process-wide declaration table from
        # the real instrumented code paths; a conflicting re-declaration
        # would already have raised, so a clean table here means the
        # taxonomy is consistent.
        try:
            names = check_declarations()
        except ObservabilityError as exc:
            print(f"metric declaration conflict: {exc}", file=sys.stderr)
            return 1
        print(f"metric declarations: ok ({len(names)} metrics)")
        return 0

    summary = run_summary(tracer, global_registry())
    if args.as_json:
        print(json_module.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"== {args.figure} ==")
        for name, roll in sorted(summary["spans"].items()):
            print(f"{name:<28} count={roll['count']:<5} "
                  f"total={roll['total_ms']:.2f}ms "
                  f"mean={roll['mean_ms']:.3f}ms")
        for name, metric in sorted(summary["metrics"].items()):
            print(f"{name}: {metric}")
    if args.timing:
        from repro.obs import render_tree

        print("-- timing --")
        print(render_tree(tracer))
    if args.strict and tracer.dropped:
        print(f"strict: {tracer.dropped} spans dropped (buffer full)",
              file=sys.stderr)
        return 1
    return 0


def _cmd_bench_diff(args) -> int:
    import json as json_module

    from repro.obs.benchdiff import diff_bench_files, render_diff

    if args.update_baselines:
        # Refresh the committed baseline from a current run: the current
        # file must validate against its own schema before it can replace
        # the baseline — a malformed artifact never becomes the gate.
        from repro.obs import ObservabilityError, validate_any_bench

        try:
            payload = json_module.loads(Path(args.current).read_text())
            validate_any_bench(payload)
        except ObservabilityError as exc:
            print(f"invalid bench file {args.current}: {exc}",
                  file=sys.stderr)
            return 1
        baseline_path = Path(args.baseline)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(
            json_module.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.current} "
              f"({payload.get('schema')}, "
              f"{len(payload.get('benchmarks', []))} benchmarks) "
              f"-> {baseline_path}")
        return 0

    kwargs = {}
    if args.threshold is not None:
        kwargs["threshold"] = args.threshold
    if args.min_seconds is not None:
        kwargs["min_seconds"] = args.min_seconds
    report = diff_bench_files(args.baseline, args.current, **kwargs)
    if args.as_json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_diff(report))
    if report["regressions"]:
        for row in report["regressions"]:
            print(f"regression: {row['name']} {row['metric']} "
                  f"{row['baseline']:.6g} -> {row['current']:.6g} "
                  f"(x{row['ratio']:.3g}, threshold "
                  f"{row['threshold']:.0%})", file=sys.stderr)
        return 1
    if args.strict and report["missing"]:
        print(f"strict: benchmarks missing from current run: "
              f"{', '.join(report['missing'])}", file=sys.stderr)
        return 1
    return 0


def _cmd_dashboard(args) -> int:
    import json as json_module

    from repro.obs import render_tree
    from repro.obs.dashboard import (
        build_dashboard_program,
        record_figure_telemetry,
        render_dashboard,
        telemetry_database,
    )

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    workers = args.workers if args.workers and args.workers > 1 else 2
    recorder, tracer = record_figure_telemetry(
        figure=args.figure, renders=args.renders, workers=workers,
    )
    db = telemetry_database(recorder, tracer)
    scenario = build_dashboard_program(db)
    charts = render_dashboard(scenario)

    (out_dir / "timeseries.json").write_text(
        json_module.dumps(recorder.snapshot(), indent=1, sort_keys=True)
    )
    (out_dir / "metrics.prom").write_text(recorder.prometheus_text())
    results = []
    for name, chart in sorted(charts.items()):
        if name == "total_draw_ops":
            continue
        path = out_dir / f"dashboard_{name}.ppm"
        chart["canvas"].to_ppm(path)
        results.append({"chart": name, "out": str(path),
                        "draw_ops": chart["draw_ops"],
                        "pixels": chart["pixels"]})
    if args.as_json:
        print(json_module.dumps(
            {"figure": args.figure,
             "total_draw_ops": charts["total_draw_ops"],
             "charts": results,
             "series": len(recorder.series_keys()),
             "samples": recorder.samples_taken},
            indent=2, sort_keys=True,
        ))
    else:
        for entry in results:
            print(f"{entry['chart']}: {entry['draw_ops']} draw ops, "
                  f"{entry['pixels']} px -> {entry['out']}")
        print(f"telemetry: {len(recorder.series_keys())} series, "
              f"{recorder.samples_taken} samples -> "
              f"{out_dir / 'timeseries.json'}")
    if args.timing:
        print("-- timing --")
        print(render_tree(tracer))
    if args.strict:
        blank = [entry["chart"] for entry in results
                 if not entry["draw_ops"]]
        if blank:
            print(f"strict: dashboard charts drew nothing: "
                  f"{', '.join(blank)}", file=sys.stderr)
            return 1
    return 0


def _cmd_render(args) -> int:
    import json as json_module

    wanted = [part.strip() for part in args.which.split(",") if part.strip()]
    unknown = [name for name in wanted if name not in _FIGURES]
    if unknown:
        print(f"unknown figures: {', '.join(unknown)}; "
              f"choose from {', '.join(_FIGURES)}", file=sys.stderr)
        return 2
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    tracer = None
    if args.timing:
        from repro.obs import Tracer

        tracer = Tracer(enabled=True)

    results: list[dict] = []

    def run() -> None:
        db = build_weather_database(extra_stations=40, every_days=30)
        for name in wanted:
            scenario = _FIGURES[name](db)
            window = (scenario.named.get("window")
                      or scenario.named.get("map_window"))
            path = out_dir / f"{name}.{args.format}"
            if args.format == "svg":
                from repro.render.svg import render_svg

                svg = render_svg(window.viewer)
                svg.to_svg(path)
                results.append({"figure": name, "out": str(path),
                                "elements": len(svg.elements)})
            else:
                canvas = window.render()
                if args.format == "png":
                    canvas.to_png(path)
                else:
                    canvas.to_ppm(path)
                results.append({"figure": name, "out": str(path),
                                "pixels": canvas.count_nonbackground()})

    if tracer is not None:
        from repro.obs import push_tracer

        with push_tracer(tracer):
            run()
    else:
        run()

    if args.as_json:
        print(json_module.dumps({"figures": results},
                                indent=2, sort_keys=True))
    else:
        for entry in results:
            detail = (f"{entry['pixels']} px" if "pixels" in entry
                      else f"{entry['elements']} elements")
            print(f"{entry['figure']}: {detail} -> {entry['out']}")
    if tracer is not None:
        from repro.obs import render_tree

        print("-- timing --")
        print(render_tree(tracer))
    if args.strict:
        blank = [entry["figure"] for entry in results
                 if not entry.get("pixels", entry.get("elements"))]
        if blank:
            print(f"strict: blank canvases: {', '.join(blank)}",
                  file=sys.stderr)
            return 1
    return 0


def _cmd_why(args) -> int:
    import json as json_module

    from repro.obs.lineage import render_why, why

    db = build_weather_database(extra_stations=40, every_days=30)
    scenario = _FIGURES[args.figure](db)
    session = scenario.session
    windows = sorted(session.windows)
    name = args.window or windows[0]
    if name not in session.windows:
        print(f"unknown window {name!r}; choose from {', '.join(windows)}",
              file=sys.stderr)
        return 2
    window = session.window(name)
    window.render()
    doc = why(window, args.px, args.py)
    if args.as_json:
        print(json_module.dumps(doc, indent=2, sort_keys=True, default=str))
    else:
        print(render_why(doc))
    if args.strict and not doc["complete"]:
        return 1
    return 0


def _cmd_profile(args) -> int:
    import json as json_module

    from repro.obs import Profiler, Tracer, push_tracer

    target, session = _traced_session(args)
    if session is None:
        return 2
    if not session.windows:
        print("program has no viewer boxes; nothing to profile",
              file=sys.stderr)
        return 1
    profiler = Profiler(hz=args.hz)
    # Trace alongside the sampler so samples can be attributed to requests
    # exactly as the server does it.
    tracer = Tracer(enabled=True)
    session.engine.invalidate()
    with push_tracer(tracer), profiler:
        for _ in range(max(1, args.rounds)):
            session.engine.invalidate()
            for name in sorted(session.windows):
                session.window(name).render()
    folded = profiler.collapsed_text()
    if args.out:
        Path(args.out).write_text(folded)
    if args.chrome:
        Path(args.chrome).write_text(json_module.dumps(
            profiler.chrome_trace(process_name=f"repro profile {target}"),
            indent=1))
    if args.as_json:
        print(json_module.dumps(profiler.snapshot(), indent=2,
                                sort_keys=True))
    elif not args.out:
        print(folded, end="")
    summary = (f"{target}: {profiler.ticks} ticks, "
               f"{len(profiler)} samples at {args.hz:g}hz")
    if args.out:
        summary += f" -> {args.out}"
    if args.chrome:
        summary += f" (chrome: {args.chrome})"
    print(summary, file=sys.stderr)
    if args.strict and len(profiler) == 0:
        print("no samples captured; raise --hz or --rounds",
              file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args) -> int:
    import logging as logging_module

    from repro.obs import DEFAULT_SLO_MS, configure_logging
    from repro.server import serve

    configure_logging(
        level=getattr(logging_module, args.log_level.upper()))
    database = load_database_file(args.db) if args.db else None
    host, port = args.host, args.port
    slo_ms = None
    if args.slow_ms is not None:
        slo_ms = {kind: args.slow_ms for kind in DEFAULT_SLO_MS}
    print(f"serving on http://{host}:{port} (ws://{host}:{port}/ws); "
          "Ctrl-C stops", file=sys.stderr)
    serve(host=host, port=port, database=database,
          max_queue=args.max_queue, flight_dump=args.flight_dump,
          session_ttl=args.session_ttl,
          request_tracing=not args.no_request_tracing,
          profile_hz=args.profile_hz,
          slo_ms=slo_ms,
          slow_dir=args.slow_dir or None)
    return 0


def _cmd_client(args) -> int:
    import base64 as _base64
    import json as _json

    from repro.protocol import decode_command, encode_response
    from repro.server import connect

    with connect(args.url) as client:
        if not args.command_json:
            print(encode_response(client.welcome))
            return 0
        command = decode_command(args.command_json)
        response = client.request(command)
        if args.out and getattr(response, "data", None):
            Path(args.out).write_bytes(
                _base64.b64decode(response.data))
            payload = _json.loads(encode_response(response))
            payload["data"] = f"(written to {args.out})"
            print(_json.dumps(payload, sort_keys=True))
        else:
            print(encode_response(response))
        return 0 if response.ok else 1


_HANDLERS = {
    "init-weather": _cmd_init_weather,
    "tables": _cmd_tables,
    "programs": _cmd_programs,
    "show-program": _cmd_show_program,
    "run-program": _cmd_run_program,
    "figures": _cmd_figures,
    "query": _cmd_query,
    "boxes": _cmd_boxes,
    "explain": _cmd_explain,
    "lint": _cmd_lint,
    "trace": _cmd_trace,
    "profile": _cmd_profile,
    "stats": _cmd_stats,
    "why": _cmd_why,
    "bench-diff": _cmd_bench_diff,
    "dashboard": _cmd_dashboard,
    "render": _cmd_render,
    "serve": _cmd_serve,
    "client": _cmd_client,
}

_UNSET = object()


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    import json

    previous_config = _UNSET
    if getattr(args, "workers", None) is not None:
        # --workers installs a process-wide parallel config so every engine
        # the subcommand creates (Session builds them internally) picks it
        # up; N <= 1 resolves to serial execution.
        from repro.dbms.plan_parallel import resolve_config, set_default_config

        previous_config = set_default_config(
            resolve_config(workers=args.workers)
        )
    previous_columnar = _UNSET
    if getattr(args, "columnar", False):
        # Same pattern for --columnar: a process-wide default so every
        # engine the subcommand creates runs eligible subtrees vectorized.
        from repro.dbms.columnar import (
            ColumnarConfig,
            default_columnar_config,
            set_default_columnar_config,
        )

        previous_columnar = set_default_columnar_config(
            default_columnar_config() or ColumnarConfig()
        )
    try:
        return _HANDLERS[args.command](args)
    except TiogaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: not a database file: {exc}", file=sys.stderr)
        return 1
    finally:
        if previous_config is not _UNSET:
            from repro.dbms.plan_parallel import set_default_config

            set_default_config(previous_config)
        if previous_columnar is not _UNSET:
            from repro.dbms.columnar import set_default_columnar_config

            set_default_columnar_config(previous_columnar)


if __name__ == "__main__":
    raise SystemExit(main())
