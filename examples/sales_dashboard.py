"""A domain beyond the paper's example: a sales dashboard.

Exercises the mechanisms the weather walkthrough doesn't foreground:

* the multi-output **Switch** box (the paper's `if cond then box i else
  box j` motivating example, §1.1/§1.2),
* **Encapsulate** with a **hole** — a reusable "normalize + position"
  macro whose filtering step is plugged per use (§4.1),
* **Replicate** on an enumerated field (one panel per region, §7.4),
* program **save/load** round-tripping through the database.

Run:  python examples/sales_dashboard.py
"""

from __future__ import annotations

import random
from pathlib import Path

from repro.api import Database, Engine, Session, result_cache
from repro.dbms.tuples import Schema


def build_sales_db(seed: int = 17) -> Database:
    rng = random.Random(seed)
    db = Database("sales")
    table = db.create_table(
        "Sales",
        Schema(
            [
                ("sale_id", "int"),
                ("region", "text"),
                ("rep", "text"),
                ("week", "int"),
                ("amount", "float"),
            ]
        ),
    )
    regions = ("north", "south", "east", "west")
    reps = ("ada", "bob", "cat", "dan", "eve", "fin")
    table.insert_many(
        {
            "sale_id": i + 1,
            "region": rng.choice(regions),
            "rep": rng.choice(reps),
            "week": rng.randrange(1, 27),
            "amount": round(rng.uniform(50.0, 5000.0), 2),
        }
        for i in range(400)
    )
    return db


def main() -> None:
    db = build_sales_db()
    session = Session(db, "sales-dashboard")

    sales = session.add_table("Sales")

    # ------------------------------------------------------------------
    # Switch: route big-ticket sales one way, routine sales the other.
    # ------------------------------------------------------------------
    switch = session.add_box("Switch", {"predicate": "amount >= 2500"})
    session.connect(sales, "out", switch, "in")
    big = session.inspect(switch, "true")
    routine = session.inspect(switch, "false")
    print(f"Switch routed {len(big.rows)} big-ticket and "
          f"{len(routine.rows)} routine sales")

    # ------------------------------------------------------------------
    # A reusable macro: scatter-position sales by (week, amount), with a
    # HOLE for the filtering policy.  Build it once in a scratch program
    # region, encapsulate, then plug different filters per use.
    # ------------------------------------------------------------------
    filter_box = session.add_box("Restrict", {"predicate": "true"})
    session.connect(switch, "true", filter_box, "in")
    set_x = session.add_box("SetAttribute",
                            {"name": "x", "definition": "week * 10"})
    session.connect(filter_box, "out", set_x, "in")
    set_y = session.add_box("SetAttribute",
                            {"name": "y", "definition": "amount / 25"})
    session.connect(set_x, "out", set_y, "in")
    dots = session.add_box(
        "SetAttribute",
        {"name": "display", "definition": "filled_circle(2, 'purple')"},
    )
    session.connect(set_y, "out", dots, "in")

    macro = session.encapsulate(
        [filter_box, set_x, set_y, dots],
        "scatter_by_week",
        holes=[[filter_box]],
    )
    print(f"encapsulated {macro.param('name')!r} with holes: "
          f"{macro.hole_names()}")

    # Plug the hole two ways: the north region, and sales above $4000.
    north_scatter = macro.plug(
        "hole1", session_box(session, "Restrict", {"predicate": "region = 'north'"})
    )
    rich_scatter = macro.plug(
        "hole1", session_box(session, "Restrict", {"predicate": "amount > 4000"})
    )
    north_id = session.program.add_box(north_scatter)
    session.connect(sales, "out", north_id, "in1")
    rich_id = session.program.add_box(rich_scatter)
    session.connect(sales, "out", rich_id, "in1")
    print(f"north panel rows: {len(session.inspect(north_id, 'out1').rows)}; "
          f">$4000 panel rows: {len(session.inspect(rich_id, 'out1').rows)}")

    # ------------------------------------------------------------------
    # Replicate on the enumerated region field: one panel per region.
    # ------------------------------------------------------------------
    scatter_all = session.program.add_box(macro.plug(
        "hole1", session_box(session, "Restrict", {"predicate": "true"})))
    session.connect(sales, "out", scatter_all, "in1")
    replicate = session.add_box(
        "Replicate", {"enum_field": "region", "layout": "horizontal"}
    )
    session.connect(scatter_all, "out1", replicate, "in")
    window = session.add_viewer(replicate, name="regions",
                                width=800, height=240)
    for member in window.viewer.member_names():
        window.viewer.pan_to(130.0, 100.0, member=member)
        window.viewer.set_elevation(260.0, member=member)
    canvas = window.render()
    group = window.viewer.displayable()
    print("replicated panels:", group.member_names())
    out = Path(__file__).with_name("sales_regions.ppm")
    canvas.to_ppm(out)
    print(f"dashboard image -> {out.name}")

    # ------------------------------------------------------------------
    # Dashboards re-render constantly; run the plans morsel-parallel and
    # let the shared result cache serve the repeat demands
    # (docs/PARALLELISM.md).
    # ------------------------------------------------------------------
    result_cache().clear()
    parallel = Engine(session.program, db, workers=4)
    rows = parallel.output_of(switch, "true").rows.force()
    mirror = Engine(session.program, db, workers=4)
    mirror.output_of(switch, "true").rows.force()
    stats = result_cache().stats()
    print(f"parallel engine (workers=4): {len(rows)} big-ticket rows; "
          f"result cache hits={stats['hits']} misses={stats['misses']}")

    # ------------------------------------------------------------------
    # Programs live in the database.
    # ------------------------------------------------------------------
    session.save_program()
    reloaded = Session(db, "scratch")
    reloaded.load_program("sales-dashboard")
    print(f"reloaded program has {len(reloaded.program)} boxes and "
          f"{len(reloaded.windows)} canvas window(s)")


def session_box(session: Session, type_name: str, params: dict):
    """Instantiate a detached box (not yet added to the program)."""
    from repro.dataflow.registry import instantiate

    return instantiate(type_name, params)


if __name__ == "__main__":
    main()
