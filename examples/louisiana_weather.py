"""The paper's complete running example: Figures 1, 4, 7, 8, 9, 10, 11.

Walks the agricultural specialist's session from the first default table
view to wormholes, magnifying glasses, stitched viewers, and replication —
rendering each figure to a PPM image next to this script and narrating what
the paper's corresponding figure shows.

Run:  python examples/louisiana_weather.py
"""

from __future__ import annotations

from pathlib import Path

from repro import build_weather_database
from repro.core.scenarios import (
    NAME_MAX_ELEVATION,
    build_fig1_table_view,
    build_fig4_station_map,
    build_fig7_overlay,
    build_fig8_wormholes,
    build_fig9_magnifier,
    build_fig10_stitch,
    build_fig11_replicate,
)

OUT_DIR = Path(__file__).parent


def save(canvas, name: str) -> None:
    path = OUT_DIR / name
    canvas.to_ppm(path)
    print(f"  -> {path.name} ({canvas.count_nonbackground()} px painted)")


def figure1(db) -> None:
    print("\nFigure 1 — weather stations in Louisiana (default table view)")
    scenario = build_fig1_table_view(db)
    program = scenario.session.program
    print("  program:", " -> ".join(
        box.type_name for box in program.boxes()))
    restricted = scenario.session.inspect(scenario["restrict"])
    print(f"  Restrict keeps {len(restricted.rows)} Louisiana stations")
    save(scenario.window().render(), "fig01_table.ppm")


def figure4(db) -> None:
    print("\nFigure 4 — station scatter map with Altitude slider")
    scenario = build_fig4_station_map(db)
    window = scenario.window()
    result = window.viewer.render()
    print(f"  {len(result.all_items()) // 2} stations plotted at "
          "(longitude, latitude)")
    save(result.canvas, "fig04_map.ppm")
    window.viewer.set_slider("Altitude", 0.0, 50.0)
    low = window.viewer.render()
    names = sorted({item.row["name"] for item in low.all_items()})
    print("  slider [0, 50 ft] keeps:", ", ".join(names))


def figure7(db) -> None:
    print("\nFigure 7 — overlaid displays with restricted elevation ranges")
    scenario = build_fig7_overlay(db)
    window = scenario.window()
    # The full window with its furniture: canvas + elevation map + sliders.
    save(window.render_window(), "fig07_window_with_furniture.ppm")
    print("  elevation map:", [
        f"{bar.name}[{bar.range.minimum:g},{bar.range.maximum:g}]"
        for bar in window.elevation_map().bars()
    ])
    window.viewer.set_elevation(NAME_MAX_ELEVATION + 10)
    high = window.viewer.render()
    save(high.canvas, "fig07_high_elevation.ppm")
    print("  high elevation: names hidden "
          f"({sum(1 for i in high.all_items() if i.drawable_kind == 'text')} "
          "labels)")
    window.viewer.set_elevation(NAME_MAX_ELEVATION / 2)
    low = window.viewer.render()
    save(low.canvas, "fig07_low_elevation.ppm")
    print("  low elevation: names appear "
          f"({sum(1 for i in low.all_items() if i.drawable_kind == 'text')} "
          "labels)")


def figure8(db) -> None:
    print("\nFigure 8 — wormholes to the temperature time-series canvas")
    scenario = build_fig8_wormholes(db)
    session = scenario.session
    map_window = scenario["map_window"]
    map_window.viewer.pan_to(-90.07, 29.95)  # zoom into New Orleans
    map_window.viewer.set_elevation(1.5)
    result = map_window.viewer.render()
    save(result.canvas, "fig08_map_wormholes.ppm")
    wormholes = map_window.viewer.visible_wormholes()
    print(f"  {len(wormholes)} wormholes appear at this elevation")

    target = wormholes[0]
    destination = session.navigator.traverse(target)
    print(f"  passed through at {target.row['name']}; now viewing "
          f"{destination.name!r} at elevation {destination.view().elevation}")
    destination.set_elevation(30.0)
    save(destination.render().canvas, "fig08_tempseries.ppm")

    mirror = map_window.mirror
    mirror_canvas = mirror.render()
    save(mirror_canvas, "fig08_rearview.ppm")
    print(f"  rear view mirror shows {len(mirror.visible_wormholes())} "
          "return wormholes (the way home)")
    home = session.navigator.go_back()
    print(f"  went back; current canvas is {home.name!r}")


def figure9(db) -> None:
    print("\nFigure 9 — magnifying glass with the precipitation display")
    scenario = build_fig9_magnifier(db)
    window = scenario.window()
    canvas = window.render()
    save(canvas, "fig09_magnifier.ppm")
    glass = scenario["glass"]
    print(f"  glass at {glass.rect} magnifies x{glass.magnification}; the "
          "inner viewer shows the swapped precipitation display")


def figure10(db) -> None:
    print("\nFigure 10 — stitched temperature and precipitation viewers")
    scenario = build_fig10_stitch(db)
    window = scenario.window()
    save(window.render(), "fig10_stitch.ppm")
    viewer = window.viewer
    before = viewer.view("precipitation").center
    viewer.pan(30.0, 0.0, member="temperature")
    after = viewer.view("precipitation").center
    print(f"  panned temperature by 30 days; slaved precipitation followed: "
          f"{before[0]:.1f} -> {after[0]:.1f}")
    save(window.render(), "fig10_stitch_panned.ppm")


def figure11(db) -> None:
    print("\nFigure 11 — replicated viewer (before/after 1990)")
    scenario = build_fig11_replicate(db)
    window = scenario.window()
    group = window.viewer.displayable()
    for name, composite in group:
        rows = len(composite.entries[0].relation.rows)
        print(f"  member {name}: {rows} observations")
    save(window.render(), "fig11_replicate.ppm")


def main() -> None:
    print("building the synthetic weather database ...")
    db = build_weather_database(extra_stations=40, every_days=30)
    print(f"  {len(db.table('Stations'))} stations, "
          f"{len(db.table('Observations'))} observations")
    figure1(db)
    figure4(db)
    figure7(db)
    figure8(db)
    figure9(db)
    figure10(db)
    figure11(db)
    print("\nAll figures rendered. View the .ppm files with any image tool.")


if __name__ == "__main__":
    main()
