"""Quickstart: build a visualization program by composing primitive boxes.

Builds the synthetic weather database, constructs the paper's Figure-4
station map with direct operations, and renders it headlessly — as ASCII art
to the terminal, and as a PPM image next to this script.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro.api import Engine, Session, build_weather_database, result_cache


def main() -> None:
    # 1. The database: Stations, Observations, and the Louisiana map.
    db = build_weather_database(extra_stations=40, every_days=30)
    print(f"database: {db!r}")

    # 2. A session is the paper's whole UI: program window + canvases + menus.
    session = Session(db, "quickstart")
    print("tables menu:", session.menu.tables_menu())

    # 3. Build the program incrementally (Figure 1 → Figure 4):
    stations = session.add_table("Stations")
    restrict = session.add_box("Restrict", {"predicate": "state = 'LA'"})
    session.connect(stations, "out", restrict, "in")

    # Every intermediate result is inspectable (lazy demand of any edge).
    print("stations total:", len(session.inspect(stations).rows))
    print("after Restrict:", len(session.inspect(restrict).rows))

    # Map (longitude, latitude) onto the canvas and draw circle + name.
    set_x = session.add_box("SetAttribute", {"name": "x", "definition": "longitude"})
    session.connect(restrict, "out", set_x, "in")
    set_y = session.add_box("SetAttribute", {"name": "y", "definition": "latitude"})
    session.connect(set_x, "out", set_y, "in")
    display = session.add_box(
        "SetAttribute",
        {
            "name": "display",
            "definition": "combine(filled_circle(3, 'blue'), "
                          "offset(text_of(name), 0, -9))",
        },
    )
    session.connect(set_y, "out", display, "in")

    # Altitude becomes a third visualization dimension (a slider).
    altitude = session.add_box(
        "AddAttribute",
        {"name": "Altitude", "definition": "altitude", "location": True},
    )
    session.connect(display, "out", altitude, "in")

    # 4. A viewer box opens a canvas window.
    window = session.add_viewer(altitude, name="stations", width=640, height=480)
    window.viewer.pan_to(-91.8, 31.0)   # center Louisiana
    window.viewer.set_elevation(6.0)    # frame ~6 degrees of longitude

    canvas = window.render()
    print(f"\nrendered {canvas.count_nonbackground()} pixels:")
    print(canvas.to_ascii(columns=78))

    out = Path(__file__).with_name("quickstart_stations.ppm")
    canvas.to_ppm(out)
    canvas.to_png(out.with_suffix(".png"))
    print(f"\nimages written to {out} and {out.with_suffix('.png').name}")

    # The same scene as scalable vectors, for browsers.
    from repro.render.svg import render_svg

    svg = render_svg(window.viewer)
    svg_path = svg.to_svg(out.with_suffix(".svg"))
    print(f"vector version -> {svg_path.name} ({len(svg.elements)} elements)")

    # 5. Direct manipulation: drag the Altitude slider to low-lying stations.
    window.viewer.set_slider("Altitude", 0.0, 60.0)
    low = window.viewer.render()
    print(
        "stations below 60 ft:",
        sorted({item.row["name"] for item in low.all_items()}),
    )

    # 6. The same program, executed morsel-parallel with the result cache
    #    (docs/PARALLELISM.md): a second engine — a slaved viewer, say — is
    #    served the materialized rows without re-executing the plan.
    result_cache().clear()
    fast = Engine(session.program, db, workers=4)
    rows = fast.output_of(restrict).rows.force()
    slaved = Engine(session.program, db, workers=4)
    slaved.output_of(restrict).rows.force()
    stats = result_cache().stats()
    print(f"\nparallel engine (workers=4): {len(rows)} rows; result cache "
          f"hits={stats['hits']} misses={stats['misses']}")

    # 7. Everything is a program: save it in the database for next time.
    session.save_program()
    print("saved programs:", db.program_names())


if __name__ == "__main__":
    main()
