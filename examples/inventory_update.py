"""Screen-object updates (Section 8): the paper's inventory scenario.

"The quantity on hand of specific items could appear on a canvas.  The user
would find an item of interest and then wish to order a certain number of
the item, thereby decreasing the quantity on hand.  The user could also
notice data errors and simply wish to fix them."

Builds an inventory visualization (bar per item), clicks items to order
stock and fix a data error, installs a custom update command with an
order-entry "look and feel", and shows the visualization refreshing after
each update.

Run:  python examples/inventory_update.py
"""

from __future__ import annotations

from pathlib import Path

from repro import Database, Session
from repro.dbms.tuples import Schema
from repro.dbms.update import UpdateDialog, generic_update


def build_inventory_db() -> Database:
    db = Database("warehouse")
    table = db.create_table(
        "Inventory",
        Schema(
            [
                ("item_id", "int"),
                ("item", "text"),
                ("quantity", "int"),
                ("price", "float"),
            ]
        ),
    )
    table.insert_many(
        [
            {"item_id": 1, "item": "widgets", "quantity": 140, "price": 2.50},
            {"item_id": 2, "item": "gadgets", "quantity": 75, "price": 9.00},
            {"item_id": 3, "item": "sprockets", "quantity": 210, "price": 1.25},
            {"item_id": 4, "item": "flanges", "quantity": 30, "price": 14.00},
            # A data error: negative stock.
            {"item_id": 5, "item": "grommets", "quantity": -3, "price": 0.40},
        ]
    )
    return db


def build_session(db: Database) -> tuple[Session, object]:
    session = Session(db, "inventory")
    src = session.add_table("Inventory")
    # One bar per item: x by item id, bar height by quantity.
    set_x = session.add_box(
        "SetAttribute", {"name": "x", "definition": "item_id * 40"}
    )
    session.connect(src, "out", set_x, "in")
    set_y = session.add_box(
        "SetAttribute", {"name": "y", "definition": "max(quantity, 0) / 2"}
    )
    session.connect(set_x, "out", set_y, "in")
    display = session.add_box(
        "SetAttribute",
        {
            "name": "display",
            "definition": (
                "combine("
                "filled_rect(20, max(quantity, 1), "
                "if quantity < 0 then 'red' else 'blue'), "
                "offset(text_of(item), 0, max(quantity, 0) / 2 + 10), "
                "offset(text_of(quantity), 0, -(max(quantity, 0) / 2 + 8)))"
            ),
        },
    )
    session.connect(set_y, "out", display, "in")
    window = session.add_viewer(display, name="stock", width=480, height=360)
    window.viewer.pan_to(120.0, 60.0)
    window.viewer.set_elevation(320.0)
    return session, window


class OrderEntryDialog(UpdateDialog):
    """A custom 'look and feel' (§8): orders decrement quantity on hand."""

    def __init__(self, order_quantity: int):
        self.order_quantity = order_quantity

    def ask(self, field_name, atomic, old_value):
        if field_name == "quantity":
            return str(old_value - self.order_quantity)
        return None  # leave everything else alone


def item_center(window, item_name: str):
    result = window.viewer.render()
    for rendered in result.all_items():
        if rendered.row["item"] == item_name and \
                rendered.drawable_kind == "rectangle":
            x0, y0, x1, y1 = rendered.bbox
            return (x0 + x1) / 2, (y0 + y1) / 2
    raise SystemExit(f"item {item_name!r} not on screen")


def main() -> None:
    db = build_inventory_db()
    session, window = build_session(db)

    canvas = window.render()
    print("initial stock chart:")
    print(canvas.to_ascii(columns=70))
    canvas.to_ppm(Path(__file__).with_name("inventory_before.ppm"))

    # --- Order 50 widgets by clicking the widgets bar -----------------------
    px, py = item_center(window, "widgets")
    item = session.pick("stock", px, py)
    print(f"\nclicked {item.row['item']!r}: quantity on hand "
          f"{item.row['quantity']}")
    outcome = session.update_item("stock", item, OrderEntryDialog(50))
    print(f"ordered 50 -> quantity now {outcome.new['quantity']}")

    # --- Fix the data error on grommets with the generic dialog -------------
    px, py = item_center(window, "grommets")
    outcome = session.update_at("stock", px, py, {"quantity": "40"})
    print(f"fixed grommets: {outcome.old['quantity']} -> "
          f"{outcome.new['quantity']}")

    # --- Custom update command installed on the relation (§8) ---------------
    def audited_update(table, row, dialog):
        print(f"  [audit] updating {row['item']!r}")
        return generic_update(table, row, dialog)

    relation = session._find_relation("stock", "Inventory")
    relation.update_command = audited_update
    px, py = item_center(window, "flanges")
    item = session.pick("stock", px, py)
    session.update_item("stock", item, {"price": "13.50"})
    print("flanges re-priced through the custom (audited) update command")

    # --- The visualization refreshes: the table version advanced ------------
    canvas = window.render()
    print("\nstock chart after updates:")
    print(canvas.to_ascii(columns=70))
    canvas.to_ppm(Path(__file__).with_name("inventory_after.ppm"))

    print("\nfinal table contents:")
    for row in db.table("Inventory"):
        print(f"  {row['item']:<10} qty={row['quantity']:<5} "
              f"price={row['price']:.2f}")


if __name__ == "__main__":
    main()
