"""A tour of the program-editing operations (Figure 2) and the optimizer.

Shows the workflow the paper's Section 4 narrates: Apply Box from a
type-matched menu, installing a debugging viewer on an arc with a T, the
Delete Box legality rules, Replace Box, Encapsulate (with a hole plugged two
ways), undo, and finally the browsing-query optimizer rewriting a naive
filter-after-join program.

Run:  python examples/program_editing.py
"""

from __future__ import annotations

from repro import Session, build_weather_database
from repro.errors import GraphError


def main() -> None:
    db = build_weather_database(extra_stations=30, every_days=60)
    session = Session(db, "editing-tour")

    print("== the menu bar ==")
    print("tables:", ", ".join(session.menu.tables_menu()))
    print("operations:", ", ".join(session.menu.operations_menu()[:12]), "...")

    # ------------------------------------------------------------------
    print("\n== Apply Box: the type-matched menu ==")
    stations = session.add_table("Stations")
    restrict = session.add_box("Restrict", {"predicate": "state = 'LA'"})
    edge = session.connect(stations, "out", restrict, "in")
    candidates = session.apply_box_candidates([edge])
    print(f"boxes whose inputs match the selected R edge: "
          f"{', '.join(candidates[:10])} ...")
    sample = session.apply_box([edge], "Sample",
                               {"probability": 0.5, "seed": 3})
    print(f"applied Sample -> {len(session.inspect(sample).rows)} of "
          f"{len(session.inspect(stations).rows)} stations retained")

    # ------------------------------------------------------------------
    print("\n== a viewer on any arc (the debugging story) ==")
    probe = session.viewer_on_edge(session.program.edges()[0], name="probe",
                                   width=400, height=200)
    probe.viewer.pan_to(250.0, -3.0)
    probe.viewer.set_elevation(500.0)
    print("probe canvas pixels:",
          probe.render().count_nonbackground())

    # ------------------------------------------------------------------
    print("\n== Delete Box legality ==")
    try:
        session.delete_box(stations)
    except GraphError as exc:
        print(f"deleting the source is refused: {exc}")
    print("deleting the (pass-through) Restrict splices:",
          session.program.can_delete_box(restrict))

    # ------------------------------------------------------------------
    print("\n== Replace Box ==")
    session.replace_box(sample, "Project", {"fields": ["name", "state"]})
    print("Sample replaced by Project; schema now",
          session.inspect(sample).rows.schema.names)

    # ------------------------------------------------------------------
    print("\n== Encapsulate with a hole ==")
    filt = session.add_box("Restrict", {"predicate": "true"})
    session.connect(stations, "out", filt, "in")
    order = session.add_box("OrderBy", {"fields": ["name"]})
    session.connect(filt, "out", order, "in")
    macro = session.encapsulate([filt, order], "sorted_subset",
                                holes=[[filt]], register=True)
    print("registered box:", macro.param("name"),
          "holes:", macro.hole_names())
    louisiana = macro.plug("hole1", _restrict("state = 'LA'"))
    coastal = macro.plug("hole1", _restrict("altitude < 30"))
    for label, plugged in (("Louisiana", louisiana), ("coastal", coastal)):
        box_id = session.program.add_box(plugged)
        session.connect(stations, "out", box_id, "in1")
        rows = session.inspect(box_id, "out1").rows
        print(f"  {label}: {len(rows)} stations, first is "
              f"{rows[0]['name']!r}")

    # ------------------------------------------------------------------
    print("\n== undo ==")
    boxes_before = len(session.program)
    session.add_box("Restrict", {"predicate": "true"})
    undone = session.undo()
    print(f"undid {undone!r}; box count back to "
          f"{len(session.program)} (was about to be {boxes_before + 1})")

    # ------------------------------------------------------------------
    print("\n== the browsing-query optimizer ==")
    naive = Session(db, "naive-browse")
    obs = naive.add_table("Observations")
    sta = naive.add_table("Stations")
    join = naive.add_box("Join", {"left_key": "station_id",
                                  "right_key": "station_id"})
    naive.connect(obs, "out", join, "left")
    naive.connect(sta, "out", join, "right")
    late_filter = naive.add_box(
        "Restrict",
        {"predicate": "state = 'LA' and temperature > 85.0"},
    )
    naive.connect(join, "out", late_filter, "in")
    print("before:")
    print("  " + naive.program_text().replace("\n", "\n  "))
    log = naive.optimize()
    print("rewrites:")
    for line in log:
        print("  -", line)
    print("after:")
    print("  " + naive.program_text().replace("\n", "\n  "))


def _restrict(predicate: str):
    from repro.dataflow.registry import instantiate

    return instantiate("Restrict", {"predicate": predicate})


if __name__ == "__main__":
    main()
