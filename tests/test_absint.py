"""Abstract interpretation (repro.analyze.absint): domains, hazard proofs,
guard elision, certified rewrites (T2-W204/T2-W205), the parallel-region
effect lint (T2-E112), and deep program checking (T2-I301)."""

from __future__ import annotations

import math

import pytest

from repro.analyze import absint
from repro.analyze.absint import (
    AbstractValue,
    HazardProofs,
    Interval,
    abstract_eval,
    absint_enabled,
    absint_rewrite_plan,
    analyze_hazards,
    check_program_deep,
    env_from_stats,
    install_from_env,
    plan_column_facts,
    set_absint_enabled,
    top_env,
)
from repro.analyze.diagnostics import CODES, register_code
from repro.analyze.planverify import assert_valid_plan, verify_plan
from repro.dbms import plan as P
from repro.dbms import types as T
from repro.dbms.catalog import stats_for
from repro.dbms.columnar import ColumnarConfig
from repro.dbms.expr import Binary, Call, FieldRef, Literal
from repro.dbms.parser import parse_expression, parse_predicate
from repro.dbms.plan_parallel import (
    ParallelConfig,
    ParallelHashJoinNode,
    ParallelMapNode,
    parallelize_plan,
)
from repro.dbms.plan_rewrite import columnarize_plan, optimize_plan
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema
from repro.obs import global_registry

NUMS = Schema([("n", "int"), ("x", "float"), ("label", "text")])


def num_rows(count: int) -> RowSet:
    return RowSet.from_dicts(
        NUMS,
        [{"n": i, "x": i * 0.5, "label": f"row{i}"} for i in range(count)],
    )


def ev(source: str, env=None, schema: Schema = NUMS, proofs=None):
    return abstract_eval(
        parse_expression(source, schema), env or {}, schema, proofs
    )


@pytest.fixture(autouse=True)
def _absint_off():
    """Every test starts (and ends) with the interpreter uninstalled."""
    set_absint_enabled(False)
    yield
    set_absint_enabled(False)


class TestInterval:
    def test_top_and_point(self):
        assert Interval().is_top and not Interval().bounded
        assert Interval.point(3) == Interval(3, 3)
        assert Interval(1, 5).contains(3) and not Interval(1, 5).contains(6)

    def test_join_meet(self):
        assert Interval(0, 2).join(Interval(5, 9)) == Interval(0, 9)
        assert Interval(0, 7).meet(Interval(5, 9)) == Interval(5, 7)

    def test_excludes_zero(self):
        assert Interval(1, 9).excludes_zero()
        assert Interval(-9, -1).excludes_zero()
        assert not Interval(-1, 1).excludes_zero()
        assert not Interval(0, 5).excludes_zero()

    def test_within_exact_int(self):
        assert Interval(-(2**53), 2**53).within_exact_int()
        assert not Interval(0, 2**53 + 1).within_exact_int()


class TestAbstractValue:
    def test_constant(self):
        av = AbstractValue.constant(4)
        assert av.is_const and av.const == 4
        assert av.interval == Interval(4, 4) and av.sign == "+"

    def test_float_constant_cannot_be_nan(self):
        # Stored floats can never be NaN (the type system rejects them);
        # NaN enters only through arithmetic, tracked by ``maybe_nan``.
        av = AbstractValue.constant(2.5)
        assert av.type is T.FLOAT and not av.maybe_nan

    def test_top_by_type(self):
        assert AbstractValue.top(T.INT).maybe_nan is False
        assert AbstractValue.top(T.FLOAT).maybe_nan is True
        assert AbstractValue.top(T.TEXT).interval is None

    def test_sign(self):
        assert AbstractValue(T.FLOAT, Interval(-5, -1)).sign == "-"
        assert AbstractValue(T.INT, Interval(0, 0)).sign == "0"
        assert AbstractValue(T.INT, Interval(-1, 1)).sign == "±"
        assert AbstractValue(T.TEXT).sign == "?"

    def test_contains_soundness_checks(self):
        av = AbstractValue(T.FLOAT, Interval(0, 10))
        assert av.contains(5.0) and not av.contains(11.0)
        assert not av.contains(float("nan"))
        assert not av.contains(None)
        assert AbstractValue(T.FLOAT, Interval(0, 1),
                             maybe_nan=True).contains(float("nan"))

    def test_join_widens_numeric_types(self):
        joined = AbstractValue(T.INT, Interval(0, 5)).join(
            AbstractValue(T.FLOAT, Interval(2, 9))
        )
        assert joined.type is T.FLOAT
        assert joined.interval == Interval(0, 9)


class TestAbstractEval:
    def test_arithmetic_intervals(self):
        env = {"n": AbstractValue(T.INT, Interval(1, 10))}
        assert ev("n + 5", env).interval == Interval(6, 15)
        assert ev("-n", env).interval == Interval(-10, -1)
        assert ev("n * 2", env).interval == Interval(2, 20)

    def test_square_is_never_negative(self):
        env = {"x": AbstractValue(T.FLOAT, Interval(-4, 3))}
        av = ev("x * x", env)
        assert av.interval.lo >= 0 and av.interval.hi == 16
        assert not av.maybe_nan

    def test_division_by_zero_free_divisor(self):
        env = {"n": AbstractValue(T.INT, Interval(2, 4))}
        av = ev("10 / n", env)
        assert av.type is T.FLOAT
        assert av.interval == Interval(2.5, 5.0)

    def test_division_by_possibly_zero_is_top(self):
        env = {"n": AbstractValue(T.INT, Interval(-1, 1))}
        av = ev("10 / n", env)
        assert av.interval.is_top and av.maybe_nan

    def test_comparison_const_folds(self):
        env = {"n": AbstractValue(T.INT, Interval(0, 9))}
        assert ev("n < 100", env).const is True
        assert ev("n > 100", env).const is False
        assert not ev("n < 5", env).is_const

    def test_nan_blocks_always_true_not_always_false(self):
        env = {"x": AbstractValue(T.FLOAT, Interval(0, 9), maybe_nan=True)}
        # NaN < 100 is False at runtime, so "always true" may not be claimed.
        assert not ev("x < 100.0", env).is_const
        # NaN > 100 is also False, so "always false" still holds.
        assert ev("x > 100.0", env).const is False

    def test_conditional_joins_branches(self):
        env = {"n": AbstractValue(T.INT, Interval(0, 9))}
        av = ev("if n < 5 then 1 else 100", env)
        assert av.interval == Interval(1, 100)

    def test_calls(self):
        env = {"x": AbstractValue(T.FLOAT, Interval(4.0, 16.0))}
        assert ev("sqrt(x)", env).interval == Interval(2.0, 4.0)
        assert ev("abs(0.0 - x)", env).interval == Interval(4.0, 16.0)
        assert ev("floor(x)", env).interval == Interval(4, 16)
        assert ev("min(x, 6.0)", env).interval == Interval(4.0, 6.0)
        assert ev("month(d)", schema=Schema([("d", "date")])
                  ).interval == Interval(1, 12)

    def test_structural_proof_without_any_facts(self):
        # y*y + 1 >= 1 with no entry facts at all: typed top is enough.
        proofs = HazardProofs()
        ev("x / (x * x + 1.0)", {}, NUMS, proofs)
        assert len(proofs) == 1
        assert any("div_zero" in note for note in proofs.notes)


class TestHazardProofs:
    def test_div_zero_proof(self):
        env = {"n": AbstractValue(T.INT, Interval(1, 9))}
        proofs = analyze_hazards(parse_expression("10 / n", NUMS), NUMS, env)
        expr = parse_expression("10 / n", NUMS)
        assert len(proofs) >= 1
        assert any("div_zero" in n for n in proofs.notes)

    def test_no_proof_when_divisor_spans_zero(self):
        env = {"n": AbstractValue(T.INT, Interval(-5, 5))}
        proofs = analyze_hazards(parse_expression("10 / n", NUMS), NUMS, env)
        assert not any("div_zero" in n for n in proofs.notes)

    def test_exact_int_proof_for_bounded_division(self):
        env = {"n": AbstractValue(T.INT, Interval(1, 1000))}
        expr = parse_expression("n / 4", NUMS)
        proofs = HazardProofs()
        abstract_eval(expr, env, NUMS, proofs)
        assert proofs.proves(expr, "div_zero")
        assert proofs.proves(expr, "exact_int")

    def test_sqrt_nonneg_proof(self):
        env = {"x": AbstractValue(T.FLOAT, Interval(0.0, 100.0))}
        expr = parse_expression("sqrt(x)", NUMS)
        proofs = HazardProofs()
        abstract_eval(expr, env, NUMS, proofs)
        assert proofs.proves(expr, "sqrt_nonneg")

    def test_no_sqrt_proof_for_possibly_negative(self):
        env = {"x": AbstractValue(T.FLOAT, Interval(-1.0, 100.0))}
        expr = parse_expression("sqrt(x)", NUMS)
        proofs = HazardProofs()
        abstract_eval(expr, env, NUMS, proofs)
        assert not proofs.proves(expr, "sqrt_nonneg")

    def test_dead_conditional_branch_proves_nothing(self):
        # The else branch is statically dead, but the compiler compiles
        # both branches — a dead-branch proof must not elide a live guard.
        env = {
            "n": AbstractValue(T.INT, Interval(0, 9)),
            "x": AbstractValue(T.FLOAT, Interval(1.0, 2.0)),
        }
        expr = parse_expression("if 1 < 2 then x else x / x", NUMS)
        proofs = HazardProofs()
        abstract_eval(expr, env, NUMS, proofs)
        assert len(proofs) == 0


class TestEntryFacts:
    def test_env_from_stats(self):
        rows = num_rows(10)
        env = env_from_stats(stats_for(rows), rows.schema)
        assert env["n"].interval == Interval(0, 9)
        assert env["x"].interval == Interval(0.0, 4.5)
        assert not env["x"].maybe_nan  # observed data had no NaN
        assert env["label"].interval is None

    def test_nan_enters_only_through_arithmetic(self):
        # Stored columns are NaN-free, but dividing by a zero-spanning
        # value taints the result with ``maybe_nan``.
        rows = num_rows(10)
        env = env_from_stats(stats_for(rows), rows.schema)
        assert not env["x"].maybe_nan
        tainted = ev("x / (n - 5)", env)
        assert tainted.maybe_nan

    def test_constant_column(self):
        rows = RowSet.from_dicts(
            NUMS, [{"n": 7, "x": 1.0, "label": "a"}] * 3
        )
        env = env_from_stats(stats_for(rows), rows.schema)
        assert env["n"].is_const and env["n"].const == 7


class TestPlanColumnFacts:
    def test_scan_uses_stats(self):
        facts = plan_column_facts(P.ScanNode(num_rows(10)))
        assert facts["n"].interval == Interval(0, 9)

    def test_restrict_refines(self):
        scan = P.ScanNode(num_rows(10))
        node = P.RestrictNode(scan, parse_predicate("n > 5", NUMS))
        facts = plan_column_facts(node)
        assert facts["n"].interval == Interval(5, 9)

    def test_project_and_rename(self):
        scan = P.ScanNode(num_rows(10))
        project = P.ProjectNode(scan, ["n"])
        assert set(plan_column_facts(project)) == {"n"}
        renamed = P.RenameNode(scan, "n", "m")
        assert plan_column_facts(renamed)["m"].interval == Interval(0, 9)

    def test_row_subset_ops_pass_through(self):
        scan = P.ScanNode(num_rows(10))
        node = P.LimitNode(P.OrderByNode(scan, ["n"]), 3)
        assert plan_column_facts(node)["n"].interval == Interval(0, 9)

    def test_unknown_op_is_typed_top_not_none(self):
        join = P.HashJoinNode(
            P.ScanNode(num_rows(3)), P.ScanNode(num_rows(3)), "n", "n"
        )
        facts = plan_column_facts(join)
        assert set(facts) == set(join.schema.names)
        assert all(v is not None for v in facts.values())

    def test_lazy_scan_is_not_forced(self):
        lazy = P.LazyRowSet(P.ScanNode(num_rows(10)))
        facts = plan_column_facts(P.ScanNode(lazy))
        assert facts["n"].interval == Interval(0, 9)
        assert not lazy.has_started


class TestGuardElision:
    """End-to-end: enabling the interpreter elides proven guards while
    producing identical rows, and EXPLAIN shows the proof."""

    PREDICATE = "x / (x * x + 1.0) > 0.25"

    def _plan(self):
        scan = P.ScanNode(num_rows(50))
        return P.RestrictNode(scan, parse_predicate(self.PREDICATE, NUMS))

    def test_rows_identical_with_and_without(self):
        config = ColumnarConfig(batch_rows=16)
        baseline, _ = columnarize_plan(self._plan(), config)
        rows_off = list(baseline.execute())
        set_absint_enabled(True)
        proven, _ = columnarize_plan(self._plan(), config)
        rows_on = list(proven.execute())
        assert rows_on == rows_off

    def test_proof_attached_and_counters_advance(self):
        proofs_before = global_registry().counter(
            *absint.PROOFS_COUNTER).value()
        from repro.dbms.expr_compile import ELIDED_COUNTER

        elided_before = global_registry().counter(*ELIDED_COUNTER).value()
        set_absint_enabled(True)
        plan, _ = columnarize_plan(self._plan(), ColumnarConfig())
        restrict = plan.children[0]
        assert isinstance(restrict, P.ColumnarRestrictNode)
        assert restrict.proof is not None and "div_zero" in restrict.proof
        assert global_registry().counter(
            *absint.PROOFS_COUNTER).value() > proofs_before
        assert global_registry().counter(
            *ELIDED_COUNTER).value() > elided_before

    def test_explain_text_shows_proof(self):
        set_absint_enabled(True)
        plan, _ = columnarize_plan(self._plan(), ColumnarConfig())
        assert "proof=" in P.explain_plan(plan)

    def test_explain_json_shows_proof(self):
        from repro.dataflow.explain import _plan_to_dict

        set_absint_enabled(True)
        plan, _ = columnarize_plan(self._plan(), ColumnarConfig())
        tree = _plan_to_dict(plan, [0])
        assert tree["children"][0]["proof"]

    def test_no_proof_without_interpreter(self):
        plan, _ = columnarize_plan(self._plan(), ColumnarConfig())
        assert plan.children[0].proof is None
        assert "proof=" not in P.explain_plan(plan)

    def test_parallel_map_carries_proof(self):
        set_absint_enabled(True)
        config = ParallelConfig(workers=2, morsel_size=8)
        plan, _ = parallelize_plan(
            self._plan(), config, columnar=ColumnarConfig()
        )
        assert isinstance(plan, ParallelMapNode)
        assert plan.proof is not None and "div_zero" in plan.proof
        rows = list(plan.execute())
        serial = list(self._plan().execute())
        assert rows == serial

    def test_enable_disable_roundtrip(self):
        assert absint_enabled() is False
        assert set_absint_enabled(True) is False
        assert absint_enabled() is True
        assert set_absint_enabled(False) is True
        assert absint_enabled() is False

    def test_install_from_env(self):
        assert install_from_env({}) is False
        assert not absint_enabled()
        assert install_from_env({"REPRO_ABSINT": "1"}) is True
        assert absint_enabled()


class TestCertifiedRewrites:
    """T2-W204 / T2-W205: dead predicates and statically empty subtrees."""

    def test_always_true_restrict_removed(self):
        scan = P.ScanNode(num_rows(10))
        node = P.RestrictNode(scan, parse_predicate("n >= 0", NUMS))
        log: list[str] = []
        rewritten, _ = absint_rewrite_plan(node, log)
        assert rewritten is scan
        assert any("T2-W204" in line for line in log)

    def test_always_false_restrict_becomes_empty_scan(self):
        node = P.RestrictNode(
            P.ScanNode(num_rows(10)), parse_predicate("n > 100", NUMS)
        )
        log: list[str] = []
        rewritten, _ = absint_rewrite_plan(node, log)
        assert isinstance(rewritten, P.ScanNode)
        assert len(rewritten.execute()) == 0
        assert rewritten.schema == node.schema
        assert any("T2-W205" in line for line in log)

    def test_emptiness_propagates_through_closed_ops(self):
        dead = P.RestrictNode(
            P.ScanNode(num_rows(10)), parse_predicate("n > 100", NUMS)
        )
        plan = P.OrderByNode(P.ProjectNode(dead, ["n"]), ["n"])
        rewritten, log = absint_rewrite_plan(plan)
        assert isinstance(rewritten, P.ScanNode)
        assert rewritten.schema.names == ("n",)

    def test_empty_join_input_prunes_join(self):
        dead = P.RestrictNode(
            P.ScanNode(num_rows(5)), parse_predicate("n > 100", NUMS)
        )
        join = P.HashJoinNode(dead, P.ScanNode(num_rows(5)), "n", "n")
        rewritten, log = absint_rewrite_plan(join)
        assert isinstance(rewritten, P.ScanNode)
        assert rewritten.schema == join.schema
        assert any("T2-W205" in line for line in log)

    def test_empty_union_arm_dropped(self):
        live = P.ScanNode(num_rows(5))
        dead = P.RestrictNode(
            P.ScanNode(num_rows(5)), parse_predicate("n > 100", NUMS)
        )
        union = P.UnionNode(dead, live)
        rewritten, _ = absint_rewrite_plan(union)
        assert rewritten is live

    def test_uncertain_predicate_untouched(self):
        node = P.RestrictNode(
            P.ScanNode(num_rows(10)), parse_predicate("n > 5", NUMS)
        )
        rewritten, log = absint_rewrite_plan(node)
        assert rewritten is node and log == []

    def test_cache_never_pruned(self):
        cache = P.CacheNode(P.LazyRowSet(P.ScanNode(num_rows(0))))
        rewritten, _ = absint_rewrite_plan(cache)
        assert rewritten is cache

    def test_optimize_plan_applies_and_verifier_certifies(self):
        set_absint_enabled(True)
        P.set_plan_verifier(assert_valid_plan)
        try:
            plan = P.ProjectNode(
                P.RestrictNode(
                    P.ScanNode(num_rows(20)), parse_predicate("n >= 0", NUMS)
                ),
                ["n"],
            )
            optimized, log = optimize_plan(plan)
            assert any("absint" in line for line in log)
            assert list(optimized.execute()) == list(
                P.ProjectNode(P.ScanNode(num_rows(20)), ["n"]).execute()
            )
        finally:
            P.set_plan_verifier(None)

    def test_optimize_plan_untouched_when_disabled(self):
        plan = P.RestrictNode(
            P.ScanNode(num_rows(10)), parse_predicate("n >= 0", NUMS)
        )
        optimized, log = optimize_plan(plan)
        assert not any("absint" in line for line in log)


class TestEffectsTable:
    def test_every_plan_operator_declares_an_effect(self):
        undeclared = [
            name
            for name, obj in vars(P).items()
            if isinstance(obj, type)
            and issubclass(obj, P.PlanNode)
            and obj not in (P.PlanNode, P.ColumnarNode)
            and P.declared_effect(obj) is None
        ]
        assert undeclared == []

    def test_parallel_operators_declare_parallel(self):
        assert P.declared_effect(ParallelMapNode) == P.EFFECT_PARALLEL
        assert P.declared_effect(ParallelHashJoinNode) == P.EFFECT_PARALLEL

    def test_subclasses_do_not_inherit(self):
        class ShadowRestrict(P.RestrictNode):
            pass

        assert P.declared_effect(ShadowRestrict) is None
        node = ShadowRestrict(
            P.ScanNode(num_rows(3)), parse_predicate("n < 2", NUMS)
        )
        assert P.declared_effect(node) is None


class TestRaceLint:
    """T2-E112: only declared-pure operators may run inside a parallel
    region, and the partitioned leaf must be a declared source."""

    def _parallel(self, chain_root, leaf, chain, sample=None):
        return ParallelMapNode(
            chain_root, leaf, chain, sample, ParallelConfig(workers=2)
        )

    def test_clean_region_verifies(self):
        plan = P.RestrictNode(
            P.ScanNode(num_rows(100)), parse_predicate("n < 50", NUMS)
        )
        wrapped, _ = parallelize_plan(
            plan, ParallelConfig(workers=2, morsel_size=8)
        )
        assert isinstance(wrapped, ParallelMapNode)
        report = verify_plan(wrapped)
        assert report.ok, report.render()

    def test_undeclared_impure_template_rejected(self):
        class ImpureRestrict(P.RestrictNode):
            """A test double with (hypothetical) side effects — undeclared."""

        node = ImpureRestrict(
            P.ScanNode(num_rows(10)), parse_predicate("n < 5", NUMS)
        )
        region = self._parallel(node, node.children[0], [node])
        report = verify_plan(region)
        findings = report.by_code("T2-E112")
        assert findings and not report.ok
        assert any("declared effect" in d.message for d in findings)

    def test_parallelize_never_accepts_undeclared_subclass(self):
        class ImpureRestrict(P.RestrictNode):
            pass

        plan = ImpureRestrict(
            P.ScanNode(num_rows(100)), parse_predicate("n < 50", NUMS)
        )
        wrapped, _ = parallelize_plan(
            plan, ParallelConfig(workers=2, morsel_size=8)
        )
        assert not isinstance(wrapped, ParallelMapNode)

    def test_blocking_leaf_rejected(self):
        distinct = P.DistinctNode(P.ScanNode(num_rows(10)))
        restrict = P.RestrictNode(distinct, parse_predicate("n < 5", NUMS))
        region = self._parallel(restrict, distinct, [restrict])
        report = verify_plan(region)
        assert "T2-E112" in report.codes()

    def test_unseeded_sample_rejected(self):
        sample = P.SampleNode(P.ScanNode(num_rows(20)), 0.5, seed=3)
        restrict = P.RestrictNode(sample, parse_predicate("n < 5", NUMS))
        region = self._parallel(
            restrict, sample.children[0], [restrict], sample=sample
        )
        assert verify_plan(region).ok
        sample._seed = None
        report = verify_plan(self._parallel(
            restrict, sample.children[0], [restrict], sample=sample
        ))
        assert "T2-E112" in report.codes()


class TestDiagnosticCatalog:
    def test_new_codes_registered(self):
        for code in ("T2-W204", "T2-W205", "T2-E112", "T2-I301"):
            assert code in CODES

    def test_duplicate_registration_raises(self):
        with pytest.raises(ValueError):
            register_code("T2-W204", "something else")

    def test_info_severity_excluded_from_warnings(self):
        from repro.analyze.diagnostics import Diagnostic, Report

        report = Report([Diagnostic("T2-I301", "proof: note")])
        assert report.ok and not report.warnings()
        assert len(report.infos()) == 1


class TestCheckProgramDeep:
    def _program(self, predicate):
        from repro.dataflow.boxes_db import AddTableBox, RestrictBox
        from repro.dataflow.graph import Program
        from repro.viewer.viewer import ViewerBox

        program = Program("deep")
        source = program.add_box(AddTableBox(table="Stations"))
        restrict = program.add_box(RestrictBox(predicate=predicate))
        viewer = program.add_box(ViewerBox(name="win"))
        program.connect(source, "out", restrict, "in")
        program.connect(restrict, "out", viewer, "in")
        return program

    def test_clean_program(self, stations_db):
        report = check_program_deep(
            self._program("altitude > 50.0"), stations_db
        )
        assert "T2-W204" not in report.codes()
        assert "T2-W205" not in report.codes()

    def test_always_true_predicate_w204(self, stations_db):
        # Every station altitude is >= 7.0.
        report = check_program_deep(
            self._program("altitude > 0.0"), stations_db
        )
        found = report.by_code("T2-W204")
        assert found and "always true" in found[0].message

    def test_always_false_predicate_w204_and_empty_viewer_w205(
        self, stations_db
    ):
        report = check_program_deep(
            self._program("altitude > 10000.0"), stations_db
        )
        assert "T2-W204" in report.codes()
        assert "T2-W205" in report.codes()

    def test_proof_notes_i301(self, stations_db):
        # station_id is in [1, 5], so the division can never trap; the
        # ratio spans 50.0, so the predicate itself is not constant.
        report = check_program_deep(
            self._program("altitude / station_id > 50.0"), stations_db
        )
        notes = report.by_code("T2-I301")
        assert notes and any("div_zero" in d.message for d in notes)
        assert report.ok and not report.warnings()  # notes are not warnings

    def test_refinement_chains_through_restricts(self, stations_db):
        from repro.dataflow.boxes_db import AddTableBox, RestrictBox
        from repro.dataflow.graph import Program
        from repro.viewer.viewer import ViewerBox

        program = Program("chain")
        source = program.add_box(AddTableBox(table="Stations"))
        first = program.add_box(RestrictBox(predicate="altitude > 100.0"))
        second = program.add_box(RestrictBox(predicate="altitude > 50.0"))
        viewer = program.add_box(ViewerBox(name="win"))
        program.connect(source, "out", first, "in")
        program.connect(first, "out", second, "in")
        program.connect(second, "out", viewer, "in")
        report = check_program_deep(program, stations_db)
        # Downstream of "altitude > 100", the second predicate is dead-true.
        found = report.by_code("T2-W204")
        assert found and "always true" in found[0].message

    def test_lint_deep_cli(self, capsys):
        from repro.cli import main

        assert main(["lint", "--deep", "--figure", "fig4", "--json"]) == 0
        out = capsys.readouterr().out
        assert '"diagnostics"' in out
