"""Shared fixtures: a small deterministic weather database and sessions."""

from __future__ import annotations

import pytest

from repro.data.weather import build_weather_database
from repro.dbms.catalog import Database
from repro.dbms.relation import Table
from repro.dbms.tuples import Schema
from repro.ui.session import Session


@pytest.fixture(scope="session")
def weather_db() -> Database:
    """A small shared weather database.

    Session-scoped for speed; tests that mutate tables must use
    ``mutable_weather_db`` instead.
    """
    return build_weather_database(extra_stations=20, every_days=60)


@pytest.fixture()
def mutable_weather_db() -> Database:
    """A fresh weather database per test (safe to update)."""
    return build_weather_database(extra_stations=10, every_days=120)


@pytest.fixture()
def stations_db() -> Database:
    """A tiny hand-built Stations table with known contents."""
    db = Database("test")
    schema = Schema(
        [
            ("station_id", "int"),
            ("name", "text"),
            ("state", "text"),
            ("longitude", "float"),
            ("latitude", "float"),
            ("altitude", "float"),
        ]
    )
    table = Table("Stations", schema)
    table.insert_many(
        [
            {"station_id": 1, "name": "New Orleans", "state": "LA",
             "longitude": -90.07, "latitude": 29.95, "altitude": 7.0},
            {"station_id": 2, "name": "Baton Rouge", "state": "LA",
             "longitude": -91.15, "latitude": 30.45, "altitude": 56.0},
            {"station_id": 3, "name": "Shreveport", "state": "LA",
             "longitude": -93.75, "latitude": 32.52, "altitude": 141.0},
            {"station_id": 4, "name": "Dallas", "state": "TX",
             "longitude": -96.80, "latitude": 32.78, "altitude": 430.0},
            {"station_id": 5, "name": "Jackson", "state": "MS",
             "longitude": -90.18, "latitude": 32.30, "altitude": 279.0},
        ]
    )
    db.add_table(table)
    return db


@pytest.fixture()
def stations_session(stations_db: Database) -> Session:
    return Session(stations_db, "test-program")
