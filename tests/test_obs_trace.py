"""Unit tests for the span tracer (repro.obs.trace)."""

from __future__ import annotations

import threading

from repro.obs import NULL_SPAN, Tracer, current_tracer, push_tracer, tracing
from repro.obs.trace import install_from_env


class TestSpans:
    def test_nesting_assigns_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [s.name for s in tracer.finished()] == ["inner", "outer"]
        assert tracer.roots() == [outer]
        assert tracer.children_of(outer) == [inner]

    def test_attrs_at_open_and_via_set(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s", box=3) as span:
            assert span.set(rows=7) is span  # chainable
        assert span.attrs == {"box": 3, "rows": 7}

    def test_current_is_innermost_open_span(self):
        tracer = Tracer(enabled=True)
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_duration_is_monotonic_nonnegative(self):
        tracer = Tracer(enabled=True)
        with tracer.span("s") as span:
            pass
        assert span.end_ns is not None
        assert span.duration_ns >= 0
        assert span.duration_ms >= 0.0

    def test_exception_records_error_attr_and_propagates(self):
        tracer = Tracer(enabled=True)
        try:
            with tracer.span("boom") as span:
                raise ValueError("x")
        except ValueError:
            pass
        assert span.attrs["error"] == "ValueError"
        assert tracer.finished("boom") == [span]

    def test_out_of_order_finalization(self):
        # Generator-driven spans (plan nodes) can close after their parent;
        # the stack removal is by identity, so neither span corrupts the
        # other's bookkeeping.
        tracer = Tracer(enabled=True)
        outer = tracer.span("outer")
        outer.__enter__()
        inner = tracer.span("inner")
        inner.__enter__()
        outer.__exit__(None, None, None)  # parent closes first
        assert tracer.current() is inner
        inner.__exit__(None, None, None)
        assert tracer.current() is None
        assert inner.parent_id == outer.span_id

    def test_threads_build_separate_trees(self):
        tracer = Tracer(enabled=True)
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                seen[name] = span

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(3)]
        with tracer.span("main"):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        # Worker spans are roots of their own threads, not children of main.
        for name, span in seen.items():
            assert span.parent_id is None
        assert len(tracer.roots()) == 4

    def test_max_spans_cap_counts_dropped(self):
        tracer = Tracer(enabled=True, max_spans=2)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.finished()) == 2
        assert tracer.dropped == 3

    def test_clear(self):
        tracer = Tracer(enabled=True, max_spans=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        tracer.event("e")
        tracer.clear()
        assert tracer.finished() == []
        assert tracer.events == []
        assert tracer.dropped == 0
        assert tracer.origin_ns is None


class TestEvents:
    def test_event_records_parent_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            tracer.event("hit", box=2)
        (event,) = tracer.events
        assert event.name == "hit"
        assert event.attrs == {"box": 2}
        assert event.parent_id == outer.span_id

    def test_event_outside_any_span(self):
        tracer = Tracer(enabled=True)
        tracer.event("lonely")
        assert tracer.events[0].parent_id is None


class TestDisabled:
    def test_span_returns_null_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("x") is NULL_SPAN
        assert tracer.span("y", a=1) is NULL_SPAN

    def test_null_span_protocol_is_inert(self):
        with NULL_SPAN as span:
            assert span is NULL_SPAN
            assert span.set(rows=3) is NULL_SPAN
        assert NULL_SPAN.attrs == {}

    def test_nothing_recorded(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            tracer.event("e")
        assert tracer.finished() == []
        assert tracer.events == []


class TestInstallation:
    def test_global_tracer_tracks_env_activation(self):
        import os

        expected = os.environ.get("REPRO_TRACE") == "1"
        assert current_tracer().enabled is expected

    def test_push_tracer_scopes_and_restores(self):
        previous = current_tracer()
        fresh = Tracer(enabled=True)
        with push_tracer(fresh) as installed:
            assert installed is fresh
            assert current_tracer() is fresh
        assert current_tracer() is previous

    def test_push_tracer_restores_on_exception(self):
        previous = current_tracer()
        try:
            with push_tracer(Tracer(enabled=True)):
                raise RuntimeError
        except RuntimeError:
            pass
        assert current_tracer() is previous

    def test_tracing_convenience(self):
        with tracing() as tracer:
            assert current_tracer() is tracer
            with tracer.span("s"):
                pass
        assert len(tracer.finished()) == 1

    def test_install_from_env(self):
        previous = current_tracer()
        fresh = Tracer(enabled=False)
        with push_tracer(fresh):
            assert install_from_env({}) is False
            assert fresh.enabled is False
            assert install_from_env({"REPRO_TRACE": "0"}) is False
            assert install_from_env({"REPRO_TRACE": "1"}) is True
            assert fresh.enabled is True
        assert current_tracer() is previous
