"""Property test: programs the static checker accepts execute without
type/schema/expression errors.

Thirty deterministic seeds each build a random pipeline of relational boxes
over the Stations table.  Some generated programs are genuinely broken
(restricting on a projected-away field, scaling a text attribute, ...) — the
checker must reject those; every program it accepts must evaluate cleanly.
"""

from __future__ import annotations

import random

from repro.analyze.checker import check_program
from repro.dataflow.boxes_attr import AddAttributeBox, ScaleAttributeBox
from repro.dataflow.boxes_db import ProjectBox, RestrictBox, SampleBox
from repro.dataflow.boxes_extra import (
    DistinctBox,
    LimitBox,
    OrderByBox,
    RenameBox,
)
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dataflow.boxes_db import AddTableBox
from repro.errors import (
    DisplayError,
    ExpressionError,
    SchemaError,
    TypeCheckError,
)
from repro.viewer.viewer import ViewerBox

SEEDS = 30
FIELDS = ["station_id", "name", "state", "longitude", "latitude", "altitude"]
NUMERIC = ["station_id", "longitude", "latitude", "altitude"]


def random_step(rng: random.Random, step: int):
    """One random transform box.  Field references are drawn from the
    *original* schema, so a step after a Project may reference a field that
    no longer exists — exactly the defect class the checker must catch."""
    kind = rng.choice(
        ["restrict", "sample", "project", "addattr", "scale",
         "orderby", "distinct", "limit", "rename"]
    )
    if kind == "restrict":
        field = rng.choice(NUMERIC)
        return RestrictBox(predicate=f"{field} > {rng.uniform(-50, 150):.1f}")
    if kind == "sample":
        return SampleBox(probability=rng.choice([0.3, 0.6, 0.9]),
                         seed=rng.randint(0, 99))
    if kind == "project":
        count = rng.randint(1, len(FIELDS))
        return ProjectBox(fields=rng.sample(FIELDS, count))
    if kind == "addattr":
        field = rng.choice(NUMERIC)
        return AddAttributeBox(name=f"a{step}",
                               definition=f"{field} * {rng.uniform(0.5, 3):.1f}")
    if kind == "scale":
        # Sometimes picks a text field or a not-yet-added attribute: broken.
        name = rng.choice(FIELDS + [f"a{rng.randint(0, 4)}"])
        return ScaleAttributeBox(name=name, amount=rng.choice([0.5, 2.0]))
    if kind == "orderby":
        return OrderByBox(fields=[rng.choice(FIELDS)],
                          descending=rng.random() < 0.5)
    if kind == "distinct":
        return DistinctBox()
    if kind == "limit":
        return LimitBox(count=rng.randint(1, 8))
    return RenameBox(old=rng.choice(FIELDS), new=f"r{step}")


def random_program(seed: int):
    rng = random.Random(seed)
    program = Program(f"property-{seed}")
    upstream = program.add_box(AddTableBox(table="Stations"))
    for step in range(rng.randint(1, 5)):
        box_id = program.add_box(random_step(rng, step))
        program.connect(upstream, "out", box_id, "in")
        upstream = box_id
    viewer = program.add_box(ViewerBox())
    program.connect(upstream, "out", viewer, "in")
    return program, upstream


def test_accepted_programs_execute_cleanly(stations_db):
    accepted = rejected = 0
    for seed in range(SEEDS):
        program, last_box = random_program(seed)
        report = check_program(program, stations_db)
        if report.errors():
            rejected += 1
            continue
        accepted += 1
        engine = Engine(program, stations_db)
        try:
            engine.output_of(last_box, "out")
        except (TypeCheckError, SchemaError, ExpressionError,
                DisplayError) as exc:
            raise AssertionError(
                f"seed {seed}: checker accepted a program that fails at "
                f"runtime with {type(exc).__name__}: {exc}\n"
                + "\n".join(
                    box.describe() for box in program.boxes()
                )
            ) from exc
    # The generator is mostly-benign: a healthy majority must be accepted,
    # and the broken minority proves the checker rejects for cause.
    assert accepted >= SEEDS // 2, (accepted, rejected)
    assert rejected >= 1, "generator never produced a rejected program"


def test_rejected_programs_fail_for_cause(stations_db):
    """Spot-check: rejections carry error-severity diagnostics, never
    warnings alone."""
    for seed in range(SEEDS):
        program, _last = random_program(seed)
        report = check_program(program, stations_db)
        if report.errors():
            assert not report.ok
            for diagnostic in report.errors():
                assert diagnostic.code.startswith("T2-E")
                assert diagnostic.box_id is not None
