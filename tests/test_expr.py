"""Unit tests: the expression AST (repro.dbms.expr)."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.dbms import types as T
from repro.dbms.expr import (
    Binary,
    Call,
    Conditional,
    FieldRef,
    FunctionDef,
    Literal,
    Unary,
    function_names,
    lookup_function,
    register_function,
)
from repro.dbms.tuples import Schema, Tuple
from repro.errors import EvaluationError, ExpressionError, TypeCheckError

SCHEMA = Schema(
    [("a", "int"), ("b", "float"), ("s", "text"), ("flag", "bool"), ("d", "date")]
)
ROW = Tuple(
    SCHEMA,
    {"a": 6, "b": 2.5, "s": "hello", "flag": True, "d": dt.date(1992, 3, 14)},
)


class TestLiterals:
    def test_int_literal(self):
        lit = Literal(5)
        assert lit.infer(SCHEMA) is T.INT
        assert lit.evaluate(ROW) == 5

    def test_text_literal_str_escapes_quotes(self):
        assert str(Literal("o'brien")) == "'o''brien'"

    def test_date_literal_renders_as_call(self):
        assert str(Literal(dt.date(1990, 1, 2))) == "date('1990-01-02')"

    def test_fields_used_empty(self):
        assert Literal(1).fields_used() == set()


class TestFieldRef:
    def test_infer_and_eval(self):
        ref = FieldRef("b")
        assert ref.infer(SCHEMA) is T.FLOAT
        assert ref.evaluate(ROW) == 2.5

    def test_unknown_field(self):
        with pytest.raises(TypeCheckError, match="unknown field"):
            FieldRef("zzz").infer(SCHEMA)

    def test_fields_used(self):
        assert FieldRef("a").fields_used() == {"a"}


class TestUnary:
    def test_negate_int(self):
        expr = Unary("-", FieldRef("a"))
        assert expr.infer(SCHEMA) is T.INT
        assert expr.evaluate(ROW) == -6

    def test_not_bool(self):
        expr = Unary("not", FieldRef("flag"))
        assert expr.infer(SCHEMA) is T.BOOL
        assert expr.evaluate(ROW) is False

    def test_negate_text_rejected(self):
        with pytest.raises(TypeCheckError):
            Unary("-", FieldRef("s")).infer(SCHEMA)

    def test_not_numeric_rejected(self):
        with pytest.raises(TypeCheckError):
            Unary("not", FieldRef("a")).infer(SCHEMA)

    def test_unknown_operator(self):
        with pytest.raises(ExpressionError):
            Unary("~", FieldRef("a"))


class TestArithmetic:
    def test_int_plus_int_is_int(self):
        expr = Binary("+", FieldRef("a"), Literal(2))
        assert expr.infer(SCHEMA) is T.INT
        assert expr.evaluate(ROW) == 8

    def test_int_plus_float_promotes(self):
        expr = Binary("+", FieldRef("a"), FieldRef("b"))
        assert expr.infer(SCHEMA) is T.FLOAT
        assert expr.evaluate(ROW) == 8.5

    def test_division_always_float(self):
        expr = Binary("/", Literal(7), Literal(2))
        assert expr.infer(SCHEMA) is T.FLOAT
        assert expr.evaluate(ROW) == 3.5

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError, match="division by zero"):
            Binary("/", Literal(1), Literal(0)).evaluate(ROW)

    def test_modulo_by_zero(self):
        with pytest.raises(EvaluationError, match="modulo by zero"):
            Binary("%", Literal(1), Literal(0)).evaluate(ROW)

    def test_arith_on_text_rejected(self):
        with pytest.raises(TypeCheckError):
            Binary("*", FieldRef("s"), Literal(2)).infer(SCHEMA)


class TestComparison:
    @pytest.mark.parametrize(
        "op,expected",
        [("=", False), ("!=", True), ("<", False), ("<=", False),
         (">", True), (">=", True)],
    )
    def test_numeric_comparisons(self, op, expected):
        expr = Binary(op, FieldRef("a"), Literal(3))
        assert expr.infer(SCHEMA) is T.BOOL
        assert expr.evaluate(ROW) is expected

    def test_mixed_numeric_comparison_allowed(self):
        expr = Binary("<", FieldRef("a"), FieldRef("b"))
        assert expr.infer(SCHEMA) is T.BOOL

    def test_text_comparison(self):
        expr = Binary("=", FieldRef("s"), Literal("hello"))
        assert expr.evaluate(ROW) is True

    def test_date_comparison(self):
        expr = Binary(">", FieldRef("d"), Literal(dt.date(1990, 1, 1)))
        assert expr.evaluate(ROW) is True

    def test_text_vs_int_rejected(self):
        with pytest.raises(TypeCheckError, match="cannot compare"):
            Binary("=", FieldRef("s"), FieldRef("a")).infer(SCHEMA)


class TestLogic:
    def test_and_or(self):
        expr = Binary("or", Binary("and", FieldRef("flag"), Literal(False)),
                      Literal(True))
        assert expr.evaluate(ROW) is True

    def test_short_circuit_and(self):
        # The right side would divide by zero if evaluated.
        poison = Binary("=", Binary("/", Literal(1), Literal(0)), Literal(1.0))
        expr = Binary("and", Literal(False), poison)
        assert expr.evaluate(ROW) is False

    def test_short_circuit_or(self):
        poison = Binary("=", Binary("/", Literal(1), Literal(0)), Literal(1.0))
        expr = Binary("or", Literal(True), poison)
        assert expr.evaluate(ROW) is True

    def test_logic_on_int_rejected(self):
        with pytest.raises(TypeCheckError):
            Binary("and", FieldRef("a"), FieldRef("flag")).infer(SCHEMA)


class TestConcat:
    def test_concat(self):
        expr = Binary("||", FieldRef("s"), Literal(" world"))
        assert expr.infer(SCHEMA) is T.TEXT
        assert expr.evaluate(ROW) == "hello world"

    def test_concat_non_text_rejected(self):
        with pytest.raises(TypeCheckError):
            Binary("||", FieldRef("a"), FieldRef("s")).infer(SCHEMA)


class TestConditional:
    def test_matching_branches(self):
        expr = Conditional(FieldRef("flag"), Literal(1), Literal(2))
        assert expr.infer(SCHEMA) is T.INT
        assert expr.evaluate(ROW) == 1

    def test_numeric_branches_promote(self):
        expr = Conditional(FieldRef("flag"), Literal(1), Literal(2.5))
        assert expr.infer(SCHEMA) is T.FLOAT

    def test_mismatched_branches_rejected(self):
        with pytest.raises(TypeCheckError, match="mismatched"):
            Conditional(FieldRef("flag"), Literal(1), Literal("x")).infer(SCHEMA)

    def test_non_bool_condition_rejected(self):
        with pytest.raises(TypeCheckError):
            Conditional(FieldRef("a"), Literal(1), Literal(2)).infer(SCHEMA)

    def test_fields_used_union(self):
        expr = Conditional(FieldRef("flag"), FieldRef("a"), FieldRef("b"))
        assert expr.fields_used() == {"flag", "a", "b"}


class TestBuiltinFunctions:
    def test_abs_preserves_int(self):
        expr = Call("abs", [Unary("-", FieldRef("a"))])
        assert expr.infer(SCHEMA) is T.INT
        assert expr.evaluate(ROW) == 6

    def test_sqrt(self):
        assert Call("sqrt", [Literal(9.0)]).evaluate(ROW) == 3.0

    def test_sqrt_negative(self):
        with pytest.raises(EvaluationError):
            Call("sqrt", [Literal(-1.0)]).evaluate(ROW)

    def test_ln_nonpositive(self):
        with pytest.raises(EvaluationError):
            Call("ln", [Literal(0.0)]).evaluate(ROW)

    def test_floor_ceil_round(self):
        assert Call("floor", [Literal(2.7)]).evaluate(ROW) == 2
        assert Call("ceil", [Literal(2.1)]).evaluate(ROW) == 3
        assert Call("round", [Literal(2.5)]).evaluate(ROW) == 2  # banker's

    def test_min_max(self):
        assert Call("min", [Literal(3), Literal(1), Literal(2)]).evaluate(ROW) == 1
        assert Call("max", [FieldRef("a"), Literal(2)]).evaluate(ROW) == 6

    def test_min_needs_two_args(self):
        with pytest.raises(TypeCheckError):
            Call("min", [Literal(1)]).infer(SCHEMA)

    def test_date_parts(self):
        assert Call("year", [FieldRef("d")]).evaluate(ROW) == 1992
        assert Call("month", [FieldRef("d")]).evaluate(ROW) == 3
        assert Call("day", [FieldRef("d")]).evaluate(ROW) == 14
        assert Call("day_of_year", [FieldRef("d")]).evaluate(ROW) == 74

    def test_date_constructor(self):
        expr = Call("date", [Literal("1990-05-01")])
        assert expr.infer(SCHEMA) is T.DATE
        assert expr.evaluate(ROW) == dt.date(1990, 5, 1)

    def test_string_functions(self):
        assert Call("upper", [FieldRef("s")]).evaluate(ROW) == "HELLO"
        assert Call("lower", [Literal("ABC")]).evaluate(ROW) == "abc"
        assert Call("length", [FieldRef("s")]).evaluate(ROW) == 5
        assert Call("substr", [FieldRef("s"), Literal(1), Literal(3)]).evaluate(ROW) == "ell"

    def test_str_renders_default_display(self):
        assert Call("str", [FieldRef("b")]).evaluate(ROW) == "2.5"
        assert Call("str", [FieldRef("d")]).evaluate(ROW) == "1992-03-14"

    def test_unknown_function(self):
        with pytest.raises(ExpressionError, match="unknown function"):
            Call("bogus", [])

    def test_function_names_sorted(self):
        names = function_names()
        assert names == sorted(names)
        assert "circle" in names  # drawable constructors registered

    def test_register_custom_function(self):
        fn = FunctionDef(
            "twice",
            lambda arg_types: T.FLOAT,
            lambda v: v * 2,
        )
        register_function(fn)
        assert lookup_function("twice") is fn
        assert Call("twice", [Literal(2.0)]).evaluate(ROW) == 4.0

    def test_call_wraps_internal_errors(self):
        register_function(
            FunctionDef("explode", lambda arg_types: T.INT,
                        lambda: 1 / 0)
        )
        with pytest.raises(EvaluationError, match="explode"):
            Call("explode", []).evaluate(ROW)
