"""Integration tests: every paper figure scenario, end to end.

These assert the *semantic content* each figure demonstrates — what is
visible at which elevation, what travels where — over the shared synthetic
weather database.
"""

from __future__ import annotations

import pytest

from repro.core.scenarios import (
    NAME_MAX_ELEVATION,
    band_center,
    build_fig1_table_view,
    build_fig4_station_map,
    build_fig7_overlay,
    build_fig8_wormholes,
    build_fig9_magnifier,
    build_fig10_stitch,
    build_fig11_replicate,
)


class TestFig1TableView:
    def test_program_shape(self, weather_db):
        scenario = build_fig1_table_view(weather_db)
        program = scenario.session.program
        types = sorted(box.type_name for box in program.boxes())
        assert types == ["AddTable", "Project", "Restrict", "Viewer"]

    def test_restrict_limits_to_louisiana(self, weather_db):
        scenario = build_fig1_table_view(weather_db)
        relation = scenario.session.inspect(scenario["project"])
        assert all("LA" not in row.as_dict().get("state", "")
                   for row in relation.rows) or True
        # state was projected out; check via the restrict box instead.
        restricted = scenario.session.inspect(scenario["restrict"])
        assert all(row["state"] == "LA" for row in restricted.rows)

    def test_default_table_format(self, weather_db):
        # §5.2: terminal-monitor listing — default location/display.
        scenario = build_fig1_table_view(weather_db)
        relation = scenario.session.inspect(scenario["project"])
        assert not relation.has_custom_location
        assert not relation.has_custom_display
        view0 = relation.view_at(0)
        assert relation.location_of(view0) == (0.0, 0.0)
        drawables = relation.display_of(view0)
        assert all(d.kind == "text" for d in drawables)

    def test_canvas_shows_rows(self, weather_db):
        scenario = build_fig1_table_view(weather_db)
        canvas = scenario.window().render()
        assert canvas.count_nonbackground() > 500

    def test_intermediate_results_inspectable(self, weather_db):
        # "The user can also inspect any of the partial results." (§4)
        scenario = build_fig1_table_view(weather_db)
        full = scenario.session.inspect(scenario["stations"])
        narrowed = scenario.session.inspect(scenario["restrict"])
        assert len(full.rows) > len(narrowed.rows)


class TestFig4StationMap:
    def test_geographic_location(self, weather_db):
        scenario = build_fig4_station_map(weather_db)
        relation = scenario.session.inspect(scenario["tail"])
        view0 = relation.view_at(0)
        x, y, altitude = relation.location_of(view0)
        assert x == view0["longitude"]
        assert y == view0["latitude"]
        assert altitude == view0["altitude"]

    def test_display_is_circle_plus_name(self, weather_db):
        scenario = build_fig4_station_map(weather_db)
        relation = scenario.session.inspect(scenario["tail"])
        drawables = relation.display_of(relation.view_at(0))
        kinds = [d.kind for d in drawables]
        assert kinds == ["circle", "text"]
        # Name positioned below the circle (§5.1's offset example).
        assert drawables[1].offset[1] < 0

    def test_altitude_slider_dimension(self, weather_db):
        scenario = build_fig4_station_map(weather_db)
        relation = scenario.session.inspect(scenario["tail"])
        assert relation.dimension == 3
        assert relation.slider_dims == ("Altitude",)

    def test_slider_filters_stations(self, weather_db):
        scenario = build_fig4_station_map(weather_db)
        window = scenario.window()
        all_items = len(window.viewer.render().all_items())
        window.viewer.set_slider("Altitude", 0.0, 50.0)
        low_items = len(window.viewer.render().all_items())
        assert 0 < low_items < all_items

    def test_renders_all_louisiana_stations(self, weather_db):
        scenario = build_fig4_station_map(weather_db)
        result = scenario.window().viewer.render()
        stations = {item.row["name"] for item in result.all_items()}
        assert "New Orleans" in stations
        assert "Shreveport" in stations


class TestFig7Overlay:
    def test_composite_structure(self, weather_db):
        scenario = build_fig7_overlay(weather_db)
        composite = scenario.window().viewer.displayable()
        assert len(composite) == 3  # map + coarse + detailed

    def test_names_visible_only_at_low_elevation(self, weather_db):
        scenario = build_fig7_overlay(weather_db)
        window = scenario.window()
        window.viewer.set_elevation(NAME_MAX_ELEVATION + 8)
        high = window.viewer.render()
        high_kinds = {item.drawable_kind for item in high.all_items()}
        assert "text" not in high_kinds  # names illegible → hidden
        window.viewer.set_elevation(NAME_MAX_ELEVATION / 2)
        low = window.viewer.render()
        low_kinds = {item.drawable_kind for item in low.all_items()}
        assert "text" in low_kinds

    def test_map_invariant_under_altitude_slider(self, weather_db):
        # §6.1: the 2-D map relation is invariant in the Altitude dimension.
        scenario = build_fig7_overlay(weather_db)
        window = scenario.window()
        window.viewer.set_slider("Altitude", 10000.0, 20000.0)
        result = window.viewer.render()
        names = {item.relation_name for item in result.all_items()}
        assert any("Map" in name for name in names)  # map still drawn
        assert not any(
            item.drawable_kind == "circle" for item in result.all_items()
        )  # all stations slider-culled

    def test_elevation_map_shows_ranges_and_order(self, weather_db):
        scenario = build_fig7_overlay(weather_db)
        bars = scenario.window().elevation_map().bars()
        assert len(bars) == 3
        assert bars[-1].range.maximum == NAME_MAX_ELEVATION

    def test_elevation_map_direct_manipulation(self, weather_db):
        scenario = build_fig7_overlay(weather_db)
        window = scenario.window()
        emap = window.elevation_map()
        detailed_bar = emap.bars()[-1]
        emap.set_range(detailed_bar.name, 0.0, 100.0)
        window.viewer.set_elevation(50.0)
        result = window.viewer.render()
        assert any(item.drawable_kind == "text" for item in result.all_items())

    def test_dimension_mismatch_warning_recorded(self, weather_db):
        scenario = build_fig7_overlay(weather_db)
        composite = scenario.window().viewer.displayable()
        assert any("mismatch" in warning for warning in composite.warnings)


class TestFig8Wormholes:
    @pytest.fixture()
    def scenario(self, weather_db):
        built = build_fig8_wormholes(weather_db)
        viewer = built["map_window"].viewer
        viewer.pan_to(-90.07, 29.95)  # New Orleans
        viewer.set_elevation(1.5)
        viewer.render()
        return built

    def test_wormholes_appear_only_when_zoomed(self, weather_db, scenario):
        viewer = scenario["map_window"].viewer
        assert viewer.visible_wormholes()
        viewer.set_elevation(30.0)
        viewer.render()
        assert not viewer.visible_wormholes()

    def test_traversal_lands_on_station_band(self, scenario):
        session = scenario.session
        viewer = scenario["map_window"].viewer
        target = viewer.visible_wormholes()[0]
        station_id = target.row["station_id"]
        destination = session.navigator.traverse(target)
        assert destination.name == "tempseries"
        expected = band_center(station_id)
        assert destination.view().center == pytest.approx(expected)

    def test_series_canvas_shows_temperature_points(self, scenario):
        session = scenario.session
        viewer = scenario["map_window"].viewer
        destination = session.navigator.traverse(viewer.visible_wormholes()[0])
        result = destination.render()
        assert len(result.all_items()) >= 10

    def test_rear_view_mirror_after_passage(self, scenario):
        session = scenario.session
        viewer = scenario["map_window"].viewer
        mirror = scenario["map_window"].mirror
        assert not mirror.has_view()
        destination = session.navigator.traverse(viewer.visible_wormholes()[0])
        destination.set_elevation(20.0)
        assert mirror.has_view()
        canvas = mirror.render()
        assert canvas.count_nonbackground() > 0
        # The way home: return wormholes on the underside (§6.3).
        assert mirror.visible_wormholes()

    def test_go_back_restores_map(self, scenario):
        session = scenario.session
        viewer = scenario["map_window"].viewer
        center_before = viewer.view().center
        session.navigator.traverse(viewer.visible_wormholes()[0])
        returned = session.navigator.go_back()
        assert returned.name == "map"
        assert returned.view().center == center_before

    def test_nested_rendering_inside_wormhole_frame(self, scenario):
        viewer = scenario["map_window"].viewer
        result = viewer.render()
        hole = viewer.visible_wormholes()[0]
        x0, y0, x1, y1 = hole.bbox
        interior = result.canvas.region_nonbackground(
            int(x0) + 2, int(y0) + 2, int(x1) - 2, int(y1) - 2
        )
        assert interior > 0  # the destination canvas shows through


class TestFig9Magnifier:
    def test_alternate_display_attribute_exists(self, weather_db):
        scenario = build_fig9_magnifier(weather_db)
        relation = scenario.session.inspect(scenario["tee"], "out1")
        assert "precip_display" in relation.alternate_displays()

    def test_swap_branch_shows_precipitation(self, weather_db):
        scenario = build_fig9_magnifier(weather_db)
        swapped = scenario.session.inspect(scenario["swap_tail"])
        drawables = swapped.display_of(swapped.view_at(0))
        assert drawables[0].color == (66, 133, 66)  # green = precipitation

    def test_magnifier_composites_onto_canvas(self, weather_db):
        scenario = build_fig9_magnifier(weather_db)
        window = scenario.window()
        canvas = window.render()
        glass = scenario["glass"]
        x, y, w, h = glass.rect
        assert canvas.pixel(int(x), int(y)) == (64, 64, 64)  # frame

    def test_magnifier_zooms(self, weather_db):
        scenario = build_fig9_magnifier(weather_db)
        glass = scenario["glass"]
        outer = scenario.window().viewer.view()
        assert glass.inner_view().elevation == pytest.approx(
            outer.elevation / 4.0
        )

    def test_same_dimension_enforced(self, weather_db):
        scenario = build_fig9_magnifier(weather_db)
        assert scenario["glass"].inner_view() is not None


class TestFig10Stitch:
    def test_group_members(self, weather_db):
        scenario = build_fig10_stitch(weather_db)
        group = scenario.window().viewer.displayable()
        assert group.member_names() == ["temperature", "precipitation"]
        assert group.layout == "horizontal"

    def test_both_members_render(self, weather_db):
        scenario = build_fig10_stitch(weather_db)
        window = scenario.window()
        result = window.viewer.render()
        assert result.items["temperature"]
        assert result.items["precipitation"]

    def test_slaving_propagates_date_range(self, weather_db):
        # "whenever the user changes the date range under temperature, the
        # precipitation display changes to display the same date range."
        scenario = build_fig10_stitch(weather_db)
        viewer = scenario.window().viewer
        before = viewer.view("precipitation").center
        viewer.pan(30.0, 0.0, member="temperature")
        after = viewer.view("precipitation").center
        assert after[0] == pytest.approx(before[0] + 30.0)

    def test_window_ops_affect_whole_group(self, weather_db):
        # §7.3: a window operation on one member applies to all — a group is
        # one canvas window here, so iconifying hides the whole group.
        scenario = build_fig10_stitch(weather_db)
        window = scenario.window()
        window.iconify()
        assert window.iconified


class TestFig11Replicate:
    def test_partition_members(self, weather_db):
        scenario = build_fig11_replicate(weather_db)
        group = scenario.window().viewer.displayable()
        assert group.member_names() == ["part1", "part2"]

    def test_partition_boundary_at_1990(self, weather_db):
        scenario = build_fig11_replicate(weather_db)
        group = scenario.window().viewer.displayable()
        early = group.member("part1").entries[0].relation
        late = group.member("part2").entries[0].relation
        assert all(row["obs_date"].year < 1990 for row in early.rows)
        assert all(row["obs_date"].year >= 1990 for row in late.rows)
        assert len(early.rows) > 0
        assert len(late.rows) > 0

    def test_partition_is_exhaustive(self, weather_db):
        scenario = build_fig11_replicate(weather_db)
        source = scenario.session.inspect(scenario["temperature"])
        group = scenario.window().viewer.displayable()
        total = sum(
            len(composite.entries[0].relation.rows) for __, composite in group
        )
        assert total == len(source.rows)

    def test_members_pan_independently(self, weather_db):
        scenario = build_fig11_replicate(weather_db)
        viewer = scenario.window().viewer
        assert viewer.view("part1").center != viewer.view("part2").center

    def test_renders(self, weather_db):
        scenario = build_fig11_replicate(weather_db)
        canvas = scenario.window().render()
        assert canvas.count_nonbackground() > 100
