"""Unit + integration tests: the columnar execution backend.

Covers the batch container (repro.dbms.columnar), the expression compiler
(repro.dbms.expr_compile), every vectorized kernel against its serial row
twin, the per-subtree backend selection in ``columnarize_plan`` /
``optimize_plan``, the planverify adapter invariants, EXPLAIN/backend
annotation, the engine/env knobs, and row↔columnar pixel equality for
every paper figure scenario.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.dbms import plan as P
from repro.dbms import types as T
from repro.dbms.columnar import (
    ColumnBatch,
    ColumnarConfig,
    cached_batch,
    columnar_config_from_env,
    default_columnar_config,
    resolve_columnar_config,
    set_default_columnar_config,
)
from repro.dbms.expr_compile import (
    VectorFallback,
    compile_expression,
    compile_predicate,
    vectorizable,
)
from repro.dbms.parser import parse_expression, parse_predicate
from repro.dbms.plan_rewrite import columnarize_plan, optimize_plan
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema
from repro.obs import global_registry

NUMS = Schema([("n", "int"), ("x", "float"), ("label", "text")])

# Canonical declarations — must match the emitting kernels in repro.dbms.plan.
_BATCHES = ("columnar.batches", "column batches produced by columnar kernels")
_FALLBACK = ("columnar.fallback",
             "column batches re-evaluated on the row path after a data hazard")


def num_rows(count: int, seed: int = 11) -> RowSet:
    rng = random.Random(seed)
    return RowSet.from_dicts(NUMS, [
        {"n": rng.randint(-50, 50), "x": rng.uniform(-10.0, 10.0),
         "label": rng.choice(["a", "b", "c"])}
        for __ in range(count)
    ])


def values_of(node: P.PlanNode) -> list[list]:
    return [row.values for row in node.execute()]


def fallback_delta(fn):
    counter = global_registry().counter(*_FALLBACK)
    before = counter.value()
    result = fn()
    return result, counter.value() - before


# ---------------------------------------------------------------------------
# ColumnBatch
# ---------------------------------------------------------------------------


class TestColumnBatch:
    def test_roundtrip_preserves_identity(self):
        rows = num_rows(10).rows
        batch = ColumnBatch.from_rows(NUMS, rows)
        assert list(batch.to_rows()) == list(rows)
        # Unmodified batches hand back the *same* Tuple objects.
        assert all(a is b for a, b in zip(batch.to_rows(), rows))

    def test_dtypes(self):
        batch = ColumnBatch.from_rows(NUMS, num_rows(5).rows)
        assert batch.column("n").dtype == np.int64
        assert batch.column("x").dtype == np.float64
        assert batch.column("label").dtype == object

    def test_take_mask_keeps_identity(self):
        rows = num_rows(20).rows
        batch = ColumnBatch.from_rows(NUMS, rows)
        mask = batch.column("n") > 0
        kept = batch.take_mask(mask)
        expected = [row for row, keep in zip(rows, mask) if keep]
        assert list(kept.to_rows()) == expected
        assert all(a is b for a, b in zip(kept.to_rows(), expected))

    def test_concat_and_slice(self):
        rows = num_rows(30).rows
        first = ColumnBatch.from_rows(NUMS, rows[:12])
        second = ColumnBatch.from_rows(NUMS, rows[12:])
        merged = ColumnBatch.concat([first, second])
        assert len(merged) == 30
        assert list(merged.slice(5, 9).to_rows()) == list(rows[5:9])

    def test_project_and_rename(self):
        batch = ColumnBatch.from_rows(NUMS, num_rows(6).rows)
        projected = batch.project(["x", "n"])
        assert [f.name for f in projected.schema.fields] == ["x", "n"]
        renamed = batch.rename("n", "m")
        assert renamed.column("m").tolist() == batch.column("n").tolist()

    def test_cached_batch_is_id_keyed(self):
        rows = num_rows(8).rows
        assert cached_batch(rows, NUMS) is cached_batch(rows, NUMS)
        other = num_rows(8, seed=12).rows
        assert cached_batch(other, NUMS) is not cached_batch(rows, NUMS)


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------


class TestExprCompile:
    def compiled(self, source: str, schema: Schema = NUMS):
        return compile_expression(parse_expression(source, schema), schema)

    def test_arithmetic_and_comparison_compile(self):
        batch = ColumnBatch.from_rows(NUMS, num_rows(50).rows)
        program = self.compiled("n * 2 + 1")
        assert program is not None
        assert program(batch).tolist() == \
            [n * 2 + 1 for n in batch.column("n").tolist()]
        mask = compile_predicate(
            parse_predicate("(x > 0.0) and (n < 10)", NUMS), NUMS)
        assert mask is not None
        assert mask(batch).tolist() == [
            x > 0.0 and n < 10
            for x, n in zip(batch.column("x"), batch.column("n"))
        ]

    def test_transcendentals_stay_on_the_row_backend(self):
        # Math library differences could change pixels; sin/cos/log are
        # deliberately not vectorized.
        assert self.compiled("sin(x)") is None
        assert not vectorizable(parse_expression("sin(x)", NUMS), NUMS)

    def test_division_hazard_raises_vector_fallback(self):
        rows = RowSet.from_dicts(NUMS, [
            {"n": 2, "x": 1.0, "label": "a"},
            {"n": 0, "x": 2.0, "label": "b"},
        ])
        program = self.compiled("10 / n")
        with pytest.raises(VectorFallback):
            program(ColumnBatch.from_rows(NUMS, rows.rows))

    def test_huge_int_comparison_falls_back(self):
        rows = RowSet.from_dicts(NUMS, [
            {"n": 2 ** 60, "x": 1.0, "label": "a"},
        ])
        program = compile_predicate(parse_predicate("n > 100.0", NUMS), NUMS)
        with pytest.raises(VectorFallback):
            program(ColumnBatch.from_rows(NUMS, rows.rows))

    def test_type_errors_do_not_compile(self):
        assert compile_predicate(
            parse_expression("n + 1", NUMS), NUMS) is None


# ---------------------------------------------------------------------------
# Kernels against their serial twins
# ---------------------------------------------------------------------------


def columnarized(root: P.PlanNode) -> P.PlanNode:
    new_root, log = columnarize_plan(root, ColumnarConfig())
    assert any("columnarized" in line for line in log), log
    return new_root


class TestKernelEquivalence:
    def test_restrict(self):
        rows = num_rows(1000)
        pred = parse_predicate("(n > -10) and (x < 5.0)", NUMS)
        serial = values_of(P.RestrictNode(P.ScanNode(rows), pred))
        vector = values_of(columnarized(
            P.RestrictNode(P.ScanNode(rows), pred)))
        assert serial == vector

    def test_restrict_short_circuit_hazard_falls_back(self):
        rows = RowSet.from_dicts(NUMS, [
            {"n": n, "x": float(n), "label": "a"} for n in (4, 0, -3, 2)
        ])
        pred = parse_predicate("(n > 0) and (10 / n > 3)", NUMS)
        serial = values_of(P.RestrictNode(P.ScanNode(rows), pred))
        (vector, fell_back) = fallback_delta(lambda: values_of(
            columnarized(P.RestrictNode(P.ScanNode(rows), pred))))
        assert serial == vector
        assert fell_back >= 1

    def test_project_rename_chain(self):
        rows = num_rows(500)
        def build():
            return P.RenameNode(
                P.ProjectNode(
                    P.RestrictNode(P.ScanNode(rows),
                                   parse_predicate("n >= 0", NUMS)),
                    ["x", "n"],
                ),
                "n", "m",
            )
        assert values_of(build()) == values_of(columnarized(build()))

    def test_orderby_is_stable_and_matches(self):
        rows = num_rows(800)
        for descending in (False, True):
            def build():
                return P.OrderByNode(P.ScanNode(rows), ["n"],
                                     descending=descending)
            assert values_of(build()) == values_of(columnarized(build())), \
                f"descending={descending}"

    def test_distinct(self):
        dup_schema = Schema([("n", "int"), ("x", "float")])
        rng = random.Random(5)
        rows = RowSet.from_dicts(dup_schema, [
            {"n": rng.randint(0, 5), "x": rng.choice([0.0, -0.0, 1.5])}
            for __ in range(400)
        ])
        def build():
            return P.DistinctNode(P.ScanNode(rows))
        assert values_of(build()) == values_of(columnarized(build()))

    def test_hash_join(self):
        left_schema = Schema([("key", "int"), ("a", "float")])
        right_schema = Schema([("ref", "int"), ("b", "text")])
        rng = random.Random(6)
        left = RowSet.from_dicts(left_schema, [
            {"key": i, "a": rng.uniform(0, 1)} for i in range(80)
        ])
        right = RowSet.from_dicts(right_schema, [
            {"ref": rng.randint(0, 99), "b": f"r{i}"} for i in range(400)
        ])
        def build():
            return P.HashJoinNode(P.ScanNode(left), P.ScanNode(right),
                                  "key", "ref")
        assert values_of(build()) == values_of(columnarized(build()))

    def test_limit_kernel_by_explicit_construction(self):
        rows = num_rows(700)
        serial = values_of(P.LimitNode(P.ScanNode(rows), 123))
        vector = values_of(P.ToRowsNode(P.ColumnarLimitNode(
            P.ToColumnsNode(P.ScanNode(rows), batch_rows=100), 123)))
        assert serial == vector

    def test_small_batch_rows_round_trip(self):
        rows = num_rows(1000)
        pred = parse_predicate("x > 0.0", NUMS)
        serial = values_of(P.RestrictNode(P.ScanNode(rows), pred))
        root, __ = columnarize_plan(
            P.RestrictNode(P.ScanNode(rows), pred),
            ColumnarConfig(batch_rows=64))
        assert values_of(root) == serial


# ---------------------------------------------------------------------------
# Backend selection and EXPLAIN fidelity
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_log_names_the_selected_subtree(self):
        rows = num_rows(50)
        root, log = columnarize_plan(
            P.OrderByNode(P.ScanNode(rows), ["n"]), ColumnarConfig())
        assert isinstance(root, P.ToRowsNode)
        assert any("columnarized subtree at OrderBy" in line for line in log)

    def test_limit_is_never_auto_selected(self):
        rows = num_rows(50)
        root, log = columnarize_plan(
            P.LimitNode(
                P.RestrictNode(P.ScanNode(rows),
                               parse_predicate("n > 0", NUMS)),
                5,
            ),
            ColumnarConfig(),
        )
        assert type(root) is P.LimitNode          # stays on the row backend
        assert isinstance(root.children[0], P.ToRowsNode)

    def test_text_sort_keys_not_worthwhile(self):
        rows = num_rows(50)
        root, log = columnarize_plan(
            P.OrderByNode(P.ScanNode(rows), ["label"]), ColumnarConfig())
        assert type(root) is P.OrderByNode
        assert log == []

    def test_explain_counters_fold_back_to_serial_values(self):
        rows = num_rows(1000)
        pred = parse_predicate("n > 0", NUMS)
        serial = P.RestrictNode(P.ScanNode(rows), pred)
        serial.execute()

        template = P.RestrictNode(P.ScanNode(rows), pred)
        root, __ = columnarize_plan(template, ColumnarConfig())
        root.execute()
        # The kernels fold rows_in/rows_out/opens into the serial nodes
        # they replaced, so EXPLAIN reads backend-independently.
        assert template.stats.rows_in == serial.stats.rows_in
        assert template.stats.rows_out == serial.stats.rows_out
        assert template.stats.opens == serial.stats.opens
        scan_t, scan_s = template.children[0], serial.children[0]
        assert scan_t.stats.rows_out == scan_s.stats.rows_out
        assert scan_t.stats.batches == scan_s.stats.batches

    def test_explain_text_tags_columnar_nodes(self):
        rows = num_rows(100)
        root, __ = columnarize_plan(
            P.RestrictNode(P.ScanNode(rows), parse_predicate("n > 0", NUMS)),
            ColumnarConfig())
        root.execute()
        text = root.explain()
        assert "Restrict[(n > 0)] <columnar>" in text
        assert "ToColumns" in text and "ToRows" in text

    def test_optimize_plan_composes_and_verifies(self):
        from repro.analyze.planverify import assert_valid_plan
        from repro.dbms.plan_parallel import ParallelConfig

        rows = num_rows(2000)
        pred = parse_predicate("x > 0.0", NUMS)
        serial = values_of(P.RestrictNode(P.ScanNode(rows), pred))
        previous = P.plan_verifier()
        P.set_plan_verifier(assert_valid_plan)
        try:
            root, log = optimize_plan(
                P.RestrictNode(P.ScanNode(rows), pred),
                parallel=ParallelConfig(workers=2, cache=False,
                                        morsel_size=256),
                columnar=ColumnarConfig(),
            )
            assert values_of(root) == serial
        finally:
            P.set_plan_verifier(previous)


class TestPlanVerifierInvariants:
    def test_missing_to_columns_adapter_fails(self):
        from repro.analyze.planverify import verify_plan

        rows = num_rows(10)
        bad = P.ColumnarProjectNode(P.ScanNode(rows), ["n"])
        report = verify_plan(bad)
        assert not report.ok
        assert "ToColumns" in report.render()

    def test_missing_to_rows_adapter_fails(self):
        from repro.analyze.planverify import verify_plan

        rows = num_rows(10)
        bad = P.LimitNode(P.ToColumnsNode(P.ScanNode(rows)), 3)
        report = verify_plan(bad)
        assert not report.ok

    def test_well_formed_region_verifies(self):
        from repro.analyze.planverify import assert_valid_plan

        rows = num_rows(10)
        root = columnarized(
            P.OrderByNode(P.ScanNode(rows), ["n"]))
        assert_valid_plan(root)


# ---------------------------------------------------------------------------
# Config knobs
# ---------------------------------------------------------------------------


class TestConfigKnobs:
    def test_env_parsing(self):
        assert columnar_config_from_env({}) is None
        assert columnar_config_from_env({"REPRO_COLUMNAR": "0"}) is None
        config = columnar_config_from_env({"REPRO_COLUMNAR": "1"})
        assert isinstance(config, ColumnarConfig)
        sized = columnar_config_from_env(
            {"REPRO_COLUMNAR": "1", "REPRO_COLUMNAR_BATCH": "1024"})
        assert sized.batch_rows == 1024

    def test_resolve_rules(self):
        explicit = ColumnarConfig(batch_rows=7)
        assert resolve_columnar_config(explicit) is explicit
        assert resolve_columnar_config(False) is None
        assert isinstance(resolve_columnar_config(True), ColumnarConfig)
        previous = set_default_columnar_config(explicit)
        try:
            assert resolve_columnar_config(None) is explicit
            assert default_columnar_config() is explicit
        finally:
            set_default_columnar_config(previous)


# ---------------------------------------------------------------------------
# Engine integration and figure-scenario equivalence
# ---------------------------------------------------------------------------


class TestEngineIntegration:
    def build(self, db):
        from repro.dataflow.boxes_db import AddTableBox, RestrictBox
        from repro.dataflow.graph import Program

        program = Program("columnar-engine")
        src = program.add_box(AddTableBox(table="Stations"))
        keep = program.add_box(RestrictBox(predicate="altitude > 50.0"))
        program.connect(src, "out", keep, "in")
        return program, keep

    def test_engine_columnar_rows_identical(self, stations_db):
        from repro.dataflow.engine import Engine

        program, keep = self.build(stations_db)
        serial = tuple(Engine(program, stations_db)
                       .output_of(keep, "out").rows.force())
        columnar = tuple(Engine(program, stations_db, columnar=True)
                         .output_of(keep, "out").rows.force())
        assert serial == columnar

    def test_explain_data_reports_backend_per_node(self, stations_db):
        from repro.dataflow.engine import Engine
        from repro.dataflow.explain import explain_data

        program, keep = self.build(stations_db)
        # workers=0 pins the plan serial even when a process-wide parallel
        # default is installed (REPRO_PARALLEL=1 CI leg) — otherwise the
        # restrict chain rides inside ParallelMap morsels and the tree has
        # no standalone columnar node to report a backend for.
        engine = Engine(program, stations_db, columnar=True, workers=0,
                        cache=False)
        engine.output_of(keep, "out").rows.force()
        data = explain_data(program, engine=engine, box_id=keep)

        def walk(tree):
            yield tree
            for child in tree["children"]:
                yield from walk(child)

        nodes = [node
                 for box in data["boxes"]
                 for output in box["outputs"]
                 for plan in output["plans"]
                 for node in walk(plan["tree"])]
        backends = {node["backend"] for node in nodes}
        assert backends == {"row", "columnar"}
        assert all(node["backend"] in ("row", "columnar") for node in nodes)

    def test_explain_data_row_backend_by_default(self, stations_db):
        from repro.dataflow.engine import Engine
        from repro.dataflow.explain import explain_data

        program, keep = self.build(stations_db)
        engine = Engine(program, stations_db)
        engine.output_of(keep, "out").rows.force()
        data = explain_data(program, engine=engine, box_id=keep)
        (plan,) = [plan for box in data["boxes"]
                   for output in box["outputs"] for plan in output["plans"]]
        assert plan["tree"]["backend"] == "row"


FIGURES = [
    "build_fig1_table_view",
    "build_fig4_station_map",
    "build_fig7_overlay",
    "build_fig8_wormholes",
    "build_fig9_magnifier",
    "build_fig10_stitch",
    "build_fig11_replicate",
]


@pytest.mark.parametrize("builder_name", FIGURES)
def test_figure_pixels_identical_row_vs_columnar(weather_db, builder_name):
    """Every paper figure renders the same pixels on both backends."""
    from repro.core import scenarios

    build = getattr(scenarios, builder_name)

    def canvases(columnar: bool):
        previous = set_default_columnar_config(
            ColumnarConfig() if columnar else None)
        try:
            scenario = build(weather_db)
            return {
                name: window.render().pixels.copy()
                for name, window in sorted(scenario.named.items())
                if hasattr(window, "render")
            }
        finally:
            set_default_columnar_config(previous)

    row_pixels = canvases(columnar=False)
    col_pixels = canvases(columnar=True)
    assert row_pixels.keys() == col_pixels.keys()
    assert row_pixels, builder_name
    for name in row_pixels:
        assert np.array_equal(row_pixels[name], col_pixels[name]), \
            f"{builder_name}: window {name!r} pixels differ"
