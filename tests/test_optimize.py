"""Unit tests: the browsing-query optimizer (dataflow.optimize)."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import ScaleAttributeBox, SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox, JoinBox, RestrictBox, SampleBox
from repro.dataflow.boxes_extra import LimitBox, OrderByBox, RenameBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dataflow.optimize import optimize, rename_fields, stored_schema_of
from repro.dataflow.boxes_db import TBox
from repro.dbms.parser import parse_expression


def run(program, db, box_id, port=None):
    return Engine(program, db).output_of(box_id, port)


def rows_of(program, db, box_id):
    return sorted(map(repr, run(program, db, box_id).rows))


class TestStoredSchema:
    def test_add_table(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        schema = stored_schema_of(program, src, "out", stations_db)
        assert schema is not None
        assert "longitude" in schema

    def test_propagates_through_chain(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        restrict = program.add_box(RestrictBox(predicate="true"))
        program.connect(src, "out", restrict, "in")
        rename = program.add_box(RenameBox(old="altitude", new="alt_ft"))
        program.connect(restrict, "out", rename, "in")
        schema = stored_schema_of(program, rename, "out", stations_db)
        assert "alt_ft" in schema
        assert "altitude" not in schema

    def test_join_schema_with_collisions(self, stations_db):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        join = program.add_box(JoinBox(left_key="station_id",
                                       right_key="station_id"))
        program.connect(a, "out", join, "left")
        program.connect(b, "out", join, "right")
        schema = stored_schema_of(program, join, "out", stations_db)
        assert "right_station_id" in schema

    def test_unknown_table_is_none(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Ghost"))
        assert stored_schema_of(program, src, "out", stations_db) is None

    def test_opaque_box_is_none(self, stations_db):
        from repro.dataflow.boxes_display import OverlayBox

        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        overlay = program.add_box(OverlayBox())
        program.connect(a, "out", overlay, "base")
        program.connect(b, "out", overlay, "top")
        assert stored_schema_of(program, overlay, "out", stations_db) is None


class TestRenameFields:
    def test_rewrites_all_node_kinds(self):
        expr = parse_expression(
            "if a > 1 and not (b = 2) then abs(-a) else a + b"
        )
        renamed = rename_fields(expr, {"a": "x"})
        assert renamed.fields_used() == {"x", "b"}

    def test_roundtrip_through_text(self):
        expr = parse_expression("a * 2 + b")
        renamed = rename_fields(expr, {"a": "alpha", "b": "beta"})
        reparsed = parse_expression(str(renamed))
        assert reparsed.fields_used() == {"alpha", "beta"}


class TestMergeRestricts:
    def test_adjacent_restricts_merge(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        r1 = program.add_box(RestrictBox(predicate="state = 'LA'"))
        r2 = program.add_box(RestrictBox(predicate="altitude < 100"))
        tail = program.add_box(OrderByBox(fields=["name"]))
        program.connect(src, "out", r1, "in")
        program.connect(r1, "out", r2, "in")
        program.connect(r2, "out", tail, "in")
        before = rows_of(program, stations_db, tail)

        optimized, log = optimize(program, stations_db)
        assert any("merged" in line for line in log)
        assert len(optimized.boxes_of_type("Restrict")) == 1
        assert rows_of(optimized, stations_db, tail) == before

    def test_merge_chain_of_three(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        previous = src
        for predicate in ("state = 'LA'", "altitude < 200", "station_id < 3"):
            box = program.add_box(RestrictBox(predicate=predicate))
            program.connect(previous, "out", box, "in")
            previous = box
        before = rows_of(program, stations_db, previous)
        optimized, log = optimize(program, stations_db)
        assert len(optimized.boxes_of_type("Restrict")) == 1
        # The surviving restrict produces the same rows.
        survivor = optimized.boxes_of_type("Restrict")[0].box_id
        assert rows_of(optimized, stations_db, survivor) == before

    def test_shared_restrict_not_merged(self, stations_db):
        # r1 feeds r2 AND a T; merging would change the T's data.
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        r1 = program.add_box(RestrictBox(predicate="state = 'LA'"))
        tee = program.add_box(TBox(kind="R"))
        program.connect(src, "out", r1, "in")
        program.connect(r1, "out", tee, "in")
        r2 = program.add_box(RestrictBox(predicate="altitude < 100"))
        program.connect(tee, "out1", r2, "in")
        # tee is not a Restrict, so nothing merges across it; and r1->tee is
        # not restrict->restrict.  Build the actual shared case:
        optimized, log = optimize(program, stations_db)
        assert len(optimized.boxes_of_type("Restrict")) == 2


class TestPushPastDecorator:
    def build(self, db, decorator, predicate="state = 'LA'"):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        dec = program.add_box(decorator)
        program.connect(src, "out", dec, "in")
        restrict = program.add_box(RestrictBox(predicate=predicate))
        program.connect(dec, "out", restrict, "in")
        return program, src, dec, restrict

    def test_pushes_above_set_attribute(self, stations_db):
        program, src, dec, restrict = self.build(
            stations_db, SetAttributeBox(name="x", definition="longitude")
        )
        before = rows_of(program, stations_db, restrict)
        optimized, log = optimize(program, stations_db)
        assert any("pushed" in line for line in log)
        # The restrict now sits directly on the source.
        edge = optimized.edge_into_port(restrict, "in")
        assert edge.src_box == src
        assert rows_of(optimized, stations_db, dec) == before

    def test_pushes_above_order_by(self, stations_db):
        program, src, dec, restrict = self.build(
            stations_db, OrderByBox(fields=["name"])
        )
        before = rows_of(program, stations_db, restrict)
        optimized, log = optimize(program, stations_db)
        assert log
        assert rows_of(optimized, stations_db, dec) == before

    def test_blocked_by_scaled_field(self, stations_db):
        # The predicate references the scaled field: values differ above.
        program, *_ = self.build(
            stations_db,
            ScaleAttributeBox(name="altitude", amount=2.0),
            predicate="altitude < 100",
        )
        __, log = optimize(program, stations_db)
        assert not any("pushed" in line for line in log)

    def test_scaled_other_field_still_pushes(self, stations_db):
        program, *_ = self.build(
            stations_db,
            ScaleAttributeBox(name="altitude", amount=2.0),
            predicate="state = 'LA'",
        )
        __, log = optimize(program, stations_db)
        assert any("pushed" in line for line in log)

    def test_blocked_by_sample(self, stations_db):
        program, *_ = self.build(
            stations_db, SampleBox(probability=0.5, seed=1)
        )
        __, log = optimize(program, stations_db)
        assert log == []

    def test_blocked_by_limit(self, stations_db):
        program, *_ = self.build(stations_db, LimitBox(count=3))
        __, log = optimize(program, stations_db)
        assert log == []

    def test_blocked_by_computed_attribute_reference(self, stations_db):
        program, *_ = self.build(
            stations_db,
            SetAttributeBox(name="x", definition="longitude"),
            predicate="x < -91.0",
        )
        __, log = optimize(program, stations_db)
        assert log == []

    def test_rename_crossing_maps_field(self, stations_db):
        program, src, dec, restrict = self.build(
            stations_db,
            RenameBox(old="altitude", new="alt_ft"),
            predicate="alt_ft < 100",
        )
        before = rows_of(program, stations_db, restrict)
        optimized, log = optimize(program, stations_db)
        assert any("pushed" in line for line in log)
        moved = optimized.box(restrict)
        assert "altitude" in moved.param("predicate")
        assert rows_of(optimized, stations_db, dec) == before


class TestPushBelowJoin:
    def build(self, db, predicate):
        program = Program()
        obs = program.add_box(AddTableBox(table="Observations"))
        sta = program.add_box(AddTableBox(table="Stations"))
        join = program.add_box(
            JoinBox(left_key="station_id", right_key="station_id")
        )
        program.connect(obs, "out", join, "left")
        program.connect(sta, "out", join, "right")
        restrict = program.add_box(RestrictBox(predicate=predicate))
        program.connect(join, "out", restrict, "in")
        return program, obs, sta, join, restrict

    def test_left_side_pushdown(self, weather_db):
        program, obs, sta, join, restrict = self.build(
            weather_db, "temperature > 80.0"
        )
        before = rows_of(program, weather_db, restrict)
        optimized, log = optimize(program, weather_db)
        assert any("left input" in line for line in log)
        edge = optimized.edge_into_port(restrict, "in")
        assert edge.src_box == obs
        assert rows_of(optimized, weather_db, join) == before

    def test_right_side_pushdown_with_rename(self, weather_db):
        program, obs, sta, join, restrict = self.build(
            weather_db, "state = 'LA'"
        )
        before = rows_of(program, weather_db, restrict)
        optimized, log = optimize(program, weather_db)
        assert any("right input" in line for line in log)
        assert rows_of(optimized, weather_db, join) == before

    def test_collision_renamed_field_pushes_right(self, weather_db):
        # right_station_id refers to the Stations side; maps back.
        program, obs, sta, join, restrict = self.build(
            weather_db, "right_station_id < 5"
        )
        before = rows_of(program, weather_db, restrict)
        optimized, log = optimize(program, weather_db)
        assert any("right input" in line for line in log)
        moved = optimized.box(restrict)
        assert moved.param("predicate") == "(station_id < 5)"
        assert rows_of(optimized, weather_db, join) == before

    def test_cross_side_conjunction_splits(self, weather_db):
        # A conjunction mixing sides splits: each conjunct pushes to its side.
        program, obs, sta, join, restrict = self.build(
            weather_db, "temperature > 80.0 and state = 'LA'"
        )
        before = rows_of(program, weather_db, restrict)
        optimized, log = optimize(program, weather_db)
        assert any("left input" in line for line in log)
        assert any("right input" in line for line in log)
        assert rows_of(optimized, weather_db, join) == before

    def test_cross_side_disjunction_blocked(self, weather_db):
        # An OR spanning sides cannot split; the Restrict stays put.
        program, *_ = self.build(
            weather_db, "temperature > 80.0 or state = 'LA'"
        )
        __, log = optimize(program, weather_db)
        assert not any("input of" in line for line in log)

    def test_pushdown_reduces_join_input(self, weather_db):
        program, obs, sta, join, restrict = self.build(
            weather_db, "state = 'LA'"
        )
        engine_before = Engine(program, weather_db)
        engine_before.output_of(restrict)
        optimized, __log = optimize(program, weather_db)
        # In the optimized program the join's right input is pre-filtered.
        right_edge = optimized.edge_into_port(join, "right")
        right_input = run(optimized, weather_db, right_edge.src_box,
                          right_edge.src_port)
        assert len(right_input.rows) == 18  # only Louisiana stations


class TestSessionIntegration:
    def test_session_optimize_is_undoable(self, stations_session):
        stations = stations_session.add_table("Stations")
        r1 = stations_session.add_box("Restrict", {"predicate": "state = 'LA'"})
        stations_session.connect(stations, "out", r1, "in")
        r2 = stations_session.add_box("Restrict", {"predicate": "altitude < 100"})
        stations_session.connect(r1, "out", r2, "in")
        log = stations_session.optimize()
        assert log
        assert len(stations_session.program.boxes_of_type("Restrict")) == 1
        stations_session.undo()
        assert len(stations_session.program.boxes_of_type("Restrict")) == 2

    def test_noop_optimize_records_nothing(self, stations_session):
        stations_session.add_table("Stations")
        depth = len(stations_session.undo_stack)
        log = stations_session.optimize()
        assert log == []
        assert len(stations_session.undo_stack) == depth
