"""The protocol layer: codecs, error codes, and local/remote parity.

Covers the PR-9 satellite guarantees: every command survives an
encode→decode round trip unchanged (seeded property over random field
values), every ``TiogaError`` subclass maps to a stable ``T2-E5xx`` code
disjoint from the static-analysis catalog, and the ``set_slider``
validation path produces character-identical ``ViewerError`` diagnostics
whether the demand arrives as an imperative ``Session`` call or a
protocol-dispatched command.
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

from repro.data.weather import build_weather_database
from repro.errors import (
    CatalogError,
    DisplayError,
    EvaluationError,
    ExpressionError,
    GraphError,
    ObservabilityError,
    SchemaError,
    TiogaError,
    TypeCheckError,
    UIError,
    UpdateError,
    ViewerError,
)
from repro.obs.trace import TraceContext, Tracer, push_tracer
from repro.protocol import (
    COMMAND_KINDS,
    PROTOCOL_CODES,
    PROTOCOL_VERSION,
    RESPONSE_KINDS,
    ErrorReply,
    FrameReply,
    Pan,
    ProtocolError,
    Render,
    Reply,
    SetSlider,
    Stats,
    Welcome,
    decode_command,
    decode_response,
    encode_command,
    encode_response,
    error_code_for,
)


# ---------------------------------------------------------------------------
# Round-trip property
# ---------------------------------------------------------------------------


def _random_value(rng: random.Random, field: dataclasses.Field):
    """A random wire-legal value for a dataclass field, by annotation."""
    annotation = str(field.type)
    if "tuple" in annotation:
        return tuple(f"p{rng.randint(0, 9)}" for _ in range(rng.randint(0, 3)))
    if "dict" in annotation:
        return {"mode": "full", "items": [rng.randint(0, 5)]}
    if "bool" in annotation:
        return rng.random() < 0.5
    if "int" in annotation:
        value = rng.randint(-1000, 1000)
        return None if ("None" in annotation and rng.random() < 0.3) else value
    if "float" in annotation:
        return round(rng.uniform(-1e6, 1e6), 6)
    # str-ish
    value = "".join(rng.choice("abwxyz_ 0123") for _ in range(rng.randint(0, 8)))
    return None if ("None" in annotation and rng.random() < 0.3) else value


def _random_instance(rng: random.Random, cls):
    kwargs = {f.name: _random_value(rng, f) for f in dataclasses.fields(cls)}
    return cls(**kwargs)


def test_every_command_round_trips_over_seeded_values():
    rng = random.Random(90)
    for kind, cls in sorted(COMMAND_KINDS.items()):
        for _ in range(25):
            command = _random_instance(rng, cls)
            encoded = encode_command(command)
            decoded = decode_command(encoded)
            assert decoded == command, kind
            assert type(decoded) is cls
            # And the envelope is versioned JSON.
            payload = json.loads(encoded)
            assert payload["v"] == PROTOCOL_VERSION
            assert payload["kind"] == kind


def test_every_response_round_trips_over_seeded_values():
    rng = random.Random(91)
    for kind, cls in sorted(RESPONSE_KINDS.items()):
        for _ in range(25):
            response = _random_instance(rng, cls)
            assert decode_response(encode_response(response)) == response, kind


def test_defaults_round_trip():
    for cls in COMMAND_KINDS.values():
        assert decode_command(encode_command(cls())) == cls()


# ---------------------------------------------------------------------------
# Decoder rejection (stable codes, no guessing)
# ---------------------------------------------------------------------------


def test_decode_rejects_wrong_version():
    with pytest.raises(ProtocolError) as info:
        decode_command('{"v": 99, "kind": "pan"}')
    assert info.value.code == "T2-E510"
    assert "version" in str(info.value)


def test_decode_rejects_unknown_kind():
    with pytest.raises(ProtocolError) as info:
        decode_command('{"v": 1, "kind": "teleport"}')
    assert info.value.code == "T2-E511"


def test_decode_rejects_unknown_fields():
    with pytest.raises(ProtocolError) as info:
        decode_command('{"v": 1, "kind": "pan", "window": "w", "dz": 3}')
    assert info.value.code == "T2-E510"
    assert "dz" in str(info.value)


def test_decode_rejects_non_json_and_non_objects():
    for bad in ("not json", "[1, 2]", '"pan"'):
        with pytest.raises(ProtocolError):
            decode_command(bad)


def test_encode_rejects_foreign_types():
    with pytest.raises(ProtocolError):
        encode_command(object())  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Error-code mapping
# ---------------------------------------------------------------------------


EXPECTED_CODES = [
    (ViewerError, "T2-E501"),
    (UIError, "T2-E502"),
    (CatalogError, "T2-E503"),
    (UpdateError, "T2-E504"),
    (ExpressionError, "T2-E505"),
    (GraphError, "T2-E506"),
    (EvaluationError, "T2-E508"),
    (SchemaError, "T2-E509"),
    (TypeCheckError, "T2-E509"),
    (DisplayError, "T2-E515"),
    (ObservabilityError, "T2-E516"),
    (TiogaError, "T2-E500"),
]


@pytest.mark.parametrize("exc_cls,code", EXPECTED_CODES,
                         ids=[c.__name__ for c, _ in EXPECTED_CODES])
def test_tioga_errors_map_to_stable_codes(exc_cls, code):
    assert error_code_for(exc_cls("boom")) == code
    assert code in PROTOCOL_CODES


def test_subclasses_inherit_their_nearest_ancestor_code():
    class CustomViewerError(ViewerError):
        pass

    assert error_code_for(CustomViewerError("x")) == "T2-E501"


def test_non_tioga_exceptions_are_internal_server_errors():
    assert error_code_for(ValueError("x")) == "T2-E514"
    assert error_code_for(RuntimeError("x")) == "T2-E514"


def test_protocol_error_carries_its_own_code():
    assert error_code_for(ProtocolError("x", code="T2-E512")) == "T2-E512"


def test_protocol_codes_disjoint_from_analysis_catalog():
    from repro.analyze.diagnostics import CODES

    assert not set(PROTOCOL_CODES) & set(CODES)


# ---------------------------------------------------------------------------
# Local vs protocol parity (the set_slider validation-drift fix)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def fig4_session():
    from repro.core.scenarios import build_fig4_station_map

    return build_fig4_station_map(build_weather_database()).session


def _wire_error(session, command) -> ErrorReply:
    response = session.execute(
        decode_command(encode_command(command)))
    assert isinstance(response, ErrorReply)
    return response


def test_set_slider_unknown_dim_parity(fig4_session):
    with pytest.raises(ViewerError) as local:
        fig4_session.set_slider("stations", "Depth", 0.0, 10.0)
    remote = _wire_error(
        fig4_session,
        SetSlider(window="stations", dim="Depth", low=0.0, high=10.0))
    assert remote.code == "T2-E501"
    assert remote.error_type == "ViewerError"
    assert remote.message == str(local.value)
    assert "no slider dimension 'Depth'" in remote.message


def test_set_slider_empty_range_parity(fig4_session):
    with pytest.raises(ViewerError) as local:
        fig4_session.set_slider("stations", "Altitude", 10.0, 2.0)
    remote = _wire_error(
        fig4_session,
        SetSlider(window="stations", dim="Altitude", low=10.0, high=2.0))
    assert remote.message == str(local.value)
    assert remote.message == "slider range [10.0, 2.0] is empty"
    assert remote.code == "T2-E501"


def test_deprecated_viewer_set_slider_matches_protocol_diagnostics(
        fig4_session):
    viewer = fig4_session.window("stations").viewer
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ViewerError) as direct:
            viewer.set_slider("Depth", 0.0, 10.0)
    remote = _wire_error(
        fig4_session,
        SetSlider(window="stations", dim="Depth", low=0.0, high=10.0))
    assert remote.message == str(direct.value)


def test_unknown_window_parity(fig4_session):
    with pytest.raises(UIError) as local:
        fig4_session.pan("nowhere", 1.0, 0.0)
    remote = _wire_error(
        fig4_session,
        decode_command('{"v": 1, "kind": "pan", "window": "nowhere"}'))
    assert remote.code == "T2-E502"
    assert remote.message == str(local.value)


def test_error_reply_echoes_seq(fig4_session):
    remote = fig4_session.execute(
        SetSlider(window="stations", dim="Depth", low=0.0, high=1.0, seq=42))
    assert isinstance(remote, ErrorReply)
    assert remote.reply_to == 42


def test_render_format_validation(fig4_session):
    response = fig4_session.execute(Render(window="stations", format="webp"))
    assert isinstance(response, ErrorReply)
    assert response.code == "T2-E510"


# ---------------------------------------------------------------------------
# Trace propagation: the PR-10 append-only wire extension
# ---------------------------------------------------------------------------


def test_trace_context_rides_the_command_wire():
    ctx = TraceContext.new(session="s-1", command="pan")
    command = Pan(window="w", dx=1.0, dy=2.0, trace=ctx.to_wire())
    decoded = decode_command(encode_command(command))
    assert decoded == command
    joined = TraceContext.from_wire(decoded.trace)
    assert joined.trace_id == ctx.trace_id
    assert joined.session == "s-1"


def test_old_wire_without_trace_still_decodes():
    # Backward compatibility: pre-PR-10 peers never send the field; the
    # command decodes with trace=None and responses with trace_id=None.
    command = decode_command('{"v": 1, "kind": "pan", "window": "w"}')
    assert command.trace is None
    envelope = json.loads(encode_response(Reply(command="pan")))
    del envelope["trace_id"]
    response = decode_response(json.dumps(envelope))
    assert response.trace_id is None


def test_executor_stamps_reply_trace_id_under_tracing(fig4_session):
    with push_tracer(Tracer(enabled=True)):
        response = fig4_session.execute(Stats())
        assert isinstance(response, Reply)
        assert response.trace_id
        # A caller-minted context is joined, not replaced: the reply
        # echoes the wire trace id (the distributed-join contract).
        ctx = TraceContext.new(command="stats")
        echoed = fig4_session.execute(Stats(trace=ctx.to_wire()))
        assert echoed.trace_id == ctx.trace_id
        # Error replies carry the id too — slow/failed requests are
        # exactly the ones worth looking up in /debug/trace.
        error = fig4_session.execute(Render(window="nowhere"))
        assert isinstance(error, ErrorReply)
        assert error.trace_id


def test_executor_leaves_trace_id_none_when_tracing_off(fig4_session):
    with push_tracer(Tracer(enabled=False)):
        response = fig4_session.execute(Stats())
    assert response.trace_id is None


# ---------------------------------------------------------------------------
# Frame and welcome details
# ---------------------------------------------------------------------------


def test_frame_reply_data_bytes_round_trip(fig4_session):
    frame = fig4_session.render_frame("stations")
    assert isinstance(frame, FrameReply)
    data = frame.data_bytes()
    assert data.startswith(b"P6\n640 480\n255\n")
    again = decode_response(encode_response(frame))
    assert again.data_bytes() == data


def test_welcome_programs_survive_as_tuple():
    welcome = Welcome(session="s1", database="db", programs=("fig4", "fig1"))
    decoded = decode_response(encode_response(welcome))
    assert decoded.programs == ("fig4", "fig1")
    assert isinstance(decoded.programs, tuple)


def test_reply_ok_and_error_not_ok():
    assert Reply(command="pan").ok
    assert not ErrorReply().ok


# ---------------------------------------------------------------------------
# Frame-cache hits keep pick/why provenance on the displayed frame
# ---------------------------------------------------------------------------


@pytest.fixture()
def cached_map_session(stations_db):
    """A stations map session with the server's FrameCache attached."""
    from repro.protocol import FrameCache
    from repro.ui.session import Session

    session = Session(stations_db, "cache-map")
    stations = session.add_table("Stations")
    sx = session.add_box(
        "SetAttribute", {"name": "x", "definition": "longitude"})
    session.connect(stations, "out", sx, "in")
    sy = session.add_box(
        "SetAttribute", {"name": "y", "definition": "latitude"})
    session.connect(sx, "out", sy, "in")
    disp = session.add_box(
        "SetAttribute",
        {"name": "display", "definition": "filled_circle(3, 'blue')"},
    )
    session.connect(sy, "out", disp, "in")
    session.add_viewer(disp, name="map", width=200, height=160)
    session.pan_to("map", -91.8, 31.0)
    session.set_elevation("map", 8.0)
    session.protocol.frame_cache = FrameCache()
    return session


def test_frame_cache_hit_restores_pick_provenance(cached_map_session):
    # Review regression: render view A, pan to B, render, pan back to A,
    # render (FrameCache hit — no rasterization), then pick.  The pick
    # must resolve against view A's display list (the frame on screen),
    # not view B's stale one from the last actual render.
    session = cached_map_session
    frame_a = session.render_frame("map")
    item = session.window("map").viewer.last_result.all_items()[0]
    cx = (item.bbox[0] + item.bbox[2]) / 2
    cy = (item.bbox[1] + item.bbox[3]) / 2
    first = session.pick("map", cx, cy)
    assert first is not None

    # View B is empty ocean: a fresh render there hits nothing.
    session.pan_to("map", -40.0, 31.0)
    session.render_frame("map")
    assert session.pick("map", cx, cy) is None

    session.pan_to("map", -91.8, 31.0)
    served = session.render_frame("map")
    assert served.data_bytes() == frame_a.data_bytes()
    assert served.render_ms == 0.0  # served whole from the frame cache

    picked = session.pick("map", cx, cy)
    assert picked is not None
    assert picked.row == first.row

    why_doc = session.why("map", cx, cy)
    assert why_doc["picked"] is True
    assert why_doc["mark"]["relation"] == first.relation_name
    assert why_doc["mark"]["tuple_index"] == first.tuple_index


def test_frames_with_live_magnifiers_are_not_cached(cached_map_session):
    # Magnifier overlays are composited into the encoded frame but are
    # session-local furniture outside the cache key — such frames must
    # bypass the cache entirely rather than be served to other views.
    session = cached_map_session
    session.render_frame("map")
    assert len(session.protocol.frame_cache) == 1
    window = session.window("map")
    glass = window.add_magnifier((40.0, 30.0, 120.0, 90.0))
    frame = session.render_frame("map")
    assert frame.render_ms > 0.0  # not served from the pre-magnifier entry
    assert len(session.protocol.frame_cache) == 1  # and not re-cached
    glass.delete()
    session.render_frame("map")  # deleted glass: cacheable again
    assert len(session.protocol.frame_cache) == 1
