"""Thread-safety hammer: metrics and engine stats under concurrent updates.

Morsel workers increment counters from pool threads, so every metric update
must be atomic.  N threads x M increments must land exactly N*M — a lost
update here would silently corrupt EXPLAIN output and cache statistics.
"""

from __future__ import annotations

import threading

from repro.dataflow.engine import EngineStats
from repro.obs.metrics import MetricsRegistry

THREADS = 8
INCS = 2_000


def hammer(work) -> None:
    start = threading.Barrier(THREADS)

    def run(index: int):
        start.wait()    # release all threads at once to maximize contention
        for __ in range(INCS):
            work(index)

    threads = [threading.Thread(target=run, args=(index,))
               for index in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestMetricsRegistry:
    def test_counter_increments_are_atomic(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammer.count", "thread-safety hammer")
        hammer(lambda index: counter.inc())
        assert counter.total() == THREADS * INCS

    def test_labeled_counter_increments_are_atomic(self):
        # Distinct labels race on first-touch creation of their dict slots;
        # shared labels race on the read-modify-write.
        registry = MetricsRegistry()
        counter = registry.counter("hammer.labeled", "thread-safety hammer")
        hammer(lambda index: counter.inc(label=f"l{index % 3}"))
        assert counter.total() == THREADS * INCS
        assert sum(counter.values.values()) == THREADS * INCS
        assert set(counter.values) == {"l0", "l1", "l2"}

    def test_histogram_observations_all_counted(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("hammer.hist", "thread-safety hammer")
        hammer(lambda index: histogram.observe(float(index)))
        assert histogram.count() == THREADS * INCS

    def test_gauge_last_write_wins_cleanly(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("hammer.gauge", "thread-safety hammer")
        hammer(lambda index: gauge.set(float(index)))
        assert gauge.values[None] in {float(index) for index in range(THREADS)}


class TestEngineStats:
    def test_concurrent_fire_recordings_all_counted(self):
        stats = EngineStats()
        hammer(lambda index: stats.record_fire(index))
        assert stats.total_fires() == THREADS * INCS
        assert all(stats.fires[index] == INCS for index in range(THREADS))

    def test_concurrent_memo_hits_are_atomic(self):
        stats = EngineStats()
        hammer(lambda index: stats.record_hit(index % 2))
        assert stats.cache_hits == THREADS * INCS
