"""Satellite: the pinned aggregate semantics, identical on both backends.

The contract lives next to ``AGGREGATES`` in repro.dbms.plan: ``count`` and
``sum`` of an empty group are 0; ``avg``/``min``/``max`` over an empty
group raise (the type system has no NULL); ``sum``/``avg`` fold
left-to-right in input order.  These tests lock the contract directly on
the aggregate table and then assert the row and columnar GroupBy operators
can never diverge on it.
"""

from __future__ import annotations

import math

import pytest

from repro.dbms import plan as P
from repro.dbms.columnar import ColumnarConfig
from repro.dbms.plan_rewrite import columnarize_plan
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema
from repro.errors import EvaluationError, TypeCheckError

OBS = Schema([("station", "text"), ("temp", "float"), ("reading", "int")])


def obs_rows(dicts) -> RowSet:
    return RowSet.from_dicts(OBS, dicts)


def both_backends(rows: RowSet, keys, aggregations):
    """Run one GroupBy spec on the row and the columnar backend.

    The columnar tree is built directly (not via ``columnarize_plan``) so
    the agreement holds even for specs auto-selection would decline — e.g.
    text keys, which the kernel handles through its row-fallback path.
    """
    row_node = P.GroupByNode(P.ScanNode(rows, name="Obs"), keys, aggregations)
    col_root = P.ToRowsNode(
        P.ColumnarGroupByNode(
            P.ToColumnsNode(P.ScanNode(rows, name="Obs")),
            keys, aggregations,
        )
    )
    return (
        [r.values for r in row_node.execute()],
        [r.values for r in col_root.execute()],
    )


class TestEmptyGroupContract:
    """The pinned table itself: count/sum -> 0, the rest raise."""

    def test_count_of_empty_is_zero(self):
        assert P.AGGREGATES["count"]([]) == 0

    def test_sum_of_empty_is_additive_identity(self):
        assert P.AGGREGATES["sum"]([]) == 0

    @pytest.mark.parametrize("agg", ["avg", "min", "max"])
    def test_order_statistics_over_empty_raise(self, agg):
        with pytest.raises(EvaluationError, match=f"{agg} over an empty group"):
            P.AGGREGATES[agg]([])

    def test_sum_folds_left_to_right(self):
        # 1e16 + 1 is absorbed; the fold order is part of the contract, so
        # both backends must reproduce exactly this value (not a pairwise
        # reduction, which would keep the 1.0).
        values = [1e16, 1.0, 1.0, -1e16]
        expected = ((1e16 + 1.0) + 1.0) + -1e16
        assert P.AGGREGATES["sum"](values) == expected


class TestBackendsAgree:
    def test_empty_input_yields_no_groups_on_either_backend(self):
        row, col = both_backends(
            obs_rows([]), ["station"],
            [("avg", "temp", "avg_temp"), ("count", "reading", "n")],
        )
        assert row == [] and col == []

    def test_all_aggregates_agree_with_group_order(self):
        rows = obs_rows([
            {"station": s, "temp": t, "reading": r}
            for s, t, r in [
                ("NO", 21.5, 3), ("BR", 18.25, 1), ("NO", -3.5, 7),
                ("SL", 0.0, 0), ("BR", 18.25, 5), ("NO", 40.125, 2),
            ]
        ])
        aggregations = [
            ("count", "reading", "n"),
            ("sum", "temp", "total"),
            ("avg", "temp", "mean"),
            ("min", "reading", "lo"),
            ("max", "reading", "hi"),
        ]
        row, col = both_backends(rows, ["station"], aggregations)
        assert row == col
        # Group order is first appearance, same as the serial dict fold.
        assert [values[0] for values in row] == ["NO", "BR", "SL"]

    def test_float_sum_matches_serial_fold_exactly(self):
        # Values chosen so a pairwise/permuted reduction gives a different
        # IEEE result than the serial left fold.
        rows = obs_rows([
            {"station": "A", "temp": t, "reading": i}
            for i, t in enumerate([1e16, 1.0, 1.0, -1e16, 0.1, 0.2])
        ])
        row, col = both_backends(
            rows, ["station"], [("sum", "temp", "total"),
                                ("avg", "temp", "mean")])
        assert row == col
        total = row[0][1]
        assert total == ((((1e16 + 1.0) + 1.0) + -1e16) + 0.1) + 0.2

    def test_signed_zero_keys_group_together(self):
        # -0.0 == 0.0: one group on both backends, first-appearance ordered.
        rows = obs_rows([
            {"station": "A", "temp": -0.0, "reading": 1},
            {"station": "B", "temp": 0.0, "reading": 2},
        ])
        row, col = both_backends(rows, ["temp"], [("count", "reading", "n")])
        assert row == col
        assert [values[1] for values in row] == [2]

    def test_nan_free_domain_is_assumed(self):
        # Tuple validation rejects NaN-free invariants elsewhere; aggregates
        # simply propagate IEEE semantics identically on both backends.
        rows = obs_rows([
            {"station": "A", "temp": math.inf, "reading": 1},
            {"station": "A", "temp": 1.0, "reading": 2},
        ])
        row, col = both_backends(rows, ["station"],
                                 [("sum", "temp", "total"),
                                  ("max", "reading", "hi")])
        assert row == col
        assert row[0][1] == math.inf


class TestSpecValidationShared:
    """Both operators derive their output schema from one helper."""

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(EvaluationError, match="unknown aggregate"):
            P._groupby_output_schema(OBS, ["station"],
                                     [("median", "temp", "m")])

    def test_sum_requires_numeric(self):
        with pytest.raises(TypeCheckError, match="requires a numeric field"):
            P._groupby_output_schema(OBS, [], [("sum", "station", "s")])

    def test_columnar_node_uses_the_same_schema(self):
        rows = obs_rows([{"station": "A", "temp": 1.0, "reading": 1}])
        keys, aggs = ["station"], [("avg", "temp", "mean"),
                                   ("count", "reading", "n")]
        row_node = P.GroupByNode(P.ScanNode(rows), keys, aggs)
        col_root, __ = columnarize_plan(
            P.GroupByNode(P.ScanNode(rows), keys, aggs), ColumnarConfig())
        assert col_root.schema == row_node.schema
