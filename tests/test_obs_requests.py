"""Request log and structured logging (``repro.obs.requests`` / ``.log``).

The RequestLog is a tracer sink: it buckets trace-stamped spans, finalizes
one record per request when the root span completes, judges it against the
per-command SLO table, and captures slow requests to ``repro.slowreq/1``
JSONL.  The log tests pin the JSON line format and the free trace/session
correlation every record gains inside an adopted context.
"""

from __future__ import annotations

import io
import json
import logging
import threading

import pytest

from repro.obs.log import (
    JsonFormatter,
    _JsonHandler,
    configure_logging,
    get_logger,
)
from repro.obs.profiler import Profiler
from repro.obs.requests import (
    DEFAULT_SLO_MS,
    SLOWREQ_SCHEMA,
    RequestLog,
    RequestRecord,
)
from repro.obs.trace import TraceContext, Tracer


@pytest.fixture()
def tracer():
    return Tracer(enabled=True)


def _request(tracer, log_or_none=None, command="render", session="s-1",
             fail=False, children=("engine.run",)):
    """Simulate one traced request: adopt a fresh context, open the root
    ``request.<kind>`` span plus children, return the context."""
    ctx = TraceContext.new(session=session, command=command)
    with tracer.adopt(ctx):
        with tracer.span(f"request.{command}", command=command,
                         session=session):
            for name in children:
                if fail:
                    with pytest.raises(ValueError):
                        with tracer.span(name):
                            raise ValueError("boom")
                else:
                    with tracer.span(name):
                        pass
    return ctx


class TestRequestLog:
    def test_finalizes_one_record_per_request_on_root_completion(
            self, tracer):
        log = RequestLog()
        log.attach(tracer)
        ctx = _request(tracer, command="render",
                       children=("engine.run", "render.rasterize"))
        assert len(log) == 1
        assert log.total_requests == 1
        record = log.record(ctx.trace_id)
        assert record is not None
        assert record.command == "render"
        assert record.session == "s-1"
        assert record.status == "ok"
        assert record.slow is False
        assert record.threshold_ms == DEFAULT_SLO_MS["render"]
        assert record.duration_ms > 0
        names = {span["name"] for span in record.spans}
        assert names == {"request.render", "engine.run",
                         "render.rasterize"}
        assert {span["trace_id"] for span in record.spans} \
            == {ctx.trace_id}

    def test_command_derived_from_root_name_without_attrs(self, tracer):
        log = RequestLog()
        log.attach(tracer)
        ctx = TraceContext.new()
        with tracer.adopt(ctx):
            with tracer.span("request.zoom"):
                pass
        assert log.record(ctx.trace_id).command == "zoom"

    def test_error_span_marks_request_status_error(self, tracer):
        log = RequestLog()
        log.attach(tracer)
        ctx = _request(tracer, fail=True)
        record = log.record(ctx.trace_id)
        assert record.status == "error"
        failed = next(s for s in record.spans if s["name"] == "engine.run")
        assert failed["attrs"]["error"] == "ValueError"

    def test_untraced_spans_and_non_spans_are_ignored(self, tracer):
        log = RequestLog()
        log.attach(tracer)
        with tracer.span("request.render"):  # no adopted context
            pass
        log("not a span")
        assert len(log) == 0
        assert log.total_requests == 0

    def test_slo_verdict_and_on_slow_callback(self, tracer):
        slow_seen = []
        log = RequestLog(slo_ms={"render": 0.0}, on_slow=slow_seen.append)
        log.attach(tracer)
        ctx = _request(tracer, command="render")
        _request(tracer, command="pan", children=())  # default 250ms: fast
        record = log.record(ctx.trace_id)
        assert record.slow is True
        assert log.slow_requests == 1
        assert slow_seen == [record]
        # Non-overridden kinds keep their defaults; unknown kinds fall
        # back to the log-wide default.
        assert log.slo_ms["pan"] == DEFAULT_SLO_MS["pan"]
        assert log.record(ctx.trace_id).threshold_ms == 0.0

    def test_eviction_keeps_newest_records(self, tracer):
        log = RequestLog(capacity=2)
        log.attach(tracer)
        first = _request(tracer, children=())
        second = _request(tracer, children=())
        third = _request(tracer, children=())
        assert len(log) == 2
        assert log.record(first.trace_id) is None
        assert log.record(second.trace_id) is not None
        assert log.total_requests == 3  # counters survive eviction
        newest = log.requests()
        assert [r.trace_id for r in newest] \
            == [third.trace_id, second.trace_id]

    def test_span_cap_bounds_runaway_requests(self, tracer):
        log = RequestLog(max_spans_per_request=2)
        log.attach(tracer)
        ctx = _request(tracer, children=("a", "b", "c", "d"))
        record = log.record(ctx.trace_id)
        assert record is not None
        assert len(record.spans) == 2

    def test_trace_document_shape(self, tracer):
        log = RequestLog()
        log.attach(tracer)
        ctx = _request(tracer)
        doc = log.trace(ctx.trace_id)
        assert doc["trace_id"] == ctx.trace_id
        assert doc["request"]["command"] == "render"
        assert isinstance(doc["spans"], list) and doc["spans"]
        assert log.trace("missing") is None

    def test_empty_log_is_truthy(self):
        log = RequestLog()
        assert len(log) == 0
        assert bool(log) is True

    def test_detach_stops_recording(self, tracer):
        log = RequestLog()
        log.attach(tracer)
        _request(tracer, children=())
        log.detach()
        _request(tracer, children=())
        assert log.total_requests == 1

    def test_capture_writes_slowreq_jsonl(self, tmp_path, tracer):
        class _Flight:
            def records(self):
                return [{"note": "ring-entry"}]

        profiler = Profiler()
        log = RequestLog(slo_ms={"render": 0.0}, capture_dir=tmp_path,
                         profiler=profiler, flight=_Flight())
        log.attach(tracer)
        ctx = TraceContext.new(session="s-7", command="render")
        with tracer.adopt(ctx):
            with tracer.span("request.render", command="render",
                             session="s-7"):
                # A tick inside the request window.  sample_once skips the
                # calling thread, so tick from a helper: the request
                # thread (adopted, hence attributed) gets sampled.
                tick = threading.Thread(target=profiler.sample_once)
                tick.start()
                tick.join(5.0)
        record = log.record(ctx.trace_id)
        path = tmp_path / f"slowreq_{ctx.trace_id}.jsonl"
        assert record.capture_path == str(path)
        assert log.captures == [path]
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        header = lines[0]
        assert header["schema"] == SLOWREQ_SCHEMA
        assert header["command"] == "render"
        assert header["session"] == "s-7"
        kinds = [line["kind"] for line in lines[1:]]
        assert "span" in kinds
        assert "profile" in kinds, "in-window sampler tick must be dumped"
        assert "flight" in kinds
        flight_line = next(ln for ln in lines[1:]
                           if ln["kind"] == "flight")
        assert flight_line["record"] == {"note": "ring-entry"}

    def test_record_as_dict_roundtrips_to_json(self):
        record = RequestRecord(
            trace_id="t", session="s", command="render", start_ns=0,
            end_ns=2_000_000, status="ok", slow=False, threshold_ms=100.0,
            spans=[{"name": "request.render"}])
        flat = record.as_dict()
        assert flat["duration_ms"] == 2.0
        assert flat["spans"] == 1
        deep = record.as_dict(with_spans=True)
        assert deep["spans"] == [{"name": "request.render"}]
        json.dumps(deep)  # JSON-ready


# ---------------------------------------------------------------------------
# Structured logging
# ---------------------------------------------------------------------------


@pytest.fixture()
def log_lines():
    """Configure JSON logging into a buffer; yields a read-lines closure
    and restores the previous handler set afterwards."""
    stream = io.StringIO()
    handler = configure_logging(stream=stream, level=logging.DEBUG)
    try:
        yield lambda: [json.loads(line) for line in
                       stream.getvalue().splitlines()]
    finally:
        get_logger().removeHandler(handler)


class TestJsonLogging:
    def test_record_shape_and_extras(self, log_lines):
        get_logger("engine").info(
            "cache %s", "hit", extra={"rows": 42, "obj": object()})
        (line,) = log_lines()
        assert line["level"] == "INFO"
        assert line["logger"] == "repro.engine"
        assert line["message"] == "cache hit"
        assert line["rows"] == 42
        assert line["obj"].startswith("<object object")  # repr()'d
        assert "ts" in line and line["time"].endswith("Z")
        assert "trace_id" not in line  # no adopted context

    def test_trace_and_session_correlation(self, log_lines, ):
        tracer = Tracer(enabled=True)
        ctx = TraceContext.new(session="s-3", command="render")
        with tracer.adopt(ctx):
            get_logger("server").info("working")
        (line,) = log_lines()
        assert line["trace_id"] == ctx.trace_id
        assert line["session"] == "s-3"

    def test_exception_info_is_structured(self, log_lines):
        try:
            raise KeyError("missing")
        except KeyError:
            get_logger().error("lookup failed", exc_info=True)
        (line,) = log_lines()
        assert line["error"] == "KeyError"
        assert "missing" in line["error_message"]

    def test_configure_is_idempotent_per_process(self, log_lines):
        second = io.StringIO()
        replacement = configure_logging(stream=second)
        try:
            handlers = [h for h in get_logger().handlers
                        if isinstance(h, _JsonHandler)]
            assert handlers == [replacement]
            get_logger("x").info("routed")
            assert "routed" in second.getvalue()
        finally:
            get_logger().removeHandler(replacement)

    def test_formatter_output_is_one_json_object(self):
        record = logging.LogRecord(
            "repro.t", logging.WARNING, __file__, 1, "plain", (), None)
        parsed = json.loads(JsonFormatter().format(record))
        assert parsed["level"] == "WARNING"
        assert parsed["message"] == "plain"
