"""Flight recorder: ring retention, tracer taps, auto-dump on engine errors."""

from __future__ import annotations

import json

import pytest

from repro.errors import TiogaError
from repro.obs import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    Tracer,
    current_flight_recorder,
    install_flight_recorder,
    note_engine_error,
    push_tracer,
)


@pytest.fixture(autouse=True)
def _no_installed_recorder():
    """Tests must not leak an installed recorder into the process."""
    previous = install_flight_recorder(None)
    yield
    install_flight_recorder(previous)


def test_ring_retention_and_drop_accounting():
    recorder = FlightRecorder(capacity=3)
    for i in range(7):
        recorder.record({"kind": "event", "name": f"e{i}"})
    assert len(recorder) == 3
    assert recorder.dropped == 4
    assert [r["name"] for r in recorder.records()] == ["e4", "e5", "e6"]


def test_tracer_tap_records_spans_and_events():
    recorder = FlightRecorder(capacity=32)
    tracer = Tracer(enabled=True)
    recorder.attach(tracer)
    with tracer.span("outer", job="x"):
        tracer.event("mark", n=1)
        with tracer.span("inner"):
            pass
    spans = recorder.records("span")
    events = recorder.records("event")
    assert [s["name"] for s in spans] == ["inner", "outer"]
    assert spans[1]["attrs"] == {"job": "x"}
    assert [e["name"] for e in events] == ["mark"]
    recorder.detach()
    with tracer.span("after-detach"):
        pass
    assert len(recorder.records("span")) == 2


def test_dump_jsonl_format(tmp_path):
    recorder = FlightRecorder(capacity=8)
    tracer = Tracer(enabled=True)
    recorder.attach(tracer)
    with tracer.span("work"):
        pass
    recorder.note_error(ValueError("boom"), where="test")
    path = recorder.dump_jsonl(tmp_path / "flight.jsonl")
    lines = [json.loads(line) for line in path.read_text().splitlines()]
    header, records = lines[0], lines[1:]
    assert header["schema"] == FLIGHT_SCHEMA
    assert header["records"] == len(records) == 2
    assert records[0]["kind"] == "span"
    assert records[1] == {
        "kind": "error", "ts_ns": records[1]["ts_ns"],
        "error": "ValueError", "message": "boom",
        "context": {"where": "test"},
    }


def test_engine_error_auto_dumps_installed_recorder(tmp_path, monkeypatch):
    """A failing demand through the real engine lands in the black box."""
    from repro.api import Session, open_db

    dump = tmp_path / "flight.jsonl"
    monkeypatch.setenv("REPRO_FLIGHT_DUMP", str(dump))
    recorder = FlightRecorder(capacity=128)
    install_flight_recorder(recorder)
    assert current_flight_recorder() is recorder

    tracer = Tracer(enabled=True)
    recorder.attach(tracer)
    session = Session(open_db("weather"))
    stations = session.add_table("Stations")
    bad = session.add_box("Restrict", {"predicate": "no_such_field > 1"})
    session.connect(stations, "out", bad, "in")
    with push_tracer(tracer):
        with pytest.raises(TiogaError):
            session.inspect(bad)

    assert dump.exists()
    lines = [json.loads(line) for line in dump.read_text().splitlines()]
    errors = [r for r in lines[1:] if r["kind"] == "error"]
    assert len(errors) == 1
    assert errors[0]["context"]["type"] == "Restrict"
    assert errors[0]["context"]["box"] == bad
    # The spans leading up to the failure are in the same window.
    assert any(r["kind"] == "span" for r in lines[1:])


def test_note_engine_error_without_recorder_is_noop(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_FLIGHT_DUMP", str(tmp_path / "f.jsonl"))
    install_flight_recorder(None)
    note_engine_error(ValueError("ignored"), box=1)
    assert not (tmp_path / "f.jsonl").exists()


def test_install_from_env(monkeypatch):
    from repro.obs.flightrec import install_from_env

    monkeypatch.delenv("REPRO_FLIGHT", raising=False)
    assert install_from_env() is False
    monkeypatch.setenv("REPRO_FLIGHT", "1")
    assert install_from_env() is True
    assert isinstance(current_flight_recorder(), FlightRecorder)
