"""Unit tests: the catalog and JSON persistence (dbms.catalog, dbms.storage)."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.dbms.catalog import Database
from repro.dbms.relation import Table
from repro.dbms.storage import (
    dump_database,
    load_database,
    load_database_file,
    save_database_file,
)
from repro.dbms.tuples import Schema
from repro.errors import CatalogError, TypeCheckError


@pytest.fixture()
def db() -> Database:
    database = Database("demo")
    table = database.create_table(
        "Events", Schema([("eid", "int"), ("label", "text"), ("when", "date")])
    )
    table.insert_many(
        [
            {"eid": 1, "label": "launch", "when": dt.date(1995, 5, 1)},
            {"eid": 2, "label": "retro", "when": dt.date(1996, 2, 26)},
        ]
    )
    return database


class TestTables:
    def test_create_and_lookup(self, db):
        assert db.table("Events").name == "Events"
        assert db.has_table("Events")

    def test_duplicate_create_rejected(self, db):
        with pytest.raises(CatalogError, match="already exists"):
            db.create_table("Events", Schema([("x", "int")]))

    def test_add_existing_table(self, db):
        table = Table("Extra", Schema([("x", "int")]))
        db.add_table(table)
        assert db.table("Extra") is table

    def test_unknown_table_lists_known(self, db):
        with pytest.raises(CatalogError, match="Events"):
            db.table("Ghost")

    def test_drop(self, db):
        db.drop_table("Events")
        assert not db.has_table("Events")
        with pytest.raises(CatalogError):
            db.drop_table("Events")

    def test_table_names_sorted(self, db):
        db.create_table("Aaa", Schema([("x", "int")]))
        assert db.table_names() == ["Aaa", "Events"]


class TestBoxesAndPrograms:
    def test_register_and_lookup_box(self, db):
        db.register_box("MyBox", {"spec": 1})
        assert db.box("MyBox") == {"spec": 1}
        assert db.has_box("MyBox")
        assert "MyBox" in db.box_names()

    def test_duplicate_box_rejected_unless_replace(self, db):
        db.register_box("MyBox", 1)
        with pytest.raises(CatalogError):
            db.register_box("MyBox", 2)
        db.register_box("MyBox", 2, replace=True)
        assert db.box("MyBox") == 2

    def test_unregister_box(self, db):
        db.register_box("MyBox", 1)
        db.unregister_box("MyBox")
        assert not db.has_box("MyBox")
        with pytest.raises(CatalogError):
            db.unregister_box("MyBox")

    def test_programs(self, db):
        db.save_program("p1", {"format": "x"})
        assert db.load_program("p1") == {"format": "x"}
        assert db.program_names() == ["p1"]
        db.delete_program("p1")
        with pytest.raises(CatalogError):
            db.load_program("p1")


class TestPersistence:
    def test_roundtrip_in_memory(self, db):
        db.save_program("viz", {"format": "tioga2-program-v1", "boxes": {},
                                "edges": [], "name": "viz"})
        payload = dump_database(db)
        restored = load_database(payload)
        assert restored.name == "demo"
        assert len(restored.table("Events")) == 2
        assert restored.table("Events").snapshot()[0]["when"] == dt.date(1995, 5, 1)
        assert restored.program_names() == ["viz"]

    def test_roundtrip_via_file(self, db, tmp_path):
        path = save_database_file(db, tmp_path / "db.json")
        restored = load_database_file(path)
        assert restored.table("Events").schema == db.table("Events").schema

    def test_bad_format_rejected(self):
        with pytest.raises(CatalogError, match="format"):
            load_database({"format": "something-else"})

    def test_drawable_columns_not_persistable(self):
        from repro.display.drawables import Circle

        database = Database()
        table = database.create_table(
            "Bad", Schema([("d", "drawables")])
        )
        table.insert({"d": [Circle(1.0)]})
        with pytest.raises(TypeCheckError, match="persist"):
            dump_database(database)
