"""Unit + property tests: plan-IR rewrites (repro.dbms.plan_rewrite)."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.dbms import plan as P
from repro.dbms.parser import parse_predicate
from repro.dbms.plan_rewrite import optimize_plan
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema

SCHEMA = Schema([("a", "int"), ("b", "int"), ("tag", "text")])


def rows(count: int = 20, seed: int = 0) -> RowSet:
    rng = random.Random(seed)
    return RowSet.from_dicts(
        SCHEMA,
        [
            {
                "a": rng.randrange(10),
                "b": rng.randrange(10),
                "tag": rng.choice("xyz"),
            }
            for __ in range(count)
        ],
    )


def restrict(child: P.PlanNode, source: str) -> P.RestrictNode:
    return P.RestrictNode(child, parse_predicate(source, child.schema))


class TestRewriteRules:
    def test_merges_adjacent_restricts(self):
        plan = restrict(restrict(P.ScanNode(rows()), "a > 2"), "a < 8")
        optimized, log = optimize_plan(plan)
        assert isinstance(optimized, P.RestrictNode)
        assert isinstance(optimized.children[0], P.ScanNode)
        assert any("merged adjacent restricts" in line for line in log)

    def test_pushes_restrict_below_rename(self):
        renamed = P.RenameNode(P.ScanNode(rows()), "a", "alpha")
        plan = restrict(renamed, "alpha > 4")
        optimized, log = optimize_plan(plan)
        assert isinstance(optimized, P.RenameNode)
        inner = optimized.children[0]
        assert isinstance(inner, P.RestrictNode)
        assert "(a > 4)" in inner.describe()  # predicate rewritten to old name
        assert any("pushed restrict below Rename" in line for line in log)

    def test_pushes_restrict_below_project_orderby_distinct(self):
        chain = P.DistinctNode(
            P.OrderByNode(P.ProjectNode(P.ScanNode(rows()), ["a", "b"]), ["b"])
        )
        plan = restrict(chain, "a > 4")
        optimized, __ = optimize_plan(plan)
        # The restrict sank to just above the scan.
        node = optimized
        kinds = []
        while True:
            kinds.append(type(node).__name__)
            if not node.children:
                break
            node = node.children[0]
        assert kinds == [
            "DistinctNode", "OrderByNode", "ProjectNode",
            "RestrictNode", "ScanNode",
        ]

    def test_blocked_by_union(self):
        union = P.UnionNode(P.ScanNode(rows(seed=1)), P.ScanNode(rows(seed=2)))
        plan = restrict(union, "a > 4")
        optimized, log = optimize_plan(plan)
        assert isinstance(optimized, P.RestrictNode)
        assert isinstance(optimized.children[0], P.UnionNode)
        assert log == []

    def test_blocked_by_group_by(self):
        grouped = P.GroupByNode(
            P.ScanNode(rows()), ["tag"], [("count", "a", "c")]
        )
        plan = restrict(grouped, "c > 1")
        optimized, log = optimize_plan(plan)
        assert isinstance(optimized, P.RestrictNode)
        assert isinstance(optimized.children[0], P.GroupByNode)
        assert log == []

    def test_blocked_by_sample_limit_and_cache(self):
        for child in (
            P.SampleNode(P.ScanNode(rows()), 0.5, seed=1),
            P.LimitNode(P.ScanNode(rows()), 5),
            P.CacheNode(P.LazyRowSet(P.ScanNode(rows()))),
        ):
            plan = restrict(child, "a > 4")
            optimized, log = optimize_plan(plan)
            assert type(optimized.children[0]) is type(child)
            assert log == []


def random_plan(rng: random.Random, depth: int = 4) -> P.PlanNode:
    """A random single-branch plan over a random base row set.

    Samples only semantics-stable operators (no Bernoulli sampling without a
    seed; everything here is deterministic), stacking restricts and renames
    so the rewriter has real work to do.
    """
    node: P.PlanNode = P.ScanNode(rows(count=rng.randrange(0, 30), seed=rng.random()))
    renamed = False
    for __ in range(rng.randrange(1, depth + 1)):
        roll = rng.random()
        field = "alpha" if renamed else "a"
        if roll < 0.45:
            node = restrict(
                node, f"{field} {rng.choice(['>', '<', '>='])} {rng.randrange(10)}"
            )
        elif roll < 0.6 and not renamed:
            node = P.RenameNode(node, "a", "alpha")
            renamed = True
        elif roll < 0.7:
            node = P.OrderByNode(node, ["b"])
        elif roll < 0.8:
            node = P.DistinctNode(node)
        elif roll < 0.9:
            node = P.UnionNode(
                node, P.ScanNode(RowSet(node.schema, list(node.execute())))
            )
        else:
            names = list(node.schema.names)
            rng.shuffle(names)
            node = P.ProjectNode(node, names)
    return node


@pytest.mark.parametrize("seed", range(30))
def test_property_optimize_preserves_row_multiset(seed):
    rng = random.Random(seed)
    plan = random_plan(rng)
    baseline = Counter(row.values for row in plan.execute())
    optimized, __ = optimize_plan(random_plan(random.Random(seed)))
    assert Counter(row.values for row in optimized.execute()) == baseline
    assert optimized.schema.names == plan.schema.names
