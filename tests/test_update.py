"""Unit tests: the Section-8 update machinery (repro.dbms.update)."""

from __future__ import annotations

import pytest

from repro.dbms import types as T
from repro.dbms.relation import Table
from repro.dbms.tuples import Schema, Tuple
from repro.dbms.update import ScriptedDialog, UpdateResult, generic_update
from repro.errors import UpdateError

SCHEMA = Schema([("item", "text"), ("quantity", "int"), ("price", "float")])


def make_table() -> Table:
    table = Table("Inventory", SCHEMA)
    table.insert_many(
        [
            {"item": "widget", "quantity": 10, "price": 2.5},
            {"item": "gadget", "quantity": 3, "price": 9.0},
        ]
    )
    return table


class TestGenericUpdate:
    def test_applies_changed_fields(self):
        table = make_table()
        row = table.snapshot()[0]
        result = generic_update(table, row, ScriptedDialog({"quantity": "7"}))
        assert result.applied
        assert result.new["quantity"] == 7
        assert table.snapshot()[0]["quantity"] == 7

    def test_multiple_fields(self):
        table = make_table()
        row = table.snapshot()[1]
        result = generic_update(
            table, row, ScriptedDialog({"quantity": "4", "price": "8.5"})
        )
        assert result.new["quantity"] == 4
        assert result.new["price"] == 8.5

    def test_dialog_asked_for_every_field(self):
        table = make_table()
        dialog = ScriptedDialog({})
        generic_update(table, table.snapshot()[0], dialog)
        assert dialog.asked == ["item", "quantity", "price"]

    def test_no_answers_is_noop(self):
        table = make_table()
        version = table.version
        result = generic_update(table, table.snapshot()[0], ScriptedDialog({}))
        assert not result.applied
        assert table.version == version

    def test_bad_input_reports_field(self):
        table = make_table()
        with pytest.raises(UpdateError, match="quantity"):
            generic_update(
                table, table.snapshot()[0], ScriptedDialog({"quantity": "lots"})
            )

    def test_schema_mismatch_rejected(self):
        table = make_table()
        foreign = Tuple(Schema([("x", "int")]), [1])
        with pytest.raises(UpdateError, match="schema"):
            generic_update(table, foreign, ScriptedDialog({}))

    def test_stale_tuple_rejected(self):
        table = make_table()
        row = table.snapshot()[0]
        table.delete_where(lambda r: r["item"] == "widget")
        with pytest.raises(UpdateError, match="no longer present"):
            generic_update(table, row, ScriptedDialog({"quantity": "1"}))

    def test_version_bumped_on_update(self):
        table = make_table()
        version = table.version
        generic_update(
            table, table.snapshot()[0], ScriptedDialog({"quantity": "1"})
        )
        assert table.version > version

    def test_uses_per_type_update_functions(self):
        # §8: the type definer's update function drives field parsing.
        table = make_table()
        T.set_update_function(T.INT, lambda old, raw: old + int(raw))
        try:
            result = generic_update(
                table, table.snapshot()[0], ScriptedDialog({"quantity": "5"})
            )
            assert result.new["quantity"] == 15  # 10 + 5, relative update
        finally:
            T._UPDATE_FUNCTIONS.pop("int", None)


class TestUpdateResultRepr:
    def test_repr_mentions_state(self):
        table = make_table()
        row = table.snapshot()[0]
        applied = UpdateResult(True, row, row.replace(quantity=1))
        assert "applied" in repr(applied)
        noop = UpdateResult(False, row, row)
        assert "no-op" in repr(noop)
