"""Unit tests: the program window renderer (render.program_view) and viewer
cloning."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_db import AddTableBox, JoinBox, RestrictBox
from repro.dataflow.graph import Program
from repro.render.program_view import layout_program, program_listing, render_program
from repro.ui.session import Session


def diamond_program() -> Program:
    program = Program("diamond")
    obs = program.add_box(AddTableBox(table="Observations"), label="Observations")
    sta = program.add_box(AddTableBox(table="Stations"), label="Stations")
    la = program.add_box(RestrictBox(predicate="state = 'LA'"))
    join = program.add_box(JoinBox(left_key="station_id", right_key="station_id"))
    program.connect(sta, "out", la, "in")
    program.connect(obs, "out", join, "left")
    program.connect(la, "out", join, "right")
    return program


class TestLayout:
    def test_layers_follow_longest_path(self):
        program = diamond_program()
        geometries, __, __h = layout_program(program)
        by_id = {geo.box_id: geo for geo in geometries}
        assert by_id[1].layer == 0  # Observations
        assert by_id[2].layer == 0  # Stations
        assert by_id[3].layer == 1  # Restrict
        assert by_id[4].layer == 2  # Join waits for the longest path

    def test_edges_go_left_to_right(self):
        program = diamond_program()
        geometries, __, __h = layout_program(program)
        by_id = {geo.box_id: geo for geo in geometries}
        for edge in program.edges():
            assert by_id[edge.src_box].rect[2] <= by_id[edge.dst_box].rect[0]

    def test_no_overlapping_boxes(self):
        program = diamond_program()
        geometries, __, __h = layout_program(program)
        rects = [geo.rect for geo in geometries]
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                disjoint = (a[2] < b[0] or b[2] < a[0]
                            or a[3] < b[1] or b[3] < a[1])
                assert disjoint

    def test_empty_program(self):
        geometries, width, height = layout_program(Program())
        assert geometries == []
        assert width > 0 and height > 0


class TestRender:
    def test_paints_boxes_and_edges(self):
        canvas = render_program(diamond_program())
        assert canvas.count_nonbackground() > 1000
        assert (235, 240, 248) in canvas.colors_used()  # box fill

    def test_render_empty_program(self):
        canvas = render_program(Program())
        assert canvas.count_nonbackground() == 0


class TestListing:
    def test_listing_contains_boxes_and_edges(self):
        text = program_listing(diamond_program())
        assert "'diamond'" in text
        assert "#4 Join" in text
        assert "state = 'LA'" in text
        assert "1.left" not in text  # edges use src.port -> dst.port
        assert "-> 4.left" in text

    def test_listing_orders_by_layer(self):
        text = program_listing(diamond_program())
        lines = text.splitlines()
        join_line = next(i for i, l in enumerate(lines) if "Join" in l)
        restrict_line = next(i for i, l in enumerate(lines) if "Restrict" in l)
        assert restrict_line < join_line


class TestSessionProgramWindow:
    def test_program_window_canvas(self, stations_session):
        stations_session.add_table("Stations")
        canvas = stations_session.program_window()
        assert canvas.count_nonbackground() > 0

    def test_program_text(self, stations_session):
        stations_session.add_table("Stations")
        assert "AddTable" in stations_session.program_text()


class TestCloneViewer:
    def build(self, session: Session):
        stations = session.add_table("Stations")
        set_x = session.add_box("SetAttribute",
                                {"name": "x", "definition": "longitude"})
        session.connect(stations, "out", set_x, "in")
        set_y = session.add_box("SetAttribute",
                                {"name": "y", "definition": "latitude"})
        session.connect(set_x, "out", set_y, "in")
        window = session.add_viewer(set_y, name="main", width=160, height=120)
        window.viewer.pan_to(-91.0, 30.0)
        window.viewer.set_elevation(12.0)
        return window

    def test_clone_starts_at_original_position(self, stations_session):
        window = self.build(stations_session)
        clone = stations_session.clone_viewer("main")
        assert clone.name == "main_2"
        assert clone.viewer.view().center == window.viewer.view().center
        assert clone.viewer.view().elevation == window.viewer.view().elevation

    def test_clone_moves_independently(self, stations_session):
        window = self.build(stations_session)
        clone = stations_session.clone_viewer("main", "detail")
        clone.viewer.zoom(4.0)
        assert window.viewer.view().elevation == 12.0
        assert clone.viewer.view().elevation == 3.0

    def test_clone_sees_same_data(self, stations_session):
        self.build(stations_session)
        clone = stations_session.clone_viewer("main")
        original_items = stations_session.window("main").viewer.render()
        clone_items = clone.viewer.render()
        assert len(original_items.all_items()) == len(clone_items.all_items())

    def test_clone_can_be_slaved(self, stations_session):
        window = self.build(stations_session)
        clone = stations_session.clone_viewer("main")
        stations_session.slaving.slave(window.viewer, clone.viewer)
        window.viewer.pan(1.0, 0.0)
        assert clone.viewer.view().center == window.viewer.view().center
