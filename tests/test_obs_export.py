"""Unit tests for the exporters (repro.obs.export)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    BENCH_SCHEMA,
    COLUMNAR_BENCH_SCHEMA,
    PARALLEL_BENCH_SCHEMA,
    SERVER_BENCH_SCHEMA,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    render_tree,
    run_summary,
    validate_any_bench,
    validate_bench_summary,
    validate_chrome_trace,
    validate_columnar_bench,
    validate_server_bench,
    write_chrome_trace,
)


def sample_tracer() -> Tracer:
    tracer = Tracer(enabled=True)
    with tracer.span("outer", box=1):
        with tracer.span("inner", obj=object()):
            tracer.event("marker", note="hi")
    return tracer


class TestChromeTrace:
    def test_structure_validates(self):
        obj = chrome_trace(sample_tracer(), process_name="unit")
        events = validate_chrome_trace(obj)
        phases = [event["ph"] for event in events]
        assert phases.count("X") == 2
        assert phases.count("i") == 1
        assert "M" in phases
        meta = next(e for e in events if e["name"] == "process_name")
        assert meta["args"]["name"] == "unit"

    def test_timestamps_relative_to_origin(self):
        events = chrome_trace(sample_tracer())["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert all(e["ts"] >= 0 for e in xs)
        assert all(e["dur"] >= 0 for e in xs)
        # Some span starts at the origin itself.
        assert min(e["ts"] for e in xs) == 0

    def test_non_primitive_attrs_become_repr(self):
        events = chrome_trace(sample_tracer())["traceEvents"]
        inner = next(e for e in events if e["name"] == "inner")
        assert isinstance(inner["args"]["obj"], str)

    def test_write_round_trips_through_json(self, tmp_path):
        path = write_chrome_trace(sample_tracer(), tmp_path / "t.json")
        loaded = json.loads(path.read_text())
        validate_chrome_trace(loaded)
        assert loaded["otherData"]["dropped"] == 0


class TestValidateChromeTrace:
    def test_rejects_non_object(self):
        with pytest.raises(ObservabilityError):
            validate_chrome_trace([])

    def test_rejects_missing_keys(self):
        with pytest.raises(ObservabilityError, match="missing required"):
            validate_chrome_trace({"traceEvents": [{"name": "x", "ph": "X"}]})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ObservabilityError, match="unsupported phase"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "Z", "pid": 1}]}
            )

    def test_rejects_negative_duration(self):
        with pytest.raises(ObservabilityError, match="non-negative"):
            validate_chrome_trace(
                {"traceEvents": [
                    {"name": "x", "ph": "X", "pid": 1, "ts": 0, "dur": -1}
                ]}
            )


class TestRenderTree:
    def test_indents_children(self):
        text = render_tree(sample_tracer())
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "box=1" in lines[0]

    def test_min_ms_elides_cheap_spans(self):
        text = render_tree(sample_tracer(), min_ms=10_000.0)
        assert text == ""

    def test_reports_dropped(self):
        tracer = Tracer(enabled=True, max_spans=1)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert "dropped" in render_tree(tracer)


class TestRunSummary:
    def test_rollups_by_name(self):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.span("work"):
                pass
        summary = run_summary(tracer)
        assert summary["schema"] == BENCH_SCHEMA
        assert summary["spans"]["work"]["count"] == 3
        assert summary["spans"]["work"]["total_ms"] >= 0
        assert "mean_ms" in summary["spans"]["work"]
        assert summary["dropped"] == 0

    def test_includes_metrics_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("test.export.rows").inc(4, label="n1")
        summary = run_summary(None, registry)
        assert summary["spans"] == {}
        assert summary["metrics"]["test.export.rows"]["total"] == 4
        json.dumps(summary)  # JSON-ready

    def test_counts_events(self):
        tracer = Tracer(enabled=True)
        tracer.event("hit")
        tracer.event("hit")
        assert run_summary(tracer)["events"] == {"hit": 2}

    def test_no_tracer_no_registry_is_pinned_empty_shape(self):
        from repro.obs import empty_run_summary

        # The documented degenerate shape: every key present, all empty.
        expected = {"schema": BENCH_SCHEMA, "spans": {}, "events": {},
                    "metrics": {}, "dropped": 0}
        assert empty_run_summary() == expected
        assert run_summary() == expected
        assert run_summary(None, None) == expected
        # Fresh dict each call — callers may mutate their copy.
        assert empty_run_summary() is not empty_run_summary()

    def test_degrades_per_argument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        only_metrics = run_summary(None, registry)
        assert only_metrics["spans"] == {} and only_metrics["events"] == {}
        assert only_metrics["metrics"] != {}
        tracer = Tracer(enabled=True)
        with tracer.span("s"):
            pass
        only_spans = run_summary(tracer, None)
        assert only_spans["metrics"] == {}
        assert only_spans["spans"]["s"]["count"] == 1


class TestExportersWithoutTracer:
    def test_chrome_trace_none_is_valid_empty_trace(self):
        trace = chrome_trace(None)
        validate_chrome_trace(trace)
        assert trace["otherData"]["dropped"] == 0
        # Only the process-name metadata event remains.
        assert all(ev["ph"] == "M" for ev in trace["traceEvents"])

    def test_render_tree_none_is_empty_string(self):
        assert render_tree(None) == ""


class TestValidateBenchSummary:
    def good(self):
        return {
            "schema": BENCH_SCHEMA,
            "benchmarks": [
                {"name": "bench::one",
                 "timing": {"mean_s": 0.1, "rounds": 5},
                 "telemetry": {"spans": {}}},
                {"name": "bench::disabled", "timing": None},
            ],
            "metric_declarations": {"engine.box.fires": "counter"},
        }

    def test_accepts_good_payload(self):
        payload = self.good()
        assert validate_bench_summary(payload) is payload

    def test_rejects_wrong_schema_tag(self):
        payload = self.good()
        payload["schema"] = "repro.bench/0"
        with pytest.raises(ObservabilityError, match="schema"):
            validate_bench_summary(payload)

    def test_rejects_missing_benchmarks(self):
        with pytest.raises(ObservabilityError, match="benchmarks"):
            validate_bench_summary({"schema": BENCH_SCHEMA})

    def test_rejects_nameless_entry(self):
        payload = self.good()
        payload["benchmarks"].append({"timing": None})
        with pytest.raises(ObservabilityError, match="name"):
            validate_bench_summary(payload)

    def test_rejects_timing_without_mean(self):
        payload = self.good()
        payload["benchmarks"][0]["timing"] = {"rounds": 5}
        with pytest.raises(ObservabilityError, match="mean_s"):
            validate_bench_summary(payload)


class TestValidateColumnarBench:
    def good(self):
        return {
            "schema": COLUMNAR_BENCH_SCHEMA,
            "benchmarks": [{
                "name": "fast_scatter_cull_restrict",
                "arms": {
                    "row": {"seconds": 0.52},
                    "columnar": {"seconds": 0.03},
                },
                "speedup": 17.3,
                "counters": {"columnar.batches": 12,
                             "columnar.fallback": 0},
            }],
        }

    def test_accepts_good_payload(self):
        payload = self.good()
        assert validate_columnar_bench(payload) is payload

    def test_speedup_and_counters_are_optional(self):
        payload = self.good()
        del payload["benchmarks"][0]["speedup"]
        del payload["benchmarks"][0]["counters"]
        validate_columnar_bench(payload)

    def test_rejects_wrong_schema_tag(self):
        payload = self.good()
        payload["schema"] = BENCH_SCHEMA
        with pytest.raises(ObservabilityError, match="schema"):
            validate_columnar_bench(payload)

    def test_rejects_empty_arms(self):
        payload = self.good()
        payload["benchmarks"][0]["arms"] = {}
        with pytest.raises(ObservabilityError, match="arm"):
            validate_columnar_bench(payload)

    def test_rejects_negative_seconds(self):
        payload = self.good()
        payload["benchmarks"][0]["arms"]["row"]["seconds"] = -1.0
        with pytest.raises(ObservabilityError, match="seconds"):
            validate_columnar_bench(payload)

    def test_rejects_nonpositive_speedup(self):
        payload = self.good()
        payload["benchmarks"][0]["speedup"] = 0.0
        with pytest.raises(ObservabilityError, match="speedup"):
            validate_columnar_bench(payload)


class TestValidateServerBench:
    def good(self):
        return {
            "schema": SERVER_BENCH_SCHEMA,
            "benchmarks": [{
                "name": "fig4_ws_load",
                "viewers": 50,
                "renders_per_viewer": 6,
                "latency": {"p50_s": 0.02, "p99_s": 0.07,
                            "mean_s": 0.03, "max_s": 0.08},
                "throughput_cps": 1000.0,
                "frames": {"delivered": 300, "dropped": 0},
                "cache": {"hits": 300},
            }],
        }

    def test_accepts_good_payload(self):
        payload = self.good()
        assert validate_server_bench(payload) is payload

    def test_throughput_and_sections_are_optional(self):
        payload = self.good()
        del payload["benchmarks"][0]["throughput_cps"]
        del payload["benchmarks"][0]["frames"]
        del payload["benchmarks"][0]["cache"]
        validate_server_bench(payload)

    def test_rejects_wrong_schema_tag(self):
        payload = self.good()
        payload["schema"] = BENCH_SCHEMA
        with pytest.raises(ObservabilityError, match="schema"):
            validate_server_bench(payload)

    def test_rejects_missing_viewers(self):
        payload = self.good()
        del payload["benchmarks"][0]["viewers"]
        with pytest.raises(ObservabilityError, match="viewers"):
            validate_server_bench(payload)

    def test_rejects_missing_latency_quantile(self):
        payload = self.good()
        del payload["benchmarks"][0]["latency"]["p99_s"]
        with pytest.raises(ObservabilityError, match="p99_s"):
            validate_server_bench(payload)

    def test_rejects_negative_latency(self):
        payload = self.good()
        payload["benchmarks"][0]["latency"]["p50_s"] = -0.1
        with pytest.raises(ObservabilityError, match="p50_s"):
            validate_server_bench(payload)

    def test_rejects_negative_throughput(self):
        payload = self.good()
        payload["benchmarks"][0]["throughput_cps"] = -1.0
        with pytest.raises(ObservabilityError, match="throughput_cps"):
            validate_server_bench(payload)


class TestValidateAnyBench:
    def test_routes_by_schema_tag(self):
        columnar = TestValidateColumnarBench().good()
        assert validate_any_bench(columnar) is columnar
        server = TestValidateServerBench().good()
        assert validate_any_bench(server) is server
        obs = {"schema": BENCH_SCHEMA,
               "benchmarks": [{"name": "b", "timing": None}]}
        assert validate_any_bench(obs) is obs
        parallel = {
            "schema": PARALLEL_BENCH_SCHEMA,
            "benchmarks": [{
                "name": "p",
                "arms": {"serial": {"workers": 0, "seconds": 1.0}},
                "speedup": 1.0,
            }],
        }
        assert validate_any_bench(parallel) is parallel

    def test_unknown_schema_raises(self):
        with pytest.raises(ObservabilityError, match="schema"):
            validate_any_bench({"schema": "nope/1", "benchmarks": []})
