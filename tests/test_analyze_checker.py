"""Static program checker: every diagnostic code has a trigger test and a
clean-after-fix test (the same program with the defect repaired)."""

from __future__ import annotations

import pytest

from repro.analyze.checker import check_program
from repro.analyze.diagnostics import CODES, Diagnostic, Report
from repro.dataflow.boxes_attr import AddAttributeBox
from repro.dataflow.boxes_db import (
    AddTableBox,
    JoinBox,
    RestrictBox,
    SampleBox,
)
from repro.dataflow.boxes_display import OverlayBox, StitchBox
from repro.dataflow.graph import Edge, Program
from repro.errors import GraphError, TypeCheckError
from repro.viewer.viewer import ViewerBox


def simple_program(db, predicate="altitude > 50.0"):
    """AddTable -> Restrict -> Viewer over the Stations table."""
    program = Program("lintable")
    source = program.add_box(AddTableBox(table="Stations"))
    restrict = program.add_box(RestrictBox(predicate=predicate))
    viewer = program.add_box(ViewerBox(name="win"))
    program.connect(source, "out", restrict, "in")
    program.connect(restrict, "out", viewer, "in")
    return program, source, restrict, viewer


class TestDiagnosticsCore:
    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("T2-E999", "nope")

    def test_severity_derived_from_code(self):
        assert Diagnostic("T2-E105", "m").is_error
        assert not Diagnostic("T2-W201", "m").is_error

    def test_render_includes_code_location_hint(self):
        diag = Diagnostic("T2-E105", "missing", box="Restrict #2", hint="fix")
        line = diag.render()
        assert "T2-E105" in line and "Restrict #2" in line and "fix" in line

    def test_report_summary(self):
        report = Report([Diagnostic("T2-E105", "a"), Diagnostic("T2-W201", "b")])
        assert not report.ok
        assert report.codes() == {"T2-E105", "T2-W201"}
        assert "1 error(s), 1 warning(s)" in report.render()
        payload = report.to_json()
        assert payload["errors"] == 1 and payload["warnings"] == 1


class TestCleanPrograms:
    def test_simple_pipeline_is_clean(self, stations_db):
        program, *_ = simple_program(stations_db)
        report = check_program(program, stations_db)
        assert report.ok and not report.warnings()

    def test_no_database_skips_table_checks(self, stations_db):
        program, *_ = simple_program(stations_db)
        report = check_program(program, None)
        # Without a catalog the table schema is unknown; downstream checks
        # are suppressed rather than reported spuriously.
        assert report.ok


class TestE101UnknownPort:
    def trigger(self, db):
        program, source, restrict, _viewer = simple_program(db)
        program._edges.append(Edge(source, "nope", restrict, "in"))
        return program

    def test_trigger(self, stations_db):
        report = check_program(self.trigger(stations_db), stations_db)
        assert "T2-E101" in report.codes()

    def test_clean_after_fix(self, stations_db):
        program = self.trigger(stations_db)
        program._edges = [e for e in program._edges if e.src_port != "nope"]
        assert "T2-E101" not in check_program(program, stations_db).codes()

    def test_connect_carries_diagnostic(self, stations_db):
        program, source, restrict, _viewer = simple_program(stations_db)
        with pytest.raises(GraphError) as err:
            program.connect(source, "bogus", restrict, "in")
        assert err.value.diagnostic is not None
        assert err.value.diagnostic.code == "T2-E101"
        assert err.value.diagnostic.port == "bogus"


class TestE102IncompatibleKinds:
    def build(self, db, fix=False):
        program = Program("kinds")
        s1 = program.add_box(AddTableBox(table="Stations"))
        s2 = program.add_box(AddTableBox(table="Stations"))
        stitch = program.add_box(StitchBox(arity=2))
        join = program.add_box(JoinBox(left_key="station_id",
                                       right_key="station_id"))
        viewer = program.add_box(ViewerBox())
        program.connect(s1, "out", stitch, "c1")
        program.connect(s2, "out", stitch, "c2")
        if fix:
            s3 = program.add_box(AddTableBox(table="Stations"))
            s4 = program.add_box(AddTableBox(table="Stations"))
            program.connect(s3, "out", join, "left")
            program.connect(s4, "out", join, "right")
        else:
            # A G output into a non-overloadable R input cannot be built
            # through connect(); a hand-edited graph can carry it.
            program._edges.append(Edge(stitch, "out", join, "left"))
        program.connect(join, "out", viewer, "in")
        return program

    def test_trigger(self, stations_db):
        report = check_program(self.build(stations_db), stations_db)
        assert "T2-E102" in report.codes()

    def test_clean_after_fix(self, stations_db):
        report = check_program(self.build(stations_db, fix=True), stations_db)
        assert "T2-E102" not in report.codes()

    def test_connect_carries_diagnostic(self, stations_db):
        program = Program("kinds2")
        s1 = program.add_box(AddTableBox(table="Stations"))
        s2 = program.add_box(AddTableBox(table="Stations"))
        stitch = program.add_box(StitchBox(arity=2))
        join = program.add_box(JoinBox(left_key="station_id",
                                       right_key="station_id"))
        program.connect(s1, "out", stitch, "c1")
        program.connect(s2, "out", stitch, "c2")
        with pytest.raises(TypeCheckError) as err:
            program.connect(stitch, "out", join, "left")
        assert err.value.diagnostic is not None
        assert err.value.diagnostic.code == "T2-E102"


class TestE103UnwiredInput:
    def test_trigger(self, stations_db):
        program = Program("unwired")
        restrict = program.add_box(RestrictBox(predicate="altitude > 1.0"))
        viewer = program.add_box(ViewerBox())
        program.connect(restrict, "out", viewer, "in")
        report = check_program(program, stations_db)
        assert "T2-E103" in report.codes()

    def test_clean_after_fix(self, stations_db):
        program, *_ = simple_program(stations_db)
        assert "T2-E103" not in check_program(program, stations_db).codes()


class TestE104UnknownTable:
    def build(self, table):
        program = Program("tables")
        source = program.add_box(AddTableBox(table=table))
        viewer = program.add_box(ViewerBox())
        program.connect(source, "out", viewer, "in")
        return program

    def test_trigger(self, stations_db):
        report = check_program(self.build("Imaginary"), stations_db)
        findings = report.by_code("T2-E104")
        assert findings and "Stations" in findings[0].message  # lists tables

    def test_clean_after_fix(self, stations_db):
        assert check_program(self.build("Stations"), stations_db).ok


class TestE105UnknownAttribute:
    def test_trigger(self, stations_db):
        program, *_ = simple_program(stations_db, predicate="wind_speed > 1")
        report = check_program(program, stations_db)
        findings = report.by_code("T2-E105")
        assert findings and "wind_speed" in findings[0].message

    def test_clean_after_fix(self, stations_db):
        program, *_ = simple_program(stations_db, predicate="altitude > 1.0")
        assert check_program(program, stations_db).ok


class TestE106SyntaxError:
    def test_trigger(self, stations_db):
        program, *_ = simple_program(stations_db, predicate="altitude > ")
        report = check_program(program, stations_db)
        findings = report.by_code("T2-E106")
        assert findings
        assert findings[0].pos is not None  # parser position propagated

    def test_clean_after_fix(self, stations_db):
        program, *_ = simple_program(stations_db, predicate="altitude > 0")
        assert check_program(program, stations_db).ok


class TestE107TypeError:
    def test_trigger_not_boolean(self, stations_db):
        program, *_ = simple_program(stations_db, predicate="altitude + 1")
        report = check_program(program, stations_db)
        assert "T2-E107" in report.codes()

    def test_trigger_ill_typed(self, stations_db):
        program, *_ = simple_program(stations_db, predicate="name + 1 > 0")
        assert "T2-E107" in check_program(program, stations_db).codes()

    def test_clean_after_fix(self, stations_db):
        program, *_ = simple_program(stations_db, predicate="altitude > 1")
        assert check_program(program, stations_db).ok


class TestE108SchemaMismatch:
    def build(self, db, left_key, right_key):
        program = Program("join")
        s1 = program.add_box(AddTableBox(table="Stations"))
        s2 = program.add_box(AddTableBox(table="Stations"))
        join = program.add_box(JoinBox(left_key=left_key, right_key=right_key))
        viewer = program.add_box(ViewerBox())
        program.connect(s1, "out", join, "left")
        program.connect(s2, "out", join, "right")
        program.connect(join, "out", viewer, "in")
        return program

    def test_trigger(self, stations_db):
        program = self.build(stations_db, "name", "station_id")
        report = check_program(program, stations_db)
        assert "T2-E108" in report.codes()

    def test_clean_after_fix(self, stations_db):
        program = self.build(stations_db, "station_id", "station_id")
        assert check_program(program, stations_db).ok


class TestE109BadParameter:
    def test_trigger_missing(self, stations_db):
        program, *_ = simple_program(stations_db, predicate=None)
        report = check_program(program, stations_db)
        findings = report.by_code("T2-E109")
        assert findings and "predicate" in findings[0].message

    def test_trigger_out_of_range(self, stations_db):
        program = Program("sample")
        source = program.add_box(AddTableBox(table="Stations"))
        sample = program.add_box(SampleBox(probability=2.5))
        viewer = program.add_box(ViewerBox())
        program.connect(source, "out", sample, "in")
        program.connect(sample, "out", viewer, "in")
        assert "T2-E109" in check_program(program, stations_db).codes()

    def test_clean_after_fix(self, stations_db):
        program, *_ = simple_program(stations_db, predicate="altitude > 1")
        assert check_program(program, stations_db).ok


class TestE110DuplicateAttribute:
    def build(self, db, name):
        program = Program("addattr")
        source = program.add_box(AddTableBox(table="Stations"))
        add = program.add_box(
            AddAttributeBox(name=name, definition="altitude * 2.0")
        )
        viewer = program.add_box(ViewerBox())
        program.connect(source, "out", add, "in")
        program.connect(add, "out", viewer, "in")
        return program

    def test_trigger(self, stations_db):
        # "altitude" is already a stored field of Stations.
        program = self.build(stations_db, "altitude")
        assert "T2-E110" in check_program(program, stations_db).codes()

    def test_clean_after_fix(self, stations_db):
        program = self.build(stations_db, "altitude_doubled")
        assert check_program(program, stations_db).ok


class TestW201DeadBox:
    def test_trigger(self, stations_db):
        program, source, _restrict, _viewer = simple_program(stations_db)
        dead = program.add_box(RestrictBox(predicate="altitude > 9.0"))
        program.connect(source, "out", dead, "in")
        report = check_program(program, stations_db)
        findings = report.by_code("T2-W201")
        assert len(findings) == 1
        assert findings[0].box_id == dead
        assert report.ok  # a warning, not an error

    def test_clean_after_fix(self, stations_db):
        program, source, _restrict, _viewer = simple_program(stations_db)
        second = program.add_box(RestrictBox(predicate="altitude > 9.0"))
        program.connect(source, "out", second, "in")
        viewer2 = program.add_box(ViewerBox(name="second"))
        program.connect(second, "out", viewer2, "in")
        assert not check_program(program, stations_db).by_code("T2-W201")


class TestW202NothingDemanded:
    def test_trigger(self, stations_db):
        program = Program("no-sink")
        source = program.add_box(AddTableBox(table="Stations"))
        restrict = program.add_box(RestrictBox(predicate="altitude > 1.0"))
        program.connect(source, "out", restrict, "in")
        report = check_program(program, stations_db)
        assert "T2-W202" in report.codes()
        # W202 subsumes per-box dead-box warnings.
        assert "T2-W201" not in report.codes()

    def test_clean_after_fix(self, stations_db):
        program, *_ = simple_program(stations_db)
        assert "T2-W202" not in check_program(program, stations_db).codes()

    def test_empty_program_is_silent(self, stations_db):
        assert not len(check_program(Program("empty"), stations_db))


class TestW203OverlayDimensions:
    def build(self, db, with_slider):
        program = Program("overlay")
        base = program.add_box(AddTableBox(table="Stations"))
        top = program.add_box(AddTableBox(table="Stations"))
        boxes = [base, top]
        if with_slider:
            slider = program.add_box(
                AddAttributeBox(name="alt_dim", definition="altitude",
                                declared_type="float", location=True)
            )
            program.connect(top, "out", slider, "in")
            boxes[1] = slider
        overlay = program.add_box(OverlayBox())
        viewer = program.add_box(ViewerBox())
        program.connect(boxes[0], "out", overlay, "base")
        program.connect(boxes[1], "out", overlay, "top")
        program.connect(overlay, "out", viewer, "in")
        return program

    def test_trigger(self, stations_db):
        # A 3-dimensional relation (one slider) overlaid on a 2-dimensional
        # base mirrors the runtime Composite warning.
        program = self.build(stations_db, with_slider=True)
        report = check_program(program, stations_db)
        assert "T2-W203" in report.codes()
        assert report.ok

    def test_clean_after_fix(self, stations_db):
        program = self.build(stations_db, with_slider=False)
        assert "T2-W203" not in check_program(program, stations_db).codes()


class TestCoverageOfCatalog:
    def test_every_code_in_catalog_is_exercised_somewhere(self):
        """The catalog and this test file stay in sync: every code defined
        in CODES appears in a trigger test here or in the expression/plan
        test modules."""
        import pathlib

        here = pathlib.Path(__file__).parent
        corpus = "".join(
            (here / name).read_text()
            for name in (
                "test_analyze_checker.py",
                "test_analyze_expr.py",
                "test_analyze_planverify.py",
                "test_absint.py",
            )
        )
        for code in CODES:
            assert code in corpus, f"{code} has no test coverage"


class TestErrorSuppression:
    def test_unknown_upstream_suppresses_cascades(self, stations_db):
        """One bad AddTable yields one E104, not a pile of downstream noise."""
        program, *_ = simple_program(stations_db)
        program.boxes()[0].set_param("table", "Imaginary")
        report = check_program(program, stations_db)
        assert [d.code for d in report.errors()] == ["T2-E104"]
