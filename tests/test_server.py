"""The multi-session server: HTTP routes, WebSocket streaming, backpressure.

Runs a real :class:`~repro.server.TiogaServer` on a loopback port (daemon
thread via :class:`~repro.server.ServerThread`) and drives it with the
blocking :class:`~repro.server.Client` — the same stack ``repro serve`` /
``repro client`` use.  Covers the PR-9 acceptance points: concurrent
viewers each receive every frame they asked for in order (zero dropped
final frames), a slow consumer gets intermediate frames coalesced but
always the newest, unknown sessions fail with ``T2-E512``, cross-session
renders hit the shared result cache, and the metric family carries
per-session labels.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import pytest

from repro.data.weather import build_weather_database
from repro.obs.metrics import MetricsRegistry
from repro.protocol import (
    ErrorReply,
    FrameReply,
    OpenProgram,
    Pan,
    PanTo,
    Pick,
    ProtocolError,
    Render,
    Reply,
    Stats,
    Welcome,
    Why,
    Zoom,
    encode_command,
)
from repro.server import Client, ServerThread, connect, ws


@pytest.fixture(scope="module")
def server():
    registry = MetricsRegistry()
    thread = ServerThread(build_weather_database(), registry=registry)
    with thread as srv:
        yield srv
    assert len(srv.sessions) == 0  # stop() clears every hosted session


def _url(server, path: str) -> str:
    return f"http://{server.host}:{server.port}{path}"


def _get(server, path: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(_url(server, path), timeout=30) as reply:
        return reply.status, reply.read()


def _post(server, path: str, body: bytes = b"") -> tuple[int, bytes]:
    request = urllib.request.Request(_url(server, path), data=body,
                                     method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _wait_until(predicate, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(0.02)


# ---------------------------------------------------------------------------
# Plain HTTP
# ---------------------------------------------------------------------------


def test_healthz_lists_hosted_programs(server):
    status, body = _get(server, "/healthz")
    payload = json.loads(body)
    assert status == 200
    assert payload["ok"] is True
    assert payload["database"] == "weather"
    assert "fig4" in payload["programs"]
    assert payload["protocol"] == 1


def test_http_session_and_command_round_trip(server):
    status, body = _post(server, "/api/session")
    assert status == 200
    sid = json.loads(body)["session"]

    status, body = _post(
        server, f"/api/command?session={sid}",
        encode_command(OpenProgram(name="fig1")).encode("utf-8"))
    payload = json.loads(body)
    assert status == 200
    assert payload["result"]["program"] == "fig1"
    assert payload["result"]["windows"]


def test_http_unknown_session_is_stable_error(server):
    status, body = _post(
        server, "/api/command?session=bogus",
        encode_command(Stats()).encode("utf-8"))
    payload = json.loads(body)
    assert status == 400
    assert payload["code"] == "T2-E512"
    assert "bogus" in payload["message"]


def test_http_unknown_route_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as info:
        _get(server, "/nope")
        raise AssertionError("unreachable")
    assert info.value.code == 404


# ---------------------------------------------------------------------------
# WebSocket basics
# ---------------------------------------------------------------------------


def test_ws_welcome_open_render_pick_why_stats(server):
    with connect(f"ws://{server.host}:{server.port}/ws") as client:
        assert isinstance(client.welcome, Welcome)
        assert "fig4" in client.welcome.programs

        opened = client.request(OpenProgram(name="fig4"))
        assert isinstance(opened, Reply)
        assert opened.result["windows"] == ["stations"]

        frame = client.request(Render(window="stations"))
        assert isinstance(frame, FrameReply)
        assert (frame.width, frame.height) == (640, 480)
        assert frame.frame_seq == 1
        assert frame.data_bytes().startswith(b"P6\n640 480\n255\n")

        moved = client.request(Pan(window="stations", dx=25.0, dy=-10.0))
        assert isinstance(moved, Reply)
        assert set(moved.result) >= {"center", "elevation", "window"}

        second = client.request(Render(window="stations"))
        assert isinstance(second, FrameReply)
        assert second.frame_seq == 2
        assert second.data_bytes() != frame.data_bytes()

        picked = client.request(Pick(window="stations", px=320.0, py=240.0))
        assert isinstance(picked, Reply)
        assert isinstance(picked.result["picked"], bool)

        why = client.request(Why(window="stations", px=320.0, py=240.0))
        assert isinstance(why, Reply)
        assert why.result["schema"] == "repro.lineage/1"
        assert why.result["pixel"] == [320.0, 240.0]

        stats = client.request(Stats())
        assert isinstance(stats, Reply)
        assert "metrics" in stats.result or stats.result


def test_ws_error_replies_carry_protocol_codes(server):
    with connect(f"ws://{server.host}:{server.port}/ws") as client:
        client.request(OpenProgram(name="fig4"))
        error = client.request(Render(window="nowhere"))
        assert isinstance(error, ErrorReply)
        assert error.code == "T2-E502"
        assert error.error_type == "UIError"


def test_ws_unknown_session_refused(server):
    with pytest.raises(ProtocolError) as info:
        connect(f"ws://{server.host}:{server.port}/ws", session="bogus")
    assert info.value.code == "T2-E512"


def test_ws_can_adopt_http_created_session(server):
    _, body = _post(server, "/api/session")
    sid = json.loads(body)["session"]
    with connect(f"ws://{server.host}:{server.port}/ws",
                 session=sid) as client:
        assert client.session == sid
        opened = client.request(OpenProgram(name="fig4"))
        assert opened.ok
    # Adopted sessions outlive the connection (the HTTP creator owns them).
    assert sid in server.sessions


# ---------------------------------------------------------------------------
# Concurrency: many viewers, in-order frames, zero dropped finals
# ---------------------------------------------------------------------------


def test_five_concurrent_viewers_all_frames_in_order(server):
    clients = 5
    renders = 4
    sids: list[str] = []
    failures: list[str] = []

    def viewer(index: int) -> None:
        try:
            with connect(f"ws://{server.host}:{server.port}/ws") as client:
                sids.append(client.session)
                assert client.request(OpenProgram(name="fig4")).ok
                for step in range(renders):
                    client.request(Pan(window="stations",
                                       dx=5.0 * (index + 1), dy=3.0 * step))
                    if step % 2:
                        client.request(Zoom(window="stations", factor=1.5))
                    frame = client.request(Render(window="stations"))
                    assert isinstance(frame, FrameReply), frame
                    assert frame.frame_seq == step + 1
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append(f"viewer {index}: {exc!r}")

    threads = [threading.Thread(target=viewer, args=(i,))
               for i in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(120)
    assert not failures, failures
    assert len(sids) == clients

    # Clean shutdown: every auto-created session is dropped on disconnect
    # and no viewer had a frame coalesced away (request/reply pacing means
    # the send queues never filled).
    _wait_until(lambda: not any(sid in server.sessions for sid in sids))
    dropped = server.registry.counter("server.frames_dropped")
    assert all(dropped.value(label=sid) == 0 for sid in sids)
    # Dropping a session prunes its per-label series (the cardinality fix)
    # but folds the counts into the aggregate: no session labels linger,
    # and the total still accounts for every executed command.
    commands = server.registry.counter("server.commands")
    assert all(commands.value(label=sid) == 0 for sid in sids)
    assert all(sid not in commands.values for sid in sids)
    assert commands.total() >= clients * (renders + 1)


def test_backpressure_coalesces_frames_but_keeps_newest():
    registry = MetricsRegistry()
    renders = 12
    with ServerThread(build_weather_database(), registry=registry,
                      max_queue=2) as srv:
        client = connect(f"ws://{srv.host}:{srv.port}/ws")
        sid = client.session
        assert client.request(OpenProgram(name="fig4")).ok
        # Fire renders without reading any frames: the send queue fills,
        # older frames for the window coalesce away, newest survives.
        for _ in range(renders):
            client.send(Render(window="stations"))
        commands = registry.counter("server.commands")
        _wait_until(lambda: commands.value(label=sid) >= renders + 1)

        received = []
        while True:
            response = client.recv()
            assert isinstance(response, FrameReply), response
            received.append(response.frame_seq)
            if response.frame_seq == renders:
                break
        client.close()

        assert received == sorted(received), "frames arrived out of order"
        assert received[-1] == renders, "newest frame must always arrive"
        assert len(received) < renders, "expected coalescing under backpressure"
        # The session died with its connection, so its label is pruned and
        # its drop count folded into the aggregate total.
        _wait_until(
            lambda: registry.counter("server.frames_dropped").total() > 0)
        assert registry.counter("server.frames_dropped").total() \
            == renders - len(received)
        assert sid not in registry.counter("server.frames_dropped").values


# ---------------------------------------------------------------------------
# Cross-session cache sharing and metric labels
# ---------------------------------------------------------------------------


def test_cross_session_renders_share_the_result_cache(server):
    url = f"ws://{server.host}:{server.port}/ws"
    with connect(url) as first, connect(url) as second:
        assert first.session != second.session
        assert first.request(OpenProgram(name="fig4")).ok
        warm = first.request(Render(window="stations"))
        assert isinstance(warm, FrameReply)

        assert second.request(OpenProgram(name="fig4")).ok
        shared = second.request(Render(window="stations"))
        assert isinstance(shared, FrameReply)
        # Identical program + identical initial view: the second session's
        # very first render is served from the first session's plan results.
        assert shared.cache_hits >= 1
        assert shared.cache_misses == 0
        assert shared.data_bytes() == warm.data_bytes()


def test_metrics_endpoint_exposes_per_session_labels(server):
    with connect(f"ws://{server.host}:{server.port}/ws") as client:
        sid = client.session
        client.request(OpenProgram(name="fig4"))
        client.request(Render(window="stations"))
        status, body = _get(server, "/metrics")
    text = body.decode("utf-8")
    assert status == 200
    assert f'server_commands_total{{label="{sid}"}}' in text
    assert "server_sessions" in text
    assert f'server_frame_ms_count{{label="{sid}"}}' in text


def test_two_clients_one_session_share_state(server):
    _, body = _post(server, "/api/session")
    sid = json.loads(body)["session"]
    url = f"ws://{server.host}:{server.port}/ws"
    with connect(url, session=sid) as a, connect(url, session=sid) as b:
        assert a.request(OpenProgram(name="fig4")).ok
        # b sees the program a opened: same server-side Session object.
        frame = b.request(Render(window="stations"))
        assert isinstance(frame, FrameReply)


def test_pick_after_cached_frame_matches_fresh_session(server):
    # Review regression: a FrameCache hit must leave pick/why resolving
    # against the displayed frame's display list.  The stale-path client
    # (render A, pan, render, pan back, cached render A) must pick exactly
    # what a fresh client at view A picks.
    url = f"ws://{server.host}:{server.port}/ws"
    with connect(url) as stale, connect(url) as fresh:
        assert stale.request(OpenProgram(name="fig4")).ok
        state = stale.request(Pan(window="stations", dx=0.0, dy=0.0)).result
        cx, cy = state["center"]
        first = stale.request(Render(window="stations"))
        assert isinstance(first, FrameReply)
        stale.request(Pan(window="stations", dx=40.0, dy=25.0))
        assert isinstance(
            stale.request(Render(window="stations")), FrameReply)
        stale.request(PanTo(window="stations", cx=cx, cy=cy))
        back = stale.request(Render(window="stations"))
        assert isinstance(back, FrameReply)
        assert back.data_bytes() == first.data_bytes()
        assert back.render_ms == 0.0  # served from the shared FrameCache

        assert fresh.request(OpenProgram(name="fig4")).ok
        assert isinstance(
            fresh.request(Render(window="stations")), FrameReply)
        for px, py in [(120.0, 90.0), (320.0, 240.0), (520.0, 400.0)]:
            a = stale.request(Pick(window="stations", px=px, py=py))
            b = fresh.request(Pick(window="stations", px=px, py=py))
            assert a.result == b.result


# ---------------------------------------------------------------------------
# Session lifecycle: explicit delete, idle expiry
# ---------------------------------------------------------------------------


def _delete(server, path: str) -> tuple[int, bytes]:
    request = urllib.request.Request(_url(server, path), method="DELETE")
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def test_http_session_delete_endpoint(server):
    _, body = _post(server, "/api/session")
    sid = json.loads(body)["session"]
    assert sid in server.sessions

    status, body = _delete(server, f"/api/session?session={sid}")
    assert status == 200
    assert json.loads(body) == {"ok": True, "session": sid}
    assert sid not in server.sessions

    status, body = _delete(server, f"/api/session?session={sid}")
    assert status == 404
    assert json.loads(body)["code"] == "T2-E512"

    status, body = _post(
        server, f"/api/command?session={sid}",
        encode_command(Stats()).encode("utf-8"))
    payload = json.loads(body)
    assert status == 400
    assert payload["code"] == "T2-E512"
    assert "expired" in payload["message"]


def test_idle_http_sessions_expire():
    registry = MetricsRegistry()
    with ServerThread(build_weather_database(), registry=registry,
                      session_ttl=0.1) as srv:
        _, body = _post(srv, "/api/session")
        sid = json.loads(body)["session"]
        assert sid in srv.sessions
        _wait_until(lambda: sid not in srv.sessions)
        assert registry.gauge("server.sessions").value() == 0


def test_connected_sessions_never_idle_expire():
    with ServerThread(build_weather_database(),
                      registry=MetricsRegistry(),
                      session_ttl=0.1) as srv:
        with connect(f"ws://{srv.host}:{srv.port}/ws") as client:
            sid = client.session
            time.sleep(0.5)  # several sweep intervals past the TTL
            assert sid in srv.sessions
            assert client.request(OpenProgram(name="fig4")).ok


# ---------------------------------------------------------------------------
# Close handshake and client socket hygiene
# ---------------------------------------------------------------------------


def test_ws_close_handshake_completes(server):
    client = connect(f"ws://{server.host}:{server.port}/ws")
    assert client.request(OpenProgram(name="fig4")).ok
    # Initiate the close handshake without tearing the socket down: the
    # server must reply with an RFC 6455 close frame, not a bare TCP close.
    client._sock.sendall(ws.encode_frame(
        (1000).to_bytes(2, "big"), opcode=ws.OP_CLOSE, mask=True))
    codes = []
    while not codes:
        chunk = client._sock.recv(65536)
        if not chunk:
            break
        for opcode, payload in client._parser.feed(chunk):
            if opcode == ws.OP_CLOSE:
                codes.append(int.from_bytes(payload[:2], "big"))
    assert codes == [1000]
    client._closed = True
    client._sock.close()


def test_drain_restores_socket_timeout(server):
    with connect(f"ws://{server.host}:{server.port}/ws",
                 timeout=5.0) as client:
        assert client.request(OpenProgram(name="fig4")).ok
        client.send(Render(window="stations"))
        client.drain()
        # drain() must restore the constructor's timeout, not blocking
        # mode — otherwise every later recv() could hang forever.
        assert client._sock.gettimeout() == 5.0
        frame = client.request(Render(window="stations"))
        assert isinstance(frame, FrameReply)
