"""Unit tests: the atomic type system (repro.dbms.types)."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.dbms import types as T
from repro.display.drawables import Circle, Text
from repro.errors import TypeCheckError


class TestValidation:
    def test_int_accepts_ints(self):
        assert T.INT.validates(7)
        assert T.INT.validates(-3)

    def test_int_rejects_bool(self):
        assert not T.INT.validates(True)

    def test_int_rejects_float(self):
        assert not T.INT.validates(7.0)

    def test_float_accepts_floats(self):
        assert T.FLOAT.validates(3.5)

    def test_float_rejects_nan(self):
        assert not T.FLOAT.validates(float("nan"))

    def test_float_rejects_int(self):
        assert not T.FLOAT.validates(3)

    def test_text_accepts_str(self):
        assert T.TEXT.validates("hello")

    def test_bool_accepts_bool(self):
        assert T.BOOL.validates(False)

    def test_bool_rejects_int(self):
        assert not T.BOOL.validates(0)

    def test_date_accepts_date(self):
        assert T.DATE.validates(dt.date(1990, 6, 1))

    def test_date_rejects_datetime(self):
        assert not T.DATE.validates(dt.datetime(1990, 6, 1))

    def test_drawables_accepts_drawable_list(self):
        assert T.DRAWABLES.validates([Circle(3.0), Text("hi")])

    def test_drawables_accepts_empty_list(self):
        assert T.DRAWABLES.validates([])

    def test_drawables_rejects_non_drawables(self):
        assert not T.DRAWABLES.validates([1, 2])


class TestCoercion:
    def test_int_coerces_integral_float(self):
        assert T.INT.coerce(4.0) == 4

    def test_int_rejects_fractional_float(self):
        with pytest.raises(TypeCheckError):
            T.INT.coerce(4.5)

    def test_float_coerces_int(self):
        assert T.FLOAT.coerce(4) == 4.0
        assert isinstance(T.FLOAT.coerce(4), float)

    def test_date_coerces_iso_string(self):
        assert T.DATE.coerce("1990-06-01") == dt.date(1990, 6, 1)

    def test_date_rejects_bad_string(self):
        with pytest.raises(TypeCheckError):
            T.DATE.coerce("not-a-date")

    def test_drawables_coerces_single_drawable(self):
        result = T.DRAWABLES.coerce(Circle(2.0))
        assert isinstance(result, list) and len(result) == 1

    def test_text_rejects_int(self):
        with pytest.raises(TypeCheckError):
            T.TEXT.coerce(42)


class TestParsing:
    def test_int_parse(self):
        assert T.INT.parse(" 42 ") == 42

    def test_int_parse_error(self):
        with pytest.raises(TypeCheckError):
            T.INT.parse("4.5")

    def test_float_parse(self):
        assert T.FLOAT.parse("2.5") == 2.5

    def test_bool_parse_variants(self):
        assert T.BOOL.parse("true") is True
        assert T.BOOL.parse("F") is False
        assert T.BOOL.parse("yes") is True
        assert T.BOOL.parse("0") is False

    def test_bool_parse_error(self):
        with pytest.raises(TypeCheckError):
            T.BOOL.parse("maybe")

    def test_date_parse(self):
        assert T.DATE.parse("1995-12-31") == dt.date(1995, 12, 31)

    def test_drawables_parse_is_error(self):
        with pytest.raises(TypeCheckError):
            T.DRAWABLES.parse("circle")


class TestDefaultDisplay:
    def test_float_display_is_compact(self):
        assert T.FLOAT.default_display(2.0) == "2"
        assert T.FLOAT.default_display(2.5) == "2.5"

    def test_date_display_is_iso(self):
        assert T.DATE.default_display(dt.date(1990, 1, 2)) == "1990-01-02"

    def test_drawables_display_names_kinds(self):
        rendered = T.DRAWABLES.default_display([Circle(1.0)])
        assert "Circle" in rendered


class TestRegistry:
    def test_lookup_by_name(self):
        assert T.type_by_name("int") is T.INT
        assert T.type_by_name("drawables") is T.DRAWABLES

    def test_unknown_name_raises(self):
        with pytest.raises(TypeCheckError, match="unknown type"):
            T.type_by_name("tensor")

    def test_registered_names_include_all_atomics(self):
        names = T.registered_type_names()
        for expected in ("int", "float", "text", "bool", "date", "drawables"):
            assert expected in names

    def test_conflicting_registration_rejected(self):
        class FakeInt(T.AtomicType):
            name = "int"

        with pytest.raises(TypeCheckError, match="already registered"):
            T.register_type(FakeInt())


class TestInference:
    def test_infer_each_type(self):
        assert T.infer_type(1) is T.INT
        assert T.infer_type(1.5) is T.FLOAT
        assert T.infer_type("x") is T.TEXT
        assert T.infer_type(True) is T.BOOL
        assert T.infer_type(dt.date(2000, 1, 1)) is T.DATE
        assert T.infer_type([Circle(1.0)]) is T.DRAWABLES

    def test_infer_rejects_nan(self):
        with pytest.raises(TypeCheckError):
            T.infer_type(float("nan"))

    def test_infer_rejects_unknown(self):
        with pytest.raises(TypeCheckError):
            T.infer_type(object())

    def test_numeric_predicate(self):
        assert T.numeric(T.INT)
        assert T.numeric(T.FLOAT)
        assert not T.numeric(T.TEXT)
        assert not T.numeric(T.BOOL)


class TestUpdateFunctions:
    def test_default_update_parses(self):
        fn = T.get_update_function(T.INT)
        assert fn(1, "99") == 99

    def test_custom_update_function(self):
        doubling = lambda old, raw: int(raw) * 2
        T.set_update_function(T.INT, doubling)
        try:
            assert T.get_update_function(T.INT)(0, "21") == 42
        finally:
            T._UPDATE_FUNCTIONS.pop("int", None)

    def test_update_function_reset_restores_default(self):
        T.set_update_function(T.TEXT, lambda old, raw: raw.upper())
        T._UPDATE_FUNCTIONS.pop("text", None)
        assert T.get_update_function(T.TEXT)("", "abc") == "abc"
