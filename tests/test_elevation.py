"""Unit tests: elevation ranges and the elevation map (display.elevation)."""

from __future__ import annotations

import math

import pytest

from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema
from repro.display.displayable import Composite, DisplayableRelation
from repro.display.elevation import (
    TOP_SIDE,
    UNDER_SIDE,
    ElevationMap,
    ElevationRange,
)
from repro.errors import DisplayError

SCHEMA = Schema([("v", "int")])


def relation(name: str) -> DisplayableRelation:
    return DisplayableRelation(RowSet.from_dicts(SCHEMA, [{"v": 1}]), name=name)


class TestElevationRange:
    def test_default_is_topside_everything(self):
        rng = ElevationRange()
        assert rng.contains(0.0)
        assert rng.contains(1e9)
        assert not rng.contains(-0.001)

    def test_contains_bounds_inclusive(self):
        rng = ElevationRange(2.0, 10.0)
        assert rng.contains(2.0)
        assert rng.contains(10.0)
        assert not rng.contains(1.999)
        assert not rng.contains(10.001)

    def test_inverted_rejected(self):
        with pytest.raises(DisplayError):
            ElevationRange(5.0, 1.0)

    def test_nan_rejected(self):
        with pytest.raises(DisplayError):
            ElevationRange(math.nan, 1.0)

    def test_sides_classification(self):
        # §6.3: both positive → top only; both negative → underside only;
        # straddling zero → both sides.
        assert ElevationRange(1.0, 10.0).sides() == (TOP_SIDE,)
        assert ElevationRange(-10.0, -1.0).sides() == (UNDER_SIDE,)
        assert ElevationRange(-5.0, 5.0).sides() == (TOP_SIDE, UNDER_SIDE)

    def test_intersect(self):
        a = ElevationRange(0.0, 10.0)
        b = ElevationRange(5.0, 20.0)
        assert a.intersect(b) == ElevationRange(5.0, 10.0)
        assert a.intersect(ElevationRange(11.0, 12.0)) is None

    def test_equality(self):
        assert ElevationRange(1, 2) == ElevationRange(1.0, 2.0)
        assert ElevationRange(1, 2) != ElevationRange(1, 3)


class TestElevationMap:
    def make_composite(self) -> Composite:
        return Composite([
            relation("map"),
            relation("coarse").with_range(0, 100),
            relation("detail").with_range(0, 12),
        ])

    def test_bars_reflect_drawing_order(self):
        bars = ElevationMap(self.make_composite()).bars()
        assert [bar.name for bar in bars] == ["map", "coarse", "detail"]
        assert [bar.order for bar in bars] == [0, 1, 2]
        assert bars[2].range.maximum == 12

    def test_set_range_via_map(self):
        composite = self.make_composite()
        emap = composite.elevation_map()
        emap.set_range("coarse", 5, 50)
        assert composite.entry_named("coarse").relation.elevation_range == \
            ElevationRange(5, 50)

    def test_shuffle_via_map(self):
        composite = self.make_composite()
        composite.elevation_map().shuffle_to_top("map")
        assert composite.component_names() == ["coarse", "detail", "map"]

    def test_move_to_order_via_map(self):
        composite = self.make_composite()
        composite.elevation_map().move_to_order("detail", 0)
        assert composite.component_names() == ["detail", "map", "coarse"]

    def test_len_and_iter(self):
        emap = ElevationMap(self.make_composite())
        assert len(emap) == 3
        assert len(list(emap)) == 3
