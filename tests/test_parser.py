"""Unit tests: the query-language parser (repro.dbms.parser)."""

from __future__ import annotations

import datetime as dt

import pytest

from repro.dbms import types as T
from repro.dbms.parser import parse_expression, parse_predicate, tokenize
from repro.dbms.tuples import Schema, Tuple
from repro.errors import ExpressionError, TypeCheckError

SCHEMA = Schema(
    [("a", "int"), ("b", "float"), ("s", "text"), ("flag", "bool"), ("d", "date")]
)
ROW = Tuple(
    SCHEMA, {"a": 6, "b": 2.5, "s": "it's", "flag": True, "d": dt.date(1991, 7, 4)}
)


def evaluate(source: str):
    return parse_expression(source, SCHEMA).evaluate(ROW)


class TestTokenizer:
    def test_numbers(self):
        kinds = [(t.kind, t.text) for t in tokenize("1 2.5 .5 1e3 2.5e-2")][:-1]
        assert kinds == [
            ("num", "1"), ("num", "2.5"), ("num", ".5"),
            ("num", "1e3"), ("num", "2.5e-2"),
        ]

    def test_string_with_escaped_quote(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].kind == "str"
        assert tokens[0].text == "it's"

    def test_unterminated_string(self):
        with pytest.raises(ExpressionError, match="unterminated"):
            tokenize("'oops")

    def test_keywords_case_insensitive(self):
        tokens = tokenize("AND Or NoT")
        assert [t.text for t in tokens[:-1]] == ["and", "or", "not"]

    def test_identifiers_preserve_case(self):
        assert tokenize("Altitude")[0].text == "Altitude"

    def test_two_char_operators(self):
        texts = [t.text for t in tokenize("<= >= != <> == ||")][:-1]
        assert texts == ["<=", ">=", "!=", "<>", "==", "||"]

    def test_illegal_character(self):
        with pytest.raises(ExpressionError, match="illegal character"):
            tokenize("a $ b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestParsing:
    def test_precedence_mul_over_add(self):
        assert evaluate("1 + 2 * 3") == 7

    def test_parentheses(self):
        assert evaluate("(1 + 2) * 3") == 9

    def test_unary_minus(self):
        assert evaluate("-a + 10") == 4

    def test_comparison_chain_via_and(self):
        assert evaluate("1 < a and a < 10") is True

    def test_not_binds_tighter_than_and(self):
        assert evaluate("not flag and flag") is False

    def test_or_lowest(self):
        assert evaluate("flag or flag and not flag") is True

    def test_alternative_spellings(self):
        assert evaluate("a == 6") is True
        assert evaluate("a <> 7") is True

    def test_if_then_else(self):
        assert evaluate("if a > 3 then 'big' else 'small'") == "big"

    def test_if_with_end_keyword(self):
        assert evaluate("if flag then 1 else 2 end") == 1

    def test_nested_if(self):
        assert evaluate("if a > 10 then 1 else if a > 3 then 2 else 3") == 2

    def test_function_calls(self):
        assert evaluate("max(a, 10)") == 10
        assert evaluate("year(d)") == 1991

    def test_zero_arg_call(self):
        result = evaluate("nothing()")
        assert result == []

    def test_string_concat(self):
        assert evaluate("s || '!'") == "it's!"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ExpressionError, match="trailing"):
            parse_expression("1 + 2 3")

    def test_missing_operand_rejected(self):
        with pytest.raises(ExpressionError):
            parse_expression("1 +")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ExpressionError):
            parse_expression("(1 + 2")

    def test_missing_then_rejected(self):
        with pytest.raises(ExpressionError, match="then"):
            parse_expression("if flag 1 else 2")

    def test_boolean_literals(self):
        assert evaluate("true") is True
        assert evaluate("false") is False

    def test_float_vs_int_literal(self):
        expr = parse_expression("2")
        assert expr.infer(SCHEMA) is T.INT
        expr = parse_expression("2.0")
        assert expr.infer(SCHEMA) is T.FLOAT

    def test_schema_check_at_parse_time(self):
        with pytest.raises(TypeCheckError, match="unknown field"):
            parse_expression("zzz + 1", SCHEMA)

    def test_str_roundtrip(self):
        # str(expr) reparses to an expression with the same value.
        source = "if a > 3 and not flag then b * 2 else abs(-a) / 2"
        expr = parse_expression(source, SCHEMA)
        reparsed = parse_expression(str(expr), SCHEMA)
        assert reparsed.evaluate(ROW) == expr.evaluate(ROW)


class TestPredicates:
    def test_predicate_accepts_bool(self):
        pred = parse_predicate("a > 3 and flag", SCHEMA)
        assert pred.evaluate(ROW) is True

    def test_predicate_rejects_non_bool(self):
        with pytest.raises(ExpressionError, match="expected bool"):
            parse_predicate("a + 1", SCHEMA)

    def test_predicate_rejects_unknown_field(self):
        with pytest.raises(TypeCheckError):
            parse_predicate("height > 3", SCHEMA)
