"""Integration tests: extending the type system (the §8 'type definer' story).

"For each primitive type, the type definer is required to implement a
default display function ... Similarly, we require the type definer to write
a second update function."  This registers a custom Money type end-to-end:
storage, default display in the terminal-monitor listing, predicates, and
screen updates through the custom update function.
"""

from __future__ import annotations

import pytest

from repro.dbms import types as T
from repro.dbms.relation import Table
from repro.dbms.tuples import Schema
from repro.dbms.update import ScriptedDialog, generic_update
from repro.errors import TypeCheckError


class MoneyType(T.AtomicType):
    """Cents stored as int, displayed and edited as dollars."""

    name = "money_test"

    def validates(self, value):
        return isinstance(value, int) and not isinstance(value, bool)

    def coerce(self, value):
        if self.validates(value):
            return value
        raise TypeCheckError(f"{value!r} is not money (integer cents)")

    def default_value(self):
        return 0

    def default_display(self, value):
        return f"${value / 100:.2f}"

    def parse(self, text):
        text = text.strip().lstrip("$")
        try:
            return int(round(float(text) * 100))
        except ValueError as exc:
            raise TypeCheckError(f"cannot parse {text!r} as money") from exc


@pytest.fixture(scope="module")
def money() -> MoneyType:
    try:
        return T.type_by_name("money_test")  # type: ignore[return-value]
    except TypeCheckError:
        return T.register_type(MoneyType())  # type: ignore[return-value]


@pytest.fixture()
def price_table(money) -> Table:
    table = Table(
        "Prices", Schema([("item", "text"), ("price", money)])
    )
    table.insert_many(
        [{"item": "widget", "price": 250}, {"item": "gadget", "price": 1999}]
    )
    return table


class TestCustomType:
    def test_registered_and_resolvable(self, money):
        assert T.type_by_name("money_test") is money

    def test_storage_validates(self, money, price_table):
        with pytest.raises(TypeCheckError):
            price_table.insert({"item": "bad", "price": "cheap"})

    def test_default_display(self, money):
        assert money.default_display(1999) == "$19.99"

    def test_default_display_in_listing(self, money, price_table):
        from repro.dbms.relation import MethodSet
        from repro.display.defaults import default_field_texts

        methods = MethodSet(price_table.schema)
        view = methods.row_view(price_table.snapshot()[0])
        texts = default_field_texts(view, price_table.schema)
        assert texts[1].strip() == "$2.50"

    def test_update_via_type_parse(self, money, price_table):
        row = price_table.snapshot()[0]
        outcome = generic_update(
            price_table, row, ScriptedDialog({"price": "$3.75"})
        )
        assert outcome.new["price"] == 375

    def test_custom_update_function(self, money, price_table):
        # The type definer swaps in a relative-adjustment update function.
        T.set_update_function(
            money, lambda old, raw: old + money.parse(raw)
        )
        try:
            row = price_table.snapshot()[1]
            outcome = generic_update(
                price_table, row, ScriptedDialog({"price": "1.00"})
            )
            assert outcome.new["price"] == 2099  # 19.99 + 1.00
        finally:
            T._UPDATE_FUNCTIONS.pop(money.name, None)

    def test_displayable_relation_over_custom_type(self, money, price_table):
        from repro.display.defaults import default_displayable

        relation = default_displayable(price_table)
        drawables = relation.display_of(relation.view_at(1))
        texts = [d.text for d in drawables]
        assert any("$19.99" in text for text in texts)
