"""Unit tests: tables, row sets, and computed-attribute methods."""

from __future__ import annotations

import pytest

from repro.dbms import types as T
from repro.dbms.parser import parse_expression
from repro.dbms.relation import Method, MethodSet, RowSet, Table
from repro.dbms.tuples import Schema, Tuple
from repro.errors import EvaluationError, SchemaError, TypeCheckError

SCHEMA = Schema([("name", "text"), ("value", "int")])


def make_table() -> Table:
    table = Table("T", SCHEMA)
    table.insert_many([{"name": "a", "value": 1}, {"name": "b", "value": 2}])
    return table


class TestRowSet:
    def test_rows_materialized_and_immutable(self):
        rows = RowSet(SCHEMA, (Tuple(SCHEMA, ["a", 1]),))
        assert len(rows) == 1
        assert rows[0]["name"] == "a"

    def test_schema_mismatch_rejected(self):
        other = Schema([("name", "text")])
        with pytest.raises(SchemaError):
            RowSet(SCHEMA, (Tuple(other, ["a"]),))

    def test_from_dicts(self):
        rows = RowSet.from_dicts(SCHEMA, [{"name": "x", "value": 9}])
        assert rows[0]["value"] == 9

    def test_equality(self):
        a = RowSet.from_dicts(SCHEMA, [{"name": "x", "value": 1}])
        b = RowSet.from_dicts(SCHEMA, [{"name": "x", "value": 1}])
        assert a == b


class TestTable:
    def test_insert_bumps_version(self):
        table = make_table()
        v = table.version
        table.insert({"name": "c", "value": 3})
        assert table.version == v + 1
        assert len(table) == 3

    def test_insert_many_single_version_step(self):
        table = Table("T", SCHEMA)
        v = table.version
        table.insert_many([{"name": "a", "value": 1}, {"name": "b", "value": 2}])
        assert table.version == v + 1

    def test_insert_many_empty_no_version_bump(self):
        table = Table("T", SCHEMA)
        v = table.version
        table.insert_many([])
        assert table.version == v

    def test_insert_validates(self):
        table = make_table()
        with pytest.raises(TypeCheckError):
            table.insert({"name": "c", "value": "three"})

    def test_delete_where(self):
        table = make_table()
        deleted = table.delete_where(lambda row: row["value"] > 1)
        assert deleted == 1
        assert len(table) == 1

    def test_delete_where_no_match_keeps_version(self):
        table = make_table()
        v = table.version
        assert table.delete_where(lambda row: False) == 0
        assert table.version == v

    def test_update_where(self):
        table = make_table()
        updated = table.update_where(lambda row: row["name"] == "a", {"value": 10})
        assert updated == 1
        assert table.snapshot()[0]["value"] == 10

    def test_replace_row(self):
        table = make_table()
        old = table.snapshot()[0]
        new = old.replace(value=99)
        assert table.replace_row(old, new) is True
        assert table.snapshot()[0]["value"] == 99

    def test_replace_missing_row(self):
        table = make_table()
        ghost = Tuple(SCHEMA, ["ghost", 0])
        assert table.replace_row(ghost, ghost.replace(value=1)) is False

    def test_clear(self):
        table = make_table()
        table.clear()
        assert len(table) == 0

    def test_snapshot_is_isolated(self):
        table = make_table()
        snap = table.snapshot()
        table.insert({"name": "c", "value": 3})
        assert len(snap) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Table("", SCHEMA)


class TestMethods:
    def test_expression_method(self):
        method = Method("double", "int", parse_expression("value * 2"))
        methods = MethodSet(SCHEMA, [method])
        view = methods.row_view(Tuple(SCHEMA, ["a", 4]))
        assert view["double"] == 8

    def test_methods_see_earlier_methods(self):
        methods = MethodSet(SCHEMA)
        methods.add(Method("double", "int", parse_expression("value * 2")))
        methods.add(Method("quad", "int", parse_expression("double * 2")))
        view = methods.row_view(Tuple(SCHEMA, ["a", 3]))
        assert view["quad"] == 12

    def test_method_cannot_reference_later_method(self):
        methods = MethodSet(SCHEMA)
        with pytest.raises(TypeCheckError):
            methods.add(Method("bad", "int", parse_expression("later * 2")))

    def test_duplicate_name_rejected(self):
        methods = MethodSet(SCHEMA)
        with pytest.raises(SchemaError):
            methods.add(Method("value", "int", parse_expression("1")))

    def test_declared_type_checked(self):
        with pytest.raises(TypeCheckError, match="declared"):
            MethodSet(SCHEMA, [Method("bad", "text", parse_expression("value + 1"))])

    def test_numeric_declared_type_coerces(self):
        methods = MethodSet(SCHEMA, [Method("half", "float", parse_expression("value"))])
        view = methods.row_view(Tuple(SCHEMA, ["a", 3]))
        assert view["half"] == 3.0
        assert isinstance(view["half"], float)

    def test_python_callable_method(self):
        method = Method("shout", "text", lambda row: row["name"].upper(),
                        depends=["name"])
        methods = MethodSet(SCHEMA, [method])
        view = methods.row_view(Tuple(SCHEMA, ["ada", 1]))
        assert view["shout"] == "ADA"

    def test_python_callable_unknown_dependency(self):
        method = Method("bad", "int", lambda row: 0, depends=["ghost"])
        with pytest.raises(SchemaError, match="ghost"):
            MethodSet(SCHEMA, [method])

    def test_wrong_runtime_type_reported(self):
        method = Method("bad", "int", lambda row: "oops", depends=[])
        methods = MethodSet(SCHEMA, [method])
        view = methods.row_view(Tuple(SCHEMA, ["a", 1]))
        with pytest.raises(EvaluationError, match="wrong type"):
            view["bad"]

    def test_extended_schema_order(self):
        methods = MethodSet(SCHEMA)
        methods.add(Method("m1", "int", parse_expression("value")))
        methods.add(Method("m2", "int", parse_expression("m1")))
        assert methods.extended_schema.names == ("name", "value", "m1", "m2")

    def test_replace_rechecks_downstream(self):
        methods = MethodSet(SCHEMA)
        methods.add(Method("m1", "int", parse_expression("value")))
        methods.add(Method("m2", "int", parse_expression("m1 + 1")))
        methods.replace(Method("m1", "int", parse_expression("value * 10")))
        view = methods.row_view(Tuple(SCHEMA, ["a", 2]))
        assert view["m2"] == 21

    def test_replace_type_change_breaking_downstream_rejected(self):
        methods = MethodSet(SCHEMA)
        methods.add(Method("m1", "int", parse_expression("value")))
        methods.add(Method("m2", "int", parse_expression("m1 + 1")))
        with pytest.raises(TypeCheckError):
            methods.replace(Method("m1", "text", parse_expression("name")))

    def test_remove_with_dependents_rejected(self):
        methods = MethodSet(SCHEMA)
        methods.add(Method("m1", "int", parse_expression("value")))
        methods.add(Method("m2", "int", parse_expression("m1 + 1")))
        with pytest.raises(SchemaError, match="depends"):
            methods.remove("m1")

    def test_remove_leaf(self):
        methods = MethodSet(SCHEMA)
        methods.add(Method("m1", "int", parse_expression("value")))
        methods.remove("m1")
        assert "m1" not in methods

    def test_rebase_to_compatible_schema(self):
        methods = MethodSet(SCHEMA, [Method("double", "int", parse_expression("value * 2"))])
        wider = Schema([("name", "text"), ("value", "int"), ("extra", "float")])
        rebased = methods.rebase(wider)
        assert "double" in rebased

    def test_rebase_to_incompatible_schema_rejected(self):
        methods = MethodSet(SCHEMA, [Method("double", "int", parse_expression("value * 2"))])
        narrower = Schema([("name", "text")])
        with pytest.raises(TypeCheckError):
            methods.rebase(narrower)

    def test_ambient_fields(self):
        methods = MethodSet(SCHEMA, ambient={"seq": T.INT})
        methods.add(Method("rank", "int", parse_expression("seq + 1")))
        view = methods.row_view(Tuple(SCHEMA, ["a", 1]), extra={"seq": 4})
        assert view["rank"] == 5

    def test_ambient_name_collision_rejected(self):
        methods = MethodSet(SCHEMA, ambient={"seq": T.INT})
        with pytest.raises(SchemaError):
            methods.add(Method("seq", "int", parse_expression("1")))


class TestVirtualRow:
    def test_memoizes_computation(self):
        calls = []

        def compute(row):
            calls.append(1)
            return 42

        methods = MethodSet(SCHEMA, [Method("m", "int", compute, depends=[])])
        view = methods.row_view(Tuple(SCHEMA, ["a", 1]))
        assert view["m"] == 42
        assert view["m"] == 42
        assert len(calls) == 1

    def test_keyerror_for_unknown(self):
        methods = MethodSet(SCHEMA)
        view = methods.row_view(Tuple(SCHEMA, ["a", 1]))
        with pytest.raises(KeyError):
            view["ghost"]

    def test_get_default(self):
        methods = MethodSet(SCHEMA)
        view = methods.row_view(Tuple(SCHEMA, ["a", 1]))
        assert view.get("ghost", 7) == 7

    def test_contains(self):
        methods = MethodSet(SCHEMA, [Method("m", "int", parse_expression("1"))])
        view = methods.row_view(Tuple(SCHEMA, ["a", 1]), extra={"seq": 0})
        assert "m" in view
        assert "name" in view
        assert "seq" in view
        assert "ghost" not in view

    def test_as_dict_forces_all(self):
        methods = MethodSet(SCHEMA, [Method("m", "int", parse_expression("value + 1"))])
        view = methods.row_view(Tuple(SCHEMA, ["a", 1]))
        assert view.as_dict() == {"name": "a", "value": 1, "m": 2}

    def test_cycle_detection_in_callables(self):
        # Two Python-callable methods referencing each other through the view.
        methods = MethodSet(SCHEMA)
        methods.add(Method("m1", "int", lambda row: row["m1"], depends=["value"]))
        view = methods.row_view(Tuple(SCHEMA, ["a", 1]))
        with pytest.raises(EvaluationError, match="cyclic"):
            view["m1"]
