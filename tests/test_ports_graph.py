"""Unit tests: port typing and the program graph (dataflow.ports/.graph)."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_db import AddTableBox, ProjectBox, RestrictBox, SampleBox, TBox
from repro.dataflow.graph import Edge, Program
from repro.dataflow.ports import PortType, can_connect, scalar
from repro.dataflow.boxes_display import OverlayBox, StitchBox
from repro.errors import GraphError, TypeCheckError


class TestPortTypes:
    def test_parse_roundtrip(self):
        for text in ("R", "C", "G", "scalar:int", "scalar:text"):
            assert str(PortType.parse(text)) == text

    def test_bad_parse(self):
        with pytest.raises(TypeCheckError):
            PortType.parse("Z")

    def test_scalar_requires_atomic(self):
        with pytest.raises(TypeCheckError):
            PortType("scalar")

    def test_displayable_rejects_atomic(self):
        from repro.dbms import types as T

        with pytest.raises(TypeCheckError):
            PortType("R", T.INT)

    def test_exact_match_connects(self):
        assert can_connect(PortType("R"), PortType("R"))

    def test_widening_r_to_c_to_g(self):
        # R = Composite(R) and C = Group(C) (§2).
        assert can_connect(PortType("R"), PortType("C"))
        assert can_connect(PortType("R"), PortType("G"))
        assert can_connect(PortType("C"), PortType("G"))

    def test_narrowing_requires_overloadable(self):
        assert not can_connect(PortType("G"), PortType("R"))
        assert can_connect(PortType("G"), PortType("R"), input_overloadable=True)
        assert can_connect(PortType("C"), PortType("R"), input_overloadable=True)

    def test_scalar_must_match(self):
        assert can_connect(scalar("int"), scalar("int"))
        assert not can_connect(scalar("int"), scalar("float"))
        assert not can_connect(scalar("int"), PortType("R"))


class TestConnect:
    def test_connect_type_checks(self):
        program = Program()
        src = program.add_box(AddTableBox(table="T"))
        dst = program.add_box(RestrictBox(predicate="true"))
        edge = program.connect(src, "out", dst, "in")
        assert edge in program.edges()

    def test_connect_unknown_port(self):
        program = Program()
        src = program.add_box(AddTableBox(table="T"))
        dst = program.add_box(RestrictBox(predicate="true"))
        with pytest.raises(GraphError, match="no output"):
            program.connect(src, "result", dst, "in")

    def test_input_accepts_single_edge(self):
        program = Program()
        a = program.add_box(AddTableBox(table="T"))
        b = program.add_box(AddTableBox(table="U"))
        dst = program.add_box(RestrictBox(predicate="true"))
        program.connect(a, "out", dst, "in")
        with pytest.raises(GraphError, match="already connected"):
            program.connect(b, "out", dst, "in")

    def test_cycle_rejected(self):
        program = Program()
        a = program.add_box(RestrictBox(predicate="true"))
        b = program.add_box(RestrictBox(predicate="true"))
        program.connect(a, "out", b, "in")
        with pytest.raises(GraphError, match="cycle"):
            program.connect(b, "out", a, "in")

    def test_self_loop_rejected(self):
        program = Program()
        a = program.add_box(RestrictBox(predicate="true"))
        with pytest.raises(GraphError, match="cycle"):
            program.connect(a, "out", a, "in")

    def test_box_in_two_programs_rejected(self):
        p1, p2 = Program(), Program()
        box = AddTableBox(table="T")
        p1.add_box(box)
        with pytest.raises(GraphError, match="already belongs"):
            p2.add_box(box)

    def test_explicit_id(self):
        program = Program()
        box_id = program.add_box(AddTableBox(table="T"), box_id=42)
        assert box_id == 42
        with pytest.raises(GraphError, match="in use"):
            program.add_box(AddTableBox(table="U"), box_id=42)
        assert program.add_box(AddTableBox(table="U")) == 43


class TestDeleteBox:
    """The Section-4.1 deletion legality rules."""

    def make_chain(self):
        program = Program()
        src = program.add_box(AddTableBox(table="T"))
        mid = program.add_box(RestrictBox(predicate="true"))
        tail = program.add_box(ProjectBox(fields=["a"]))
        program.connect(src, "out", mid, "in")
        program.connect(mid, "out", tail, "in")
        return program, src, mid, tail

    def test_delete_sink_is_legal(self):
        program, __, __, tail = self.make_chain()
        ok, reason = program.can_delete_box(tail)
        assert ok and "no outputs connected" in reason
        program.delete_box(tail)
        assert tail not in program

    def test_delete_passthrough_splices(self):
        program, src, mid, tail = self.make_chain()
        ok, reason = program.can_delete_box(mid)
        assert ok and "splice" in reason
        program.delete_box(mid)
        assert Edge(src, "out", tail, "in") in program.edges()

    def test_delete_source_with_consumers_rejected(self):
        program, src, __, __ = self.make_chain()
        # AddTable has 0 inputs and a connected output: not deletable.
        ok, reason = program.can_delete_box(src)
        assert not ok
        with pytest.raises(GraphError, match="cannot delete"):
            program.delete_box(src)

    def test_delete_multi_output_with_consumers_rejected(self):
        program = Program()
        src = program.add_box(AddTableBox(table="T"))
        tee = program.add_box(TBox(kind="R"))
        tail = program.add_box(ProjectBox(fields=["a"]))
        program.connect(src, "out", tee, "in")
        program.connect(tee, "out1", tail, "in")
        ok, __ = program.can_delete_box(tee)
        assert not ok

    def test_delete_unconnected_source(self):
        program = Program()
        src = program.add_box(AddTableBox(table="T"))
        program.delete_box(src)
        assert len(program) == 0


class TestReplaceBox:
    def test_compatible_replacement(self):
        program = Program()
        src = program.add_box(AddTableBox(table="T"))
        mid = program.add_box(RestrictBox(predicate="true"))
        tail = program.add_box(ProjectBox(fields=["a"]))
        program.connect(src, "out", mid, "in")
        program.connect(mid, "out", tail, "in")
        program.replace_box(mid, SampleBox(probability=0.5))
        assert program.box(mid).type_name == "Sample"
        # Edges survived.
        assert len(program.edges()) == 2

    def test_incompatible_replacement_rejected(self):
        program = Program()
        src = program.add_box(AddTableBox(table="T"))
        mid = program.add_box(RestrictBox(predicate="true"))
        program.connect(src, "out", mid, "in")
        with pytest.raises(GraphError):
            program.replace_box(mid, StitchBox(arity=2))

    def test_replacement_keeps_label(self):
        program = Program()
        box_id = program.add_box(RestrictBox(predicate="true"), label="filter")
        program.replace_box(box_id, SampleBox(probability=0.1))
        assert program.box(box_id).label == "filter"


class TestGraphQueries:
    def test_upstream_downstream(self):
        program = Program()
        a = program.add_box(AddTableBox(table="T"))
        b = program.add_box(RestrictBox(predicate="true"))
        c = program.add_box(ProjectBox(fields=["x"]))
        program.connect(a, "out", b, "in")
        program.connect(b, "out", c, "in")
        assert program.upstream_of(c) == {a, b}
        assert program.downstream_of(a) == {b, c}

    def test_topological_order(self):
        program = Program()
        a = program.add_box(AddTableBox(table="T"))
        b = program.add_box(RestrictBox(predicate="true"))
        program.connect(a, "out", b, "in")
        order = program.topological_order()
        assert order.index(a) < order.index(b)

    def test_sinks(self):
        program = Program()
        a = program.add_box(AddTableBox(table="T"))
        b = program.add_box(RestrictBox(predicate="true"))
        program.connect(a, "out", b, "in")
        assert [box.box_id for box in program.sinks()] == [b]

    def test_boxes_of_type(self):
        program = Program()
        program.add_box(AddTableBox(table="T"))
        program.add_box(AddTableBox(table="U"))
        assert len(program.boxes_of_type("AddTable")) == 2

    def test_merge_remaps_ids(self):
        source = Program("lib")
        a = source.add_box(AddTableBox(table="T"))
        b = source.add_box(RestrictBox(predicate="true"))
        source.connect(a, "out", b, "in")
        target = Program("main")
        target.add_box(AddTableBox(table="X"))
        mapping = target.merge(source)
        assert len(target) == 3
        assert len(target.edges()) == 1
        assert set(mapping) == {a, b}

    def test_version_bumps_on_edits(self):
        program = Program()
        v0 = program.version
        a = program.add_box(AddTableBox(table="T"))
        assert program.version > v0
        b = program.add_box(RestrictBox(predicate="true"))
        v1 = program.version
        program.connect(a, "out", b, "in")
        assert program.version > v1


class TestInsertOnEdge:
    def test_insert_t_keeps_values_flowing(self):
        program = Program()
        a = program.add_box(AddTableBox(table="T"))
        b = program.add_box(RestrictBox(predicate="true"))
        edge = program.connect(a, "out", b, "in")
        t_id = program.insert_on_edge(edge, TBox(kind="R"), "in", "out1")
        assert Edge(a, "out", t_id, "in") in program.edges()
        assert Edge(t_id, "out1", b, "in") in program.edges()
        assert edge not in program.edges()

    def test_insert_on_missing_edge(self):
        program = Program()
        a = program.add_box(AddTableBox(table="T"))
        ghost = Edge(a, "out", 99, "in")
        with pytest.raises(GraphError):
            program.insert_on_edge(ghost, TBox(kind="R"), "in", "out1")
