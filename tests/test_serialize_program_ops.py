"""Unit tests: program serialization and the Figure-2 operations."""

from __future__ import annotations

import json

import pytest

from repro.dataflow.boxes_db import AddTableBox, JoinBox, RestrictBox, TBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dataflow.program_ops import (
    add_program,
    apply_box,
    apply_box_candidates,
    insert_t,
    load_program,
    new_program,
    save_program,
)
from repro.dataflow.registry import (
    box_class,
    box_class_names,
    compatible_boxes,
    instantiate,
)
from repro.dataflow.ports import PortType
from repro.dataflow.serialize import clone_program, program_from_dict, program_to_dict
from repro.errors import CatalogError, GraphError


def sample_program() -> Program:
    program = Program("demo")
    src = program.add_box(AddTableBox(table="Stations"), label="source")
    restrict = program.add_box(RestrictBox(predicate="state = 'LA'"))
    program.connect(src, "out", restrict, "in")
    return program


class TestSerialize:
    def test_roundtrip_structure(self):
        program = sample_program()
        payload = program_to_dict(program)
        restored = program_from_dict(payload)
        assert restored.name == "demo"
        assert len(restored) == len(program)
        assert restored.edges() == program.edges()  # ids preserved
        assert restored.box(1).label == "source"

    def test_params_survive(self):
        restored = program_from_dict(program_to_dict(sample_program()))
        assert restored.box(2).param("predicate") == "state = 'LA'"

    def test_json_compatible(self):
        payload = program_to_dict(sample_program())
        assert json.loads(json.dumps(payload)) == payload

    def test_bad_format_rejected(self):
        with pytest.raises(CatalogError, match="format"):
            program_from_dict({"format": "nope"})

    def test_clone_is_independent(self):
        program = sample_program()
        clone = clone_program(program)
        clone.box(2).set_param("predicate", "state = 'TX'")
        assert program.box(2).param("predicate") == "state = 'LA'"

    def test_tuple_params_serialized_as_lists(self):
        from repro.dataflow.boxes_display import StitchBox

        program = Program()
        program.add_box(StitchBox(arity=2, layout="tabular", table_shape=(1, 2)))
        payload = program_to_dict(program)
        assert json.loads(json.dumps(payload))  # no tuples anywhere


class TestRegistry:
    def test_all_paper_boxes_registered(self):
        names = box_class_names()
        for expected in (
            "AddTable", "Project", "Restrict", "Sample", "Join", "T",
            "Switch", "AddAttribute", "RemoveAttribute", "SetAttribute",
            "SwapAttributes", "ScaleAttribute", "TranslateAttribute",
            "CombineDisplays", "SetRange", "Overlay", "Shuffle", "Stitch",
            "Replicate", "Viewer", "Encapsulated",
        ):
            assert expected in names, expected

    def test_instantiate_from_params(self):
        box = instantiate("Restrict", {"predicate": "x > 1"})
        assert box.param("predicate") == "x > 1"

    def test_unknown_type(self):
        with pytest.raises(CatalogError, match="unknown box type"):
            box_class("Frobnicate")

    def test_compatible_boxes_for_r_edge(self):
        candidates = compatible_boxes([PortType("R")])
        assert "Restrict" in candidates
        assert "Project" in candidates
        assert "Viewer" in candidates  # R widens into the G input
        assert "Join" not in candidates  # needs two inputs
        assert "AddTable" not in candidates  # needs zero

    def test_compatible_boxes_for_two_r_edges(self):
        candidates = compatible_boxes([PortType("R"), PortType("R")])
        assert "Join" in candidates
        assert "Overlay" in candidates
        assert "Restrict" not in candidates

    def test_compatible_boxes_for_no_edges(self):
        candidates = compatible_boxes([])
        assert "AddTable" in candidates


class TestProgramOps:
    def test_save_and_load(self, stations_db):
        program = sample_program()
        save_program(stations_db, program)
        assert stations_db.has_program("demo")
        loaded = load_program(stations_db, "demo")
        assert len(loaded) == 2
        result = Engine(loaded, stations_db).output_of(2)
        assert len(result.rows) == 3

    def test_add_program_merges(self, stations_db):
        save_program(stations_db, sample_program())
        current = new_program("combined")
        current.add_box(AddTableBox(table="Stations"))
        mapping = add_program(stations_db, current, "demo")
        assert len(current) == 3
        assert len(mapping) == 2

    def test_apply_box_connects_selection(self, stations_db):
        program = sample_program()
        edge = program.edges()[0]
        candidates = apply_box_candidates(program, [edge], stations_db)
        assert "Sample" in candidates
        box_id = apply_box(program, [edge], "Sample", {"probability": 1.0})
        result = Engine(program, stations_db).output_of(box_id)
        assert len(result.rows) == 5  # taps the source edge, pre-restrict

    def test_apply_box_arity_mismatch(self, stations_db):
        program = sample_program()
        edge = program.edges()[0]
        with pytest.raises(GraphError, match="needs 2 inputs"):
            apply_box(program, [edge], "Join")

    def test_apply_box_rolls_back_on_failure(self, stations_db):
        program = sample_program()
        boxes_before = len(program)
        with pytest.raises(Exception):
            apply_box(program, [program.edges()[0]], "Frobnicate")
        assert len(program) == boxes_before

    def test_insert_t_preserves_dataflow(self, stations_db):
        program = sample_program()
        edge = program.edges()[0]
        t_id = insert_t(program, edge)
        engine = Engine(program, stations_db)
        assert len(engine.output_of(2).rows) == 3
        # The T's free output can feed an inspection viewer.
        assert len(engine.output_of(t_id, "out2").rows) == 5

    def test_insert_t_infers_edge_kind(self, stations_db):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        from repro.dataflow.boxes_display import OverlayBox, ShuffleBox

        overlay = program.add_box(OverlayBox())
        program.connect(a, "out", overlay, "base")
        program.connect(b, "out", overlay, "top")
        shuffle = program.add_box(ShuffleBox(component="Stations"))
        edge = program.connect(overlay, "out", shuffle, "in")
        t_id = insert_t(program, edge)
        assert str(program.box(t_id).inputs[0].type) == "C"
