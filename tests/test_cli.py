"""Unit tests: the command-line interface (repro.cli)."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.dbms.storage import load_database_file, save_database_file
from repro.ui.session import Session


@pytest.fixture()
def weather_json(tmp_path) -> Path:
    path = tmp_path / "weather.json"
    code = main([
        "init-weather", "--out", str(path),
        "--stations", "5", "--every-days", "365",
    ])
    assert code == 0
    return path


class TestInitAndTables:
    def test_init_writes_database(self, weather_json):
        db = load_database_file(weather_json)
        assert db.has_table("Stations")
        assert db.has_table("Observations")

    def test_tables_lists_all(self, weather_json, capsys):
        assert main(["tables", "--db", str(weather_json)]) == 0
        out = capsys.readouterr().out
        assert "Stations" in out
        assert "station_id:int" in out

    def test_missing_db_file(self, tmp_path, capsys):
        code = main(["tables", "--db", str(tmp_path / "nope.json")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestPrograms:
    def make_program(self, weather_json):
        db = load_database_file(weather_json)
        session = Session(db, "cli-demo")
        stations = session.add_table("Stations")
        restrict = session.add_box("Restrict", {"predicate": "state = 'LA'"})
        session.connect(stations, "out", restrict, "in")
        set_x = session.add_box("SetAttribute",
                                {"name": "x", "definition": "longitude"})
        session.connect(restrict, "out", set_x, "in")
        set_y = session.add_box("SetAttribute",
                                {"name": "y", "definition": "latitude"})
        session.connect(set_x, "out", set_y, "in")
        window = session.add_viewer(set_y, name="map", width=160, height=120)
        window.viewer.pan_to(-91.8, 31.0)
        window.viewer.set_elevation(8.0)
        session.save_program()
        save_database_file(db, weather_json)

    def test_programs_listing(self, weather_json, capsys):
        self.make_program(weather_json)
        assert main(["programs", "--db", str(weather_json)]) == 0
        assert "cli-demo" in capsys.readouterr().out

    def test_programs_empty(self, weather_json, capsys):
        assert main(["programs", "--db", str(weather_json)]) == 0
        assert "no saved programs" in capsys.readouterr().out

    def test_show_program(self, weather_json, tmp_path, capsys):
        self.make_program(weather_json)
        out = tmp_path / "program.ppm"
        code = main([
            "show-program", "--db", str(weather_json),
            "--name", "cli-demo", "--out", str(out),
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "Restrict" in text
        assert out.exists()
        assert out.read_bytes().startswith(b"P6")

    def test_run_program_renders_canvases(self, weather_json, tmp_path, capsys):
        self.make_program(weather_json)
        out_dir = tmp_path / "frames"
        code = main([
            "run-program", "--db", str(weather_json),
            "--name", "cli-demo", "--out-dir", str(out_dir),
        ])
        assert code == 0
        rendered = list(out_dir.glob("*.ppm"))
        assert len(rendered) == 1
        assert rendered[0].name == "cli-demo_map.ppm"

    def test_run_program_without_viewers(self, weather_json, tmp_path, capsys):
        db = load_database_file(weather_json)
        session = Session(db, "no-viewers")
        session.add_table("Stations")
        session.save_program()
        save_database_file(db, weather_json)
        code = main([
            "run-program", "--db", str(weather_json),
            "--name", "no-viewers", "--out-dir", str(tmp_path / "x"),
        ])
        assert code == 1

    def test_unknown_program(self, weather_json, capsys):
        code = main([
            "show-program", "--db", str(weather_json), "--name", "ghost",
        ])
        assert code == 1
        assert "unknown program" in capsys.readouterr().err


class TestFigures:
    def test_render_subset(self, tmp_path, capsys):
        out_dir = tmp_path / "figs"
        code = main([
            "figures", "--out-dir", str(out_dir), "--which", "fig4",
        ])
        assert code == 0
        assert (out_dir / "fig4.ppm").exists()

    def test_render_png_and_svg(self, tmp_path, capsys):
        out_dir = tmp_path / "figs"
        assert main(["figures", "--out-dir", str(out_dir),
                     "--which", "fig4", "--format", "png"]) == 0
        assert (out_dir / "fig4.png").read_bytes().startswith(b"\x89PNG")
        assert main(["figures", "--out-dir", str(out_dir),
                     "--which", "fig4", "--format", "svg"]) == 0
        assert (out_dir / "fig4.svg").read_text().startswith("<svg")

    def test_unknown_figure(self, tmp_path, capsys):
        code = main([
            "figures", "--out-dir", str(tmp_path), "--which", "fig99",
        ])
        assert code == 2
        assert "unknown figures" in capsys.readouterr().err


class TestBoxes:
    def test_catalog_listing(self, capsys):
        assert main(["boxes"]) == 0
        out = capsys.readouterr().out
        assert "Restrict" in out
        assert "Aggregate" in out
        assert "_Const" not in out  # internal types hidden

    def test_single_topic(self, capsys):
        assert main(["boxes", "--topic", "Replicate"]) == 0
        assert "partition" in capsys.readouterr().out.lower()

    def test_unknown_topic(self, capsys):
        assert main(["boxes", "--topic", "Frobnicate"]) == 1


class TestExplain:
    def test_explain_figure(self, capsys):
        assert main(["explain", "--figure", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "Restrict[(state = 'LA')]" in out
        assert "in=" in out and "out=" in out
        assert "EngineStats:" in out

    def test_explain_needs_a_target(self, capsys):
        assert main(["explain"]) == 2
        assert "needs" in capsys.readouterr().err

    def test_explain_saved_program(self, weather_json, capsys):
        TestPrograms().make_program(weather_json)
        code = main([
            "explain", "--db", str(weather_json), "--name", "cli-demo",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Restrict[(state = 'LA')]" in out
        assert "EngineStats:" in out


class TestQuery:
    def test_prints_terminal_monitor_listing(self, weather_json, capsys):
        code = main([
            "query", "--db", str(weather_json), "--table", "Stations",
            "--where", "state = 'LA'", "--limit", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "New Orleans" in out
        assert "more rows" in out  # 18 LA stations, limit 5

    def test_bad_predicate(self, weather_json, capsys):
        code = main([
            "query", "--db", str(weather_json), "--table", "Stations",
            "--where", "ghost > 1",
        ])
        assert code == 1
