"""End-to-end narrative test: the agricultural specialist's whole session.

Follows the paper's §4–§8 story in one continuous session, asserting at each
step the principle the paper attaches to it: immediate visual feedback,
incremental modification, inspection of partial results, drill down,
traversal, and update — with the engine recomputing only what changed.
"""

from __future__ import annotations

import pytest

from repro.core.scenarios import NAME_MAX_ELEVATION
from repro.ui.session import Session


@pytest.fixture()
def session(mutable_weather_db) -> Session:
    return Session(mutable_weather_db, "specialist-session")


class TestSpecialistSession:
    def test_full_story(self, session):
        # --- §4: start from the Stations box; every step is visualizable.
        stations = session.add_table("Stations")
        window = session.add_viewer(stations, name="work", width=320, height=240)
        window.viewer.pan_to(300.0, -5.0)
        window.viewer.set_elevation(700.0)
        first_canvas = window.render()
        assert first_canvas.count_nonbackground() > 0  # default table view

        # --- Restrict to Louisiana; the same canvas updates.
        restrict = session.add_box("Restrict", {"predicate": "state = 'LA'"})
        edge = session.program.edge_into_port(window.viewer_box_id, "in")
        session.program.disconnect(edge)
        session.connect(stations, "out", restrict, "in")
        session.connect(restrict, "out", window.viewer_box_id, "in")
        assert len(session.inspect(restrict).rows) == 18

        # --- "If the user discovers that any step produces unexpected
        # results, he can inspect ... boxes": partial results on any edge.
        assert len(session.inspect(stations).rows) > 18

        # --- §5: turn the table into a map by setting location/display.
        set_x = session.add_box("SetAttribute",
                                {"name": "x", "definition": "longitude"})
        session.connect(restrict, "out", set_x, "in")
        set_y = session.add_box("SetAttribute",
                                {"name": "y", "definition": "latitude"})
        session.connect(set_x, "out", set_y, "in")
        display = session.add_box("SetAttribute", {
            "name": "display",
            "definition": "combine(circle(4,'blue'), offset(text_of(name),0,-10))",
        })
        session.connect(set_y, "out", display, "in")
        map_window = session.add_viewer(display, name="map",
                                        width=320, height=240)
        map_window.viewer.pan_to(-91.8, 31.0)
        map_window.viewer.set_elevation(6.0)
        result = map_window.viewer.render()
        assert {"circle", "text"} <= {i.drawable_kind for i in result.all_items()}

        # --- Incrementality: fires before vs after a small edit.
        session.engine.stats.reset()
        session.set_param(restrict, "predicate",
                          "state = 'LA' and altitude < 200")
        map_window.viewer.render()
        fires = dict(session.engine.stats.fires)
        assert fires.get(stations, 0) == 0  # source cache intact

        # --- §6: drill down by elevation range.
        ranged = session.add_box("SetRange",
                                 {"minimum": 0.0,
                                  "maximum": NAME_MAX_ELEVATION})
        # Splice the range between display and the viewer.
        viewer_edge = session.program.edge_into_port(
            map_window.viewer_box_id, "in"
        )
        session.program.disconnect(viewer_edge)
        session.connect(display, "out", ranged, "in")
        session.connect(ranged, "out", map_window.viewer_box_id, "in")
        map_window.viewer.set_elevation(NAME_MAX_ELEVATION + 10)
        assert map_window.viewer.render().all_items() == []
        map_window.viewer.set_elevation(5.0)
        assert map_window.viewer.render().all_items()

        # --- §8: notice a data error and fix it from the screen.
        item = map_window.viewer.render().all_items()[0]
        cx = (item.bbox[0] + item.bbox[2]) / 2
        cy = (item.bbox[1] + item.bbox[3]) / 2
        outcome = session.update_at("map", cx, cy, {"altitude": "12.0"})
        assert outcome.applied
        table = session.database.table("Stations")
        assert any(row["altitude"] == 12.0 for row in table)

        # --- The program round-trips through the database.
        session.save_program()
        fresh = Session(session.database, "reload")
        fresh.load_program("specialist-session")
        assert sorted(fresh.windows) == ["map", "work"]
        reloaded = fresh.window("map")
        reloaded.viewer.pan_to(-91.8, 31.0)
        reloaded.viewer.set_elevation(5.0)
        assert reloaded.render().count_nonbackground() > 0

    def test_undo_rewinds_the_story(self, session):
        stations = session.add_table("Stations")
        restrict = session.add_box("Restrict", {"predicate": "state = 'LA'"})
        session.connect(stations, "out", restrict, "in")
        checkpoints = len(session.undo_stack)
        assert checkpoints == 3
        for __ in range(checkpoints):
            session.undo()
        assert len(session.program) == 0
