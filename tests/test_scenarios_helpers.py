"""Unit tests: the scenario helper builders (repro.core.scenarios) and
deeply nested encapsulation."""

from __future__ import annotations

import pytest

from repro.core.scenarios import (
    BAND_HEIGHT,
    SERIES_X_SCALE,
    band_center,
    station_map_pipeline,
    temperature_series_pipeline,
)
from repro.ui.session import Session


class TestStationMapPipeline:
    def test_with_names_display(self, weather_db):
        session = Session(weather_db)
        tail = station_map_pipeline(session)
        relation = session.inspect(tail)
        drawables = relation.display_of(relation.view_at(0))
        assert [d.kind for d in drawables] == ["circle", "text"]

    def test_without_names_display(self, weather_db):
        session = Session(weather_db)
        tail = station_map_pipeline(session, with_names=False)
        relation = session.inspect(tail)
        drawables = relation.display_of(relation.view_at(0))
        assert [d.kind for d in drawables] == ["circle"]
        assert drawables[0].style.filled

    def test_name_range_applies_set_range(self, weather_db):
        session = Session(weather_db)
        tail = station_map_pipeline(session, name_range=(1.0, 9.0))
        relation = session.inspect(tail)
        assert relation.elevation_range.minimum == 1.0
        assert relation.elevation_range.maximum == 9.0

    def test_restricted_to_louisiana(self, weather_db):
        session = Session(weather_db)
        tail = station_map_pipeline(session)
        relation = session.inspect(tail)
        assert all(row["state"] == "LA" for row in relation.rows)


class TestSeriesPipeline:
    def test_temperature_series_bands(self, weather_db):
        session = Session(weather_db)
        tail = temperature_series_pipeline(session)
        relation = session.inspect(tail)
        view = relation.view_at(0)
        x, y = relation.location_of(view)[:2]
        station_id = view["station_id"]
        assert abs(y - station_id * BAND_HEIGHT) < BAND_HEIGHT
        assert x >= 0.0

    def test_precipitation_variant(self, weather_db):
        session = Session(weather_db)
        tail = temperature_series_pipeline(
            session, value_field="precipitation", color="green",
            value_scale=10.0,
        )
        relation = session.inspect(tail)
        drawables = relation.display_of(relation.view_at(0))
        assert drawables[0].color == (66, 133, 66)

    def test_band_center_scale(self):
        x, y = band_center(3)
        assert y == 3 * BAND_HEIGHT + 25.0
        assert x == pytest.approx(5.5 * 365 * SERIES_X_SCALE)


class TestNestedEncapsulation:
    def test_encapsulated_box_inside_encapsulated_box(self, stations_session):
        session = stations_session
        # Inner macro: restrict to Louisiana.
        stations = session.add_table("Stations")
        inner_restrict = session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        session.connect(stations, "out", inner_restrict, "in")
        inner = session.encapsulate([inner_restrict], "level1")

        # Use the inner macro, then encapsulate the use site again.
        from repro.dataflow.encapsulate import EncapsulatedBox

        use_site = session.program.add_box(EncapsulatedBox(**inner.params))
        session.connect(stations, "out", use_site, "in1")
        order = session.add_box("OrderBy", {"fields": ["altitude"]})
        session.connect(use_site, "out1", order, "in")
        outer = session.encapsulate([use_site, order], "level2")

        # Fire the two-level box in a fresh program.
        source2 = session.add_table("Stations")
        outer_id = session.program.add_box(
            type(outer)(**outer.params)
        )
        session.connect(source2, "out", outer_id, "in1")
        result = session.inspect(outer_id, "out1")
        assert len(result.rows) == 3
        altitudes = [row["altitude"] for row in result.rows]
        assert altitudes == sorted(altitudes)
