"""Request observability across the server boundary (PR 10 acceptance).

Runs a real :class:`~repro.server.TiogaServer` and asserts the tentpole
guarantee: one WebSocket ``render`` yields ONE connected span tree —
``server.dispatch`` on the asyncio thread, ``request.render`` plus the
engine/plan/rasterize spans on the pool worker — all stamped with the same
trace id the reply carries, retrievable via ``/debug/trace?id=``.  Also
covers the ``/debug/*`` surface, client-supplied trace joining, the
slow-request capture pipeline (``repro.slowreq/1`` JSONL + the
``server.slow_requests`` metric), and the satellite-3 regression: the
``/metrics`` exposition stays parseable while sessions churn concurrently.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from time import perf_counter

import pytest

from repro.data.weather import build_weather_database
from repro.obs.metrics import MetricsRegistry
from repro.obs.requests import SLOWREQ_SCHEMA
from repro.obs.trace import TraceContext, Tracer
from repro.protocol import FrameReply, OpenProgram, Pan, Render, Stats
from repro.server import ServerThread, connect


@pytest.fixture(scope="module")
def server():
    registry = MetricsRegistry()
    thread = ServerThread(build_weather_database(), registry=registry)
    with thread as srv:
        yield srv


def _url(server, path: str) -> str:
    return f"http://{server.host}:{server.port}{path}"


def _get(server, path: str) -> tuple[int, bytes]:
    request = urllib.request.Request(_url(server, path))
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _post(server, path: str, body: bytes = b"") -> tuple[int, bytes]:
    request = urllib.request.Request(_url(server, path), data=body,
                                     method="POST")
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            return reply.status, reply.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


# ---------------------------------------------------------------------------
# The tentpole: one connected span tree per request, across threads
# ---------------------------------------------------------------------------


def test_ws_render_yields_one_connected_span_tree(server):
    with connect(f"ws://{server.host}:{server.port}/ws") as client:
        assert client.request(OpenProgram(name="fig4")).ok
        frame = client.request(Render(window="stations"))
    assert isinstance(frame, FrameReply)
    assert frame.trace_id, "every reply must carry its request's trace id"

    status, body = _get(server, f"/debug/trace?id={frame.trace_id}")
    assert status == 200
    doc = json.loads(body)
    assert doc["trace_id"] == frame.trace_id
    assert doc["request"]["command"] == "render"
    assert doc["request"]["status"] == "ok"
    spans = doc["spans"]
    assert spans, "the trace document must include the span tree"

    # Every span belongs to this request — one trace id across the board.
    assert {span["trace_id"] for span in spans} == {frame.trace_id}

    # Exactly one root (server.dispatch, opened on the asyncio thread);
    # every other span's parent is present in the tree: connected, no
    # orphans split off by the executor hop.
    by_id = {span["span_id"]: span for span in spans}
    roots = [span for span in spans if span["parent_id"] is None]
    assert len(roots) == 1
    assert roots[0]["name"] == "server.dispatch"
    for span in spans:
        if span["parent_id"] is not None:
            assert span["parent_id"] in by_id, span["name"]

    # The tree crosses the thread boundary: the dispatch root lives on the
    # asyncio loop thread, the request body on a pool worker.
    names = {span["name"] for span in spans}
    assert "request.render" in names
    threads = {span["thread_name"] for span in spans}
    assert len(threads) >= 2, threads
    assert roots[0]["thread_name"] == "tioga-server"
    request_span = next(s for s in spans if s["name"] == "request.render")
    assert request_span["thread_name"].startswith("tioga-exec")
    assert request_span["parent_id"] == roots[0]["span_id"]

    # And the worker's engine/render spans attached under the same tree
    # (the deep spans the tracer already emitted pre-PR-10).
    assert any(name.startswith(("engine.", "render.", "plan.", "scene."))
               for name in names), names


def test_client_supplied_trace_context_is_joined(server):
    ctx = TraceContext.new(command="render")
    with connect(f"ws://{server.host}:{server.port}/ws") as client:
        assert client.request(OpenProgram(name="fig4")).ok
        sid = client.session
        frame = client.request(Render(window="stations",
                                      trace=ctx.to_wire()))
    assert isinstance(frame, FrameReply)
    # The server adopts the caller's trace id (distributed-join), re-stamps
    # the session, and the whole tree lands under the caller's id.
    assert frame.trace_id == ctx.trace_id
    status, body = _get(server, f"/debug/trace?id={ctx.trace_id}")
    assert status == 200
    doc = json.loads(body)
    assert doc["request"]["session"] == sid


def test_http_command_reply_carries_trace_id(server):
    _, body = _post(server, "/api/session")
    sid = json.loads(body)["session"]
    status, body = _post(
        server, f"/api/command?session={sid}",
        json.dumps({"v": 1, "kind": "stats"}).encode("utf-8"))
    payload = json.loads(body)
    assert status == 200
    assert payload["trace_id"]
    status, body = _get(server, f"/debug/trace?id={payload['trace_id']}")
    assert status == 200
    assert json.loads(body)["request"]["command"] == "stats"


# ---------------------------------------------------------------------------
# /debug/* surface
# ---------------------------------------------------------------------------


def test_debug_requests_lists_recent_requests(server):
    with connect(f"ws://{server.host}:{server.port}/ws") as client:
        assert client.request(OpenProgram(name="fig4")).ok
        client.request(Pan(window="stations", dx=1.0, dy=1.0))
        client.request(Render(window="stations"))
    status, body = _get(server, "/debug/requests?limit=10")
    assert status == 200
    doc = json.loads(body)
    assert doc["total"] >= 3
    assert doc["requests"], "recent requests must be listed"
    newest = doc["requests"][0]
    assert {"trace_id", "session", "command", "duration_ms", "status",
            "slow", "threshold_ms"} <= set(newest)
    commands = {entry["command"] for entry in doc["requests"]}
    assert {"open_program", "pan", "render"} <= commands


def test_debug_trace_unknown_id_is_404(server):
    status, body = _get(server, "/debug/trace?id=no-such-trace")
    assert status == 404
    assert json.loads(body)["ok"] is False


def test_debug_profile_returns_snapshot(server):
    status, body = _get(server, "/debug/profile?seconds=5")
    assert status == 200
    doc = json.loads(body)
    assert doc["schema"] == "repro.profile/1"
    assert doc["running"] is True
    assert doc["hz"] == pytest.approx(67.0)
    assert "samples" in doc and "collapsed" in doc


def test_debug_sessions_lists_live_sessions(server):
    with connect(f"ws://{server.host}:{server.port}/ws") as client:
        assert client.request(OpenProgram(name="fig4")).ok
        status, body = _get(server, "/debug/sessions")
        assert status == 200
        doc = json.loads(body)
        mine = [entry for entry in doc["sessions"]
                if entry["session"] == client.session]
        assert mine and mine[0]["program"] == "fig4"
        assert mine[0]["windows"] == ["stations"]


def test_debug_disabled_when_tracing_off():
    with ServerThread(build_weather_database(),
                      registry=MetricsRegistry(),
                      request_tracing=False, profile_hz=0.0) as srv:
        status, body = _get(srv, "/debug/requests")
        assert status == 404
        status, body = _get(srv, "/debug/profile")
        assert status == 404
        # No tracer, profiler, or request log were even constructed; the
        # command path still works.  (An ambient process-global tracer —
        # e.g. another server in this test process — may still stamp trace
        # ids, so only the server-owned machinery is asserted off.)
        assert srv.tracer is None
        assert srv.profiler is None
        assert srv.request_log is None
        with connect(f"ws://{srv.host}:{srv.port}/ws") as client:
            assert client.request(OpenProgram(name="fig4")).ok
            frame = client.request(Render(window="stations"))
            assert isinstance(frame, FrameReply)


# ---------------------------------------------------------------------------
# Slow-request capture
# ---------------------------------------------------------------------------


def test_slow_request_is_captured_to_jsonl(tmp_path):
    registry = MetricsRegistry()
    with ServerThread(build_weather_database(), registry=registry,
                      slo_ms={"render": 0.0},
                      slow_dir=str(tmp_path)) as srv:
        with connect(f"ws://{srv.host}:{srv.port}/ws") as client:
            assert client.request(OpenProgram(name="fig4")).ok
            frame = client.request(Render(window="stations"))
        assert isinstance(frame, FrameReply)

        # The render blew its (impossible) 0ms SLO: record marked slow,
        # metric incremented, capture file written.
        record = srv.request_log.record(frame.trace_id)
        assert record is not None and record.slow
        assert registry.counter("server.slow_requests") \
            .value(label="render") >= 1

        path = tmp_path / f"slowreq_{frame.trace_id}.jsonl"
        assert path.exists()
        assert record.capture_path == str(path)
        lines = [json.loads(line) for line in
                 path.read_text().splitlines()]
        header = lines[0]
        assert header["schema"] == SLOWREQ_SCHEMA
        assert header["trace_id"] == frame.trace_id
        assert header["command"] == "render"
        assert header["duration_ms"] > header["threshold_ms"] == 0.0
        span_lines = [ln for ln in lines[1:] if ln["kind"] == "span"]
        assert len(span_lines) == header["spans"] >= 2
        assert {ln["trace_id"] for ln in span_lines} == {frame.trace_id}
        assert {"server.dispatch", "request.render"} <= {
            ln["name"] for ln in span_lines}
        # Profiler/flight lines are windowed extras — present only when a
        # sampler tick or a flight record landed inside the request.
        assert all(ln["kind"] in {"span", "profile", "flight"}
                   for ln in lines[1:])

        # /debug/requests flags the slow request and links the capture.
        status, body = _get(srv, "/debug/requests")
        doc = json.loads(body)
        assert doc["slow"] >= 1
        flagged = [entry for entry in doc["requests"] if entry["slow"]]
        assert any(entry.get("capture") == str(path) for entry in flagged)


def test_fast_requests_are_not_captured(tmp_path):
    with ServerThread(build_weather_database(),
                      registry=MetricsRegistry(),
                      slow_dir=str(tmp_path)) as srv:
        with connect(f"ws://{srv.host}:{srv.port}/ws") as client:
            assert client.request(OpenProgram(name="fig4")).ok
            client.request(Stats())
        assert srv.request_log.slow_requests == 0
    assert list(tmp_path.iterdir()) == []


# ---------------------------------------------------------------------------
# Satellite 3: /metrics scrape vs. session churn
# ---------------------------------------------------------------------------


def _check_exposition(text: str) -> None:
    """The scrape must be well-formed prometheus text: HELP/TYPE comments
    and samples only, every family's samples contiguous under its TYPE."""
    current_family = None
    seen_families = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            family = line.split()[2]
            assert family not in seen_families, (
                f"family {family} split across the exposition")
            seen_families.add(family)
            current_family = family
            continue
        if line.startswith("#"):
            continue
        name, _, value = line.partition(" ")
        name = name.partition("{")[0]
        float(value)  # must parse
        assert current_family is not None
        assert name.startswith(current_family), (
            f"sample {name} outside its family block {current_family}")


def test_concurrent_metrics_scrape_during_session_churn(server):
    """Sessions open, execute, and drop (pruning their metric labels)
    while another thread scrapes ``/metrics``: every scrape parses and no
    counter ever goes backwards (prunes fold into the aggregate)."""
    stop = threading.Event()
    failures: list[str] = []
    totals: list[float] = []

    def scraper() -> None:
        try:
            while not stop.is_set():
                status, body = _get(server, "/metrics")
                assert status == 200
                text = body.decode("utf-8")
                _check_exposition(text)
                for line in text.splitlines():
                    if line.startswith("server_commands_total "):
                        # Unlabeled aggregate (fold target) if present.
                        totals.append(float(line.split()[1]))
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append(f"scraper: {exc!r}")

    def churner(index: int) -> None:
        try:
            for _ in range(6):
                with connect(
                        f"ws://{server.host}:{server.port}/ws") as client:
                    assert client.request(OpenProgram(name="fig4")).ok
                    frame = client.request(Render(window="stations"))
                    assert isinstance(frame, FrameReply)
                # Context exit drops the session -> labels pruned.
        except Exception as exc:  # noqa: BLE001 - surfaced below
            failures.append(f"churner {index}: {exc!r}")

    scrape_thread = threading.Thread(target=scraper)
    churn_threads = [threading.Thread(target=churner, args=(i,))
                     for i in range(3)]
    scrape_thread.start()
    for thread in churn_threads:
        thread.start()
    for thread in churn_threads:
        thread.join(120)
    stop.set()
    scrape_thread.join(30)
    assert not failures, failures
    # Fold semantics: the aggregate command count is monotone across the
    # churn — pruning a session's label never loses executed commands.
    assert totals == sorted(totals), "aggregate counter went backwards"


# ---------------------------------------------------------------------------
# Analytic overhead budget for the request-context machinery
# ---------------------------------------------------------------------------


class TestRequestContextOverhead:
    def test_context_cost_under_three_percent_of_a_render(self, weather_db):
        """Per command, request tracing adds: one TraceContext mint, two
        ``adopt`` activations (asyncio thread + pool worker), and two
        bookkeeping spans (``server.dispatch`` + ``request.<kind>``).
        (measured per-command cost) must stay under 3% of the cheapest
        command that does real work — a fig4 render."""
        from repro import cli

        scenario = cli._FIGURES["fig4"](weather_db)
        session = scenario.session
        name = sorted(session.windows)[0]

        tracer = Tracer(enabled=True, max_spans=1_000)
        calls = 10_000
        start = perf_counter()
        for _ in range(calls):
            ctx = TraceContext.new(session="s", command="render")
            with tracer.adopt(ctx):
                with tracer.span("server.dispatch", command="render") as s:
                    child = ctx.child_of(s)
                    with tracer.adopt(child):
                        with tracer.span("request.render",
                                         command="render"):
                            pass
        per_command_s = (perf_counter() - start) / calls

        def render_once() -> float:
            session.engine.invalidate()
            t0 = perf_counter()
            session.window(name).render()
            return perf_counter() - t0

        best = min(render_once() for _ in range(3))
        assert per_command_s < 0.03 * best, (
            f"context machinery {per_command_s * 1e6:.1f}us per command "
            f"vs render {best * 1e3:.1f}ms")
