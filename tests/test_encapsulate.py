"""Unit tests: encapsulation and holes (dataflow.encapsulate, §4.1)."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox, ProjectBox, RestrictBox, SampleBox
from repro.dataflow.encapsulate import EncapsulatedBox, HoleBox, collapse, encapsulate
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dataflow.program_ops import register_encapsulated
from repro.errors import GraphError


def la_pipeline(program: Program):
    """Stations → Restrict LA → Project: the canonical region to encapsulate."""
    src = program.add_box(AddTableBox(table="Stations"))
    restrict = program.add_box(RestrictBox(predicate="state = 'LA'"))
    project = program.add_box(ProjectBox(fields=["name", "longitude", "latitude"]))
    program.connect(src, "out", restrict, "in")
    program.connect(restrict, "out", project, "in")
    return src, restrict, project


class TestEncapsulate:
    def test_boundary_ports_from_cut_edges(self, stations_db):
        program = Program()
        src, restrict, project = la_pipeline(program)
        box = encapsulate(program, {restrict, project}, "la_filter")
        # One cut edge in (src→restrict); project's unconsumed output is
        # exposed so the new box stays visualizable.
        assert [p.name for p in box.inputs] == ["in1"]
        assert [p.name for p in box.outputs] == ["out1"]

    def test_fire_runs_inner_program(self, stations_db):
        program = Program()
        src, restrict, project = la_pipeline(program)
        tail = program.add_box(SampleBox(probability=1.0, seed=1))
        program.connect(project, "out", tail, "in")
        box = encapsulate(program, {restrict, project}, "la_filter")
        assert [p.name for p in box.outputs] == ["out1"]

        # Use the encapsulated box in a fresh program like a primitive.
        fresh = Program()
        fresh_src = fresh.add_box(AddTableBox(table="Stations"))
        encap_id = fresh.add_box(box)
        fresh.connect(fresh_src, "out", encap_id, "in1")
        result = Engine(fresh, stations_db).output_of(encap_id, "out1")
        assert len(result.rows) == 3
        assert result.rows.schema.names == ("name", "longitude", "latitude")

    def test_internal_sources_allowed(self, stations_db):
        program = Program()
        src, restrict, project = la_pipeline(program)
        box = encapsulate(program, {src, restrict, project}, "la_all")
        assert box.inputs == []

        fresh = Program()
        encap_id = fresh.add_box(box)
        result = Engine(fresh, stations_db).output_of(encap_id, "out1")
        assert len(result.rows) == 3

    def test_region_must_be_nonempty(self):
        program = Program()
        with pytest.raises(GraphError, match="no boxes"):
            encapsulate(program, set(), "empty")

    def test_unknown_box_in_region(self):
        program = Program()
        with pytest.raises(GraphError):
            encapsulate(program, {99}, "ghost")

    def test_serialization_roundtrip(self, stations_db):
        program = Program()
        src, restrict, project = la_pipeline(program)
        tail = program.add_box(SampleBox(probability=1.0))
        program.connect(project, "out", tail, "in")
        box = encapsulate(program, {restrict, project}, "la_filter")
        clone = EncapsulatedBox(**box.params)

        fresh = Program()
        fresh_src = fresh.add_box(AddTableBox(table="Stations"))
        encap_id = fresh.add_box(clone)
        fresh.connect(fresh_src, "out", encap_id, "in1")
        result = Engine(fresh, stations_db).output_of(encap_id, "out1")
        assert len(result.rows) == 3

    def test_register_in_catalog(self, stations_db):
        program = Program()
        src, restrict, project = la_pipeline(program)
        box = encapsulate(program, {restrict}, "just_restrict")
        register_encapsulated(stations_db, box)
        assert stations_db.has_box("just_restrict")


class TestHoles:
    def build_with_hole(self, stations_db):
        """Encapsulate restrict→sample→project with sample as a hole."""
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        restrict = program.add_box(RestrictBox(predicate="state = 'LA'"))
        sample = program.add_box(SampleBox(probability=0.5, seed=1))
        project = program.add_box(ProjectBox(fields=["name"]))
        tail = program.add_box(SampleBox(probability=1.0))
        program.connect(src, "out", restrict, "in")
        program.connect(restrict, "out", sample, "in")
        program.connect(sample, "out", project, "in")
        program.connect(project, "out", tail, "in")
        box = encapsulate(
            program, {restrict, sample, project}, "holey", holes=[{sample}]
        )
        return box

    def test_hole_names_listed(self, stations_db):
        box = self.build_with_hole(stations_db)
        assert box.hole_names() == ["hole1"]

    def test_unplugged_hole_refuses_to_fire(self, stations_db):
        box = self.build_with_hole(stations_db)
        fresh = Program()
        src = fresh.add_box(AddTableBox(table="Stations"))
        encap_id = fresh.add_box(box)
        fresh.connect(src, "out", encap_id, "in1")
        with pytest.raises(GraphError, match="unplugged"):
            Engine(fresh, stations_db).output_of(encap_id, "out1")

    def test_plugging_a_compatible_box(self, stations_db):
        box = self.build_with_hole(stations_db)
        plugged = box.plug("hole1", RestrictBox(predicate="altitude < 100"))
        assert plugged.hole_names() == []

        fresh = Program()
        src = fresh.add_box(AddTableBox(table="Stations"))
        encap_id = fresh.add_box(plugged)
        fresh.connect(src, "out", encap_id, "in1")
        result = Engine(fresh, stations_db).output_of(encap_id, "out1")
        # LA stations below 100 ft: New Orleans (7), Baton Rouge (56).
        assert sorted(r["name"] for r in result.rows) == [
            "Baton Rouge", "New Orleans"
        ]

    def test_plugging_unknown_hole(self, stations_db):
        box = self.build_with_hole(stations_db)
        with pytest.raises(GraphError, match="no hole"):
            box.plug("hole9", RestrictBox(predicate="true"))

    def test_plug_does_not_mutate_original(self, stations_db):
        box = self.build_with_hole(stations_db)
        box.plug("hole1", RestrictBox(predicate="true"))
        assert box.hole_names() == ["hole1"]

    def test_hole_outside_region_rejected(self, stations_db):
        program = Program()
        src, restrict, project = la_pipeline(program)
        with pytest.raises(GraphError, match="inside"):
            encapsulate(program, {restrict}, "bad", holes=[{src}])

    def test_hole_box_fire_is_error(self):
        hole = HoleBox("h", [["h_in1", "R"]], [["h_out1", "R"]])
        with pytest.raises(GraphError, match="plug"):
            hole.fire({}, None)


class TestCollapse:
    def test_collapse_replaces_region_in_place(self, stations_db):
        program = Program()
        src, restrict, project = la_pipeline(program)
        tail = program.add_box(SampleBox(probability=1.0, seed=1))
        program.connect(project, "out", tail, "in")
        new_id, box = collapse(program, {restrict, project}, "la_filter")
        assert restrict not in program
        assert project not in program
        assert new_id in program
        result = Engine(program, stations_db).output_of(tail)
        assert len(result.rows) == 3
