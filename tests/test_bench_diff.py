"""The perf-regression gate: diff_bench routing, thresholds, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.errors import ObservabilityError
from repro.obs import DIFF_SCHEMA, diff_bench, diff_bench_files, render_diff
from repro.obs.export import (
    BENCH_SCHEMA,
    COLUMNAR_BENCH_SCHEMA,
    PARALLEL_BENCH_SCHEMA,
    SERVER_BENCH_SCHEMA,
)


def parallel_payload(seconds_1=1.0, seconds_4=0.2, speedup=5.0,
                     name="scatter_repeated_renders"):
    return {
        "schema": PARALLEL_BENCH_SCHEMA,
        "benchmarks": [{
            "name": name,
            "arms": {
                "serial": {"workers": 0, "seconds": seconds_1},
                "workers4": {"workers": 4, "seconds": seconds_4},
            },
            "speedup": speedup,
        }],
    }


def columnar_payload(row_s=0.5, col_s=0.05, speedup=10.0,
                     name="fast_scatter_cull_restrict"):
    return {
        "schema": COLUMNAR_BENCH_SCHEMA,
        "benchmarks": [{
            "name": name,
            "arms": {
                "row": {"seconds": row_s},
                "columnar": {"seconds": col_s},
            },
            "speedup": speedup,
            "counters": {"columnar.batches": 4, "columnar.fallback": 0},
        }],
    }


def server_payload(p50=0.02, p99=0.07, throughput=1000.0,
                   name="fig4_ws_load"):
    return {
        "schema": SERVER_BENCH_SCHEMA,
        "benchmarks": [{
            "name": name,
            "viewers": 50,
            "renders_per_viewer": 6,
            "latency": {"p50_s": p50, "p99_s": p99,
                        "mean_s": p50, "max_s": p99},
            "throughput_cps": throughput,
            "frames": {"delivered": 300, "dropped": 0},
            "cache": {"hits": 300},
        }],
    }


def obs_payload(mean_s=0.1, name="bench_lazy_render"):
    return {
        "schema": BENCH_SCHEMA,
        "benchmarks": [
            {"name": name, "timing": {"mean_s": mean_s, "rounds": 5}},
        ],
    }


# ---------------------------------------------------------------------------
# diff_bench routing and report shape
# ---------------------------------------------------------------------------


def test_identity_diff_has_no_regressions():
    report = diff_bench(parallel_payload(), parallel_payload())
    assert report["schema"] == DIFF_SCHEMA
    assert report["bench_schema"] == PARALLEL_BENCH_SCHEMA
    assert report["regressions"] == []
    assert report["improvements"] == []
    assert {row["status"] for row in report["comparisons"]} == {"ok"}
    # Both arms and the headline speedup are compared.
    metrics = [row["metric"] for row in report["comparisons"]]
    assert metrics.count("seconds") == 2
    assert metrics.count("speedup") == 1


def test_parallel_slowdown_and_speedup_direction():
    base = parallel_payload(seconds_1=1.0, seconds_4=0.2, speedup=5.0)
    # 2x slower wall time and halved speedup: both flagged.
    curr = parallel_payload(seconds_1=2.0, seconds_4=0.4, speedup=2.5)
    report = diff_bench(base, curr)
    statuses = {(r["name"], r["metric"]): r["status"]
                for r in report["comparisons"]}
    assert statuses[("scatter_repeated_renders[serial]", "seconds")] == \
        "regression"
    assert statuses[("scatter_repeated_renders", "speedup")] == "regression"
    # Speedup is higher-is-better: a raised speedup is an improvement.
    better = parallel_payload(speedup=9.0)
    report = diff_bench(parallel_payload(), better)
    speedup_row = [r for r in report["comparisons"]
                   if r["metric"] == "speedup"][0]
    assert speedup_row["status"] == "improvement"


def test_columnar_schema_routes_to_arm_comparison():
    report = diff_bench(columnar_payload(), columnar_payload())
    assert report["bench_schema"] == COLUMNAR_BENCH_SCHEMA
    metrics = [row["metric"] for row in report["comparisons"]]
    assert metrics.count("seconds") == 2
    assert metrics.count("speedup") == 1
    assert report["regressions"] == []


def test_columnar_speedup_collapse_is_a_regression():
    # The columnar arm losing its edge (10x -> 3x) must trip the gate even
    # if absolute wall times moved less than the threshold.
    base = columnar_payload(speedup=10.0)
    curr = columnar_payload(col_s=0.17, speedup=3.0)
    report = diff_bench(base, curr)
    by_metric = {row["metric"]: row["status"]
                 for row in report["comparisons"]}
    assert by_metric["speedup"] == "regression"


def test_server_schema_compares_latency_and_throughput():
    report = diff_bench(server_payload(), server_payload())
    metrics = {row["metric"] for row in report["comparisons"]}
    assert metrics == {"p50_s", "p99_s", "throughput_cps"}
    assert not report["regressions"]


def test_server_latency_regression_trips_the_gate():
    # p99 doubling (0.07 -> 0.15) is past the 50% threshold.
    report = diff_bench(server_payload(), server_payload(p99=0.15))
    assert [row["name"] for row in report["regressions"]] == ["fig4_ws_load"]
    assert report["regressions"][0]["metric"] == "p99_s"


def test_server_throughput_is_higher_is_better():
    # Throughput collapsing is a regression; latency dropping with it is an
    # improvement, not a second regression.
    report = diff_bench(server_payload(),
                        server_payload(p99=0.03, throughput=400.0))
    by_metric = {row["metric"]: row["status"]
                 for row in report["comparisons"]}
    assert by_metric["throughput_cps"] == "regression"
    assert by_metric["p99_s"] == "improvement"


def test_obs_schema_compares_mean_s():
    report = diff_bench(obs_payload(0.100), obs_payload(0.130))
    assert report["bench_schema"] == BENCH_SCHEMA
    [row] = report["comparisons"]
    assert row["metric"] == "mean_s"
    assert row["status"] == "regression"  # 0.13/0.10 = +30% > 25%
    assert row["ratio"] == 1.3


def test_obs_threshold_boundary():
    # Exactly at +25% is not a regression; just past it is.
    at = diff_bench(obs_payload(0.100), obs_payload(0.125))
    assert at["regressions"] == []
    past = diff_bench(obs_payload(0.100), obs_payload(0.1251))
    assert [r["name"] for r in past["regressions"]] == ["bench_lazy_render"]


def test_threshold_overrides():
    base, curr = obs_payload(0.100), obs_payload(0.140)
    assert diff_bench(base, curr)["regressions"] != []
    assert diff_bench(base, curr, threshold=0.5)["regressions"] == []
    assert diff_bench(base, curr,
                      thresholds={"mean_s": 0.5})["regressions"] == []
    # Per-metric override leaves other metrics at their defaults.
    report = diff_bench(parallel_payload(speedup=5.0),
                        parallel_payload(seconds_4=0.6, speedup=2.0),
                        thresholds={"speedup": 0.9})
    assert [r["metric"] for r in report["regressions"]] == ["seconds"]


def test_min_seconds_floor_skips_micro_timings():
    base = obs_payload(0.001)
    curr = obs_payload(0.004)  # 4x "slower" but both under the 5ms floor
    report = diff_bench(base, curr)
    assert report["regressions"] == []
    assert report["comparisons"][0]["status"] == "ok"
    # Lowering the floor flags it again.
    report = diff_bench(base, curr, min_seconds=0.0005)
    assert len(report["regressions"]) == 1


def test_missing_and_added_benchmarks():
    base = parallel_payload()
    curr = parallel_payload(name="join_slaved_viewers")
    report = diff_bench(base, curr)
    assert report["comparisons"] == []
    assert report["missing"] == ["scatter_repeated_renders"]
    assert report["added"] == ["join_slaved_viewers"]


def test_schema_mismatch_and_unknown_schema_raise():
    with pytest.raises(ObservabilityError):
        diff_bench(parallel_payload(), obs_payload())
    with pytest.raises(ObservabilityError):
        diff_bench({"schema": "nope/9", "benchmarks": []},
                   {"schema": "nope/9", "benchmarks": []})
    with pytest.raises(ObservabilityError):
        diff_bench({}, obs_payload())


def test_diff_bench_files_and_render(tmp_path):
    base_path = tmp_path / "base.json"
    curr_path = tmp_path / "curr.json"
    base_path.write_text(json.dumps(parallel_payload()))
    curr_path.write_text(json.dumps(parallel_payload(seconds_4=0.5,
                                                     speedup=2.0)))
    report = diff_bench_files(base_path, curr_path)
    assert len(report["regressions"]) == 2
    text = render_diff(report)
    assert "2 regressions" in text
    assert "✗" in text
    assert "higher-is-better" in text


# ---------------------------------------------------------------------------
# CLI: repro bench-diff exit codes (the CI gate)
# ---------------------------------------------------------------------------


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def test_cli_identity_passes_strict(tmp_path, capsys):
    base = _write(tmp_path, "base.json", parallel_payload())
    curr = _write(tmp_path, "curr.json", parallel_payload())
    assert cli.main(["bench-diff", base, curr, "--strict"]) == 0
    out = capsys.readouterr().out
    assert "0 regressions" in out


def test_cli_synthetic_2x_slowdown_fails(tmp_path, capsys):
    """Acceptance fixture: a 2x slowdown must trip the gate."""
    base = _write(tmp_path, "base.json", parallel_payload(
        seconds_1=1.0, seconds_4=0.2, speedup=5.0))
    slow = _write(tmp_path, "slow.json", parallel_payload(
        seconds_1=2.0, seconds_4=0.4, speedup=2.5))
    assert cli.main(["bench-diff", base, slow]) == 1
    out = capsys.readouterr().out
    assert "regression" in out


def test_cli_json_output(tmp_path, capsys):
    base = _write(tmp_path, "base.json", obs_payload(0.1))
    curr = _write(tmp_path, "curr.json", obs_payload(0.2))
    assert cli.main(["bench-diff", base, curr, "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == DIFF_SCHEMA
    assert len(report["regressions"]) == 1


def test_cli_threshold_flag(tmp_path):
    base = _write(tmp_path, "base.json", obs_payload(0.1))
    curr = _write(tmp_path, "curr.json", obs_payload(0.2))
    assert cli.main(["bench-diff", base, curr, "--threshold", "1.5"]) == 0


def test_cli_strict_fails_on_missing_benchmark(tmp_path):
    base = _write(tmp_path, "base.json", parallel_payload())
    curr = _write(tmp_path, "curr.json",
                  parallel_payload(name="join_slaved_viewers"))
    # Non-strict: nothing comparable, nothing regressed -> pass.
    assert cli.main(["bench-diff", base, curr]) == 0
    # Strict: a benchmark vanished from the current run -> fail.
    assert cli.main(["bench-diff", base, curr, "--strict"]) == 1


def test_committed_baseline_matches_repo_artifact():
    """The acceptance-criteria invocation: the committed baseline diffs
    cleanly against the repo's own BENCH_parallel.json."""
    assert cli.main([
        "bench-diff",
        "benchmarks/baselines/BENCH_parallel.json",
        "BENCH_parallel.json",
        "--strict",
    ]) == 0


def test_cli_update_baselines_writes_validated_copy(tmp_path, capsys):
    baseline = tmp_path / "baselines" / "BENCH_columnar.json"
    current = _write(tmp_path, "curr.json", columnar_payload())
    assert cli.main(["bench-diff", str(baseline), current,
                     "--update-baselines"]) == 0
    out = capsys.readouterr().out
    assert "baseline updated" in out
    assert json.loads(baseline.read_text())["schema"] == COLUMNAR_BENCH_SCHEMA
    # The refreshed baseline immediately diffs clean against its source.
    assert cli.main(["bench-diff", str(baseline), current, "--strict"]) == 0


def test_cli_update_baselines_rejects_invalid_payload(tmp_path, capsys):
    baseline = tmp_path / "BENCH_columnar.json"
    bad = _write(tmp_path, "bad.json",
                 {"schema": COLUMNAR_BENCH_SCHEMA, "benchmarks": [
                     {"name": "x", "arms": {}}]})
    assert cli.main(["bench-diff", str(baseline), bad,
                     "--update-baselines"]) == 1
    assert not baseline.exists()
    assert "invalid bench file" in capsys.readouterr().err


def test_committed_server_baseline_is_valid():
    """The committed server baseline schema-validates and records the
    50-viewer fig4 run under the 250ms p99 acceptance ceiling."""
    payload = json.loads(
        open("benchmarks/baselines/BENCH_server.json").read())
    assert payload["schema"] == SERVER_BENCH_SCHEMA
    assert cli.main(["stats", "--validate-bench",
                     "benchmarks/baselines/BENCH_server.json"]) == 0
    run = payload["benchmarks"][0]
    assert run["viewers"] == 50
    assert run["latency"]["p99_s"] < 0.25
    assert run["frames"]["dropped"] == 0


def test_committed_columnar_baseline_is_valid():
    """The committed columnar baseline schema-validates and records the
    >=10x speedup on at least two of the three workloads."""
    payload = json.loads(
        open("benchmarks/baselines/BENCH_columnar.json").read())
    assert payload["schema"] == COLUMNAR_BENCH_SCHEMA
    assert cli.main(["stats", "--validate-bench",
                     "benchmarks/baselines/BENCH_columnar.json"]) == 0
    fast = [b for b in payload["benchmarks"] if b["speedup"] >= 10.0]
    assert len(fast) >= 2, [b["speedup"] for b in payload["benchmarks"]]
