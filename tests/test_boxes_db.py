"""Unit tests: the Figure-3 database boxes plus T and Switch."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_db import (
    AddTableBox,
    JoinBox,
    ProjectBox,
    RestrictBox,
    SampleBox,
    SwitchBox,
)
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dbms.catalog import Database
from repro.errors import CatalogError, GraphError, TypeCheckError
from repro.display.displayable import DisplayableRelation


def build(session_db, *boxes):
    """Wire boxes into a linear chain; returns (program, engine, last_id)."""
    program = Program()
    ids = [program.add_box(box) for box in boxes]
    for upstream, downstream in zip(ids, ids[1:]):
        src_port = program.box(upstream).outputs[0].name
        program.connect(upstream, src_port, downstream, "in")
    return program, Engine(program, session_db), ids


class TestAddTable:
    def test_emits_default_displayable(self, stations_db):
        program, engine, ids = build(stations_db, AddTableBox(table="Stations"))
        relation = engine.output_of(ids[0])
        assert isinstance(relation, DisplayableRelation)
        assert relation.name == "Stations"
        assert relation.source_table == "Stations"
        assert not relation.has_custom_location  # defaults (§5.2)
        assert not relation.has_custom_display

    def test_unknown_table_at_fire_time(self, stations_db):
        program, engine, ids = build(stations_db, AddTableBox(table="Nope"))
        with pytest.raises(CatalogError):
            engine.output_of(ids[0])

    def test_tracks_table_version(self, stations_db):
        program, engine, ids = build(stations_db, AddTableBox(table="Stations"))
        n = len(engine.output_of(ids[0]).rows)
        stations_db.table("Stations").insert(
            {"station_id": 99, "name": "Extra", "state": "LA",
             "longitude": -91.0, "latitude": 30.0, "altitude": 1.0}
        )
        assert len(engine.output_of(ids[0]).rows) == n + 1


class TestRestrict:
    def test_stored_field_predicate(self, stations_db):
        program, engine, ids = build(
            stations_db,
            AddTableBox(table="Stations"),
            RestrictBox(predicate="state = 'LA'"),
        )
        result = engine.output_of(ids[1])
        assert len(result.rows) == 3
        assert all(row["state"] == "LA" for row in result.rows)

    def test_computed_attribute_predicate(self, stations_db):
        from repro.dataflow.boxes_attr import AddAttributeBox

        program, engine, ids = build(
            stations_db,
            AddTableBox(table="Stations"),
            AddAttributeBox(name="high", definition="altitude > 100",
                            declared_type="bool"),
            RestrictBox(predicate="high"),
        )
        result = engine.output_of(ids[2])
        assert len(result.rows) == 3

    def test_bad_predicate_reports(self, stations_db):
        program, engine, ids = build(
            stations_db,
            AddTableBox(table="Stations"),
            RestrictBox(predicate="ghost = 1"),
        )
        with pytest.raises(TypeCheckError):
            engine.output_of(ids[1])

    def test_missing_predicate_param(self, stations_db):
        program, engine, ids = build(
            stations_db, AddTableBox(table="Stations"), RestrictBox()
        )
        with pytest.raises(GraphError, match="predicate"):
            engine.output_of(ids[1])


class TestProject:
    def test_projects_stored_fields(self, stations_db):
        program, engine, ids = build(
            stations_db,
            AddTableBox(table="Stations"),
            ProjectBox(fields=["name", "state"]),
        )
        result = engine.output_of(ids[1])
        assert result.rows.schema.names == ("name", "state")

    def test_projection_breaking_display_method_rejected(self, stations_db):
        from repro.dataflow.boxes_attr import SetAttributeBox

        program, engine, ids = build(
            stations_db,
            AddTableBox(table="Stations"),
            SetAttributeBox(name="x", definition="longitude"),
            ProjectBox(fields=["name"]),  # drops longitude used by x
        )
        with pytest.raises(TypeCheckError):
            engine.output_of(ids[2])


class TestSample:
    def test_probability_one_keeps_all(self, stations_db):
        program, engine, ids = build(
            stations_db,
            AddTableBox(table="Stations"),
            SampleBox(probability=1.0, seed=1),
        )
        assert len(engine.output_of(ids[1]).rows) == 5

    def test_seeded_sample_reproducible(self, stations_db):
        results = []
        for __ in range(2):
            program, engine, ids = build(
                stations_db,
                AddTableBox(table="Stations"),
                SampleBox(probability=0.5, seed=123),
            )
            results.append([r["name"] for r in engine.output_of(ids[1]).rows])
        assert results[0] == results[1]


class TestJoin:
    def test_equi_join(self, weather_db):
        program = Program()
        obs = program.add_box(AddTableBox(table="Observations"))
        sta = program.add_box(AddTableBox(table="Stations"))
        join = program.add_box(
            JoinBox(left_key="station_id", right_key="station_id")
        )
        program.connect(obs, "out", join, "left")
        program.connect(sta, "out", join, "right")
        engine = Engine(program, weather_db)
        result = engine.output_of(join)
        assert len(result.rows) == len(weather_db.table("Observations"))
        assert "name" in result.rows.schema
        assert "right_station_id" in result.rows.schema

    def test_theta_join(self, stations_db):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        join = program.add_box(
            JoinBox(predicate="station_id < right_station_id and state = right_state")
        )
        program.connect(a, "out", join, "left")
        program.connect(b, "out", join, "right")
        engine = Engine(program, stations_db)
        result = engine.output_of(join)
        assert len(result.rows) == 3  # LA pairs (1,2) (1,3) (2,3)

    def test_join_output_not_updatable(self, stations_db):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        join = program.add_box(JoinBox(left_key="station_id", right_key="station_id"))
        program.connect(a, "out", join, "left")
        program.connect(b, "out", join, "right")
        engine = Engine(program, stations_db)
        assert engine.output_of(join).source_table is None


class TestSwitch:
    def test_routes_tuples(self, stations_db):
        program, engine, ids = build(
            stations_db,
            AddTableBox(table="Stations"),
            SwitchBox(predicate="state = 'LA'"),
        )
        true_side = engine.output_of(ids[1], "true")
        false_side = engine.output_of(ids[1], "false")
        assert len(true_side.rows) == 3
        assert len(false_side.rows) == 2
        assert len(true_side.rows) + len(false_side.rows) == 5

    def test_partitions_are_disjoint(self, stations_db):
        program, engine, ids = build(
            stations_db,
            AddTableBox(table="Stations"),
            SwitchBox(predicate="altitude > 100"),
        )
        names_true = {r["name"] for r in engine.output_of(ids[1], "true").rows}
        names_false = {r["name"] for r in engine.output_of(ids[1], "false").rows}
        assert not (names_true & names_false)
