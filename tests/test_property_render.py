"""Property-based tests (hypothesis): rendering and viewer invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbms.parser import parse_expression
from repro.dbms.relation import Method, RowSet
from repro.dbms.tuples import Schema
from repro.display.displayable import DisplayableRelation
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite

coords = st.floats(min_value=-500.0, max_value=500.0,
                   allow_nan=False, allow_infinity=False)

SCHEMA = Schema([("px", "float"), ("py", "float")])


def dotted(rows) -> DisplayableRelation:
    relation = DisplayableRelation(
        RowSet.from_dicts(SCHEMA, [{"px": x, "py": y} for x, y in rows]),
        name="dots",
    )
    relation = relation.with_method_added(
        Method("x", "float", parse_expression("px"))
    )
    relation = relation.with_method_added(
        Method("y", "float", parse_expression("py"))
    )
    return relation.with_method_added(
        Method("display", "drawables", parse_expression("filled_circle(2)"))
    )


class TestCanvasProperties:
    @given(
        x0=st.floats(-200, 200), y0=st.floats(-200, 200),
        x1=st.floats(-200, 200), y1=st.floats(-200, 200),
    )
    @settings(max_examples=50)
    def test_line_clipping_never_escapes(self, x0, y0, x1, y1):
        canvas = Canvas(32, 32)
        canvas.draw_line(x0, y0, x1, y1, (0, 0, 0))
        # Drawing with arbitrary endpoints never raises and never writes
        # outside — reading back every border pixel stays valid.
        assert canvas.count_nonbackground() <= 32 * 32

    @given(
        cx=st.floats(-100, 100), cy=st.floats(-100, 100),
        r=st.floats(0, 100),
    )
    @settings(max_examples=50)
    def test_circle_fill_bounded_by_bbox(self, cx, cy, r):
        canvas = Canvas(64, 64)
        canvas.fill_circle(cx, cy, r, (0, 0, 0))
        painted = canvas.count_nonbackground()
        assert painted <= (2 * r + 3) ** 2

    @given(st.lists(st.tuples(st.floats(-50, 120), st.floats(-50, 120)),
                    min_size=3, max_size=8))
    @settings(max_examples=50)
    def test_polygon_fill_never_crashes(self, vertices):
        canvas = Canvas(64, 64)
        canvas.fill_polygon(list(vertices), (0, 0, 0))


class TestSceneProperties:
    @given(rows=st.lists(st.tuples(coords, coords), max_size=25),
           center_x=coords, center_y=coords,
           elevation=st.floats(min_value=1.0, max_value=2000.0))
    @settings(max_examples=40, deadline=None)
    def test_culling_never_changes_pixels(self, rows, center_x, center_y,
                                          elevation):
        # The Perf-3 claim: culling is an optimization, not a semantic change.
        relation = dotted(rows)
        view = ViewState(center=(center_x, center_y), elevation=elevation,
                         viewport=(96, 96))
        culled = Canvas(96, 96)
        render_composite(culled, relation, view, cull=True)
        full = Canvas(96, 96)
        render_composite(full, relation, view, cull=False)
        assert (culled.pixels == full.pixels).all()

    @given(rows=st.lists(st.tuples(coords, coords), max_size=25))
    @settings(max_examples=40, deadline=None)
    def test_stats_partition_tuples(self, rows):
        relation = dotted(rows)
        view = ViewState(center=(0.0, 0.0), elevation=100.0, viewport=(96, 96))
        stats = SceneStats()
        render_composite(Canvas(96, 96), relation, view, stats=stats)
        accounted = (
            stats.tuples_rendered
            + stats.culled_by_slider
            + stats.culled_by_viewport
        )
        # Tuples whose drawables all fall just outside the viewport are
        # considered but neither rendered nor counted as culled.
        assert accounted <= stats.tuples_considered == len(rows)

    @given(elevation=st.floats(min_value=0.5, max_value=1000.0),
           px=st.floats(-200, 200), py=st.floats(-200, 200))
    @settings(max_examples=60)
    def test_view_transform_roundtrip(self, elevation, px, py):
        view = ViewState(center=(3.0, -7.0), elevation=elevation,
                         viewport=(128, 96))
        wx, wy = view.to_world(px, py)
        back = view.to_screen(wx, wy)
        assert abs(back[0] - px) < 1e-6
        assert abs(back[1] - py) < 1e-6
