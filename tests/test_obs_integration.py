"""Integration tests: tracing across the engine, planner, renderer, and CLI.

These pin the observability acceptance criteria: a cold figure render emits
nested engine-fire → plan-node → render-pass spans with row-count
attributes, every figure's trace is well-formed Chrome JSON, and disabled
tracing stays within the overhead budget.
"""

from __future__ import annotations

import json
from time import perf_counter

import pytest

from repro import cli
from repro.data.weather import build_weather_database
from repro.obs import (
    NULL_SPAN,
    Tracer,
    chrome_trace,
    push_tracer,
    validate_chrome_trace,
)


@pytest.fixture(scope="module")
def weather_db():
    return build_weather_database(extra_stations=10, every_days=60)


def render_figure_traced(db, name, cold=True):
    """Render every window of a figure scenario under a fresh tracer."""
    scenario = cli._FIGURES[name](db)
    session = scenario.session
    tracer = Tracer(enabled=True)
    if cold:
        session.engine.invalidate()
    with push_tracer(tracer):
        for window_name in sorted(session.windows):
            session.window(window_name).render()
    return tracer


class TestColdRenderSpanNesting:
    def test_fig4_engine_fire_plan_node_render_pass(self, weather_db):
        tracer = render_figure_traced(weather_db, "fig4")
        by_id = {s.span_id: s for s in tracer.finished()}

        def ancestors(span):
            while span.parent_id is not None:
                span = by_id[span.parent_id]
                yield span

        fires = tracer.finished("engine.fire")
        assert fires, "cold render must fire boxes"
        # Upstream fires nest inside the demanded box's fire, which nests
        # inside the render.
        deepest = max(fires, key=lambda s: len(list(ancestors(s))))
        names = [s.name for s in ancestors(deepest)]
        assert "engine.demand" in names
        assert "viewer.render" in names

        plan_nodes = tracer.finished("plan.node")
        assert plan_nodes
        for node in plan_nodes:
            assert "rows_out" in node.attrs
            assert node.attrs["rows_in"] >= node.attrs["rows_out"] >= 0
        # The synthesized culling restricts execute inside the render pass.
        culled = [s for s in plan_nodes
                  if any(a.name == "render.cull" for a in ancestors(s))]
        assert culled

        (render_pass,) = tracer.finished("render.pass")
        assert render_pass.attrs["rows_considered"] >= \
            render_pass.attrs["rows_rendered"]
        (viewer,) = tracer.finished("viewer.render")
        assert viewer.attrs["tuples_rendered"] > 0
        assert viewer.attrs["draw_ops"] > 0

    def test_warm_render_hits_cache_instead_of_firing(self, weather_db):
        tracer = render_figure_traced(weather_db, "fig4", cold=False)
        assert tracer.finished("engine.fire") == []
        assert any(e.name == "engine.cache.hit" for e in tracer.events)


@pytest.mark.parametrize("figure", sorted(cli._FIGURES))
def test_every_figure_renders_a_wellformed_trace(weather_db, figure):
    tracer = render_figure_traced(weather_db, figure)
    spans = tracer.finished()
    assert tracer.finished("viewer.render")
    assert all(s.end_ns is not None for s in spans)
    events = validate_chrome_trace(chrome_trace(tracer, figure))
    json.dumps(chrome_trace(tracer))  # serializable
    assert any(e["ph"] == "X" for e in events)


class TestPlanVerifierSpans:
    def test_verify_plan_spans_nest_in_render(self, weather_db, monkeypatch):
        # REPRO_PLAN_VERIFY=1 installs assert_valid_plan as the plan hook;
        # do the same installation for this test only.
        from repro.analyze.planverify import assert_valid_plan
        from repro.dbms import plan as P
        from repro.dbms.plan_parallel import result_cache

        # Verification runs on plan *open*; under REPRO_PARALLEL=1 a warm
        # result cache would serve the rows without opening any plan.
        result_cache().clear()
        P.set_plan_verifier(assert_valid_plan)
        try:
            tracer = render_figure_traced(weather_db, "fig4")
        finally:
            P.set_plan_verifier(None)
        verifies = tracer.finished("analyze.verify_plan")
        assert verifies
        for span in verifies:
            assert span.attrs["ok"] is True
            assert span.attrs["nodes"] >= 1
        # Verification runs on plan open, i.e. inside the traced render.
        by_id = {s.span_id: s for s in tracer.finished()}
        assert any(span.parent_id in by_id for span in verifies)


class TestOverheadBudget:
    def test_disabled_hooks_return_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("engine.fire", box=1) is NULL_SPAN

    def test_disabled_tracing_under_two_percent_of_fig4(self, weather_db):
        # Bound the disabled-path cost analytically: (spans an enabled fig4
        # render records) x (measured per-call cost of a disabled span())
        # must stay under 2% of the disabled render time.  This is immune to
        # machine noise in a way that timing two renders against each other
        # is not.
        span_count = len(render_figure_traced(weather_db, "fig4").finished())

        disabled = Tracer(enabled=False)
        calls = 20_000
        start = perf_counter()
        for _ in range(calls):
            disabled.span("engine.fire")
        per_call_s = (perf_counter() - start) / calls

        scenario = cli._FIGURES["fig4"](weather_db)
        session = scenario.session
        window = sorted(session.windows)[0]
        best = min(
            _timed(lambda: (session.engine.invalidate(),
                            session.window(window).render()))
            for _ in range(3)
        )
        assert span_count * per_call_s < 0.02 * best, (
            f"{span_count} spans x {per_call_s * 1e9:.0f}ns "
            f"vs render {best * 1e3:.1f}ms"
        )


def _timed(fn):
    start = perf_counter()
    fn()
    return perf_counter() - start


class TestEngineStatsView:
    def test_stats_are_registry_backed(self, weather_db):
        from repro.dataflow.boxes_db import AddTableBox, RestrictBox
        from repro.dataflow.engine import Engine
        from repro.dataflow.graph import Program

        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        keep = program.add_box(RestrictBox(predicate="state = 'LA'"))
        program.connect(src, "out", keep, "in")
        engine = Engine(program, weather_db)
        engine.output_of(keep)
        registry = engine.stats.registry
        assert registry.counter("engine.box.fires").values \
            is engine.stats.fires
        assert engine.stats.to_dict()["total_fires"] == 2
        engine.stats.reset()
        assert registry.counter("engine.box.fires").total() == 0


class TestViewerTraceParameter:
    def test_render_trace_true_returns_fresh_tracer(self, weather_db):
        scenario = cli._FIGURES["fig4"](weather_db)
        session = scenario.session
        window = session.window(sorted(session.windows)[0])
        result = window.viewer.render(trace=True)
        assert result.tracer is not None
        assert result.tracer.finished("viewer.render")

    def test_render_default_records_nothing_when_disabled(self, weather_db):
        # Pin the ambient tracer to disabled: under REPRO_TRACE=1 a plain
        # render recording into the global tracer is the intended behavior.
        ambient = Tracer(enabled=False)
        scenario = cli._FIGURES["fig4"](weather_db)
        session = scenario.session
        window = session.window(sorted(session.windows)[0])
        with push_tracer(ambient):
            result = window.viewer.render()
        assert result.tracer is None
        assert ambient.finished() == []


class TestCli:
    def test_trace_writes_valid_chrome_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert cli.main(["trace", "fig4", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        events = validate_chrome_trace(payload)
        names = {e["name"] for e in events}
        assert {"engine.fire", "plan.node", "render.pass"} <= names

    def test_trace_needs_a_target(self, capsys):
        assert cli.main(["trace"]) == 2

    def test_stats_json(self, capsys):
        assert cli.main(["stats", "--figure", "fig4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "viewer.render" in payload["spans"]
        assert payload["metrics"]

    def test_stats_check(self, capsys):
        assert cli.main(["stats", "--check"]) == 0
        assert "ok" in capsys.readouterr().out

    def test_stats_validate_bench(self, tmp_path, capsys):
        good = tmp_path / "good.json"
        good.write_text(json.dumps({
            "schema": "repro.bench/1",
            "benchmarks": [{"name": "b", "timing": None}],
        }))
        assert cli.main(["stats", "--validate-bench", str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope", "benchmarks": []}))
        assert cli.main(["stats", "--validate-bench", str(bad)]) == 1

    def test_lint_timing(self, capsys):
        assert cli.main(["lint", "--figure", "fig4", "--timing"]) == 0
        out = capsys.readouterr().out
        assert "-- timing --" in out
        assert "analyze.check_program" in out

    def test_explain_timing_and_json(self, capsys):
        assert cli.main(["explain", "--figure", "fig1", "--timing"]) == 0
        assert "-- timing --" in capsys.readouterr().out
        assert cli.main(["explain", "--figure", "fig1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["boxes"]
        assert "engine" in payload
