"""Unit tests: the lazy dataflow engine (dataflow.engine)."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_db import AddTableBox, ProjectBox, RestrictBox, TBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dbms.catalog import Database
from repro.dbms.relation import Table
from repro.dbms.tuples import Schema
from repro.errors import GraphError
from repro.viewer.viewer import ViewerBox


@pytest.fixture()
def db() -> Database:
    database = Database()
    table = database.create_table(
        "T", Schema([("name", "text"), ("value", "int")])
    )
    table.insert_many([{"name": "a", "value": 1}, {"name": "b", "value": 2}])
    return database


def chain(db: Database):
    program = Program()
    src = program.add_box(AddTableBox(table="T"))
    mid = program.add_box(RestrictBox(predicate="value > 1"))
    tail = program.add_box(ProjectBox(fields=["name"]))
    program.connect(src, "out", mid, "in")
    program.connect(mid, "out", tail, "in")
    return program, src, mid, tail


class TestDemand:
    def test_output_of_fires_upstream_only(self, db):
        program, src, mid, tail = chain(db)
        # Add a second unconnected branch that must NOT fire.
        other = program.add_box(AddTableBox(table="T"))
        unused = program.add_box(RestrictBox(predicate="value > 100"))
        program.connect(other, "out", unused, "in")
        engine = Engine(program, db)
        result = engine.output_of(tail)
        assert len(result.rows) == 1
        assert engine.stats.fires.get(unused, 0) == 0
        assert engine.stats.total_fires() == 3

    def test_single_output_inferred(self, db):
        program, src, *_ = chain(db)
        engine = Engine(program, db)
        assert len(engine.output_of(src).rows) == 2

    def test_multi_output_requires_name(self, db):
        program = Program()
        src = program.add_box(AddTableBox(table="T"))
        tee = program.add_box(TBox(kind="R"))
        program.connect(src, "out", tee, "in")
        engine = Engine(program, db)
        with pytest.raises(GraphError, match="name the one"):
            engine.output_of(tee)
        assert engine.output_of(tee, "out2") is engine.output_of(tee, "out1")

    def test_dangling_input_reported(self, db):
        program = Program()
        mid = program.add_box(RestrictBox(predicate="true"))
        engine = Engine(program, db)
        with pytest.raises(GraphError, match="not connected"):
            engine.output_of(mid)

    def test_inputs_of_sink(self, db):
        program, __, __, tail = chain(db)
        viewer = program.add_box(ViewerBox(name="v"))
        program.connect(tail, "out", viewer, "in")
        engine = Engine(program, db)
        values = engine.inputs_of(viewer)
        assert len(values["in"].rows) == 1


class TestMemoization:
    def test_second_demand_hits_cache(self, db):
        program, __, __, tail = chain(db)
        engine = Engine(program, db)
        engine.output_of(tail)
        fires = engine.stats.total_fires()
        engine.output_of(tail)
        assert engine.stats.total_fires() == fires
        assert engine.stats.cache_hits >= 1

    def test_table_update_invalidates(self, db):
        program, __, __, tail = chain(db)
        engine = Engine(program, db)
        assert len(engine.output_of(tail).rows) == 1
        db.table("T").insert({"name": "c", "value": 5})
        assert len(engine.output_of(tail).rows) == 2

    def test_param_edit_refires_only_suffix(self, db):
        program, src, mid, tail = chain(db)
        engine = Engine(program, db)
        engine.output_of(tail)
        before = dict(engine.stats.fires)
        program.box(mid).set_param("predicate", "value > 0")
        engine.output_of(tail)
        assert engine.stats.fires[src] == before[src]  # source cached
        assert engine.stats.fires[mid] == before[mid] + 1
        assert engine.stats.fires[tail] == before[tail] + 1

    def test_invalidate_one_box(self, db):
        program, __, mid, tail = chain(db)
        engine = Engine(program, db)
        engine.output_of(tail)
        engine.invalidate(mid)
        engine.output_of(tail)
        assert engine.stats.fires[mid] == 2

    def test_invalidate_all(self, db):
        program, src, mid, tail = chain(db)
        engine = Engine(program, db)
        engine.output_of(tail)
        engine.invalidate()
        engine.output_of(tail)
        assert engine.stats.fires[src] == 2

    def test_t_box_shares_single_fire(self, db):
        program = Program()
        src = program.add_box(AddTableBox(table="T"))
        tee = program.add_box(TBox(kind="R"))
        left = program.add_box(RestrictBox(predicate="value > 0"))
        right = program.add_box(RestrictBox(predicate="value > 1"))
        program.connect(src, "out", tee, "in")
        program.connect(tee, "out1", left, "in")
        program.connect(tee, "out2", right, "in")
        engine = Engine(program, db)
        engine.output_of(left)
        engine.output_of(right)
        assert engine.stats.fires[tee] == 1
        assert engine.stats.fires[src] == 1


class TestEagerMode:
    def test_evaluate_all_fires_everything(self, db):
        program, src, mid, tail = chain(db)
        extra = program.add_box(AddTableBox(table="T"))
        dead_end = program.add_box(RestrictBox(predicate="value > 10"))
        program.connect(extra, "out", dead_end, "in")
        engine = Engine(program, db)
        count = engine.evaluate_all()
        assert count == 5
        assert engine.stats.fires[dead_end] == 1

    def test_evaluate_all_skips_disconnected(self, db):
        program = Program()
        program.add_box(RestrictBox(predicate="true"))  # dangling input
        engine = Engine(program, db)
        assert engine.evaluate_all() == 0

    def test_eager_does_more_work_than_lazy(self, db):
        program, __, __, tail = chain(db)
        extra = program.add_box(AddTableBox(table="T"))
        dead_end = program.add_box(RestrictBox(predicate="value > 10"))
        program.connect(extra, "out", dead_end, "in")
        lazy = Engine(program, db)
        lazy.output_of(tail)
        eager = Engine(program, db)
        eager.evaluate_all()
        assert eager.stats.total_fires() > lazy.stats.total_fires()


class TestStats:
    def test_reset(self, db):
        program, __, __, tail = chain(db)
        engine = Engine(program, db)
        engine.output_of(tail)
        engine.stats.reset()
        assert engine.stats.total_fires() == 0
        assert engine.stats.cache_misses == 0
