"""Property-based tests (hypothesis): the DBMS substrate's invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbms import algebra
from repro.dbms.parser import parse_expression, tokenize
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema, Tuple

SCHEMA = Schema([("k", "int"), ("v", "float"), ("tag", "text")])

row_dicts = st.fixed_dictionaries(
    {
        "k": st.integers(min_value=-1000, max_value=1000),
        "v": st.floats(min_value=-1e6, max_value=1e6,
                       allow_nan=False, allow_infinity=False),
        "tag": st.sampled_from(["a", "b", "c", "d"]),
    }
)
row_sets = st.lists(row_dicts, max_size=40).map(
    lambda dicts: RowSet.from_dicts(SCHEMA, dicts)
)


class TestAlgebraProperties:
    @given(rows=row_sets)
    def test_restrict_returns_subset(self, rows):
        result = algebra.restrict_predicate(rows, "k > 0")
        originals = list(rows.rows)
        assert all(row in originals for row in result)
        assert all(row["k"] > 0 for row in result)

    @given(rows=row_sets)
    def test_restrict_partition_is_exhaustive(self, rows):
        positive = algebra.restrict_predicate(rows, "k > 0")
        rest = algebra.restrict_predicate(rows, "not (k > 0)")
        assert len(positive) + len(rest) == len(rows)

    @given(rows=row_sets)
    def test_project_preserves_cardinality(self, rows):
        result = algebra.project(rows, ["tag", "k"])
        assert len(result) == len(rows)
        assert result.schema.names == ("tag", "k")

    @given(rows=row_sets, probability=st.floats(min_value=0.0, max_value=1.0),
           seed=st.integers(min_value=0, max_value=2**16))
    def test_sample_is_reproducible_subset(self, rows, probability, seed):
        first = algebra.sample(rows, probability, seed)
        second = algebra.sample(rows, probability, seed)
        assert first == second
        assert len(first) <= len(rows)

    @given(rows=row_sets)
    def test_order_by_sorted_and_permutation(self, rows):
        result = algebra.order_by(rows, ["k"])
        values = [row["k"] for row in result]
        assert values == sorted(values)
        assert sorted(map(repr, result)) == sorted(map(repr, rows))

    @given(rows=row_sets)
    def test_distinct_idempotent(self, rows):
        once = algebra.distinct(rows)
        twice = algebra.distinct(once)
        assert once == twice

    @given(left=row_sets, right=row_sets)
    @settings(max_examples=25)
    def test_hash_join_matches_nested_loop(self, left, right):
        by_hash = algebra.join_hash(left, right, "k", "k")
        by_loop = algebra.join_nested_loop(left, right, "k", "k")
        assert sorted(map(repr, by_hash)) == sorted(map(repr, by_loop))

    @given(left=row_sets, right=row_sets)
    @settings(max_examples=25)
    def test_join_cardinality_formula(self, left, right):
        joined = algebra.join_hash(left, right, "k", "k")
        expected = sum(
            sum(1 for r in right if r["k"] == l["k"]) for l in left
        )
        assert len(joined) == expected

    @given(rows=row_sets)
    def test_group_by_count_sums_to_total(self, rows):
        if len(rows) == 0:
            return
        grouped = algebra.group_by(rows, ["tag"], [("count", "k", "n")])
        assert sum(row["n"] for row in grouped) == len(rows)

    @given(rows=row_sets)
    def test_group_by_sum_matches_python(self, rows):
        if len(rows) == 0:
            return
        grouped = algebra.group_by(rows, ["tag"], [("sum", "v", "total")])
        for group_row in grouped:
            expected = sum(
                row["v"] for row in rows if row["tag"] == group_row["tag"]
            )
            assert math.isclose(group_row["total"], expected, rel_tol=1e-9,
                                abs_tol=1e-9)

    @given(rows=row_sets, count=st.integers(min_value=0, max_value=50))
    def test_limit_bounds(self, rows, count):
        result = algebra.limit(rows, count)
        assert len(result) == min(count, len(rows))
        assert list(result.rows) == list(rows.rows[:count])

    @given(left=row_sets, right=row_sets)
    def test_union_cardinality(self, left, right):
        assert len(algebra.union(left, right)) == len(left) + len(right)


# --- expression/parser properties -------------------------------------------

int_exprs = st.recursive(
    st.one_of(
        st.integers(min_value=-99, max_value=99).map(str),
        st.just("k"),
    ),
    lambda children: st.tuples(
        children, st.sampled_from(["+", "-", "*"]), children
    ).map(lambda t: f"({t[0]} {t[1]} {t[2]})"),
    max_leaves=12,
)


class TestExpressionProperties:
    @given(source=int_exprs, k=st.integers(min_value=-50, max_value=50))
    def test_parser_agrees_with_python_eval(self, source, k):
        expr = parse_expression(source, SCHEMA)
        row = Tuple(SCHEMA, {"k": k, "v": 0.0, "tag": "a"})
        assert expr.evaluate(row) == eval(source, {}, {"k": k})

    @given(source=int_exprs)
    def test_str_roundtrip_is_stable(self, source):
        expr = parse_expression(source, SCHEMA)
        reparsed = parse_expression(str(expr), SCHEMA)
        assert str(reparsed) == str(expr)

    @given(source=int_exprs)
    def test_fields_used_subset_of_schema(self, source):
        expr = parse_expression(source, SCHEMA)
        assert expr.fields_used() <= set(SCHEMA.names)

    @given(text=st.text(alphabet="abcdefgh ()+-*/<>=.,0123456789'", max_size=30))
    def test_tokenizer_never_crashes_unexpectedly(self, text):
        from repro.errors import ExpressionError

        try:
            tokens = tokenize(text)
        except ExpressionError:
            return
        assert tokens[-1].kind == "eof"


class TestTupleProperties:
    @given(rows=row_sets)
    def test_tuple_equality_consistent_with_hash(self, rows):
        seen = {}
        for row in rows:
            if row in seen:
                assert hash(row) == hash(seen[row])
            seen[row] = row

    @given(data=row_dicts)
    def test_replace_roundtrip(self, data):
        row = Tuple(SCHEMA, data)
        replaced = row.replace(k=row["k"])
        assert replaced == row
