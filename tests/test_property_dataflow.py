"""Property-based tests (hypothesis): dataflow engine and optimizer
invariants over randomly composed pipelines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.workloads import build_points_database
from repro.dataflow.boxes_db import AddTableBox, ProjectBox, RestrictBox
from repro.dataflow.boxes_extra import (
    DistinctBox,
    LimitBox,
    OrderByBox,
    RenameBox,
)
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dataflow.optimize import optimize
from repro.dataflow.serialize import program_from_dict, program_to_dict


@pytest.fixture(scope="module")
def points_db():
    return build_points_database(300, seed=11)


# Each step is (constructor args) for a row-preserving-schema box over the
# Points schema (point_id, x_pos, y_pos, value, category).
_STEPS = st.sampled_from([
    ("Restrict", {"predicate": "value > 25.0"}),
    ("Restrict", {"predicate": "category = 'alpha' or category = 'beta'"}),
    ("Restrict", {"predicate": "x_pos < 0.0"}),
    ("OrderBy", {"fields": ["value"]}),
    ("OrderBy", {"fields": ["category", "point_id"], "descending": True}),
    ("Distinct", {}),
    ("Limit", {"count": 40}),
    ("Limit", {"count": 500}),
])

_BUILDERS = {
    "Restrict": RestrictBox,
    "OrderBy": OrderByBox,
    "Distinct": DistinctBox,
    "Limit": LimitBox,
}

pipelines = st.lists(_STEPS, min_size=0, max_size=6)


def build_program(steps) -> tuple[Program, int]:
    program = Program("random-pipeline")
    previous = program.add_box(AddTableBox(table="Points"))
    for type_name, params in steps:
        box_id = program.add_box(_BUILDERS[type_name](**params))
        program.connect(previous, "out", box_id, "in")
        previous = box_id
    return program, previous


class TestEngineProperties:
    @given(steps=pipelines)
    @settings(max_examples=40, deadline=None)
    def test_serialization_preserves_results(self, points_db, steps):
        program, tail = build_program(steps)
        original = Engine(program, points_db).output_of(tail)
        restored = program_from_dict(program_to_dict(program))
        roundtrip = Engine(restored, points_db).output_of(tail)
        assert list(original.rows) == list(roundtrip.rows)

    @given(steps=pipelines)
    @settings(max_examples=40, deadline=None)
    def test_redemand_is_stable(self, points_db, steps):
        program, tail = build_program(steps)
        engine = Engine(program, points_db)
        first = engine.output_of(tail)
        second = engine.output_of(tail)
        assert first is second  # cached object identity

    @given(steps=pipelines)
    @settings(max_examples=40, deadline=None)
    def test_eager_matches_lazy(self, points_db, steps):
        program, tail = build_program(steps)
        lazy = Engine(program, points_db).output_of(tail)
        eager_engine = Engine(program, points_db)
        eager_engine.evaluate_all()
        eager = eager_engine.output_of(tail)
        assert list(lazy.rows) == list(eager.rows)

    @given(steps=pipelines)
    @settings(max_examples=40, deadline=None)
    def test_each_box_fires_at_most_once(self, points_db, steps):
        program, tail = build_program(steps)
        engine = Engine(program, points_db)
        engine.output_of(tail)
        engine.output_of(tail)
        assert all(count == 1 for count in engine.stats.fires.values())


class TestOptimizerProperties:
    @given(steps=pipelines)
    @settings(max_examples=40, deadline=None)
    def test_optimizer_preserves_semantics(self, points_db, steps):
        program, tail = build_program(steps)
        baseline = Engine(program, points_db).output_of(tail)
        optimized, log = optimize(program, points_db)
        # The tail box may have been merged away; demand the deepest box.
        if tail in optimized:
            result = Engine(optimized, points_db).output_of(tail)
        else:
            deepest = max(
                optimized.box_ids(),
                key=lambda b: len(optimized.upstream_of(b)),
            )
            result = Engine(optimized, points_db).output_of(deepest)
        assert sorted(map(repr, baseline.rows)) == sorted(map(repr, result.rows))

    @given(steps=pipelines)
    @settings(max_examples=40, deadline=None)
    def test_optimizer_is_idempotent_at_fixpoint(self, points_db, steps):
        program, __ = build_program(steps)
        once, __log = optimize(program, points_db)
        twice, log2 = optimize(once, points_db)
        assert log2 == []
        assert len(twice) == len(once)
