"""Property test: every execution backend is observationally equivalent.

Thirty deterministic seeds each build a random pipeline of relational boxes
(the generator mirrors tests/test_analyze_property.py) over a 5000-row
Stations table — large enough that chains genuinely split into morsels and
column batches.  Every program the static checker accepts is executed
several ways — serial-row, parallel-cold (cache miss), parallel-warm (cache
hit), columnar, and parallel-columnar — and all must produce identical
tuples in identical order.
"""

from __future__ import annotations

import random

import pytest

from repro.analyze.checker import check_program
from repro.dataflow.boxes_attr import AddAttributeBox, ScaleAttributeBox
from repro.dataflow.boxes_db import (
    AddTableBox,
    ProjectBox,
    RestrictBox,
    SampleBox,
)
from repro.dataflow.boxes_extra import (
    DistinctBox,
    LimitBox,
    OrderByBox,
    RenameBox,
)
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dbms.catalog import Database
from repro.dbms.plan_parallel import (
    ParallelConfig,
    result_cache,
    set_default_config,
)
from repro.dbms.relation import Table
from repro.dbms.tuples import Schema

SEEDS = 30
ROWS = 5_000
FIELDS = ["station_id", "name", "state", "longitude", "latitude", "altitude"]
NUMERIC = ["station_id", "longitude", "latitude", "altitude"]

PARALLEL = ParallelConfig(workers=4, cache=True, morsel_size=256)


@pytest.fixture(scope="module")
def big_stations_db() -> Database:
    rng = random.Random(2024)
    db = Database("property_parallel")
    table = Table("Stations", Schema([
        ("station_id", "int"),
        ("name", "text"),
        ("state", "text"),
        ("longitude", "float"),
        ("latitude", "float"),
        ("altitude", "float"),
    ]))
    table.insert_many(
        {
            "station_id": index,
            "name": f"S{index}",
            "state": rng.choice(["LA", "TX", "CA", "NY"]),
            "longitude": rng.uniform(-120, -70),
            "latitude": rng.uniform(25, 50),
            "altitude": rng.uniform(0, 140),
        }
        for index in range(ROWS)
    )
    db.add_table(table)
    return db


def random_step(rng: random.Random, step: int):
    kind = rng.choice(
        ["restrict", "sample", "project", "addattr", "scale",
         "orderby", "distinct", "limit", "rename"]
    )
    if kind == "restrict":
        field = rng.choice(NUMERIC)
        return RestrictBox(predicate=f"{field} > {rng.uniform(-50, 150):.1f}")
    if kind == "sample":
        return SampleBox(probability=rng.choice([0.3, 0.6, 0.9]),
                         seed=rng.randint(0, 99))
    if kind == "project":
        count = rng.randint(1, len(FIELDS))
        return ProjectBox(fields=rng.sample(FIELDS, count))
    if kind == "addattr":
        field = rng.choice(NUMERIC)
        return AddAttributeBox(
            name=f"a{step}", definition=f"{field} * {rng.uniform(0.5, 3):.1f}"
        )
    if kind == "scale":
        name = rng.choice(FIELDS + [f"a{rng.randint(0, 4)}"])
        return ScaleAttributeBox(name=name, amount=rng.choice([0.5, 2.0]))
    if kind == "orderby":
        return OrderByBox(fields=[rng.choice(FIELDS)],
                          descending=rng.random() < 0.5)
    if kind == "distinct":
        return DistinctBox()
    if kind == "limit":
        return LimitBox(count=rng.randint(1, 2000))
    return RenameBox(old=rng.choice(FIELDS), new=f"r{step}")


def random_program(seed: int):
    rng = random.Random(seed)
    program = Program(f"parallel-property-{seed}")
    upstream = program.add_box(AddTableBox(table="Stations"))
    for step in range(rng.randint(1, 5)):
        box_id = program.add_box(random_step(rng, step))
        program.connect(upstream, "out", box_id, "in")
        upstream = box_id
    return program, upstream


def forced(db, program, box_id, *, parallel: bool, columnar: bool = False):
    if parallel:
        engine = Engine(program, db,    # inherits the installed default
                        columnar=columnar)
    else:
        engine = Engine(program, db, workers=0, cache=False,
                        columnar=columnar)
    return tuple(engine.output_of(box_id, "out").rows.force())


def test_serial_and_parallel_agree_over_30_seeds(big_stations_db):
    compared = 0
    for seed in range(SEEDS):
        program, last_box = random_program(seed)
        if check_program(program, big_stations_db).errors():
            continue    # generator produced a genuinely broken pipeline
        serial = forced(big_stations_db, program, last_box, parallel=False)
        previous = set_default_config(PARALLEL)
        try:
            result_cache().clear()
            cold = forced(big_stations_db, program, last_box, parallel=True)
            warm = forced(big_stations_db, program, last_box, parallel=True)
        finally:
            set_default_config(previous)
        assert cold == serial, f"seed {seed}: parallel-cold differs"
        assert warm == serial, f"seed {seed}: cache-served differs"
        compared += 1
    result_cache().clear()
    # A degenerate generator would vacuously pass; require real coverage.
    assert compared >= SEEDS // 2, compared


def test_four_backends_agree_over_30_seeds(big_stations_db):
    """Serial-row vs columnar vs parallel-columnar vs warm-cache.

    The columnar arms run under the plan verifier so every rewritten tree is
    also structurally checked (adapter placement, schema/dtype agreement).
    """
    from repro.analyze.planverify import assert_valid_plan
    from repro.dbms.plan import plan_verifier, set_plan_verifier

    previous_verifier = plan_verifier()
    set_plan_verifier(assert_valid_plan)
    compared = 0
    try:
        for seed in range(SEEDS):
            program, last_box = random_program(seed)
            if check_program(program, big_stations_db).errors():
                continue
            serial = forced(big_stations_db, program, last_box,
                            parallel=False)
            columnar = forced(big_stations_db, program, last_box,
                              parallel=False, columnar=True)
            previous = set_default_config(PARALLEL)
            try:
                result_cache().clear()
                parallel_columnar = forced(big_stations_db, program, last_box,
                                           parallel=True, columnar=True)
                warm = forced(big_stations_db, program, last_box,
                              parallel=True, columnar=True)
            finally:
                set_default_config(previous)
            assert columnar == serial, f"seed {seed}: columnar differs"
            assert parallel_columnar == serial, \
                f"seed {seed}: parallel-columnar differs"
            assert warm == serial, f"seed {seed}: warm-cache differs"
            compared += 1
    finally:
        set_plan_verifier(previous_verifier)
        result_cache().clear()
    assert compared >= SEEDS // 2, compared
