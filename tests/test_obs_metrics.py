"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    declarations,
    declare,
    global_registry,
)


class TestCounter:
    def test_inc_by_label(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2, label=7)
        counter.inc(label=7)
        assert counter.value() == 1
        assert counter.value(7) == 3
        assert counter.value("missing") == 0
        assert counter.total() == 4

    def test_values_dict_is_shared_storage(self):
        # EngineStats depends on this: the exposed dict IS the storage, so a
        # view holding it sees updates and reset in place.
        counter = Counter("c")
        view = counter.values
        counter.inc(label=1)
        assert view == {1: 1}
        counter.reset()
        assert view == {}
        assert counter.values is view

    def test_snapshot_sorted_and_json_ready(self):
        counter = Counter("c")
        counter.inc(label="b")
        counter.inc(label="a")
        counter.inc(5)
        snap = counter.snapshot()
        assert snap == {
            "kind": "counter",
            "total": 7,
            "by_label": {"_total": 5, "a": 1, "b": 1},
        }


class TestGauge:
    def test_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(3.0, label="x")
        gauge.set(5.0, label="x")
        assert gauge.value("x") == 5.0
        assert gauge.value("other") == 0.0
        assert gauge.snapshot()["by_label"] == {"x": 5.0}


class TestHistogram:
    def test_bucketing_and_stats(self):
        hist = Histogram("h", buckets=[1.0, 10.0])
        for value in (0.5, 1.0, 2.0, 100.0):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.mean() == pytest.approx(25.875)
        snap = hist.snapshot()["by_label"]["_total"]
        assert snap["min"] == 0.5 and snap["max"] == 100.0
        # 0.5 and 1.0 land at or under the 1.0 bound; 2.0 under 10.0;
        # 100.0 overflows.
        assert snap["buckets"] == {"1.0": 2, "10.0": 1, "+inf": 1}

    def test_bucket_edge_values_are_inclusive(self):
        # Observations exactly on a bucket bound land IN that bucket
        # (upper bounds are inclusive, Prometheus-style); the next float
        # up overflows to the following bucket.
        hist = Histogram("h", buckets=[1.0, 10.0, 100.0])
        for value in (1.0, 10.0, 100.0):
            hist.observe(value)
        snap = hist.snapshot()["by_label"]["_total"]
        assert snap["buckets"] == {"1.0": 1, "10.0": 1, "100.0": 1,
                                   "+inf": 0}
        import math

        hist.observe(math.nextafter(100.0, math.inf))
        snap = hist.snapshot()["by_label"]["_total"]
        assert snap["buckets"]["+inf"] == 1
        assert snap["max"] > 100.0

    def test_mean_without_observations_raises(self):
        hist = Histogram("h", buckets=[1.0])
        with pytest.raises(ObservabilityError):
            hist.mean()

    def test_empty_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", buckets=[])


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("test.reg.fires")
        second = registry.counter("test.reg.fires")
        assert first is second
        assert "test.reg.fires" in registry
        assert registry.get("test.reg.fires") is first

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("test.reg.conflict")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.gauge("test.reg.conflict")

    def test_cross_registry_conflict_raises_via_declarations(self):
        MetricsRegistry().counter("test.reg.crossconflict")
        with pytest.raises(ObservabilityError, match="declared as both"):
            MetricsRegistry().histogram("test.reg.crossconflict")

    def test_reset_zeroes_but_keeps_registrations(self):
        registry = MetricsRegistry()
        counter = registry.counter("test.reg.reset")
        counter.inc(3)
        registry.reset()
        assert registry.counter("test.reg.reset") is counter
        assert counter.total() == 0

    def test_snapshot_stable_order(self):
        registry = MetricsRegistry()
        registry.counter("test.reg.snap.b").inc()
        registry.counter("test.reg.snap.a").inc(2)
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["test.reg.snap.a"]["total"] == 2


class TestDeclarations:
    def test_redeclare_same_kind_ok(self):
        declare("test.decl.stable", "counter")
        declare("test.decl.stable", "counter")
        assert declarations()["test.decl.stable"] == "counter"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError, match="unknown metric kind"):
            declare("test.decl.bogus", "timer")

    def test_declarations_returns_copy(self):
        table = declarations()
        table["test.decl.mutated"] = "counter"
        assert "test.decl.mutated" not in declarations()

    def test_engine_taxonomy_declared_after_use(self):
        # Creating an EngineStats registers the engine counters process-wide.
        from repro.dataflow.engine import EngineStats

        EngineStats()
        table = declarations()
        for name in ("engine.box.fires", "engine.cache.hits",
                     "engine.cache.misses"):
            assert table[name] == "counter"


class TestRemoveLabel:
    """The session-cardinality fix: pruning a label must not make any
    counter-like total go backwards (MetricsRecorder derives deltas/rates
    from totals), so counters and histograms fold into the aggregate."""

    def test_counter_folds_removed_series_into_aggregate(self):
        counter = Counter("c")
        counter.inc(3)
        counter.inc(5, label="sid-1")
        counter.inc(2, label="sid-2")
        assert counter.remove_label("sid-1") is True
        assert "sid-1" not in counter.values
        assert counter.value() == 8  # 3 + folded 5
        assert counter.value("sid-2") == 2
        assert counter.total() == 10  # monotone across the prune
        assert counter.remove_label("sid-1") is False

    def test_counter_remove_unlabeled_series_discards(self):
        counter = Counter("c")
        counter.inc(4)
        assert counter.remove_label(None) is True
        assert counter.total() == 0

    def test_gauge_drop_is_plain_removal(self):
        gauge = Gauge("g")
        gauge.set(1.0)
        gauge.set(9.0, label="sid-1")
        assert gauge.remove_label("sid-1") is True
        # Last-write-wins semantics: folding a dead gauge into the
        # aggregate would fabricate a reading, so the series just goes.
        assert gauge.value() == 1.0
        assert "sid-1" not in gauge.snapshot()["by_label"]
        assert gauge.remove_label("missing") is False

    def test_histogram_folds_buckets_and_stats(self):
        hist = Histogram("h", buckets=[1.0, 10.0])
        hist.observe(0.5)
        hist.observe(5.0, label="sid-1")
        hist.observe(200.0, label="sid-1")
        assert hist.remove_label("sid-1") is True
        assert hist.count() == 3
        snap = hist.snapshot()["by_label"]
        assert list(snap) == ["_total"]
        agg = snap["_total"]
        assert agg["buckets"] == {"1.0": 1, "10.0": 1, "+inf": 1}
        assert agg["min"] == 0.5 and agg["max"] == 200.0
        assert agg["sum"] == pytest.approx(205.5)

    def test_histogram_fold_into_empty_aggregate(self):
        hist = Histogram("h", buckets=[1.0])
        hist.observe(0.5, label="sid-1")
        assert hist.remove_label("sid-1") is True
        assert hist.count() == 1
        assert hist.mean() == pytest.approx(0.5)

    def test_registry_prune_label_sweeps_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("test.prune.cmds").inc(label="sid-9")
        registry.histogram("test.prune.ms",
                           buckets=[10.0]).observe(3.0, label="sid-9")
        registry.gauge("test.prune.depth").set(2.0, label="sid-9")
        registry.counter("test.prune.other").inc(label="elsewhere")
        assert registry.prune_label("sid-9") == 3
        assert registry.prune_label("sid-9") == 0
        assert registry.counter("test.prune.cmds").total() == 1
        assert "sid-9" not in registry.counter("test.prune.cmds").values

    def test_recorder_prune_label_clears_series_and_derived_state(self):
        from repro.obs import MetricsRecorder

        registry = MetricsRegistry()
        registry.counter("test.prune.rec").inc(5, label="sid-3")
        recorder = MetricsRecorder(registry=registry)
        recorder.sample()
        assert recorder.series("test.prune.rec|sid-3") is not None
        removed = recorder.prune_label("sid-3")
        assert removed >= 1
        assert recorder.series("test.prune.rec|sid-3") is None
        # After the registry-side prune, the next sample derives from the
        # folded aggregate without a negative delta blowing up.
        registry.prune_label("sid-3")
        recorder.sample()
        assert recorder.series("test.prune.rec|sid-3") is None


def test_global_registry_is_a_singleton():
    assert global_registry() is global_registry()
    assert isinstance(global_registry(), MetricsRegistry)
