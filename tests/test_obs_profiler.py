"""The continuous statistical profiler (``repro.obs.profiler``).

Unit coverage for the stdlib sampler: busy threads show up with
root-first ``file:func:line`` frames, samples carry trace/session
attribution for threads that adopted a :class:`TraceContext`, the ring
bounds retention (``dropped`` counts the overflow), folded stacks and the
Chrome export are well-formed, and the analytic overhead guard — the
measured per-tick cost at the default rate must stay under the documented
3% budget.
"""

from __future__ import annotations

import threading
from time import perf_counter, perf_counter_ns, sleep

import pytest

from repro.errors import ObservabilityError
from repro.obs import validate_chrome_trace
from repro.obs.profiler import PROFILE_SCHEMA, Profiler, ProfileSample
from repro.obs.trace import TraceContext, Tracer


class _Busy:
    """A worker thread spinning in a recognizably-named function."""

    def __init__(self, ctx: TraceContext | None = None,
                 tracer: Tracer | None = None):
        self._stop = threading.Event()
        self._spinning = threading.Event()
        self._ctx = ctx
        self._tracer = tracer or Tracer(enabled=True)
        self.thread = threading.Thread(
            target=self._run, name="busy-worker", daemon=True)

    def _run(self) -> None:
        if self._ctx is not None:
            with self._tracer.adopt(self._ctx):
                self._spin_hotloop()
        else:
            self._spin_hotloop()

    def _spin_hotloop(self) -> None:
        self._spinning.set()
        while not self._stop.is_set():
            sum(range(500))

    def __enter__(self) -> "_Busy":
        self.thread.start()
        # Don't let a sampler tick race the thread bootstrap: wait until
        # the worker is provably inside the hot loop.
        assert self._spinning.wait(5.0)
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self.thread.join(5.0)


class TestSampling:
    def test_sample_once_captures_busy_thread(self):
        profiler = Profiler()
        with _Busy():
            appended = profiler.sample_once()
        assert appended >= 1
        assert profiler.ticks == 1
        mine = [s for s in profiler.samples()
                if s.thread_name == "busy-worker"]
        assert mine, "the busy worker must be sampled"
        sample = mine[0]
        # Frames are root-first file:func:line labels: _run (root side)
        # precedes the hot loop it called.  The exact leaf may be a frame
        # *inside* the loop (e.g. Event.is_set), so assert order, not tip.
        assert all(label.count(":") >= 2 for label in sample.frames)
        run_at = next(i for i, label in enumerate(sample.frames)
                      if "_run" in label)
        spin_at = next(i for i, label in enumerate(sample.frames)
                       if "_spin_hotloop" in label)
        assert run_at < spin_at

    def test_sampler_never_samples_itself(self):
        profiler = Profiler(hz=200.0)
        with profiler, _Busy():
            sleep(0.1)
        assert profiler.ticks > 0
        assert len(profiler) > 0
        assert all(s.thread_name != "repro-profiler"
                   for s in profiler.samples())

    def test_trace_attribution_via_adopt(self):
        ctx = TraceContext.new(session="s-1", command="render")
        profiler = Profiler()
        with _Busy(ctx=ctx):
            sleep(0.02)
            profiler.sample_once()
        attributed = [s for s in profiler.samples()
                      if s.thread_name == "busy-worker"]
        assert attributed
        assert attributed[0].trace_id == ctx.trace_id
        assert attributed[0].session == "s-1"
        # samples(trace_id=...) and slice(trace_id=...) filter to it.
        assert profiler.samples(trace_id=ctx.trace_id)
        window = profiler.slice(0, perf_counter_ns(),
                                trace_id=ctx.trace_id)
        assert window and window[0]["trace_id"] == ctx.trace_id

    def test_slice_keeps_unattributed_samples_in_window(self):
        profiler = Profiler()
        with _Busy():  # no adopted context: trace_id is None
            sleep(0.02)
            start = perf_counter_ns()
            profiler.sample_once()
            end = perf_counter_ns()
        window = profiler.slice(start, end, trace_id="some-request")
        assert any(s["trace_id"] is None for s in window)
        # Samples attributed to a *different* request are excluded.
        other = ProfileSample(start, 999, "other", ("a:b:1",),
                              "other-request", None)
        profiler._samples.append(other)
        window = profiler.slice(start, end, trace_id="some-request")
        assert all(s["trace_id"] != "other-request" for s in window)

    def test_ring_bounds_retention_and_counts_dropped(self):
        profiler = Profiler(capacity=5)
        with _Busy():
            for _ in range(20):
                profiler.sample_once()
        assert len(profiler) == 5
        assert profiler.total_samples >= 20
        assert profiler.dropped == profiler.total_samples - 5
        profiler.clear()
        assert len(profiler) == 0


class TestLifecycle:
    def test_invalid_rate_and_capacity_raise(self):
        with pytest.raises(ObservabilityError):
            Profiler(hz=0.0)
        with pytest.raises(ObservabilityError):
            Profiler(hz=-5.0)
        with pytest.raises(ObservabilityError):
            Profiler(capacity=0)

    def test_empty_profiler_is_truthy(self):
        # Sized (len == retained samples) but presence-truthy: the server
        # logs ``profiler.hz if profiler is not None`` — an ``if
        # profiler:`` must never silently mean "has samples".
        profiler = Profiler()
        assert len(profiler) == 0
        assert bool(profiler) is True

    def test_double_start_raises_stop_is_idempotent(self):
        profiler = Profiler(hz=500.0)
        profiler.start()
        try:
            assert profiler.running
            with pytest.raises(ObservabilityError):
                profiler.start()
        finally:
            profiler.stop()
        assert not profiler.running
        profiler.stop()  # no-op
        profiler.start()  # restartable after stop
        profiler.stop()


class TestExports:
    @pytest.fixture()
    def sampled(self):
        profiler = Profiler()
        with _Busy(ctx=TraceContext.new(session="s-9", command="render")):
            sleep(0.02)
            for _ in range(4):
                profiler.sample_once()
        return profiler

    def test_collapsed_folds_identical_stacks(self, sampled):
        folded = sampled.collapsed()
        assert folded
        assert all(";" in stack or ":" in stack for stack in folded)
        assert sum(folded.values()) == sum(
            1 for s in sampled.samples() if s.frames)
        text = sampled.collapsed_text()
        stack, count = text.splitlines()[0].rsplit(" ", 1)
        assert int(count) >= 1 and stack

    def test_chrome_trace_is_valid_and_attributed(self, sampled):
        trace = sampled.chrome_trace()
        validate_chrome_trace(trace)
        events = trace["traceEvents"]
        names = [e["args"]["name"] for e in events
                 if e["name"] == "thread_name"]
        assert "busy-worker" in names
        instants = [e for e in events if e["ph"] == "i"]
        assert instants
        assert any(e["args"].get("trace_id") for e in instants)
        assert any(e["args"].get("session") == "s-9" for e in instants)

    def test_snapshot_schema_and_tallies(self, sampled):
        doc = sampled.snapshot()
        assert doc["schema"] == PROFILE_SCHEMA
        assert doc["running"] is False
        assert doc["samples"] == len(sampled)
        assert doc["threads"].get("busy-worker", 0) >= 1
        assert doc["traces"], "adopted samples must tally per trace"
        windowed = sampled.snapshot(seconds=0.0)
        assert windowed["samples"] == 0
        assert windowed["window_s"] == 0.0


class TestOverheadBudget:
    def test_default_rate_costs_under_three_percent(self):
        """Analytic bound: (measured per-tick cost) x hz is the CPU
        fraction the sampler steals from the process.  At the default
        67hz with a realistic thread count it must stay under the 3%
        budget docs/OBSERVABILITY.md promises."""
        profiler = Profiler()
        workers = [_Busy() for _ in range(4)]
        for worker in workers:
            worker.__enter__()
        try:
            profiler.sample_once()  # warm caches
            ticks = 50
            start = perf_counter()
            for _ in range(ticks):
                profiler.sample_once()
            per_tick_s = (perf_counter() - start) / ticks
        finally:
            for worker in workers:
                worker.__exit__()
        overhead = per_tick_s * profiler.hz
        assert overhead < 0.03, (
            f"tick {per_tick_s * 1e6:.0f}us x {profiler.hz}hz = "
            f"{overhead * 100:.2f}% CPU")
