"""Unit tests: the synthetic data generators (repro.data)."""

from __future__ import annotations

import datetime as dt

from repro.data.geography import (
    LOUISIANA_OUTLINE,
    build_louisiana_map_table,
    outline_to_segments,
)
from repro.data.weather import (
    LOUISIANA_STATIONS,
    build_observations_table,
    build_stations_table,
    build_weather_database,
)
from repro.data.workloads import (
    build_pairs_tables,
    build_points_database,
    build_points_table,
)


class TestStations:
    def test_louisiana_stations_present(self):
        table = build_stations_table(extra_stations=10)
        la = [row for row in table if row["state"] == "LA"]
        assert len(la) == len(LOUISIANA_STATIONS)
        names = {row["name"] for row in la}
        assert "New Orleans" in names
        assert "Shreveport" in names

    def test_extra_stations_outside_louisiana(self):
        table = build_stations_table(extra_stations=25)
        others = [row for row in table if row["state"] != "LA"]
        assert len(others) == 25

    def test_station_ids_unique(self):
        table = build_stations_table(extra_stations=30)
        ids = [row["station_id"] for row in table]
        assert len(set(ids)) == len(ids)

    def test_deterministic_by_seed(self):
        a = build_stations_table(extra_stations=5, seed=1)
        b = build_stations_table(extra_stations=5, seed=1)
        assert a.snapshot() == b.snapshot()

    def test_coordinates_in_north_america(self):
        table = build_stations_table(extra_stations=40)
        for row in table:
            assert -125.0 <= row["longitude"] <= -67.0
            assert 25.0 <= row["latitude"] <= 50.0


class TestObservations:
    def test_series_spans_1990(self):
        stations = build_stations_table(extra_stations=0)
        obs = build_observations_table(stations, 1985, 1995, every_days=90)
        years = {row["obs_date"].year for row in obs}
        assert min(years) == 1985
        assert max(years) == 1995
        assert 1990 in years

    def test_every_station_observed(self):
        stations = build_stations_table(extra_stations=3)
        obs = build_observations_table(stations, 1990, 1990, every_days=120)
        observed = {row["station_id"] for row in obs}
        assert observed == {row["station_id"] for row in stations}

    def test_temperature_seasonal_structure(self):
        stations = build_stations_table(extra_stations=0)
        obs = build_observations_table(stations, 1990, 1990, every_days=7)
        new_orleans = [
            row for row in obs if row["station_id"] == 1
        ]
        july = [r["temperature"] for r in new_orleans
                if r["obs_date"].month == 7]
        january = [r["temperature"] for r in new_orleans
                   if r["obs_date"].month == 1]
        assert sum(july) / len(july) > sum(january) / len(january) + 15

    def test_precipitation_nonnegative(self):
        stations = build_stations_table(extra_stations=2)
        obs = build_observations_table(stations, 1990, 1991, every_days=60)
        assert all(row["precipitation"] >= 0.0 for row in obs)

    def test_heavy_rain_flagged(self):
        stations = build_stations_table(extra_stations=0)
        obs = build_observations_table(stations, 1988, 1992, every_days=30)
        for row in obs:
            if row["precipitation"] > 0.5:
                assert row["conditions"] == "rain"


class TestWeatherDatabase:
    def test_contains_all_tables(self):
        db = build_weather_database(extra_stations=5, every_days=120)
        assert db.has_table("Stations")
        assert db.has_table("Observations")
        assert db.has_table("LouisianaMap")

    def test_map_optional(self):
        db = build_weather_database(extra_stations=0, every_days=365,
                                    include_map=False)
        assert not db.has_table("LouisianaMap")


class TestGeography:
    def test_outline_closed(self):
        segments = outline_to_segments(LOUISIANA_OUTLINE)
        assert len(segments) == len(LOUISIANA_OUTLINE)
        # Walking every delta returns to the start.
        total_dlon = sum(s["dlon"] for s in segments)
        total_dlat = sum(s["dlat"] for s in segments)
        assert abs(total_dlon) < 1e-6
        assert abs(total_dlat) < 1e-6

    def test_map_table_schema(self):
        table = build_louisiana_map_table()
        assert table.schema.names == ("segment_id", "lon0", "lat0", "dlon",
                                      "dlat")
        assert len(table) == len(LOUISIANA_OUTLINE)

    def test_outline_in_louisiana_bounding_box(self):
        for lon, lat in LOUISIANA_OUTLINE:
            assert -94.1 <= lon <= -88.9
            assert 28.9 <= lat <= 33.1


class TestWorkloads:
    def test_points_table_size_and_bounds(self):
        table = build_points_table("P", 100, seed=1, spread=100.0)
        assert len(table) == 100
        for row in table:
            assert -50.0 <= row["x_pos"] <= 50.0
            assert -50.0 <= row["y_pos"] <= 50.0

    def test_points_deterministic(self):
        a = build_points_table("P", 50, seed=9)
        b = build_points_table("P", 50, seed=9)
        assert a.snapshot() == b.snapshot()

    def test_pairs_tables_referential(self):
        left, right = build_pairs_tables(20, 3, seed=2)
        keys = {row["key"] for row in left}
        assert len(right) == 60
        assert all(row["ref"] in keys for row in right)

    def test_points_database(self):
        db = build_points_database(10)
        assert len(db.table("Points")) == 10
