"""Unit tests: wormhole traversal, travel history, rear view mirrors."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.errors import ViewerError
from repro.viewer.rearview import RearViewMirror
from repro.viewer.viewer import Viewer
from repro.viewer.wormhole import (
    CanvasRegistry,
    TravelHistory,
    TravelRecord,
    WormholeNavigator,
)


def build_world(db):
    """Two canvases: 'origin' has wormholes to 'dest'; 'dest' has plain dots.

    The origin also carries an underside display (range < 0): return
    wormholes visible only in the rear view mirror (§6.3).
    """
    program = Program()

    src1 = program.add_box(AddTableBox(table="Stations"))
    x1 = program.add_box(SetAttributeBox(name="x", definition="longitude"))
    y1 = program.add_box(SetAttributeBox(name="y", definition="latitude"))
    hole = program.add_box(
        SetAttributeBox(
            name="display",
            definition="wormhole('dest', 40, 30, 50, longitude, latitude)",
        )
    )
    program.connect(src1, "out", x1, "in")
    program.connect(x1, "out", y1, "in")
    program.connect(y1, "out", hole, "in")

    # Underside overlay: same stations, visible only at negative elevation.
    src2 = program.add_box(AddTableBox(table="Stations"))
    x2 = program.add_box(SetAttributeBox(name="x", definition="longitude"))
    y2 = program.add_box(SetAttributeBox(name="y", definition="latitude"))
    back = program.add_box(
        SetAttributeBox(
            name="display",
            definition="wormhole('origin', 40, 30, 8, longitude, latitude)",
        )
    )
    program.connect(src2, "out", x2, "in")
    program.connect(x2, "out", y2, "in")
    program.connect(y2, "out", back, "in")

    from repro.dataflow.boxes_display import OverlayBox, SetRangeBox

    rng = program.add_box(SetRangeBox(minimum=-1e6, maximum=-1e-6))
    program.connect(back, "out", rng, "in")
    overlay = program.add_box(OverlayBox())
    program.connect(hole, "out", overlay, "base")
    program.connect(rng, "out", overlay, "top")

    dsrc = program.add_box(AddTableBox(table="Stations"))
    dx = program.add_box(SetAttributeBox(name="x", definition="longitude"))
    dy = program.add_box(SetAttributeBox(name="y", definition="latitude"))
    ddisp = program.add_box(
        SetAttributeBox(name="display", definition="filled_circle(2, 'red')")
    )
    program.connect(dsrc, "out", dx, "in")
    program.connect(dx, "out", dy, "in")
    program.connect(dy, "out", ddisp, "in")

    engine = Engine(program, db)
    registry = CanvasRegistry()
    origin = Viewer("origin", lambda: engine.output_of(overlay), 200, 160)
    dest = Viewer("dest", lambda: engine.output_of(ddisp), 200, 160)
    registry.register(origin)
    registry.register(dest)
    origin.pan_to(-90.07, 29.95)
    origin.set_elevation(3.0)
    navigator = WormholeNavigator(registry)
    navigator.set_current("origin")
    return navigator, origin, dest


class TestCanvasRegistry:
    def test_duplicate_name_rejected(self, stations_db):
        registry = CanvasRegistry()
        registry.register(Viewer("a", lambda: None))
        with pytest.raises(ViewerError, match="already exists"):
            registry.register(Viewer("a", lambda: None))

    def test_lookup_and_unregister(self, stations_db):
        registry = CanvasRegistry()
        viewer = Viewer("a", lambda: None)
        registry.register(viewer)
        assert registry.get("a") is viewer
        assert "a" in registry
        registry.unregister("a")
        with pytest.raises(ViewerError, match="no canvas"):
            registry.get("a")

    def test_register_installs_resolver(self, stations_db):
        registry = CanvasRegistry()
        viewer = Viewer("a", lambda: None)
        registry.register(viewer)
        assert viewer.resolver is not None


class TestTravelHistory:
    def test_stack_semantics(self):
        history = TravelHistory()
        assert history.peek() is None
        record = TravelRecord("a", "main", (0, 0), 10.0, None, "b")
        history.push(record)
        assert history.peek() is record
        assert len(history) == 1
        assert history.pop() is record
        with pytest.raises(ViewerError, match="empty"):
            history.pop()


class TestTraversal:
    def test_traverse_positions_destination(self, stations_db):
        navigator, origin, dest = build_world(stations_db)
        origin.render()
        wormholes = origin.visible_wormholes()
        assert wormholes
        target = wormholes[0]
        arrived = navigator.traverse(target)
        assert arrived is dest
        assert navigator.current_canvas == "dest"
        assert dest.view().elevation == 50.0
        # Landed at the wormhole's initial location (the station position).
        assert dest.view().center == (
            target.row["longitude"], target.row["latitude"]
        )

    def test_zoom_into_wormhole_by_screen_point(self, stations_db):
        navigator, origin, dest = build_world(stations_db)
        origin.render()
        item = origin.visible_wormholes()[0]
        cx = (item.bbox[0] + item.bbox[2]) / 2
        cy = (item.bbox[1] + item.bbox[3]) / 2
        arrived = navigator.zoom_into_wormhole(cx, cy)
        assert arrived.name == "dest"

    def test_zoom_into_empty_space_rejected(self, stations_db):
        navigator, origin, __ = build_world(stations_db)
        origin.render()
        with pytest.raises(ViewerError, match="no wormhole"):
            navigator.zoom_into_wormhole(1.0, 1.0)

    def test_non_wormhole_item_rejected(self, stations_db):
        navigator, origin, dest = build_world(stations_db)
        navigator.set_current("dest")
        dest.pan_to(-90.07, 29.95)
        dest.set_elevation(3.0)
        dest.render()
        item = dest.last_result.all_items()[0]  # a circle
        with pytest.raises(ViewerError, match="not a wormhole"):
            navigator.traverse(item)

    def test_go_back_restores_origin(self, stations_db):
        navigator, origin, dest = build_world(stations_db)
        origin.render()
        before_center = origin.view().center
        before_elevation = origin.view().elevation
        navigator.traverse(origin.visible_wormholes()[0])
        origin.pan_to(0.0, 0.0)  # wander on origin state; back restores it
        returned = navigator.go_back()
        assert returned is origin
        assert navigator.current_canvas == "origin"
        assert origin.view().center == before_center
        assert origin.view().elevation == before_elevation

    def test_descent_distance_grows_with_zoom(self, stations_db):
        navigator, origin, dest = build_world(stations_db)
        origin.render()
        navigator.traverse(origin.visible_wormholes()[0])
        assert navigator.descent_distance() == 0.0
        dest.set_elevation(20.0)
        assert navigator.descent_distance() == 30.0

    def test_chained_traversal_history(self, stations_db):
        navigator, origin, dest = build_world(stations_db)
        origin.render()
        navigator.traverse(origin.visible_wormholes()[0])
        assert len(navigator.history) == 1
        assert navigator.history.peek().origin_canvas == "origin"


class TestRearViewMirror:
    def test_blank_before_any_travel(self, stations_db):
        navigator, *_ = build_world(stations_db)
        mirror = RearViewMirror(navigator, 120, 90)
        assert not mirror.has_view()
        assert mirror.render().count_nonbackground() == 0

    def test_shows_underside_after_travel(self, stations_db):
        navigator, origin, dest = build_world(stations_db)
        origin.render()
        navigator.traverse(origin.visible_wormholes()[0])
        dest.set_elevation(25.0)  # descend below the origin canvas
        mirror = RearViewMirror(navigator, 200, 160)
        canvas = mirror.render()
        assert canvas.count_nonbackground() > 0
        # The underside shows the return wormholes — the way home (§6.3).
        assert mirror.visible_wormholes()

    def test_return_through_mirror_wormhole(self, stations_db):
        navigator, origin, dest = build_world(stations_db)
        origin.render()
        navigator.traverse(origin.visible_wormholes()[0])
        dest.set_elevation(25.0)
        mirror = RearViewMirror(navigator, 200, 160)
        mirror.render()
        home = navigator.traverse(mirror.visible_wormholes()[0])
        assert home.name == "origin"

    def test_topside_only_displays_hidden_from_mirror(self, stations_db):
        navigator, origin, dest = build_world(stations_db)
        origin.render()
        navigator.traverse(origin.visible_wormholes()[0])
        dest.set_elevation(25.0)
        mirror = RearViewMirror(navigator, 200, 160)
        mirror.render()
        # Only the underside relation is visible; the topside wormholes
        # (range [0, inf)) are not.
        names = {item.relation_name for item in mirror.last_items}
        assert len(names) == 1
