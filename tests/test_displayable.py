"""Unit tests: the R/C/G displayable algebra (display.displayable, §2)."""

from __future__ import annotations

import pytest

from repro.dbms.parser import parse_expression
from repro.dbms.relation import Method, RowSet
from repro.dbms.tuples import Schema
from repro.display.displayable import (
    Composite,
    DisplayableRelation,
    Group,
    ensure_composite,
    ensure_group,
)
from repro.display.elevation import ElevationRange
from repro.errors import DisplayError

SCHEMA = Schema([("name", "text"), ("lon", "float"), ("lat", "float"),
                 ("alt", "float")])


def make_relation(name="R", rows=None) -> DisplayableRelation:
    data = rows or [
        {"name": "a", "lon": 1.0, "lat": 2.0, "alt": 10.0},
        {"name": "b", "lon": 3.0, "lat": 4.0, "alt": 20.0},
    ]
    return DisplayableRelation(RowSet.from_dicts(SCHEMA, data), name=name)


def located(relation: DisplayableRelation) -> DisplayableRelation:
    relation = relation.with_method_added(
        Method("x", "float", parse_expression("lon"))
    )
    return relation.with_method_added(
        Method("y", "float", parse_expression("lat"))
    )


class TestDisplayableRelation:
    def test_default_location_is_sequence(self):
        relation = make_relation()
        views = list(relation.views())
        assert relation.location_of(views[0]) == (0.0, 0.0)
        assert relation.location_of(views[1]) == (0.0, 1.0)

    def test_custom_location(self):
        relation = located(make_relation())
        assert relation.has_custom_location
        assert relation.location_of(relation.view_at(1))[:2] == (3.0, 4.0)

    def test_default_display_lists_fields(self):
        relation = make_relation()
        drawables = relation.display_of(relation.view_at(0))
        assert len(drawables) == len(SCHEMA)
        assert all(d.kind == "text" for d in drawables)

    def test_dimension_counts_sliders(self):
        relation = located(make_relation()).with_slider_added("alt")
        assert relation.dimension == 3
        assert relation.location_attrs == ("x", "y", "alt")
        assert relation.location_of(relation.view_at(0)) == (1.0, 2.0, 10.0)

    def test_slider_must_be_numeric(self):
        with pytest.raises(DisplayError, match="numeric"):
            make_relation().with_slider_added("name")

    def test_slider_must_exist(self):
        with pytest.raises(DisplayError):
            make_relation().with_slider_added("ghost")

    def test_duplicate_slider_rejected(self):
        relation = make_relation().with_slider_added("alt")
        with pytest.raises(DisplayError, match="already"):
            relation.with_slider_added("alt")

    def test_reserved_slider_names_rejected(self):
        relation = located(make_relation())
        with pytest.raises(DisplayError):
            relation.with_slider_dims(["x"])

    def test_display_must_be_drawables_type(self):
        with pytest.raises(DisplayError, match="display"):
            make_relation().with_method_added(
                Method("display", "int", parse_expression("1"))
            )

    def test_location_must_be_numeric(self):
        with pytest.raises(DisplayError, match="numeric"):
            make_relation().with_method_added(
                Method("x", "text", parse_expression("name"))
            )

    def test_alternate_displays_listed(self):
        relation = make_relation().with_method_added(
            Method("display", "drawables", parse_expression("circle(1)"))
        ).with_method_added(
            Method("alt_view", "drawables", parse_expression("point()"))
        )
        assert relation.alternate_displays() == ("alt_view",)

    def test_with_range(self):
        relation = make_relation().with_range(-5.0, 5.0)
        assert relation.elevation_range == ElevationRange(-5.0, 5.0)

    def test_with_rows_rebases_methods(self):
        relation = located(make_relation())
        fewer = RowSet.from_dicts(SCHEMA, [
            {"name": "z", "lon": 9.0, "lat": 9.0, "alt": 1.0},
        ])
        updated = relation.with_rows(fewer)
        assert len(updated) == 1
        assert updated.location_of(updated.view_at(0))[:2] == (9.0, 9.0)

    def test_copy_on_write_isolation(self):
        base = make_relation()
        derived = base.with_name("other").with_range(0, 1)
        assert base.name == "R"
        assert base.elevation_range.maximum == float("inf")
        assert derived.name == "other"


class TestComposite:
    def test_drawing_order_is_list_order(self):
        composite = Composite([make_relation("a"), make_relation("b")])
        assert composite.component_names() == ["a", "b"]

    def test_name_collision_suffixed(self):
        composite = Composite([make_relation("a"), make_relation("a")])
        assert composite.component_names() == ["a", "a_2"]

    def test_overlay_merges_offsets(self):
        base = Composite([make_relation("a")])
        top = Composite([make_relation("b")])
        merged = base.overlay(top, offset={"x": 2.0})
        assert merged.component_names() == ["a", "b"]
        assert merged.entries[1].offset_for("x") == 2.0
        # Original untouched.
        assert len(base) == 1

    def test_shuffle_to_top(self):
        composite = Composite([make_relation("a"), make_relation("b"),
                               make_relation("c")])
        composite.shuffle_to_top("a")
        assert composite.component_names() == ["b", "c", "a"]

    def test_move_to_order(self):
        composite = Composite([make_relation("a"), make_relation("b"),
                               make_relation("c")])
        composite.move_to_order("c", 0)
        assert composite.component_names() == ["c", "a", "b"]
        with pytest.raises(DisplayError):
            composite.move_to_order("a", 9)

    def test_dimension_is_max(self):
        flat = make_relation("flat")
        tall = located(make_relation("tall")).with_slider_added("alt")
        composite = Composite([flat, tall])
        assert composite.dimension == 3
        assert composite.slider_dims == ("alt",)
        assert composite.warnings  # mismatch recorded

    def test_replace_component_preserves_offset(self):
        composite = Composite([make_relation("a")])
        composite.entries[0].offset["x"] = 7.0
        replaced = composite.replace_component("a", make_relation("a"))
        assert replaced.entries[0].offset_for("x") == 7.0

    def test_set_component_range(self):
        composite = Composite([make_relation("a")])
        composite.set_component_range("a", 0, 10)
        assert composite.entries[0].relation.elevation_range.maximum == 10

    def test_unknown_component(self):
        composite = Composite([make_relation("a")])
        with pytest.raises(DisplayError, match="no component"):
            composite.entry_named("zzz")


class TestGroup:
    def test_layouts(self):
        composites = [("a", ensure_composite(make_relation("a"))),
                      ("b", ensure_composite(make_relation("b")))]
        horizontal = Group(composites, layout="horizontal")
        assert horizontal.grid_shape() == (1, 2)
        vertical = Group(composites, layout="vertical")
        assert vertical.grid_shape() == (2, 1)
        tabular = Group(composites, layout="tabular", table_shape=(2, 1))
        assert tabular.grid_shape() == (2, 1)

    def test_tabular_requires_shape(self):
        with pytest.raises(DisplayError, match="table_shape"):
            Group([("a", ensure_composite(make_relation()))], layout="tabular")

    def test_bad_layout(self):
        with pytest.raises(DisplayError):
            Group([], layout="diagonal")

    def test_duplicate_member_rejected(self):
        group = Group([("a", ensure_composite(make_relation()))])
        with pytest.raises(DisplayError, match="already has"):
            group.add_member("a", make_relation())

    def test_member_lookup(self):
        group = Group([("a", ensure_composite(make_relation("inner")))])
        assert group.member("a").component_names() == ["inner"]
        with pytest.raises(DisplayError):
            group.member("z")

    def test_replace_member(self):
        group = Group([("a", ensure_composite(make_relation("one")))])
        replacement = ensure_composite(make_relation("two"))
        updated = group.replace_member("a", replacement)
        assert updated.member("a").component_names() == ["two"]
        assert group.member("a").component_names() == ["one"]


class TestCoercions:
    def test_relation_is_composite(self):
        composite = ensure_composite(make_relation("r"))
        assert isinstance(composite, Composite)
        assert composite.component_names() == ["r"]

    def test_composite_passthrough(self):
        composite = Composite([make_relation()])
        assert ensure_composite(composite) is composite

    def test_composite_is_group(self):
        group = ensure_group(Composite([make_relation()]), "main")
        assert isinstance(group, Group)
        assert group.member_names() == ["main"]

    def test_relation_is_group(self):
        group = ensure_group(make_relation("r"))
        assert group.member("view").component_names() == ["r"]

    def test_group_passthrough(self):
        group = Group([("a", ensure_composite(make_relation()))])
        assert ensure_group(group) is group

    def test_bad_coercion(self):
        with pytest.raises(DisplayError):
            ensure_composite("not a displayable")
