"""Unit + property tests: the vectorized scatter fast path must be an
invisible optimization — same pixels, items, and statistics as the general
tuple-wise path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.render.scene as scene
from repro.data.workloads import build_points_table
from repro.dbms.parser import parse_expression
from repro.dbms.relation import Method
from repro.display.defaults import default_displayable
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite


def scatter_relation(count=200, seed=5, display="filled_circle(2, 'blue')",
                     with_slider=True):
    table = build_points_table("Points", count, seed=seed, spread=400.0)
    relation = default_displayable(table)
    relation = relation.with_method_added(
        Method("x", "float", parse_expression("x_pos"))
    )
    relation = relation.with_method_added(
        Method("y", "float", parse_expression("y_pos"))
    )
    relation = relation.with_method_added(
        Method("display", "drawables", parse_expression(display))
    )
    if with_slider:
        relation = relation.with_slider_added("value")
    return relation


def render_both(relation, view):
    """Render with the fast path and with it disabled; return both results."""
    fast_canvas = Canvas(*view.viewport)
    fast_stats = SceneStats()
    fast_items = render_composite(fast_canvas, relation, view,
                                  stats=fast_stats)

    original = scene._try_fast_scatter
    scene._try_fast_scatter = lambda *a, **k: None
    try:
        slow_canvas = Canvas(*view.viewport)
        slow_stats = SceneStats()
        slow_items = render_composite(slow_canvas, relation, view,
                                      stats=slow_stats)
    finally:
        scene._try_fast_scatter = original
    return (fast_canvas, fast_stats, fast_items), (slow_canvas, slow_stats,
                                                   slow_items)


class TestEquivalence:
    VIEW = ViewState(center=(0.0, 0.0), elevation=150.0, viewport=(200, 160))

    def test_pixels_identical(self):
        relation = scatter_relation()
        (fast, __, __i), (slow, __s, __si) = render_both(relation, self.VIEW)
        assert np.array_equal(fast.pixels, slow.pixels)

    def test_items_identical(self):
        relation = scatter_relation()
        (__, __, fast_items), (__c, __s, slow_items) = render_both(
            relation, self.VIEW
        )
        assert len(fast_items) == len(slow_items)
        for fast, slow in zip(fast_items, slow_items):
            assert fast.bbox == slow.bbox
            assert fast.row == slow.row
            assert fast.tuple_index == slow.tuple_index
            assert fast.drawable_kind == slow.drawable_kind

    def test_stats_identical(self):
        relation = scatter_relation()
        view = ViewState(center=(0.0, 0.0), elevation=150.0,
                         viewport=(200, 160),
                         slider_ranges={"value": (0.0, 50.0)})
        (__, fast_stats, __i), (__c, slow_stats, __si) = render_both(
            relation, view
        )
        for field in ("tuples_considered", "tuples_rendered",
                      "culled_by_slider", "culled_by_viewport",
                      "drawables_painted"):
            assert getattr(fast_stats, field) == getattr(slow_stats, field), field

    @given(
        center_x=st.floats(-300, 300), center_y=st.floats(-300, 300),
        elevation=st.floats(min_value=10.0, max_value=2000.0),
        low=st.floats(0.0, 50.0), high=st.floats(50.0, 100.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence(self, center_x, center_y, elevation,
                                  low, high):
        relation = scatter_relation(count=120, seed=9)
        view = ViewState(center=(center_x, center_y), elevation=elevation,
                         viewport=(120, 96),
                         slider_ranges={"value": (low, high)})
        (fast, fast_stats, __), (slow, slow_stats, __s) = render_both(
            relation, view
        )
        assert np.array_equal(fast.pixels, slow.pixels)
        assert fast_stats.tuples_rendered == slow_stats.tuples_rendered


class TestApplicability:
    VIEW = ViewState(center=(0.0, 0.0), elevation=150.0, viewport=(120, 96))

    def run_fast(self, relation, view=None):
        from repro.display.displayable import Composite

        entry = Composite([relation]).entries[0]
        return scene._try_fast_scatter(
            Canvas(120, 96), entry, view or self.VIEW, None, 0, SceneStats()
        )

    def test_applies_to_fieldref_scatter(self):
        assert self.run_fast(scatter_relation()) is not None

    def test_small_relations_fall_back(self):
        assert self.run_fast(scatter_relation(count=10)) is None

    def test_computed_location_falls_back(self):
        relation = scatter_relation()
        relation = relation.with_method_replaced(
            Method("x", "float", parse_expression("x_pos * 2"))
        )
        assert self.run_fast(relation) is None

    def test_tuple_dependent_display_falls_back(self):
        relation = scatter_relation(
            display="filled_circle(max(value / 20, 1.0))"
        )
        assert self.run_fast(relation) is None

    def test_default_display_falls_back(self):
        table = build_points_table("Points", 100, seed=2)
        relation = default_displayable(table)
        assert self.run_fast(relation) is None

    def test_fast_path_is_faster_on_deep_zoom(self):
        import time

        relation = scatter_relation(count=20_000, seed=4)
        view = ViewState(center=(0.0, 0.0), elevation=20.0,
                         viewport=(160, 120))

        start = time.perf_counter()
        render_composite(Canvas(160, 120), relation, view)
        fast_elapsed = time.perf_counter() - start

        original = scene._try_fast_scatter
        original_plan = scene._try_plan_cull
        scene._try_fast_scatter = lambda *a, **k: None
        scene._try_plan_cull = lambda *a, **k: None
        try:
            start = time.perf_counter()
            render_composite(Canvas(160, 120), relation, view)
            slow_elapsed = time.perf_counter() - start
        finally:
            scene._try_fast_scatter = original
            scene._try_plan_cull = original_plan
        assert fast_elapsed < slow_elapsed
