"""Unit tests: relational algebra (repro.dbms.algebra)."""

from __future__ import annotations

import pytest

from repro.dbms import algebra
from repro.dbms.parser import parse_predicate
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema
from repro.errors import EvaluationError, SchemaError, TypeCheckError

PEOPLE = Schema([("pid", "int"), ("name", "text"), ("age", "int"), ("city", "text")])
ORDERS = Schema([("oid", "int"), ("pid", "int"), ("total", "float")])


@pytest.fixture()
def people() -> RowSet:
    return RowSet.from_dicts(
        PEOPLE,
        [
            {"pid": 1, "name": "ada", "age": 36, "city": "NO"},
            {"pid": 2, "name": "bob", "age": 25, "city": "BR"},
            {"pid": 3, "name": "cat", "age": 36, "city": "NO"},
            {"pid": 4, "name": "dan", "age": 52, "city": "SH"},
        ],
    )


@pytest.fixture()
def orders() -> RowSet:
    return RowSet.from_dicts(
        ORDERS,
        [
            {"oid": 10, "pid": 1, "total": 5.0},
            {"oid": 11, "pid": 1, "total": 7.5},
            {"oid": 12, "pid": 3, "total": 2.0},
            {"oid": 13, "pid": 9, "total": 9.0},
        ],
    )


class TestProject:
    def test_keeps_order_given(self, people):
        result = algebra.project(people, ["age", "name"])
        assert result.schema.names == ("age", "name")
        assert result[0]["age"] == 36

    def test_duplicates_preserved(self, people):
        result = algebra.project(people, ["city"])
        assert len(result) == 4  # bag semantics

    def test_empty_field_list_rejected(self, people):
        with pytest.raises(SchemaError):
            algebra.project(people, [])

    def test_unknown_field_rejected(self, people):
        with pytest.raises(SchemaError):
            algebra.project(people, ["ghost"])


class TestRestrict:
    def test_predicate_filtering(self, people):
        result = algebra.restrict_predicate(people, "age = 36")
        assert [row["name"] for row in result] == ["ada", "cat"]

    def test_compound_predicate(self, people):
        result = algebra.restrict_predicate(people, "age > 30 and city = 'NO'")
        assert len(result) == 2

    def test_non_bool_predicate_rejected(self, people):
        with pytest.raises(TypeCheckError):
            algebra.restrict(people, parse_predicate("age = 36", PEOPLE).left)

    def test_empty_result(self, people):
        assert len(algebra.restrict_predicate(people, "age > 100")) == 0


class TestSample:
    def test_probability_bounds(self, people):
        with pytest.raises(EvaluationError):
            algebra.sample(people, 1.5)
        with pytest.raises(EvaluationError):
            algebra.sample(people, -0.1)

    def test_extremes(self, people):
        assert len(algebra.sample(people, 0.0, seed=1)) == 0
        assert len(algebra.sample(people, 1.0, seed=1)) == 4

    def test_seed_reproducible(self, people):
        a = algebra.sample(people, 0.5, seed=42)
        b = algebra.sample(people, 0.5, seed=42)
        assert a == b

    def test_sample_is_subset(self, people):
        sampled = algebra.sample(people, 0.5, seed=7)
        originals = set(people.rows)
        assert all(row in originals for row in sampled)


class TestJoin:
    def test_hash_equals_nested_loop(self, people, orders):
        by_hash = algebra.join_hash(people, orders, "pid", "pid")
        by_loop = algebra.join_nested_loop(people, orders, "pid", "pid")
        assert sorted(map(repr, by_hash)) == sorted(map(repr, by_loop))

    def test_join_row_count(self, people, orders):
        result = algebra.join_hash(people, orders, "pid", "pid")
        assert len(result) == 3  # pid 9 dangles, pid 1 matches twice

    def test_collision_renaming(self, people, orders):
        result = algebra.join_hash(people, orders, "pid", "pid")
        assert "right_pid" in result.schema
        assert result[0]["pid"] == result[0]["right_pid"]

    def test_theta_join(self, people, orders):
        result = algebra.join_theta(
            people, orders, "pid = right_pid and total > 4.0"
        )
        assert len(result) == 2

    def test_incompatible_key_types_rejected(self, people, orders):
        with pytest.raises(TypeCheckError):
            algebra.join_hash(people, orders, "name", "pid")

    def test_strategy_dispatch(self, people, orders):
        assert len(algebra.join(people, orders, "pid", "pid", "hash")) == 3
        assert len(algebra.join(people, orders, "pid", "pid", "nested_loop")) == 3
        with pytest.raises(EvaluationError):
            algebra.join(people, orders, "pid", "pid", "merge")

    def test_cross_product(self, people, orders):
        assert len(algebra.cross_product(people, orders)) == 16


class TestOrderDistinctLimitUnion:
    def test_order_by(self, people):
        result = algebra.order_by(people, ["age", "name"])
        assert [r["name"] for r in result] == ["bob", "ada", "cat", "dan"]

    def test_order_by_descending(self, people):
        result = algebra.order_by(people, ["age"], descending=True)
        assert result[0]["name"] == "dan"

    def test_order_by_unknown_field(self, people):
        with pytest.raises(SchemaError):
            algebra.order_by(people, ["ghost"])

    def test_distinct(self, people):
        cities = algebra.distinct(algebra.project(people, ["city"]))
        assert len(cities) == 3

    def test_limit(self, people):
        assert len(algebra.limit(people, 2)) == 2
        assert len(algebra.limit(people, 100)) == 4
        with pytest.raises(EvaluationError):
            algebra.limit(people, -1)

    def test_union(self, people):
        doubled = algebra.union(people, people)
        assert len(doubled) == 8

    def test_union_schema_mismatch(self, people, orders):
        with pytest.raises(SchemaError):
            algebra.union(people, orders)

    def test_rename(self, people):
        renamed = algebra.rename(people, "age", "years")
        assert "years" in renamed.schema
        assert renamed[0]["years"] == 36


class TestGroupBy:
    def test_count_and_sum(self, orders):
        result = algebra.group_by(
            orders, ["pid"], [("count", "oid", "n"), ("sum", "total", "spend")]
        )
        by_pid = {row["pid"]: row for row in result}
        assert by_pid[1]["n"] == 2
        assert by_pid[1]["spend"] == 12.5

    def test_avg_min_max(self, orders):
        result = algebra.group_by(
            orders,
            ["pid"],
            [("avg", "total", "mean"), ("min", "total", "lo"),
             ("max", "total", "hi")],
        )
        by_pid = {row["pid"]: row for row in result}
        assert by_pid[1]["mean"] == 6.25
        assert by_pid[1]["lo"] == 5.0
        assert by_pid[1]["hi"] == 7.5

    def test_multi_key_grouping(self, people):
        result = algebra.group_by(
            people, ["city", "age"], [("count", "pid", "n")]
        )
        assert len(result) == 3

    def test_unknown_aggregate(self, orders):
        with pytest.raises(EvaluationError, match="unknown aggregate"):
            algebra.group_by(orders, ["pid"], [("median", "total", "m")])

    def test_sum_of_text_rejected(self, people):
        with pytest.raises(TypeCheckError):
            algebra.group_by(people, ["city"], [("sum", "name", "s")])

    def test_result_types(self, orders):
        result = algebra.group_by(
            orders, ["pid"], [("count", "oid", "n"), ("avg", "total", "mean")]
        )
        assert result.schema.type_of("n").name == "int"
        assert result.schema.type_of("mean").name == "float"
