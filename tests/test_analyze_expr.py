"""Expression typechecking (repro.analyze.exprcheck) and structured parser
errors: every diagnostic carries enough location to point at the defect."""

from __future__ import annotations

import pytest

from repro.analyze.exprcheck import (
    analyze_expression,
    check_expression,
    types_compatible,
)
from repro.dbms import types as T
from repro.dbms.parser import parse_expression, parse_predicate
from repro.dbms.tuples import Schema
from repro.errors import ExpressionError

STATIONS = Schema(
    [
        ("station_id", "int"),
        ("name", "text"),
        ("altitude", "float"),
    ]
)


class TestAnalyzeExpression:
    def test_well_typed_predicate(self):
        expr, inferred, diags = analyze_expression(
            "altitude > 10.0", STATIONS, expect_bool=True
        )
        assert expr is not None
        assert inferred is T.BOOL
        assert diags == []

    def test_syntax_error_carries_position(self):
        expr, inferred, diags = analyze_expression("altitude > ", STATIONS)
        assert expr is None and inferred is None
        assert [d.code for d in diags] == ["T2-E106"]
        diag = diags[0]
        assert diag.source == "altitude > "
        assert diag.pos is not None and diag.pos >= 0

    def test_illegal_character_carries_token(self):
        _, _, diags = analyze_expression("altitude @ 2", STATIONS)
        assert diags and diags[0].code == "T2-E106"
        assert diags[0].token == "@"

    def test_unknown_attribute_lists_known_names(self):
        _, _, diags = analyze_expression("wind > 1", STATIONS)
        assert [d.code for d in diags] == ["T2-E105"]
        assert "wind" in diags[0].message
        assert "altitude" in diags[0].message  # available names shown

    def test_each_unknown_attribute_reported_once(self):
        _, _, diags = analyze_expression("wind + wind + gusts", STATIONS)
        codes = [d.code for d in diags]
        assert codes.count("T2-E105") == 2  # wind, gusts — not three

    def test_type_error(self):
        _, _, diags = analyze_expression("name + 1", STATIONS)
        assert [d.code for d in diags] == ["T2-E107"]

    def test_non_bool_when_bool_expected(self):
        expr, inferred, diags = analyze_expression(
            "altitude + 1.0", STATIONS, expect_bool=True
        )
        assert [d.code for d in diags] == ["T2-E107"]
        assert "boolean" in diags[0].message

    def test_declared_type_mismatch(self):
        _, _, diags = analyze_expression(
            "name", STATIONS, declared=T.FLOAT
        )
        assert [d.code for d in diags] == ["T2-E107"]

    def test_declared_type_numeric_widening_ok(self):
        _, inferred, diags = analyze_expression(
            "station_id", STATIONS, declared=T.FLOAT
        )
        assert diags == []
        assert inferred is T.INT

    def test_what_label_appears_in_messages(self):
        _, _, diags = analyze_expression(
            "wind > 1", STATIONS, what="Restrict predicate"
        )
        assert diags[0].message.startswith("Restrict predicate")

    def test_check_expression_wrapper(self):
        inferred, diags = check_expression("altitude * 2", STATIONS)
        assert inferred is T.FLOAT and diags == []


class TestTypesCompatible:
    def test_identity(self):
        assert types_compatible(T.TEXT, T.TEXT)

    def test_numeric_widening(self):
        assert types_compatible(T.INT, T.FLOAT)
        assert types_compatible(T.FLOAT, T.INT)

    def test_incompatible(self):
        assert not types_compatible(T.TEXT, T.INT)
        assert not types_compatible(T.BOOL, T.FLOAT)


class TestParserStructuredErrors:
    """Satellite: every parser raise site records (source, pos, token)."""

    def assert_located(self, err: ExpressionError, source: str):
        assert err.source == source
        assert err.pos is not None and 0 <= err.pos <= len(source)
        assert err.token is not None

    def test_unterminated_string(self):
        source = "name = 'unfinished"
        with pytest.raises(ExpressionError) as exc:
            parse_expression(source)
        self.assert_located(exc.value, source)
        assert exc.value.token == "'"

    def test_illegal_character(self):
        source = "altitude # 2"
        with pytest.raises(ExpressionError) as exc:
            parse_expression(source)
        self.assert_located(exc.value, source)
        assert exc.value.token == "#"
        assert exc.value.pos == source.index("#")

    def test_unbalanced_parens(self):
        source = "(altitude + 1"
        with pytest.raises(ExpressionError) as exc:
            parse_expression(source)
        assert exc.value.source == source
        assert exc.value.pos is not None

    def test_trailing_garbage(self):
        source = "altitude + 1 name"
        with pytest.raises(ExpressionError) as exc:
            parse_expression(source)
        self.assert_located(exc.value, source)
        assert exc.value.token == "name"
        assert exc.value.pos == source.index("name")

    def test_unexpected_token_in_primary(self):
        source = "altitude + *"
        with pytest.raises(ExpressionError) as exc:
            parse_expression(source)
        self.assert_located(exc.value, source)

    def test_non_boolean_predicate_carries_source(self):
        source = "altitude + 1.0"
        with pytest.raises(ExpressionError) as exc:
            parse_predicate(source, STATIONS)
        assert exc.value.source == source

    def test_good_expressions_unaffected(self):
        expr = parse_expression("altitude * 2 + station_id")
        assert expr.infer(STATIONS) is T.FLOAT


class TestPositionThroughConditionals:
    """Position propagation: a defect inside a nested conditional branch is
    blamed at the offending token, not at the leading ``if``."""

    def test_ill_typed_then_branch_blamed_inside(self):
        source = "if altitude > 1.0 then name + 1 else 0"
        _, _, diags = analyze_expression(source, STATIONS)
        assert [d.code for d in diags] == ["T2-E107"]
        diag = diags[0]
        assert diag.token == "+"
        assert diag.pos == source.index("name + 1") + len("name ")

    def test_nested_conditional_blames_innermost(self):
        source = (
            "if altitude > 1.0 then "
            "(if station_id > 2 then name + 1 else 3) else 0"
        )
        _, _, diags = analyze_expression(source, STATIONS)
        assert [d.code for d in diags] == ["T2-E107"]
        # The blamed position is the inner "+", past the outer "then".
        assert diags[0].pos > source.index("(")
        assert source[diags[0].pos] == "+"

    def test_ill_typed_else_branch_blamed_inside(self):
        source = "if altitude > 1.0 then 1 else name * 2"
        _, _, diags = analyze_expression(source, STATIONS)
        assert [d.code for d in diags] == ["T2-E107"]
        assert diags[0].token == "*"
        assert source[diags[0].pos] == "*"

    def test_unknown_field_in_branch_points_at_reference(self):
        source = "if altitude > 1.0 then wind else 0.0"
        _, _, diags = analyze_expression(source, STATIONS)
        assert [d.code for d in diags] == ["T2-E105"]
        assert diags[0].token == "wind"
        assert diags[0].pos == source.index("wind")

    def test_condition_defect_blamed_in_condition(self):
        source = "if name > 1 then 1 else 0"
        _, _, diags = analyze_expression(source, STATIONS)
        assert [d.code for d in diags] == ["T2-E107"]
        assert diags[0].pos is not None
        assert diags[0].pos < source.index("then")
