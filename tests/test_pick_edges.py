"""Edge-case tests: Viewer.pick / Session.pick (§8 click resolution).

The cases the happy-path picking tests skip: stacked marks (z-order),
pixels outside the viewport, and picks aimed at regions whose marks were
culled away (viewport pan, slider ranges).
"""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import AddAttributeBox, SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.errors import UIError
from repro.viewer.viewer import Viewer


def map_viewer(db, width=200, height=160) -> Viewer:
    program = Program()
    src = program.add_box(AddTableBox(table="Stations"))
    sx = program.add_box(SetAttributeBox(name="x", definition="longitude"))
    sy = program.add_box(SetAttributeBox(name="y", definition="latitude"))
    disp = program.add_box(
        SetAttributeBox(name="display", definition="filled_circle(2, 'blue')")
    )
    alt = program.add_box(
        AddAttributeBox(name="alt", definition="altitude", location=True)
    )
    program.connect(src, "out", sx, "in")
    program.connect(sx, "out", sy, "in")
    program.connect(sy, "out", disp, "in")
    program.connect(disp, "out", alt, "in")
    engine = Engine(program, db)
    viewer = Viewer("map", lambda: engine.output_of(alt), width, height)
    viewer.pan_to(-91.8, 31.0)
    viewer.set_elevation(8.0)
    return viewer


def center(item):
    x0, y0, x1, y1 = item.bbox
    return (x0 + x1) / 2, (y0 + y1) / 2


class TestZOrder:
    def test_overlapping_marks_resolve_to_topmost(self, stations_db):
        # Two stations at the same coordinates: the later-painted mark
        # paints on top, and pick must agree with the paint order.
        stations_db.table("Stations").insert_many([
            {"station_id": 8, "name": "Under", "state": "LA",
             "longitude": -90.50, "latitude": 30.10, "altitude": 5.0},
            {"station_id": 9, "name": "Over", "state": "LA",
             "longitude": -90.50, "latitude": 30.10, "altitude": 5.0},
        ])
        viewer = map_viewer(stations_db)
        result = viewer.render()
        stacked = [item for item in result.all_items()
                   if item.row["name"] in ("Under", "Over")]
        assert len(stacked) == 2
        assert stacked[0].bbox == stacked[1].bbox
        hit = viewer.pick(*center(stacked[0]))
        assert hit is stacked[-1]
        assert hit.row["name"] == stacked[-1].row["name"]

    def test_partial_overlap_picks_top_only_in_the_overlap(self, stations_db):
        # Offset the twin by one pixel: inside the overlap the top mark
        # wins, in the bottom mark's exposed sliver the bottom mark wins.
        stations_db.table("Stations").insert_many([
            {"station_id": 8, "name": "Under", "state": "LA",
             "longitude": -90.50, "latitude": 30.10, "altitude": 5.0},
        ])
        viewer = map_viewer(stations_db)
        result = viewer.render()
        items = result.all_items()
        under = next(i for i in items if i.row["name"] == "Under")
        cx, cy = center(under)
        hit = viewer.pick(cx, cy)
        assert hit.row["name"] == "Under"


class TestOutsideViewport:
    @pytest.mark.parametrize("px,py", [
        (-10.0, 80.0),      # left of the frame
        (210.0, 80.0),      # right of the frame
        (100.0, -10.0),     # above
        (100.0, 170.0),     # below
        (-1e9, -1e9),       # far outside
    ])
    def test_pick_outside_the_frame_misses(self, stations_db, px, py):
        viewer = map_viewer(stations_db)
        viewer.render()
        assert viewer.pick(px, py) is None

    def test_corner_pixels_without_marks_miss(self, stations_db):
        viewer = map_viewer(stations_db)
        viewer.render()
        for corner in [(0.0, 0.0), (199.0, 0.0), (0.0, 159.0),
                       (199.0, 159.0)]:
            assert viewer.pick(*corner) is None


class TestCulledRegions:
    def test_pick_misses_viewport_culled_marks(self, stations_db):
        viewer = map_viewer(stations_db)
        item = viewer.render().all_items()[0]
        cx, cy = center(item)
        assert viewer.pick(cx, cy) is not None
        # Pan the frame to empty ocean: every station is culled, so the
        # same pixel no longer hits anything.
        viewer.pan_to(-40.0, 31.0)
        assert viewer.render().all_items() == []
        assert viewer.pick(cx, cy) is None
        # Pan back: the mark (and the pick) come back.
        viewer.pan_to(-91.8, 31.0)
        viewer.render()
        assert viewer.pick(cx, cy) is not None

    def test_pick_misses_slider_culled_marks(self, stations_db):
        viewer = map_viewer(stations_db)
        result = viewer.render()
        shreveport = next(i for i in result.all_items()
                          if i.row["name"] == "Shreveport")   # altitude 141
        cx, cy = center(shreveport)
        assert viewer.pick(cx, cy) is not None
        viewer.set_slider("alt", 0.0, 100.0)
        viewer.render()
        assert viewer.pick(cx, cy) is None

    def test_pick_uses_the_last_render(self, stations_db):
        # pick() resolves against last_result: marks culled since the last
        # render still hit until a re-render refreshes the frame.
        viewer = map_viewer(stations_db)
        item = viewer.render().all_items()[0]
        cx, cy = center(item)
        viewer.set_slider("alt", 1000.0, 2000.0)    # would cull everything
        assert viewer.pick(cx, cy) is not None      # stale frame still hit
        viewer.render()
        assert viewer.pick(cx, cy) is None


class TestSessionPick:
    def _map_window(self, session):
        stations = session.add_table("Stations")
        sx = session.add_box(
            "SetAttribute", {"name": "x", "definition": "longitude"})
        session.connect(stations, "out", sx, "in")
        sy = session.add_box(
            "SetAttribute", {"name": "y", "definition": "latitude"})
        session.connect(sx, "out", sy, "in")
        disp = session.add_box(
            "SetAttribute",
            {"name": "display", "definition": "filled_circle(3, 'blue')"},
        )
        session.connect(sy, "out", disp, "in")
        window = session.add_viewer(disp, name="map", width=200, height=160)
        window.viewer.pan_to(-91.8, 31.0)
        window.viewer.set_elevation(8.0)
        return window

    def test_session_pick_hits_and_misses(self, stations_session):
        window = self._map_window(stations_session)
        item = window.viewer.render().all_items()[0]
        hit = stations_session.pick("map", *center(item))
        assert hit is not None and hit.row == item.row
        assert stations_session.pick("map", -5.0, -5.0) is None

    def test_session_pick_unknown_canvas_rejected(self, stations_session):
        self._map_window(stations_session)
        with pytest.raises(UIError):
            stations_session.pick("ghost", 10.0, 10.0)
