"""Unit tests: morsel-parallel plan execution (repro.dbms.plan_parallel).

Parallelized plans must be *indistinguishable* from serial ones to every
consumer: same rows, same order, same EXPLAIN counters, same degradation
notes.  These tests execute each shape both ways and compare.
"""

from __future__ import annotations

import pytest

from repro.dbms import plan as P
from repro.dbms.plan_parallel import (
    ParallelConfig,
    parallelize_plan,
    plan_fingerprint,
)
from repro.dbms.parser import parse_predicate
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema

NUMS = Schema([("n", "int"), ("label", "text")])

# Small morsels so even modest inputs split into many partitions.
CONFIG = ParallelConfig(workers=4, cache=True, morsel_size=64)


def num_rows(count: int) -> RowSet:
    return RowSet.from_dicts(
        NUMS, [{"n": i, "label": f"row{i}"} for i in range(count)]
    )


def restrict(child: P.PlanNode, source: str) -> P.RestrictNode:
    return P.RestrictNode(child, parse_predicate(source, child.schema))


def chain(rows: RowSet) -> P.PlanNode:
    return P.ProjectNode(restrict(P.ScanNode(rows), "n % 3 != 0"), ["n"])


class TestParallelMap:
    def test_chain_rows_and_order_match_serial(self):
        rows = num_rows(1000)
        serial = chain(rows).execute()
        root, log = parallelize_plan(chain(rows), CONFIG)
        assert any("parallel" in line for line in log)
        assert isinstance(root, P.PlanNode)
        assert root.describe().startswith("ParallelMap")
        assert tuple(root.execute()) == tuple(serial)

    def test_template_stats_fold_to_serial_counters(self):
        rows = num_rows(1000)
        serial_root = chain(rows)
        serial_root.execute()
        parallel_root, __ = parallelize_plan(chain(rows), CONFIG)
        parallel_root.execute()
        # The serial template hangs under the ParallelMap node; its folded
        # counters must equal a plain serial execution's.
        template = parallel_root.children[0]
        assert template.label == serial_root.label
        assert template.stats.rows_in == serial_root.stats.rows_in
        assert template.stats.rows_out == serial_root.stats.rows_out
        child = template.children[0]
        assert child.stats.rows_out == serial_root.children[0].stats.rows_out

    def test_seeded_sample_draws_identically(self):
        rows = num_rows(2000)
        serial = P.SampleNode(P.ScanNode(rows), 0.4, seed=11).execute()
        root, __ = parallelize_plan(
            P.SampleNode(P.ScanNode(rows), 0.4, seed=11), CONFIG
        )
        assert tuple(root.execute()) == tuple(serial)

    def test_unseeded_sample_stays_serial(self):
        rows = num_rows(500)
        plan = P.ProjectNode(P.SampleNode(P.ScanNode(rows), 0.5), ["n"])
        root, __ = parallelize_plan(plan, CONFIG)
        assert "ParallelMap" not in root.explain(with_stats=False)

    def test_small_input_runs_inline(self):
        # Below min_partition_rows nothing forks; output is still correct.
        rows = num_rows(10)
        root, __ = parallelize_plan(chain(rows), CONFIG)
        assert tuple(root.execute()) == tuple(chain(rows).execute())

    def test_order_sensitive_node_above_chain_preserved(self):
        rows = num_rows(300)
        def build():
            return P.OrderByNode(
                restrict(P.ScanNode(rows), "n % 2 == 0"), ["n"],
                descending=True,
            )
        serial = build().execute()
        root, __ = parallelize_plan(build(), CONFIG)
        assert isinstance(root, P.OrderByNode)
        assert tuple(root.execute()) == tuple(serial)


class TestParallelHashJoin:
    def test_join_rows_and_order_match_serial(self):
        left = num_rows(400)
        right = num_rows(400)
        serial = P.HashJoinNode(
            P.ScanNode(left), P.ScanNode(right), "n", "n"
        ).execute()
        root, log = parallelize_plan(
            P.HashJoinNode(P.ScanNode(left), P.ScanNode(right), "n", "n"),
            CONFIG,
        )
        assert root.label == "ParallelHashJoin"
        assert any("join" in line.lower() for line in log)
        assert tuple(root.execute()) == tuple(serial)

    def test_degradation_notes_preserved(self):
        from repro.dbms import types as T
        from repro.errors import TypeCheckError

        class ListType(T.AtomicType):
            name = "list_parallel_test"

            def validates(self, value):
                return isinstance(value, list)

            def coerce(self, value):
                if self.validates(value):
                    return value
                raise TypeCheckError(f"{value!r} is not a list")

            def default_value(self):
                return []

        try:
            listy = T.type_by_name("list_parallel_test")
        except TypeCheckError:
            listy = T.register_type(ListType())

        schema = Schema([("k", listy), ("side", "text")])
        left = RowSet.from_dicts(
            schema, [{"k": [1], "side": "l1"}, {"k": [2], "side": "l2"}]
        )
        right = RowSet.from_dicts(
            schema, [{"k": [1], "side": "r1"}, {"k": [3], "side": "r3"}]
        )
        root, __ = parallelize_plan(
            P.HashJoinNode(P.ScanNode(left), P.ScanNode(right), "k", "k"),
            CONFIG,
        )
        result = root.execute()
        assert len(result) == 1
        assert P.HashJoinNode._DEGRADED_BUILD in root.stats.notes

    def test_already_parallel_join_not_rewrapped(self):
        rows = num_rows(100)
        root, __ = parallelize_plan(
            P.HashJoinNode(P.ScanNode(rows), P.ScanNode(rows), "n", "n"),
            CONFIG,
        )
        again, log = parallelize_plan(root, CONFIG)
        assert again is root
        assert not any("join" in line.lower() for line in log)


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        rows = num_rows(50)
        first = plan_fingerprint(chain(rows))
        second = plan_fingerprint(chain(rows))
        assert first is not None and second is not None
        assert first[0] == second[0]

    def test_distinguishes_sources_and_predicates(self):
        rows, other = num_rows(50), num_rows(50)
        base = plan_fingerprint(chain(rows))[0]
        assert plan_fingerprint(chain(other))[0] != base
        different = P.ProjectNode(
            restrict(P.ScanNode(rows), "n % 5 != 0"), ["n"]
        )
        assert plan_fingerprint(different)[0] != base

    def test_unseeded_sample_is_unfingerprintable(self):
        rows = num_rows(50)
        assert plan_fingerprint(P.SampleNode(P.ScanNode(rows), 0.5)) is None

    def test_fingerprints_through_lazy_boundary(self):
        # Two CacheNodes over *different* lazies with identical plans over
        # the same source must agree — that is what lets independent engines
        # share one cache entry.
        rows = num_rows(50)
        one = P.CacheNode(P.LazyRowSet(chain(rows)))
        two = P.CacheNode(P.LazyRowSet(chain(rows)))
        assert plan_fingerprint(one)[0] == plan_fingerprint(two)[0]

    def test_parallelized_plan_keeps_its_fingerprint(self):
        rows = num_rows(1000)
        serial_key = plan_fingerprint(chain(rows))[0]
        root, __ = parallelize_plan(chain(rows), CONFIG)
        assert plan_fingerprint(root)[0] == serial_key

    def test_pins_reference_leaf_sources(self):
        rows = num_rows(20)
        __, pins = plan_fingerprint(chain(rows))
        assert rows in pins
