"""Unit tests: the process-wide result cache and storage-epoch invalidation.

The cache's contract: a lookup may only hit while no table the plan *reads*
has been mutated since the entry was stored.  Entries stamped with a
per-table epoch dict (``table_epochs`` over the plan's ``plan_read_set``)
survive mutations of unrelated tables; entries stamped with the legacy
global-epoch int keep the conservative any-mutation-evicts semantics.
Entries pin their leaf source objects so the id()-based fingerprint keys
stay unambiguous.
"""

from __future__ import annotations

import pytest

from repro.dbms import plan as P
from repro.dbms.parser import parse_predicate
from repro.dbms.plan_parallel import (
    ResultCache,
    plan_fingerprint,
    plan_read_set,
    result_cache,
)
from repro.dbms.relation import (
    RowSet,
    Table,
    bump_storage_epoch,
    bump_table_epoch,
    storage_epoch,
    table_epoch,
    table_epochs,
)
from repro.dbms.tuples import Schema

NUMS = Schema([("n", "int"), ("label", "text")])


def num_rows(count: int) -> RowSet:
    return RowSet.from_dicts(
        NUMS, [{"n": i, "label": f"row{i}"} for i in range(count)]
    )


def plan_over(rows: RowSet) -> P.PlanNode:
    return P.RestrictNode(
        P.ScanNode(rows), parse_predicate("n % 2 == 0", rows.schema)
    )


def fresh_entry(cache: ResultCache, rows: RowSet):
    key, pins = plan_fingerprint(plan_over(rows))
    result = tuple(plan_over(rows).execute())
    cache.store(key, result, pins, storage_epoch())
    return key, result


class TestHitAndMiss:
    def test_store_then_lookup_round_trips(self):
        cache = ResultCache()
        rows = num_rows(40)
        key, result = fresh_entry(cache, rows)
        hit = cache.lookup(key)
        assert hit is not None
        assert hit[0] == result

    def test_unknown_key_misses(self):
        cache = ResultCache()
        assert cache.lookup(("nope",)) is None

    def test_counters_track_hits_and_misses(self):
        cache = ResultCache()
        rows = num_rows(10)
        before = cache.stats()
        key, __ = fresh_entry(cache, rows)
        cache.lookup(key)
        cache.lookup(("unknown",))
        after = cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"] + 1


class TestEpochInvalidation:
    def test_any_table_mutation_invalidates_everything(self):
        cache = ResultCache()
        key, __ = fresh_entry(cache, num_rows(20))
        unrelated = Table("Unrelated", Schema([("x", "int")]))
        unrelated.insert({"x": 1})
        assert cache.lookup(key) is None    # stale: epoch moved

    @pytest.mark.parametrize("mutate", [
        lambda t: t.insert({"x": 9}),
        lambda t: t.insert_many([{"x": 9}, {"x": 10}]),
        lambda t: t.delete_where(lambda row: row["x"] > 0),
        lambda t: t.update_where(lambda row: row["x"] == 1, {"x": 5}),
        lambda t: t.clear(),
    ])
    def test_every_mutator_bumps_the_epoch(self, mutate):
        table = Table("T", Schema([("x", "int")]))
        table.insert({"x": 1})
        before = storage_epoch()
        mutate(table)
        assert storage_epoch() > before

    def test_store_refused_if_epoch_moved_during_execution(self):
        # An update racing a plan execution must not publish stale rows
        # under a fresh-looking key.
        cache = ResultCache()
        rows = num_rows(20)
        key, pins = plan_fingerprint(plan_over(rows))
        epoch_before = storage_epoch()
        result = tuple(plan_over(rows).execute())
        bump_storage_epoch()    # the "concurrent" update
        cache.store(key, result, pins, epoch_before)
        assert cache.lookup(key) is None

    def test_snapshot_identity_renews_after_mutation(self):
        # After a mutation the table snapshot is a new object, so new plans
        # fingerprint to a *different* key — old entries cannot be confused
        # with post-update results even apart from the epoch check.
        table = Table("T", NUMS)
        table.insert_many(
            {"n": i, "label": str(i)} for i in range(5)
        )
        first = table.snapshot()
        assert table.snapshot() is first    # memoized while unchanged
        table.insert({"n": 99, "label": "new"})
        assert table.snapshot() is not first


class TestLimitsAndEviction:
    def test_lru_evicts_oldest(self):
        cache = ResultCache(max_entries=2)
        keys = []
        for count in (3, 4, 5):
            key, __ = fresh_entry(cache, num_rows(count))
            keys.append(key)
        assert cache.lookup(keys[0]) is None
        assert cache.lookup(keys[2]) is not None
        assert len(cache) == 2

    def test_lookup_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        first, __ = fresh_entry(cache, num_rows(3))
        second, __ = fresh_entry(cache, num_rows(4))
        cache.lookup(first)                      # first is now most recent
        third, __ = fresh_entry(cache, num_rows(5))
        assert cache.lookup(first) is not None
        assert cache.lookup(second) is None

    def test_oversized_results_not_stored(self):
        cache = ResultCache(max_rows=10)
        rows = num_rows(50)
        key, pins = plan_fingerprint(plan_over(rows))
        result = tuple(plan_over(rows).execute())
        cache.store(key, result, pins, storage_epoch())
        assert len(cache) == 0

    def test_clear_empties(self):
        cache = ResultCache()
        fresh_entry(cache, num_rows(5))
        cache.clear()
        assert len(cache) == 0


def named_table(name: str, count: int = 10) -> Table:
    table = Table(name, NUMS)
    table.insert_many(
        {"n": i, "label": f"{name}{i}"} for i in range(count)
    )
    return table


def named_plan(table: Table) -> P.PlanNode:
    return P.RestrictNode(
        P.ScanNode(table.snapshot(), name=table.name),
        parse_predicate("n % 2 == 0", table.schema),
    )


def table_entry(cache: ResultCache, table: Table):
    """Store a plan over ``table`` stamped with its per-table epoch dict."""
    node = named_plan(table)
    key, pins = plan_fingerprint(node)
    tables = plan_read_set(node)
    assert tables == frozenset({table.name})
    result = tuple(named_plan(table).execute())
    cache.store(key, result, pins, table_epochs(tables))
    return key, result


class TestPerTableEpochs:
    def test_read_set_of_named_scans(self):
        ta, tb = named_table("RSA"), named_table("RSB")
        union = P.UnionNode(
            P.ScanNode(ta.snapshot(), name=ta.name),
            P.ScanNode(tb.snapshot(), name=tb.name),
        )
        assert plan_read_set(union) == frozenset({"RSA", "RSB"})

    def test_unnamed_leaf_disables_the_read_set(self):
        # An anonymous RowSet scan can't be attributed to a table: the plan
        # falls back to the conservative global epoch.
        anonymous = P.ScanNode(num_rows(4))
        assert plan_read_set(anonymous) is None
        mixed = P.UnionNode(
            P.ScanNode(named_table("RSM").snapshot(), name="RSM"), anonymous)
        assert plan_read_set(mixed) is None

    def test_bump_table_epoch_is_per_table(self):
        before_x = table_epoch("EpochX")
        before_y = table_epoch("EpochY")
        assert bump_table_epoch("EpochX") == before_x + 1
        assert table_epochs({"EpochX", "EpochY"}) == {
            "EpochX": before_x + 1, "EpochY": before_y}

    def test_table_mutations_bump_both_epochs(self):
        table = named_table("EpochBoth")
        global_before = storage_epoch()
        per_table_before = table_epoch("EpochBoth")
        table.insert({"n": 99, "label": "new"})
        assert storage_epoch() > global_before
        assert table_epoch("EpochBoth") == per_table_before + 1

    def test_mutating_unrelated_table_keeps_entry(self):
        # The regression this feature exists for: a cached plan reading
        # only B must survive writes to A.
        cache = ResultCache()
        ta, tb = named_table("KeepA"), named_table("KeepB")
        key, result = table_entry(cache, tb)
        ta.insert({"n": 77, "label": "unrelated write"})
        hit = cache.lookup(key)
        assert hit is not None and hit[0] == result
        tb.insert({"n": 78, "label": "related write"})
        assert cache.lookup(key) is None

    def test_int_epoch_entries_keep_global_semantics(self):
        cache = ResultCache()
        key, __ = fresh_entry(cache, num_rows(10))     # int-stamped
        named_table("GlobalSem").insert({"n": 1, "label": "any write"})
        assert cache.lookup(key) is None

    def test_store_refused_if_read_table_moved_during_execution(self):
        cache = ResultCache()
        table = named_table("RaceT")
        node = named_plan(table)
        key, pins = plan_fingerprint(node)
        epochs = table_epochs(plan_read_set(node))
        result = tuple(named_plan(table).execute())
        table.insert({"n": 50, "label": "concurrent"})
        cache.store(key, result, pins, epochs)
        assert cache.lookup(key) is None

    def test_generic_update_evicts_only_its_table(self):
        # §8 acceptance: a screen-object update on A leaves cached plans
        # over B live.
        from repro.dbms.update import ScriptedDialog, generic_update

        cache = ResultCache()
        ta, tb = named_table("UpdA"), named_table("UpdB")
        key_b, __ = table_entry(cache, tb)
        row = next(iter(ta.snapshot()))
        outcome = generic_update(ta, row, ScriptedDialog({"label": "edited"}))
        assert outcome.applied
        assert cache.lookup(key_b) is not None


def test_singleton_is_shared():
    assert result_cache() is result_cache()
