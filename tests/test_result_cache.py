"""Unit tests: the process-wide result cache and storage-epoch invalidation.

The cache's contract: a lookup may only hit while *no* table anywhere has
been mutated since the entry was stored — the global storage epoch stamps
entries and any :class:`Table` mutation bumps it.  Entries pin their leaf
source objects so the id()-based fingerprint keys stay unambiguous.
"""

from __future__ import annotations

import pytest

from repro.dbms import plan as P
from repro.dbms.parser import parse_predicate
from repro.dbms.plan_parallel import (
    ResultCache,
    plan_fingerprint,
    result_cache,
)
from repro.dbms.relation import (
    RowSet,
    Table,
    bump_storage_epoch,
    storage_epoch,
)
from repro.dbms.tuples import Schema

NUMS = Schema([("n", "int"), ("label", "text")])


def num_rows(count: int) -> RowSet:
    return RowSet.from_dicts(
        NUMS, [{"n": i, "label": f"row{i}"} for i in range(count)]
    )


def plan_over(rows: RowSet) -> P.PlanNode:
    return P.RestrictNode(
        P.ScanNode(rows), parse_predicate("n % 2 == 0", rows.schema)
    )


def fresh_entry(cache: ResultCache, rows: RowSet):
    key, pins = plan_fingerprint(plan_over(rows))
    result = tuple(plan_over(rows).execute())
    cache.store(key, result, pins, storage_epoch())
    return key, result


class TestHitAndMiss:
    def test_store_then_lookup_round_trips(self):
        cache = ResultCache()
        rows = num_rows(40)
        key, result = fresh_entry(cache, rows)
        hit = cache.lookup(key)
        assert hit is not None
        assert hit[0] == result

    def test_unknown_key_misses(self):
        cache = ResultCache()
        assert cache.lookup(("nope",)) is None

    def test_counters_track_hits_and_misses(self):
        cache = ResultCache()
        rows = num_rows(10)
        before = cache.stats()
        key, __ = fresh_entry(cache, rows)
        cache.lookup(key)
        cache.lookup(("unknown",))
        after = cache.stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"] + 1


class TestEpochInvalidation:
    def test_any_table_mutation_invalidates_everything(self):
        cache = ResultCache()
        key, __ = fresh_entry(cache, num_rows(20))
        unrelated = Table("Unrelated", Schema([("x", "int")]))
        unrelated.insert({"x": 1})
        assert cache.lookup(key) is None    # stale: epoch moved

    @pytest.mark.parametrize("mutate", [
        lambda t: t.insert({"x": 9}),
        lambda t: t.insert_many([{"x": 9}, {"x": 10}]),
        lambda t: t.delete_where(lambda row: row["x"] > 0),
        lambda t: t.update_where(lambda row: row["x"] == 1, {"x": 5}),
        lambda t: t.clear(),
    ])
    def test_every_mutator_bumps_the_epoch(self, mutate):
        table = Table("T", Schema([("x", "int")]))
        table.insert({"x": 1})
        before = storage_epoch()
        mutate(table)
        assert storage_epoch() > before

    def test_store_refused_if_epoch_moved_during_execution(self):
        # An update racing a plan execution must not publish stale rows
        # under a fresh-looking key.
        cache = ResultCache()
        rows = num_rows(20)
        key, pins = plan_fingerprint(plan_over(rows))
        epoch_before = storage_epoch()
        result = tuple(plan_over(rows).execute())
        bump_storage_epoch()    # the "concurrent" update
        cache.store(key, result, pins, epoch_before)
        assert cache.lookup(key) is None

    def test_snapshot_identity_renews_after_mutation(self):
        # After a mutation the table snapshot is a new object, so new plans
        # fingerprint to a *different* key — old entries cannot be confused
        # with post-update results even apart from the epoch check.
        table = Table("T", NUMS)
        table.insert_many(
            {"n": i, "label": str(i)} for i in range(5)
        )
        first = table.snapshot()
        assert table.snapshot() is first    # memoized while unchanged
        table.insert({"n": 99, "label": "new"})
        assert table.snapshot() is not first


class TestLimitsAndEviction:
    def test_lru_evicts_oldest(self):
        cache = ResultCache(max_entries=2)
        keys = []
        for count in (3, 4, 5):
            key, __ = fresh_entry(cache, num_rows(count))
            keys.append(key)
        assert cache.lookup(keys[0]) is None
        assert cache.lookup(keys[2]) is not None
        assert len(cache) == 2

    def test_lookup_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        first, __ = fresh_entry(cache, num_rows(3))
        second, __ = fresh_entry(cache, num_rows(4))
        cache.lookup(first)                      # first is now most recent
        third, __ = fresh_entry(cache, num_rows(5))
        assert cache.lookup(first) is not None
        assert cache.lookup(second) is None

    def test_oversized_results_not_stored(self):
        cache = ResultCache(max_rows=10)
        rows = num_rows(50)
        key, pins = plan_fingerprint(plan_over(rows))
        result = tuple(plan_over(rows).execute())
        cache.store(key, result, pins, storage_epoch())
        assert len(cache) == 0

    def test_clear_empties(self):
        cache = ResultCache()
        fresh_entry(cache, num_rows(5))
        cache.clear()
        assert len(cache) == 0


def test_singleton_is_shared():
    assert result_cache() is result_cache()
