"""Unit tests: the raster canvas and bitmap font (repro.render)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DisplayError
from repro.render.canvas import Canvas
from repro.render.font import CHAR_HEIGHT, CHAR_WIDTH, GLYPHS, glyph_rows


class TestFont:
    def test_glyph_dimensions(self):
        for char, rows in GLYPHS.items():
            assert len(rows) == CHAR_HEIGHT, char
            assert all(row < (1 << CHAR_WIDTH) for row in rows), char

    def test_lowercase_folds_to_uppercase(self):
        assert glyph_rows("a") == GLYPHS["A"]

    def test_unknown_renders_box(self):
        rows = glyph_rows("é")
        assert rows[0] == 0b11111  # hollow box marker

    def test_space_is_blank(self):
        assert all(row == 0 for row in glyph_rows(" "))

    def test_digits_and_punctuation_present(self):
        for char in "0123456789.,:-+()%/":
            assert any(glyph_rows(char)), char


class TestCanvasBasics:
    def test_starts_clear(self):
        canvas = Canvas(10, 8)
        assert canvas.count_nonbackground() == 0
        assert canvas.pixel(0, 0) == (255, 255, 255)

    def test_bad_size(self):
        with pytest.raises(DisplayError):
            Canvas(0, 10)

    def test_set_and_read_pixel(self):
        canvas = Canvas(10, 10)
        canvas.set_pixel(3, 4, (1, 2, 3))
        assert canvas.pixel(3, 4) == (1, 2, 3)
        assert canvas.count_nonbackground() == 1

    def test_out_of_bounds_read_rejected(self):
        canvas = Canvas(4, 4)
        with pytest.raises(DisplayError):
            canvas.pixel(4, 0)

    def test_out_of_bounds_write_silent(self):
        canvas = Canvas(4, 4)
        canvas.set_pixel(-1, -1, (0, 0, 0))
        canvas.set_pixel(100, 100, (0, 0, 0))
        assert canvas.count_nonbackground() == 0

    def test_clear_resets(self):
        canvas = Canvas(4, 4)
        canvas.fill_rect(0, 0, 3, 3, (9, 9, 9))
        canvas.clear()
        assert canvas.count_nonbackground() == 0

    def test_copy_is_independent(self):
        canvas = Canvas(4, 4)
        clone = canvas.copy()
        canvas.set_pixel(0, 0, (1, 1, 1))
        assert clone.count_nonbackground() == 0


class TestPrimitives:
    def test_horizontal_line_length(self):
        canvas = Canvas(32, 32)
        canvas.draw_line(2, 10, 20, 10, (0, 0, 0))
        assert canvas.count_nonbackground() == 19

    def test_diagonal_line(self):
        canvas = Canvas(32, 32)
        canvas.draw_line(0, 0, 10, 10, (0, 0, 0))
        assert canvas.pixel(5, 5) == (0, 0, 0)

    def test_thick_line(self):
        thin = Canvas(32, 32)
        thin.draw_line(5, 5, 25, 5, (0, 0, 0), width=1)
        thick = Canvas(32, 32)
        thick.draw_line(5, 5, 25, 5, (0, 0, 0), width=3)
        assert thick.count_nonbackground() > 2 * thin.count_nonbackground()

    def test_line_clipped(self):
        canvas = Canvas(16, 16)
        canvas.draw_line(-50, 8, 50, 8, (0, 0, 0))
        assert canvas.count_nonbackground() == 16

    def test_fill_rect_area(self):
        canvas = Canvas(32, 32)
        canvas.fill_rect(4, 4, 7, 7, (0, 0, 0))
        assert canvas.count_nonbackground() == 16

    def test_fill_rect_corner_order_irrelevant(self):
        a = Canvas(16, 16)
        a.fill_rect(2, 2, 6, 6, (0, 0, 0))
        b = Canvas(16, 16)
        b.fill_rect(6, 6, 2, 2, (0, 0, 0))
        assert np.array_equal(a.pixels, b.pixels)

    def test_draw_rect_is_outline(self):
        canvas = Canvas(32, 32)
        canvas.draw_rect(4, 4, 10, 10, (0, 0, 0))
        assert canvas.pixel(4, 4) == (0, 0, 0)
        assert canvas.pixel(7, 7) == (255, 255, 255)

    def test_circle_symmetry(self):
        canvas = Canvas(64, 64)
        canvas.draw_circle(32, 32, 10, (0, 0, 0))
        assert canvas.pixel(42, 32) == (0, 0, 0)
        assert canvas.pixel(22, 32) == (0, 0, 0)
        assert canvas.pixel(32, 42) == (0, 0, 0)
        assert canvas.pixel(32, 22) == (0, 0, 0)
        assert canvas.pixel(32, 32) == (255, 255, 255)

    def test_fill_circle_area_close_to_pi_r_squared(self):
        canvas = Canvas(64, 64)
        canvas.fill_circle(32, 32, 10, (0, 0, 0))
        area = canvas.count_nonbackground()
        assert abs(area - 3.14159 * 100) < 30

    def test_tiny_circle_degenerates_to_point(self):
        canvas = Canvas(8, 8)
        canvas.fill_circle(4, 4, 0.0, (0, 0, 0))
        assert canvas.count_nonbackground() == 1

    def test_polygon_fill_triangle(self):
        canvas = Canvas(32, 32)
        canvas.fill_polygon([(4, 4), (28, 4), (16, 28)], (0, 0, 0))
        assert canvas.pixel(16, 10) == (0, 0, 0)
        assert canvas.pixel(2, 28) == (255, 255, 255)

    def test_polygon_outline(self):
        canvas = Canvas(32, 32)
        canvas.draw_polygon([(4, 4), (28, 4), (16, 28)], (0, 0, 0))
        assert canvas.pixel(16, 4) == (0, 0, 0)

    def test_text_width(self):
        canvas = Canvas(128, 16)
        canvas.draw_text(0, 0, "IIII", (0, 0, 0))
        cols = np.where((canvas.pixels != 255).any(axis=2).any(axis=0))[0]
        assert cols.max() < 4 * (CHAR_WIDTH + 1)

    def test_text_clipped_vertically(self):
        canvas = Canvas(64, 4)
        canvas.draw_text(0, -3, "HELLO", (0, 0, 0))
        assert canvas.count_nonbackground() > 0  # bottom rows visible


class TestCompositionExport:
    def test_blit_places_content(self):
        small = Canvas(8, 8)
        small.fill_rect(0, 0, 7, 7, (0, 0, 0))
        big = Canvas(32, 32)
        big.blit(small, 10, 10)
        assert big.pixel(10, 10) == (0, 0, 0)
        assert big.pixel(9, 9) == (255, 255, 255)

    def test_blit_clips_at_edges(self):
        small = Canvas(8, 8)
        small.fill_rect(0, 0, 7, 7, (0, 0, 0))
        big = Canvas(16, 16)
        big.blit(small, 12, 12)  # partially off
        big.blit(small, -4, -4)
        big.blit(small, 100, 100)  # fully off
        assert big.count_nonbackground() == 16 + 16

    def test_ppm_export(self, tmp_path):
        canvas = Canvas(4, 3)
        canvas.set_pixel(0, 0, (10, 20, 30))
        path = canvas.to_ppm(tmp_path / "out.ppm")
        data = path.read_bytes()
        assert data.startswith(b"P6\n4 3\n255\n")
        assert len(data) == len(b"P6\n4 3\n255\n") + 4 * 3 * 3

    def test_png_export(self, tmp_path):
        import struct
        import zlib

        canvas = Canvas(8, 6)
        canvas.set_pixel(2, 3, (10, 20, 30))
        path = canvas.to_png(tmp_path / "out.png")
        data = path.read_bytes()
        assert data.startswith(b"\x89PNG\r\n\x1a\n")
        width, height = struct.unpack(">II", data[16:24])
        assert (width, height) == (8, 6)
        # Decode the IDAT payload and check the pixel round-trips.
        idat_start = data.index(b"IDAT") + 4
        idat_len = struct.unpack(">I", data[idat_start - 8: idat_start - 4])[0]
        raw = zlib.decompress(data[idat_start: idat_start + idat_len])
        stride = 1 + 8 * 3
        row = raw[3 * stride: 4 * stride]
        assert row[0] == 0  # filter byte
        assert tuple(row[1 + 2 * 3: 1 + 2 * 3 + 3]) == (10, 20, 30)

    def test_ascii_dimensions(self):
        canvas = Canvas(100, 50)
        art = canvas.to_ascii(columns=40)
        lines = art.split("\n")
        assert all(len(line) <= 40 for line in lines)

    def test_ascii_dark_pixels_visible(self):
        canvas = Canvas(40, 20)
        canvas.fill_rect(0, 0, 39, 19, (0, 0, 0))
        art = canvas.to_ascii(columns=20)
        assert "@" in art

    def test_region_nonbackground(self):
        canvas = Canvas(32, 32)
        canvas.fill_rect(0, 0, 7, 7, (0, 0, 0))
        assert canvas.region_nonbackground(0, 0, 8, 8) == 64
        assert canvas.region_nonbackground(16, 16, 32, 32) == 0
        assert canvas.region_nonbackground(-5, -5, 4, 4) == 16

    def test_colors_used(self):
        canvas = Canvas(8, 8)
        canvas.set_pixel(0, 0, (1, 2, 3))
        canvas.set_pixel(1, 1, (4, 5, 6))
        assert canvas.colors_used() == {(1, 2, 3), (4, 5, 6)}
