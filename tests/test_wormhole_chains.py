"""Integration tests: multi-hop wormhole chains and two-sided elevations.

"the user can pan and zoom on this second canvas, as well as move to a
third canvas" (§6.2); ranges straddling zero are visible on both canvas
sides (§6.3).
"""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.boxes_attr import SetAttributeBox
from repro.dataflow.boxes_display import SetRangeBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite
from repro.viewer.rearview import RearViewMirror
from repro.viewer.viewer import Viewer
from repro.viewer.wormhole import CanvasRegistry, WormholeNavigator


def dotted_canvas(program, db, destination=None):
    """A pipeline of stations; with ``destination``, each is a wormhole."""
    src = program.add_box(AddTableBox(table="Stations"))
    sx = program.add_box(SetAttributeBox(name="x", definition="longitude"))
    sy = program.add_box(SetAttributeBox(name="y", definition="latitude"))
    program.connect(src, "out", sx, "in")
    program.connect(sx, "out", sy, "in")
    if destination:
        disp = program.add_box(SetAttributeBox(
            name="display",
            definition=f"wormhole('{destination}', 40, 30, 20, "
                       "longitude, latitude)",
        ))
    else:
        disp = program.add_box(SetAttributeBox(
            name="display", definition="filled_circle(2, 'red')"
        ))
    program.connect(sy, "out", disp, "in")
    return disp


@pytest.fixture()
def three_canvases(stations_db):
    program = Program()
    a_tail = dotted_canvas(program, stations_db, destination="b")
    b_tail = dotted_canvas(program, stations_db, destination="c")
    c_tail = dotted_canvas(program, stations_db)
    engine = Engine(program, stations_db)
    registry = CanvasRegistry()
    viewers = {}
    for name, tail in (("a", a_tail), ("b", b_tail), ("c", c_tail)):
        viewer = Viewer(name, lambda t=tail: engine.output_of(t), 200, 160)
        viewer.pan_to(-90.07, 29.95)
        viewer.set_elevation(3.0)
        registry.register(viewer)
        viewers[name] = viewer
    navigator = WormholeNavigator(registry)
    navigator.set_current("a")
    return navigator, viewers


class TestThreeHopChain:
    def test_chain_forward(self, three_canvases):
        navigator, viewers = three_canvases
        viewers["a"].render()
        navigator.traverse(viewers["a"].visible_wormholes()[0])
        assert navigator.current_canvas == "b"
        viewers["b"].pan_to(-90.07, 29.95)
        viewers["b"].set_elevation(3.0)
        viewers["b"].render()
        navigator.traverse(viewers["b"].visible_wormholes()[0])
        assert navigator.current_canvas == "c"
        assert len(navigator.history) == 2

    def test_back_twice_unwinds(self, three_canvases):
        navigator, viewers = three_canvases
        a_center = viewers["a"].view().center
        viewers["a"].render()
        navigator.traverse(viewers["a"].visible_wormholes()[0])
        viewers["b"].pan_to(-90.07, 29.95)
        viewers["b"].set_elevation(3.0)
        b_center = viewers["b"].view().center
        viewers["b"].render()
        navigator.traverse(viewers["b"].visible_wormholes()[0])

        assert navigator.go_back().name == "b"
        assert viewers["b"].view().center == b_center
        assert navigator.go_back().name == "a"
        assert viewers["a"].view().center == a_center
        assert len(navigator.history) == 0

    def test_mirror_tracks_most_recent_passage(self, three_canvases):
        navigator, viewers = three_canvases
        viewers["a"].render()
        navigator.traverse(viewers["a"].visible_wormholes()[0])
        viewers["b"].pan_to(-90.07, 29.95)
        viewers["b"].set_elevation(3.0)
        viewers["b"].render()
        navigator.traverse(viewers["b"].visible_wormholes()[0])
        mirror = RearViewMirror(navigator, 120, 90)
        assert mirror.has_view()
        record = navigator.history.peek()
        assert record.origin_canvas == "b"

    def test_nested_previews_render_two_levels(self, three_canvases):
        # Canvas a shows b inside its wormholes; b's wormholes show c —
        # bounded by MAX_WORMHOLE_DEPTH.
        navigator, viewers = three_canvases
        result = viewers["a"].render()
        assert result.canvas.count_nonbackground() > 0


class TestStraddlingRanges:
    def make_relation(self, db, low, high):
        program = Program()
        tail = dotted_canvas(program, db)
        rng = program.add_box(SetRangeBox(minimum=low, maximum=high))
        program.connect(tail, "out", rng, "in")
        return Engine(program, db).output_of(rng)

    def render_at(self, relation, elevation):
        view = ViewState(center=(-90.07, 29.95), elevation=elevation,
                         viewport=(160, 120))
        stats = SceneStats()
        render_composite(Canvas(160, 120), relation, view, stats=stats)
        return stats

    def test_straddling_visible_both_sides(self, stations_db):
        relation = self.make_relation(stations_db, -10.0, 10.0)
        assert self.render_at(relation, 5.0).tuples_rendered > 0
        assert self.render_at(relation, -5.0).tuples_rendered > 0

    def test_straddling_hidden_outside_band(self, stations_db):
        relation = self.make_relation(stations_db, -10.0, 10.0)
        assert self.render_at(relation, 50.0).relations_culled_by_elevation == 1
        assert self.render_at(relation, -50.0).relations_culled_by_elevation == 1

    def test_topside_only_hidden_below(self, stations_db):
        relation = self.make_relation(stations_db, 1.0, 100.0)
        assert self.render_at(relation, 5.0).tuples_rendered > 0
        assert self.render_at(relation, -5.0).relations_culled_by_elevation == 1
