"""Integration tests: EXPLAIN and the per-box engine accounting."""

from __future__ import annotations

import json

import pytest

from repro.data.weather import build_weather_database
from repro.dataflow.boxes_db import AddTableBox, JoinBox, RestrictBox
from repro.dataflow.engine import Engine
from repro.dataflow.explain import (
    deterministic_order,
    explain,
    explain_data,
    output_plans,
)
from repro.dataflow.graph import Program
from repro.dbms import plan as P
from repro.dbms import types as T
from repro.dbms.catalog import Database
from repro.dbms.plan import LazyRowSet, Schema
from repro.errors import TypeCheckError


def small_db():
    return build_weather_database(extra_stations=5, every_days=120)


def restrict_program():
    program = Program()
    src = program.add_box(AddTableBox(table="Stations"))
    keep = program.add_box(RestrictBox(predicate="state = 'LA'"))
    program.connect(src, "out", keep, "in")
    return program, src, keep


class TestExplain:
    def test_shows_per_operator_row_counts(self):
        program, __, keep = restrict_program()
        text = explain(program, small_db())
        assert "Restrict[(state = 'LA')]" in text
        assert "in=" in text and "out=" in text
        assert "EngineStats:" in text

    def test_limits_to_one_box(self):
        program, src, keep = restrict_program()
        text = explain(program, small_db(), box_id=keep)
        assert "Restrict[(state = 'LA')]" in text
        assert f"== AddTable 'Stations' #{src}" not in text

    def test_warm_engine_shows_hot_caches(self):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        first = program.add_box(RestrictBox(predicate="state = 'LA'"))
        second = program.add_box(RestrictBox(predicate="altitude > 0.0"))
        program.connect(src, "out", first, "in")
        program.connect(first, "out", second, "in")
        engine = Engine(program, small_db())
        engine.output_of(second)
        text = explain(program, engine=engine)
        # The downstream box's fragment re-enters the upstream box's
        # already-forced output through a hot cache boundary.
        assert "Cache[" in text and "hot" in text

    def test_fig7_has_joinless_plan_trees(self):
        # The acceptance scenario: fig7's overlay program explains with
        # per-operator rows-in/rows-out for every box-emitted fragment.
        from repro.core.scenarios import build_fig7_overlay

        db = build_weather_database(extra_stations=10, every_days=60)
        scenario = build_fig7_overlay(db)
        session = scenario.session
        text = explain(session.program, session.database, engine=session.engine)
        assert text.count("Restrict[(state = 'LA')]") >= 2
        assert "Scan[Stations]" in text

    def test_join_plan_tree(self):
        program = Program()
        obs = program.add_box(AddTableBox(table="Observations"))
        sta = program.add_box(AddTableBox(table="Stations"))
        join = program.add_box(JoinBox(left_key="station_id",
                                       right_key="station_id"))
        program.connect(obs, "out", join, "left")
        program.connect(sta, "out", join, "right")
        engine = Engine(program, small_db())
        value = engine.output_of(join)
        plans = list(output_plans(value))
        assert len(plans) == 1
        __, lazy = plans[0]
        assert isinstance(lazy, LazyRowSet)
        root = lazy.plan
        # A process-wide columnar default (REPRO_COLUMNAR=1) wraps the
        # join in backend adapters; the join node itself is unchanged.
        while root.label in ("ToRows", "ToColumns"):
            (root,) = root.children
        assert root.describe() == "HashJoin[station_id = station_id]"
        assert root.stats.rows_out == len(value.rows)


def _walk(tree):
    yield tree
    for child in tree["children"]:
        yield from _walk(child)


class TestExplainData:
    def test_structure_and_json_round_trip(self):
        program, src, keep = restrict_program()
        data = explain_data(program, small_db())
        assert data["program"] == program.name
        assert [entry["box"] for entry in data["boxes"]] == [src, keep]
        keep_entry = data["boxes"][1]
        assert keep_entry["type"] == "Restrict"
        (output,) = keep_entry["outputs"]
        assert output["port"] == "out"
        (plan,) = output["plans"]
        # Under a process-wide columnar default the tree gains adapter
        # nodes above the Restrict; the operator entry itself is stable.
        root = next(node for node in _walk(plan["tree"])
                    if "Restrict" in node["describe"])
        assert root["op"]
        assert set(root["stats"]) == {
            "rows_in", "rows_out", "batches", "opens",
            "rows_buffered", "wall_ms",
        }
        assert root["stats"]["rows_out"] <= root["stats"]["rows_in"]
        assert data["engine"]["total_fires"] == 2
        json.loads(json.dumps(data))  # fully JSON-serializable

    def test_preorder_node_ids(self):
        program, __, keep = restrict_program()
        data = explain_data(program, small_db(), box_id=keep)
        (root,) = [p["tree"] for b in data["boxes"]
                   for o in b["outputs"] for p in o["plans"]]
        ids = [node["id"] for node in _walk(root)]
        assert ids == list(range(len(ids)))

    def test_deterministic_order_breaks_ties_by_id(self):
        # Two independent sources feeding one join: insertion order of the
        # edges must not matter, only topology + box id.
        program = Program()
        obs = program.add_box(AddTableBox(table="Observations"))
        sta = program.add_box(AddTableBox(table="Stations"))
        join = program.add_box(JoinBox(left_key="station_id",
                                       right_key="station_id"))
        # Wire the later-id source first.
        program.connect(sta, "out", join, "right")
        program.connect(obs, "out", join, "left")
        assert deterministic_order(program) == sorted([obs, sta, join])
        data = explain_data(program, small_db())
        assert [entry["box"] for entry in data["boxes"]] == [obs, sta, join]

    def test_hash_join_degradation_note_in_dict(self):
        class ListType(T.AtomicType):
            name = "list_explain_test"

            def validates(self, value):
                return isinstance(value, list)

            def coerce(self, value):
                if self.validates(value):
                    return value
                raise TypeCheckError(f"{value!r} is not a list")

            def default_value(self):
                return []

        try:
            listy = T.type_by_name("list_explain_test")
        except TypeCheckError:
            listy = T.register_type(ListType())

        db = Database("degraded")
        left = db.create_table("L", Schema([("k", listy), ("a", "text")]))
        right = db.create_table("R", Schema([("k", listy), ("b", "text")]))
        left.insert_many([{"k": [1], "a": "x"}, {"k": [2], "a": "y"}])
        right.insert_many([{"k": [1], "b": "z"}])

        program = Program()
        lbox = program.add_box(AddTableBox(table="L"))
        rbox = program.add_box(AddTableBox(table="R"))
        join = program.add_box(JoinBox(left_key="k", right_key="k"))
        program.connect(lbox, "out", join, "left")
        program.connect(rbox, "out", join, "right")

        data = explain_data(program, db)
        notes = [note for entry in data["boxes"]
                 for output in entry.get("outputs", [])
                 for plan in output.get("plans", [])
                 for node in _walk(plan["tree"])
                 for note in node["notes"]]
        assert P.HashJoinNode._DEGRADED_BUILD in notes


class TestEngineStats:
    def test_per_box_attribution(self):
        program, src, keep = restrict_program()
        engine = Engine(program, small_db())
        engine.output_of(keep)
        engine.output_of(keep)
        assert engine.stats.fires == {src: 1, keep: 1}
        assert engine.stats.hits[keep] == 1
        assert engine.stats.misses == {src: 1, keep: 1}
        assert engine.stats.cache_hits == 1
        assert engine.stats.cache_misses == 2

    def test_summary_lists_each_box(self):
        program, src, keep = restrict_program()
        engine = Engine(program, small_db())
        engine.output_of(keep)
        summary = engine.stats.summary()
        assert summary.startswith("EngineStats: 2 fires")
        assert f"box #{src}: fires=1" in summary
        assert f"box #{keep}: fires=1" in summary

    def test_reset_clears_attribution(self):
        program, __, keep = restrict_program()
        engine = Engine(program, small_db())
        engine.output_of(keep)
        engine.stats.reset()
        assert engine.stats.fires == {}
        assert engine.stats.total_fires() == 0


class TestViewerExplainRender:
    def test_reports_cull_plans(self):
        from repro.core.scenarios import build_fig7_overlay

        db = build_weather_database(extra_stations=10, every_days=60)
        window = build_fig7_overlay(db).window()
        text = window.viewer.explain_render()
        assert "viewport cull" in text
        assert "SceneStats(" in text

    def test_cull_disabled_has_no_plans(self):
        from repro.core.scenarios import build_fig7_overlay

        db = build_weather_database(extra_stations=10, every_days=60)
        window = build_fig7_overlay(db).window()
        text = window.viewer.explain_render(cull=False)
        assert "(no culling plans synthesized)" in text
