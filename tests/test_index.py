"""Unit tests: hash and sorted indexes (repro.dbms.index)."""

from __future__ import annotations

import pytest

from repro.dbms.index import HashIndex, SortedIndex, indexed_equi_join
from repro.dbms.relation import RowSet, Table
from repro.dbms.tuples import Schema
from repro.errors import SchemaError

SCHEMA = Schema([("key", "int"), ("label", "text")])


def make_table() -> Table:
    table = Table("T", SCHEMA)
    table.insert_many(
        [{"key": k, "label": f"row{k}"} for k in (5, 3, 8, 3, 1)]
    )
    return table


class TestHashIndex:
    def test_lookup(self):
        index = HashIndex(make_table(), "key")
        assert len(index.lookup(3)) == 2
        assert index.lookup(99) == []

    def test_refreshes_after_mutation(self):
        table = make_table()
        index = HashIndex(table, "key")
        assert len(index.lookup(7)) == 0
        table.insert({"key": 7, "label": "new"})
        assert len(index.lookup(7)) == 1

    def test_len_counts_rows(self):
        assert len(HashIndex(make_table(), "key")) == 5

    def test_keys(self):
        index = HashIndex(make_table(), "key")
        assert set(index.keys()) == {1, 3, 5, 8}

    def test_unknown_field_rejected(self):
        with pytest.raises(SchemaError):
            HashIndex(make_table(), "ghost")

    def test_over_rowset(self):
        rows = make_table().snapshot()
        index = HashIndex(rows, "key")
        assert len(index.lookup(5)) == 1


class TestSortedIndex:
    def test_range_inclusive(self):
        index = SortedIndex(make_table(), "key")
        found = index.range(3, 5)
        assert sorted(row["key"] for row in found) == [3, 3, 5]

    def test_range_exclusive_bounds(self):
        index = SortedIndex(make_table(), "key")
        found = index.range(3, 8, include_low=False, include_high=False)
        assert [row["key"] for row in found] == [5]

    def test_open_ended_ranges(self):
        index = SortedIndex(make_table(), "key")
        assert len(index.range(low=5)) == 2
        assert len(index.range(high=3)) == 3
        assert len(index.range()) == 5

    def test_min_max(self):
        index = SortedIndex(make_table(), "key")
        assert index.min_key() == 1
        assert index.max_key() == 8

    def test_min_of_empty_raises(self):
        index = SortedIndex(Table("E", SCHEMA), "key")
        with pytest.raises(SchemaError):
            index.min_key()

    def test_refresh_after_mutation(self):
        table = make_table()
        index = SortedIndex(table, "key")
        table.insert({"key": 100, "label": "big"})
        assert index.max_key() == 100


class TestIndexedJoin:
    def test_pairs_match_hash_join(self):
        table = make_table()
        probe = RowSet.from_dicts(
            Schema([("key", "int"), ("tag", "text")]),
            [{"key": 3, "tag": "x"}, {"key": 8, "tag": "y"}, {"key": 0, "tag": "z"}],
        )
        index = HashIndex(table, "key")
        pairs = indexed_equi_join(probe, index, "key")
        assert len(pairs) == 3  # key 3 matches twice, key 8 once
        assert all(l["key"] == r["key"] for l, r in pairs)
