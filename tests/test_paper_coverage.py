"""Meta-test: every operation the paper catalogs exists in this system.

Walks the operation tables (Figures 2, 3, 5), the drill-down primitives
(Figure 6), the Section-7 operations, and the displayable-type algebra of
Section 2, asserting each is implemented and reachable — the reproduction's
completeness claim, executable.
"""

from __future__ import annotations

import pytest

from repro.dataflow.registry import box_class, box_class_names
from repro.ui.menus import PROGRAM_OPERATIONS, MenuBar
from repro.ui.session import Session

FIG2_PROGRAM_OPERATIONS = {
    "New Program": "new_program",
    "Add Program": "add_program",
    "Load Program": "load_program",
    "Save Program": "save_program",
    "Apply Box": "apply_box",
    "Delete Box": "delete_box",
    "Replace Box": "replace_box",
    "T": "insert_t",
    "Encapsulate": "encapsulate",
}

FIG3_DB_BOXES = ("AddTable", "Project", "Restrict", "Sample", "Join")

FIG5_ATTRIBUTE_BOXES = (
    "AddAttribute",
    "RemoveAttribute",
    "SetAttribute",
    "SwapAttributes",
    "ScaleAttribute",
    "TranslateAttribute",
    "CombineDisplays",
)

FIG6_DRILLDOWN_BOXES = ("SetRange", "Overlay", "Shuffle")

SEC7_BOXES = ("Stitch", "Replicate")


class TestOperationCatalogs:
    def test_fig2_operations_in_menu_and_session(self):
        for operation, method in FIG2_PROGRAM_OPERATIONS.items():
            assert operation in PROGRAM_OPERATIONS
            assert hasattr(Session, method), (operation, method)

    @pytest.mark.parametrize("type_name", FIG3_DB_BOXES)
    def test_fig3_boxes_registered(self, type_name):
        assert type_name in box_class_names()

    @pytest.mark.parametrize("type_name", FIG5_ATTRIBUTE_BOXES)
    def test_fig5_boxes_registered(self, type_name):
        assert type_name in box_class_names()

    @pytest.mark.parametrize("type_name", FIG6_DRILLDOWN_BOXES)
    def test_fig6_boxes_registered(self, type_name):
        assert type_name in box_class_names()

    @pytest.mark.parametrize("type_name", SEC7_BOXES)
    def test_sec7_boxes_registered(self, type_name):
        assert type_name in box_class_names()

    def test_every_registered_box_has_help(self, stations_db):
        menu = MenuBar(stations_db)
        for type_name in menu.boxes_menu():
            if stations_db.has_box(type_name):
                continue  # catalog-registered encapsulations
            assert len(menu.help(type_name)) > 20, type_name

    def test_every_box_type_roundtrips_params(self):
        """Every registered box instantiates from its own params dict —
        the convention serialization and Add Program rely on."""
        from repro.dataflow.registry import instantiate

        for type_name in box_class_names():
            probe = box_class(type_name)
            try:
                box = probe()
            except TypeError:
                continue  # types requiring args are covered elsewhere
            clone = instantiate(type_name, box.params)
            assert clone.type_name == type_name
            assert [p.name for p in clone.inputs] == [p.name for p in box.inputs]
            assert [p.name for p in clone.outputs] == [p.name for p in box.outputs]


class TestSection2Model:
    def test_three_displayable_types_exist(self):
        from repro.display.displayable import (
            Composite,
            DisplayableRelation,
            Group,
        )

        assert DisplayableRelation and Composite and Group

    def test_type_equivalences(self):
        from repro.display.displayable import ensure_composite, ensure_group

        assert callable(ensure_composite) and callable(ensure_group)

    def test_primitive_drawables_complete(self):
        # §5.1: "point, line, rectangle, circle, polygon, text, and viewer."
        from repro.display import drawables

        kinds = {
            cls.kind
            for cls in (
                drawables.Point, drawables.Line, drawables.Rectangle,
                drawables.Circle, drawables.Polygon, drawables.Text,
                drawables.ViewerDrawable,
            )
        }
        assert kinds == {
            "point", "line", "rectangle", "circle", "polygon", "text",
            "viewer",
        }

    def test_viewer_mechanisms_complete(self):
        # §6–§7: wormholes, rear view mirrors, slaving, magnifiers.
        from repro.viewer import (
            MagnifyingGlass,
            RearViewMirror,
            SlavingManager,
            WormholeNavigator,
        )

        assert all((MagnifyingGlass, RearViewMirror, SlavingManager,
                    WormholeNavigator))

    def test_update_machinery_complete(self):
        # §8: per-type update functions + generic update + custom commands.
        from repro.dbms.types import get_update_function, set_update_function
        from repro.dbms.update import generic_update

        assert all((get_update_function, set_update_function, generic_update))
