"""Unit tests: the streaming physical-plan IR (repro.dbms.plan)."""

from __future__ import annotations

import pytest

from repro.dbms import plan as P
from repro.dbms import types as T
from repro.dbms.parser import parse_predicate
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema
from repro.errors import EvaluationError, TypeCheckError

NUMS = Schema([("n", "int"), ("label", "text")])


def num_rows(count: int) -> RowSet:
    return RowSet.from_dicts(
        NUMS, [{"n": i, "label": f"row{i}"} for i in range(count)]
    )


def restrict_over(rows: RowSet, source: str) -> P.RestrictNode:
    return P.RestrictNode(
        P.ScanNode(rows), parse_predicate(source, rows.schema)
    )


class TestStreamingExecution:
    def test_batched_pull(self):
        node = restrict_over(num_rows(1000), "n < 600")
        result = node.execute()
        assert len(result) == 600
        assert node.stats.rows_in == 1000
        assert node.stats.rows_out == 600
        assert node.stats.batches == -(-600 // P.BATCH_SIZE)

    def test_streaming_operators_buffer_nothing(self):
        restrict = restrict_over(num_rows(1000), "n < 600")
        project = P.ProjectNode(restrict, ["n"])
        project.execute()
        assert restrict.stats.rows_buffered == 0
        assert project.stats.rows_buffered == 0

    def test_pipeline_breakers_buffer_own_state_only(self):
        restrict = restrict_over(num_rows(1000), "n < 10")
        order = P.OrderByNode(restrict, ["n"], descending=True)
        order.execute()
        # The sort buffered its input — which is the restrict's *output*.
        assert order.stats.rows_buffered == 10
        assert restrict.stats.rows_buffered == 0

    def test_limit_stops_pulling_early(self):
        scan = P.ScanNode(num_rows(1000))
        limit = P.LimitNode(scan, 5)
        result = limit.execute()
        assert len(result) == 5
        # One batch of the scan ran, not the whole input.
        assert scan.stats.rows_out <= P.BATCH_SIZE

    def test_wall_time_recorded(self):
        node = restrict_over(num_rows(100), "n < 50")
        node.execute()
        assert node.stats.wall_s >= 0.0
        assert node.stats.opens == 1

    def test_reopen_accumulates(self):
        node = restrict_over(num_rows(100), "n < 50")
        node.execute()
        node.execute()
        assert node.stats.opens == 2
        assert node.stats.rows_out == 100  # 50 per execution

    def test_explain_tree_shows_counters(self):
        node = restrict_over(num_rows(100), "n < 50")
        node.execute()
        text = node.explain()
        assert "Restrict[(n < 50)]" in text
        assert "in=100 out=50" in text
        assert "Scan" in text


class TestHashJoinDegradation:
    @pytest.fixture()
    def listy(self):
        class ListType(T.AtomicType):
            name = "list_test"

            def validates(self, value):
                return isinstance(value, list)

            def coerce(self, value):
                if self.validates(value):
                    return value
                raise TypeCheckError(f"{value!r} is not a list")

            def default_value(self):
                return []

        try:
            return T.type_by_name("list_test")
        except TypeCheckError:
            return T.register_type(ListType())

    def test_non_hashable_build_key_degrades_with_note(self, listy):
        schema = Schema([("k", listy), ("side", "text")])
        left = RowSet.from_dicts(
            schema, [{"k": [1], "side": "l1"}, {"k": [2], "side": "l2"}]
        )
        right = RowSet.from_dicts(
            schema, [{"k": [1], "side": "r1"}, {"k": [3], "side": "r3"}]
        )
        join = P.HashJoinNode(P.ScanNode(left), P.ScanNode(right), "k", "k")
        result = join.execute()
        assert len(result) == 1
        assert result[0]["side"] == "l1"
        assert result[0]["right_side"] == "r1"
        assert P.HashJoinNode._DEGRADED_BUILD in join.stats.notes
        assert "!" in join.explain()  # degradation surfaces in EXPLAIN

    def test_non_hashable_probe_key_scans_build_side(self, listy):
        left_schema = Schema([("k", listy), ("side", "text")])
        right_schema = Schema([("k", listy), ("tag", "text")])
        left = RowSet.from_dicts(left_schema, [{"k": [7], "side": "probe"}])
        # Build side is empty, so the buckets survive construction; the
        # probe-side key is the first non-hashable value seen.
        right = RowSet(right_schema, [])
        join = P.HashJoinNode(P.ScanNode(left), P.ScanNode(right), "k", "k")
        result = join.execute()
        assert len(result) == 0
        assert P.HashJoinNode._DEGRADED_PROBE in join.stats.notes

    def test_hashable_keys_leave_no_notes(self):
        rows = num_rows(10)
        join = P.HashJoinNode(P.ScanNode(rows), P.ScanNode(rows), "n", "n")
        assert len(join.execute()) == 10
        assert join.stats.notes == []


class TestLazyRowSet:
    def test_shared_stream_executes_once(self):
        scan = P.ScanNode(num_rows(50))
        lazy = P.LazyRowSet(scan)
        first = list(lazy.stream())
        second = list(lazy.stream())
        assert first == second
        assert scan.stats.opens == 1  # one execution feeds both consumers

    def test_interleaved_consumers_share_the_buffer(self):
        scan = P.ScanNode(num_rows(10))
        lazy = P.LazyRowSet(scan)
        a, b = lazy.stream(), lazy.stream()
        assert next(a)["n"] == 0
        assert next(b)["n"] == 0
        assert next(b)["n"] == 1
        assert next(a)["n"] == 1
        assert scan.stats.opens == 1

    def test_rowset_api_forces(self):
        lazy = P.LazyRowSet(P.ScanNode(num_rows(5)))
        assert not lazy.is_materialized
        assert len(lazy) == 5
        assert lazy.is_materialized
        assert lazy == num_rows(5)

    def test_error_poisons_every_later_demand(self):
        # One full good batch, then a divide-by-zero in the second batch:
        # the error strikes after rows are already buffered.
        good = P.BATCH_SIZE
        rows = RowSet.from_dicts(
            Schema([("n", "int"), ("d", "int")]),
            [{"n": i, "d": 1} for i in range(good)] + [{"n": good, "d": 0}],
        )
        node = P.RestrictNode(
            P.ScanNode(rows), parse_predicate("n / d >= 0.0", rows.schema)
        )
        lazy = P.LazyRowSet(node)
        stream = lazy.stream()
        for i in range(good):
            assert next(stream)["n"] == i
        with pytest.raises(EvaluationError):
            next(stream)
        # A fresh consumer cannot mistake the half-buffer for a result.
        assert lazy.buffered_rows() == good
        with pytest.raises(EvaluationError):
            lazy.force()
        assert not lazy.is_materialized

    def test_cache_node_streams_shared_buffer(self):
        scan = P.ScanNode(num_rows(20))
        lazy = P.LazyRowSet(scan)
        cached_a = P.CacheNode(lazy).execute()
        cached_b = P.CacheNode(lazy).execute()
        assert cached_a == cached_b
        assert scan.stats.opens == 1
        assert "Cache" in P.CacheNode(lazy).describe()

    def test_source_plan_reenters_lazy_sets(self):
        lazy = P.LazyRowSet(P.ScanNode(num_rows(3)))
        assert isinstance(P.source_plan(lazy), P.CacheNode)
        assert isinstance(P.source_plan(num_rows(3)), P.ScanNode)


class TestParityWithAlgebra:
    """Spot checks that one-node plans equal the algebra wrappers (the
    wrappers *are* these plans, so this guards the wiring)."""

    def test_group_by(self):
        rows = num_rows(10)
        node = P.GroupByNode(
            P.ScanNode(rows), ["label"], [("count", "n", "c")]
        )
        assert len(node.execute()) == 10

    def test_union_schema_mismatch(self):
        from repro.errors import SchemaError

        other = RowSet.from_dicts(Schema([("m", "int")]), [{"m": 1}])
        with pytest.raises(SchemaError):
            P.UnionNode(P.ScanNode(num_rows(2)), P.ScanNode(other))

    def test_sample_probability_validated(self):
        with pytest.raises(EvaluationError):
            P.SampleNode(P.ScanNode(num_rows(2)), 1.5)
