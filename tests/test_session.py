"""Unit tests: the UI session (ui.session, ui.menus, ui.undo)."""

from __future__ import annotations

import pytest

from repro.dbms.update import ScriptedDialog
from repro.errors import GraphError, UIError, UpdateError
from repro.ui.menus import PROGRAM_OPERATIONS, MenuBar
from repro.ui.session import Session
from repro.ui.undo import UndoStack


def la_map_session(session: Session):
    """Build the Figure-4 pipeline and a viewer; return (tail, window)."""
    stations = session.add_table("Stations")
    restrict = session.add_box("Restrict", {"predicate": "state = 'LA'"})
    session.connect(stations, "out", restrict, "in")
    sx = session.add_box("SetAttribute", {"name": "x", "definition": "longitude"})
    session.connect(restrict, "out", sx, "in")
    sy = session.add_box("SetAttribute", {"name": "y", "definition": "latitude"})
    session.connect(sx, "out", sy, "in")
    disp = session.add_box(
        "SetAttribute",
        {"name": "display", "definition": "filled_circle(3, 'blue')"},
    )
    session.connect(sy, "out", disp, "in")
    window = session.add_viewer(disp, name="map", width=200, height=160)
    window.viewer.pan_to(-91.8, 31.0)
    window.viewer.set_elevation(8.0)
    return disp, window


class TestProgramEditing:
    def test_add_table_validates_name(self, stations_session):
        with pytest.raises(Exception):
            stations_session.add_table("Ghost")

    def test_add_box_and_connect(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        stations_session.connect(stations, "out", restrict, "in")
        assert len(stations_session.inspect(restrict).rows) == 3

    def test_inspect_any_edge(self, stations_session):
        # §10: "a viewer can be installed on any arc in a diagram."
        tail, __ = la_map_session(stations_session)
        intermediate = stations_session.inspect(1)  # the AddTable source
        assert len(intermediate.rows) == 5

    def test_set_param_changes_result(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        stations_session.connect(stations, "out", restrict, "in")
        stations_session.set_param(restrict, "predicate", "state = 'TX'")
        assert len(stations_session.inspect(restrict).rows) == 1

    def test_apply_box_flow(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        edge = stations_session.connect(stations, "out", restrict, "in")
        candidates = stations_session.apply_box_candidates([edge])
        assert "Sample" in candidates
        sample = stations_session.apply_box([edge], "Sample",
                                            {"probability": 1.0})
        assert len(stations_session.inspect(sample).rows) == 5

    def test_delete_box_rules_enforced(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        stations_session.connect(stations, "out", restrict, "in")
        with pytest.raises(GraphError):
            stations_session.delete_box(stations)
        stations_session.delete_box(restrict)  # sink: legal

    def test_failed_delete_does_not_pollute_undo(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        stations_session.connect(stations, "out", restrict, "in")
        depth = len(stations_session.undo_stack)
        with pytest.raises(GraphError):
            stations_session.delete_box(stations)
        assert len(stations_session.undo_stack) == depth

    def test_replace_box(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        stations_session.connect(stations, "out", restrict, "in")
        stations_session.replace_box(restrict, "Sample", {"probability": 1.0})
        assert stations_session.program.box(restrict).type_name == "Sample"

    def test_insert_t(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        edge = stations_session.connect(stations, "out", restrict, "in")
        t_id = stations_session.insert_t(edge)
        assert len(stations_session.inspect(t_id, "out2").rows) == 5

    def test_encapsulate_and_reuse(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        stations_session.connect(stations, "out", restrict, "in")
        box = stations_session.encapsulate([restrict], "la_only")
        assert stations_session.database.has_box("la_only")
        # Use it via add_box.
        src2 = stations_session.add_table("Stations")
        encap = stations_session.add_box("la_only")
        stations_session.connect(src2, "out", encap, "in1")
        assert len(stations_session.inspect(encap, "out1").rows) == 3


class TestSaveLoadPrograms:
    def test_save_and_load(self, stations_session):
        tail, __ = la_map_session(stations_session)
        stations_session.program.name = "map-program"
        stations_session.save_program()
        stations_session.new_program("scratch")
        assert len(stations_session.program) == 0
        assert stations_session.windows == {}
        stations_session.load_program("map-program")
        assert len(stations_session.program) == 6
        # Viewer windows rebuilt from the loaded viewer boxes.
        assert "map" in stations_session.windows
        assert stations_session.window("map").render().count_nonbackground() >= 0

    def test_add_program_merges(self, stations_session):
        stations_session.add_table("Stations")
        stations_session.program.name = "lib"
        stations_session.save_program()
        stations_session.new_program("main")
        stations_session.add_table("Stations")
        stations_session.add_program("lib")
        assert len(stations_session.program) == 2


class TestUndo:
    def test_undo_reverts_last_operation(self, stations_session):
        stations_session.add_table("Stations")
        assert len(stations_session.program) == 1
        description = stations_session.undo()
        assert "AddTable" in description
        assert len(stations_session.program) == 0

    def test_undo_multi_level(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        stations_session.connect(stations, "out", restrict, "in")
        stations_session.undo()  # connect
        assert stations_session.program.edges() == []
        stations_session.undo()  # add restrict
        assert len(stations_session.program) == 1

    def test_undo_restores_params(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        stations_session.connect(stations, "out", restrict, "in")
        stations_session.set_param(restrict, "predicate", "state = 'TX'")
        stations_session.undo()
        assert (
            stations_session.program.box(restrict).param("predicate")
            == "state = 'LA'"
        )

    def test_undo_empty_stack(self, stations_session):
        with pytest.raises(UIError, match="nothing to undo"):
            stations_session.undo()

    def test_undo_closes_windows_added_by_operation(self, stations_session):
        tail, window = la_map_session(stations_session)
        assert "map" in stations_session.windows
        stations_session.undo()  # the add_viewer operation
        assert "map" not in stations_session.windows

    def test_undo_stack_class(self):
        stack = UndoStack(limit=2)
        stack.push("one", {})
        stack.push("two", {})
        stack.push("three", {})
        assert len(stack) == 2  # bounded
        assert stack.peek_description() == "three"
        stack.pop()
        stack.pop()
        with pytest.raises(UIError):
            stack.pop()


class TestCanvasWindows:
    def test_add_viewer_renders(self, stations_session):
        tail, window = la_map_session(stations_session)
        canvas = window.render()
        assert canvas.count_nonbackground() > 0

    def test_duplicate_canvas_name_rejected(self, stations_session):
        tail, __ = la_map_session(stations_session)
        with pytest.raises(UIError, match="already exists"):
            stations_session.add_viewer(tail, name="map")

    def test_delete_viewer(self, stations_session):
        tail, window = la_map_session(stations_session)
        stations_session.delete_viewer("map")
        assert "map" not in stations_session.windows
        assert window.viewer_box_id not in stations_session.program

    def test_iconify(self, stations_session):
        __, window = la_map_session(stations_session)
        window.iconify()
        assert window.iconified
        window.deiconify()
        assert not window.iconified

    def test_magnifier_via_window(self, stations_session):
        __, window = la_map_session(stations_session)
        glass = window.add_magnifier(rect=(20, 20, 60, 50), magnification=2.0)
        canvas = window.render()
        assert canvas.pixel(20, 20) == (64, 64, 64)  # frame drawn
        window.remove_magnifier(glass)
        assert window.magnifiers == []

    def test_first_viewer_becomes_current_canvas(self, stations_session):
        la_map_session(stations_session)
        assert stations_session.navigator.current_canvas == "map"


class TestMenus:
    def test_operations_menu_contents(self, stations_db):
        menu = MenuBar(stations_db)
        operations = menu.operations_menu()
        for op in PROGRAM_OPERATIONS:
            assert op in operations
        assert "Restrict" in operations
        assert "_Const" not in operations
        assert "Hole" not in operations

    def test_tables_menu(self, stations_db):
        assert MenuBar(stations_db).tables_menu() == ["Stations"]

    def test_boxes_menu_includes_catalog_boxes(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "true"}
        )
        stations_session.connect(stations, "out", restrict, "in")
        stations_session.encapsulate([restrict], "my_box")
        menu = stations_session.menu.boxes_menu()
        assert "my_box" in menu
        assert "Restrict" in menu

    def test_help_for_boxes(self, stations_db):
        text = MenuBar(stations_db).help("Restrict")
        assert "predicate" in text.lower()

    def test_help_for_program_operations(self, stations_db):
        menu = MenuBar(stations_db)
        for op in PROGRAM_OPERATIONS:
            assert len(menu.help(op)) > 10

    def test_help_unknown_topic(self, stations_db):
        with pytest.raises(UIError):
            MenuBar(stations_db).help("Teleport")


class TestScreenUpdates:
    def test_update_through_click(self, stations_session):
        # §8: click a screen object, edit a field, the database changes and
        # the visualization refreshes.
        tail, window = la_map_session(stations_session)
        result = window.viewer.render()
        item = result.all_items()[0]
        cx = (item.bbox[0] + item.bbox[2]) / 2
        cy = (item.bbox[1] + item.bbox[3]) / 2
        outcome = stations_session.update_at(
            "map", cx, cy, {"altitude": "999.0"}
        )
        assert outcome.applied
        table = stations_session.database.table("Stations")
        updated = [r for r in table if r["altitude"] == 999.0]
        assert len(updated) == 1

    def test_update_miss_rejected(self, stations_session):
        la_map_session(stations_session)
        with pytest.raises(UpdateError, match="nothing under"):
            stations_session.update_at("map", 1.0, 1.0, {})

    def test_update_refreshes_visualization(self, stations_session):
        tail, window = la_map_session(stations_session)
        result = window.viewer.render()
        item = result.all_items()[0]
        cx = (item.bbox[0] + item.bbox[2]) / 2
        cy = (item.bbox[1] + item.bbox[3]) / 2
        # Move the station far away; it must leave the frame on re-render.
        before = len(window.viewer.render().all_items())
        stations_session.update_at("map", cx, cy, {"longitude": "-150.0"})
        after = len(window.viewer.render().all_items())
        assert after == before - 1

    def test_custom_update_command(self, stations_session):
        tail, window = la_map_session(stations_session)
        calls = []

        def custom(table, row, dialog):
            calls.append(row["name"])
            from repro.dbms.update import UpdateResult

            return UpdateResult(False, row, row)

        # Install the custom command on the relation flowing into the viewer.
        custom_box = stations_session.add_box(
            "SetRange", {"minimum": 0.0, "maximum": 1e9}
        )
        # Rebuild: viewer must see a relation with the command; easiest is a
        # direct item-level call.
        result = window.viewer.render()
        item = result.all_items()[0]
        relation = stations_session._find_relation("map", item.relation_name)
        assert relation is not None
        # Wire a custom command through update_item by monkeypatching the
        # found relation's command.
        relation.update_command = custom
        outcome = stations_session.update_item("map", item, {"altitude": "1"})
        assert not outcome.applied
        assert calls  # custom command ran instead of generic_update

    def test_derived_relation_not_updatable(self, stations_session):
        a = stations_session.add_table("Stations")
        b = stations_session.add_table("Stations")
        join = stations_session.add_box(
            "Join", {"left_key": "station_id", "right_key": "station_id"}
        )
        stations_session.connect(a, "out", join, "left")
        stations_session.connect(b, "out", join, "right")
        window = stations_session.add_viewer(join, name="joined",
                                             width=300, height=200)
        window.viewer.pan_to(400.0, -2.0)
        window.viewer.set_elevation(900.0)
        result = window.viewer.render()
        items = result.all_items()
        assert items, "expected the default table view to render"
        with pytest.raises(UpdateError, match="not backed"):
            stations_session.update_item("joined", items[0], {})
