"""Plan-IR invariant verification (repro.analyze.planverify): well-formed
plans verify clean; corrupted plans are caught before execution; the
REPRO_PLAN_VERIFY=1 hook wires the verifier into PlanNode.open()."""

from __future__ import annotations

import pytest

from repro.analyze.planverify import (
    assert_valid_plan,
    install_from_env,
    verify_plan,
)
from repro.dbms import plan as P
from repro.dbms.parser import parse_predicate
from repro.dbms.plan_rewrite import optimize_plan
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema
from repro.errors import StaticAnalysisError

NUMS = Schema([("n", "int"), ("label", "text")])
MORE = Schema([("n", "int"), ("extra", "float")])


def num_rows(count: int) -> RowSet:
    return RowSet.from_dicts(
        NUMS, [{"n": i, "label": f"row{i}"} for i in range(count)]
    )


def more_rows(count: int) -> RowSet:
    return RowSet.from_dicts(
        MORE, [{"n": i, "extra": i * 0.5} for i in range(count)]
    )


def restrict_over(rows: RowSet, source: str) -> P.RestrictNode:
    return P.RestrictNode(
        P.ScanNode(rows), parse_predicate(source, rows.schema)
    )


def deep_plan() -> P.PlanNode:
    """Exercise one of every streaming operator class."""
    left = P.ProjectNode(restrict_over(num_rows(50), "n < 40"), ["n", "label"])
    right = P.ScanNode(more_rows(30))
    join = P.HashJoinNode(left, right, "n", "n")
    renamed = P.RenameNode(join, "extra", "weight")
    ordered = P.OrderByNode(renamed, ["n"], descending=True)
    return P.LimitNode(P.DistinctNode(ordered), 10)


class TestCleanPlans:
    def test_deep_plan_verifies(self):
        report = verify_plan(deep_plan())
        assert report.ok and len(report) == 0

    def test_every_operator_class(self):
        scan = P.ScanNode(num_rows(20))
        plans = [
            restrict_over(num_rows(5), "n < 3"),
            P.SampleNode(scan, 0.5, seed=7),
            P.GroupByNode(
                P.ScanNode(num_rows(10)), ["label"], [("sum", "n", "total")]
            ),
            P.UnionNode(P.ScanNode(num_rows(3)), P.ScanNode(num_rows(4))),
            P.CrossProductNode(P.ScanNode(num_rows(2)),
                               P.ScanNode(more_rows(2))),
            P.NestedLoopJoinNode(P.ScanNode(num_rows(3)),
                                 P.ScanNode(more_rows(3)), "n", "n"),
            P.CacheNode(P.LazyRowSet(P.ScanNode(num_rows(5)))),
        ]
        for plan in plans:
            assert verify_plan(plan).ok, plan.describe()

    def test_theta_join_verifies(self):
        theta = P.ThetaJoinNode(
            P.ScanNode(num_rows(4)), P.ScanNode(more_rows(4)),
            "n < right_n",
        )
        assert verify_plan(theta).ok

    def test_assert_valid_plan_on_good_plan(self):
        assert_valid_plan(deep_plan())  # does not raise


class TestCorruptedPlans:
    def test_project_with_phantom_name(self):
        plan = P.ProjectNode(P.ScanNode(num_rows(5)), ["n"])
        plan._names = ("n", "phantom")  # corrupt after construction
        report = verify_plan(plan)
        assert "T2-E111" in report.codes()

    def test_predicate_not_closed_over_schema(self):
        plan = restrict_over(num_rows(5), "n < 3")
        # Projecting away a column the predicate uses, *below* the restrict.
        plan._children = (P.ProjectNode(P.ScanNode(num_rows(5)), ["label"]),)
        report = verify_plan(plan)
        findings = report.by_code("T2-E111")
        assert findings
        assert any("n" in d.message for d in findings)

    def test_schema_not_matching_children(self):
        plan = P.ProjectNode(P.ScanNode(num_rows(5)), ["n"])
        plan._schema = NUMS  # claims both columns survive projection
        assert not verify_plan(plan).ok

    def test_union_schema_mismatch(self):
        union = P.UnionNode(P.ScanNode(num_rows(3)), P.ScanNode(num_rows(3)))
        union._children = (P.ScanNode(num_rows(3)), P.ScanNode(more_rows(3)))
        assert not verify_plan(union).ok

    def test_limit_negative_count(self):
        plan = P.LimitNode(P.ScanNode(num_rows(5)), 3)
        plan._count = -2
        assert not verify_plan(plan).ok

    def test_children_list_instead_of_tuple(self):
        plan = P.ProjectNode(P.ScanNode(num_rows(5)), ["n"])
        plan._children = list(plan._children)
        report = verify_plan(plan)
        assert any("tuple" in d.message for d in report)

    def test_cycle_detected(self):
        a = P.DistinctNode(P.ScanNode(num_rows(3)))
        b = P.DistinctNode(a)
        a._children = (b,)  # a <-> b
        report = verify_plan(b)
        assert any("cycle" in d.message.lower() for d in report)

    def test_assert_valid_plan_raises_with_report(self):
        plan = P.ProjectNode(P.ScanNode(num_rows(5)), ["n"])
        plan._names = ("ghost",)
        with pytest.raises(StaticAnalysisError) as exc:
            assert_valid_plan(plan)
        assert exc.value.report is not None
        assert "T2-E111" in exc.value.report.codes()


class TestRewriteSafety:
    def test_optimizer_output_verifies(self):
        plan = P.ProjectNode(
            restrict_over(num_rows(100), "n < 50"), ["n"]
        )
        optimized, _log = optimize_plan(plan)
        assert verify_plan(optimized).ok
        # Rewrites preserve the root schema.
        assert optimized.schema.names == ("n",)

    def test_optimizer_runs_installed_verifier(self):
        calls = []
        P.set_plan_verifier(lambda node: calls.append(node))
        try:
            optimize_plan(restrict_over(num_rows(10), "n < 5"))
        finally:
            P.set_plan_verifier(None)
        assert calls  # the verifier hook observed the optimized plan


class TestEnvironmentHook:
    def teardown_method(self):
        P.set_plan_verifier(None)

    def test_install_from_env_off(self):
        assert install_from_env({}) is False
        assert P.plan_verifier() is None

    def test_install_from_env_on(self):
        assert install_from_env({"REPRO_PLAN_VERIFY": "1"}) is True
        assert P.plan_verifier() is not None

    def test_open_hook_rejects_corrupt_plan(self):
        install_from_env({"REPRO_PLAN_VERIFY": "1"})
        plan = P.ProjectNode(P.ScanNode(num_rows(5)), ["n"])
        plan._names = ("ghost",)
        with pytest.raises(StaticAnalysisError):
            plan.execute()

    def test_open_hook_passes_good_plan(self):
        install_from_env({"REPRO_PLAN_VERIFY": "1"})
        result = restrict_over(num_rows(10), "n < 4").execute()
        assert len(result) == 4
