"""Tests: the stable ``repro.api`` facade and package-root routing.

``repro.api`` is the supported import surface (docs/API.md); the package
root re-exports through it.  These tests pin the contract: every advertised
name is importable, ``open_db`` works, the root routes through the facade,
and deep module imports keep working for internal use.
"""

from __future__ import annotations

import pytest

import repro
import repro.api as api


class TestFacadeSurface:
    def test_all_names_resolve(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_core_workflow_types_exported(self):
        for name in ("Database", "Session", "Engine", "Program", "Viewer",
                     "Scenario", "TiogaError", "open_db",
                     "build_weather_database", "explain", "explain_data"):
            assert name in api.__all__

    def test_parallel_knobs_exported(self):
        for name in ("ParallelConfig", "config_from_env", "default_config",
                     "set_default_config", "result_cache"):
            assert name in api.__all__

    def test_box_catalog_exported(self):
        for name in ("AddTableBox", "RestrictBox", "ProjectBox", "JoinBox",
                     "OverlayBox", "StitchBox", "ReplicateBox",
                     "AggregateBox", "UnionBox"):
            assert name in api.__all__


class TestOpenDb:
    def test_default_is_empty_database(self):
        db = api.open_db()
        assert db.table_names() == []

    def test_named_database(self):
        db = api.open_db("mydb")
        assert db.name == "mydb"

    def test_weather_builds_the_paper_dataset(self):
        db = api.open_db("weather")
        assert "Stations" in db.table_names()
        assert len(db.table("Stations")) > 0


class TestRootRouting:
    def test_root_reexports_are_facade_objects(self):
        for name in ("Database", "Session", "Engine", "Program", "Viewer",
                     "open_db", "build_weather_database"):
            assert getattr(repro, name) is getattr(api, name), name

    def test_root_all_subset_of_facade_plus_extras(self):
        extras = {"TiogaError", "__version__"}
        for name in repro.__all__:
            assert name in api.__all__ or name in extras, name


class TestDeepImportsStillWork:
    """Internals stay importable — the facade adds a surface, removes none."""

    def test_plan_layer(self):
        from repro.dbms.plan import LazyRowSet, PlanNode  # noqa: F401

    def test_engine_layer(self):
        from repro.dataflow.engine import Engine as DeepEngine

        assert DeepEngine is api.Engine

    def test_parallel_layer(self):
        from repro.dbms.plan_parallel import ParallelConfig as DeepConfig

        assert DeepConfig is api.ParallelConfig


class TestEndToEndThroughFacade:
    def test_quickstart_shape(self):
        db = api.open_db("weather")
        program = api.Program("facade")
        source = program.add_box(api.AddTableBox(table="Stations"))
        keep = program.add_box(api.RestrictBox(predicate="latitude > 40"))
        program.connect(source, "out", keep, "in")
        engine = api.Engine(program, db, workers=4)
        rows = engine.output_of(keep).rows.force()
        assert rows
        assert all(row["latitude"] > 40 for row in rows)
