"""Unit tests: the canvas-window furniture widgets (render.widgets)."""

from __future__ import annotations

import pytest

from repro.core.scenarios import build_fig4_station_map, build_fig7_overlay
from repro.render.widgets import (
    render_elevation_map,
    render_slider_bar,
    render_window_frame,
)


class TestElevationMapWidget:
    def test_one_bar_per_component(self, weather_db):
        scenario = build_fig7_overlay(weather_db)
        window = scenario.window()
        canvas = render_elevation_map(window.elevation_map(), 6.0)
        assert canvas.count_nonbackground() > 100
        # Bars painted in the bar color.
        assert (90, 120, 170) in canvas.colors_used()

    def test_elevation_control_dashed_line(self, weather_db):
        scenario = build_fig7_overlay(weather_db)
        window = scenario.window()
        canvas = render_elevation_map(window.elevation_map(), 6.0)
        assert (200, 40, 40) in canvas.colors_used()

    def test_control_moves_with_elevation(self, weather_db):
        scenario = build_fig7_overlay(weather_db)
        emap = scenario.window().elevation_map()

        def control_rows(elevation):
            canvas = render_elevation_map(emap, elevation)
            pixels = canvas.pixels
            rows = set()
            for y in range(canvas.height):
                row = pixels[y]
                if ((row == (200, 40, 40)).all(axis=1)).any():
                    rows.add(y)
            return min(rows)

        # Higher elevation → line nearer the top (smaller y).
        assert control_rows(20.0) < control_rows(2.0)

    def test_underside_bars_colored_differently(self, weather_db):
        from repro.core.scenarios import build_fig8_wormholes

        scenario = build_fig8_wormholes(weather_db)
        emap = scenario["map_window"].elevation_map()
        canvas = render_elevation_map(emap, 6.0)
        assert (170, 120, 90) in canvas.colors_used()  # the return wormholes


class TestSliderBarWidget:
    def test_full_range_fills_track(self):
        full = render_slider_bar("Altitude", (float("-inf"), float("inf")),
                                 (0.0, 100.0))
        narrow = render_slider_bar("Altitude", (40.0, 60.0), (0.0, 100.0))
        assert full.count_nonbackground() > narrow.count_nonbackground()

    def test_label_painted(self):
        canvas = render_slider_bar("Altitude", (0.0, 1.0), (0.0, 1.0))
        assert canvas.count_nonbackground() > 20

    def test_degenerate_data_range(self):
        canvas = render_slider_bar("x", (0.0, 0.0), (5.0, 5.0))
        assert canvas.count_nonbackground() > 0


class TestWindowFrame:
    def test_frame_composites_all_furniture(self, weather_db):
        scenario = build_fig4_station_map(weather_db)
        window = scenario.window()
        frame = render_window_frame(window)
        assert frame.width > window.viewer.width
        assert frame.height > window.viewer.height  # slider strip added
        # Content region, elevation map region, and slider strip all painted.
        assert frame.region_nonbackground(0, 0, window.viewer.width,
                                          window.viewer.height) > 0
        assert frame.region_nonbackground(window.viewer.width, 0,
                                          frame.width, 200) > 0
        assert frame.region_nonbackground(0, window.viewer.height,
                                          window.viewer.width,
                                          frame.height) > 0

    def test_frame_without_sliders(self, weather_db):
        scenario = build_fig7_overlay(weather_db)
        window = scenario.window()
        frame = render_window_frame(window)
        assert frame.count_nonbackground() > 0
