"""Tests: lineage capture, the why-provenance walk, and the overhead budget.

The acceptance criteria pinned here: identity-breaking operators record
output → input mappings into ring-capped per-node stores; :func:`why` on the
fig4 scatter traces a picked mark to the exact base-table rows; the row,
columnar, and parallel backends agree on lineage for randomized plans (a
30-seed property test); the disabled-path cost stays under 5% of a render;
and the CLI surface (``repro why``, ``repro stats --json`` pre-registration)
holds its contract.
"""

from __future__ import annotations

import json
import random
from time import perf_counter

import pytest

from repro import cli
from repro.dbms import plan as P
from repro.dbms.columnar import ColumnarConfig
from repro.dbms.parser import parse_predicate
from repro.dbms.plan_parallel import ParallelConfig, parallelize_plan
from repro.dbms.plan_rewrite import columnarize_plan
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema
from repro.obs import Tracer, push_tracer
from repro.obs.lineage import (
    DEFAULT_MAX_MAPPINGS,
    DROPPED_COUNTER,
    LINEAGE_SCHEMA,
    MAPPINGS_COUNTER,
    WALKS_COUNTER,
    LineageConfig,
    LineageStore,
    _Incomplete,
    _Walker,
    active_lineage,
    lineage_capture,
    lineage_config_from_env,
    render_why,
    resolve_lineage_config,
    set_default_lineage_config,
    why,
)
from repro.obs.metrics import global_registry

DATA = Schema([("n", "int"), ("g", "int"), ("v", "int")])


def data_rows(count: int, groups: int = 3) -> RowSet:
    return RowSet.from_dicts(
        DATA,
        [{"n": i, "g": i % groups, "v": i * 7 % 50} for i in range(count)],
    )


def fig4_window(db):
    scenario = cli._FIGURES["fig4"](db)
    session = scenario.session
    return session.window(sorted(session.windows)[0])


def mark_center(window):
    item = window.viewer.render().all_items()[0]
    x0, y0, x1, y1 = item.bbox
    return (x0 + x1) / 2, (y0 + y1) / 2, item


class TestConfig:
    def test_env_off_means_none(self):
        for env in ({}, {"REPRO_LINEAGE": ""}, {"REPRO_LINEAGE": "0"}):
            assert lineage_config_from_env(env) is None

    def test_env_on_with_cap_override(self):
        config = lineage_config_from_env(
            {"REPRO_LINEAGE": "1", "REPRO_LINEAGE_MAX": "123"})
        assert config is not None
        assert config.max_mappings == 123

    def test_env_bad_cap_falls_back_to_default(self):
        config = lineage_config_from_env(
            {"REPRO_LINEAGE": "1", "REPRO_LINEAGE_MAX": "lots"})
        assert config.max_mappings == DEFAULT_MAX_MAPPINGS

    def test_cap_floor_is_one(self):
        assert LineageConfig(max_mappings=0).max_mappings == 1

    def test_resolve_trio_mirrors_columnar_convention(self):
        previous = set_default_lineage_config(None)
        try:
            assert resolve_lineage_config(None) is None
            assert resolve_lineage_config(False) is None
            assert isinstance(resolve_lineage_config(True), LineageConfig)
            explicit = LineageConfig(max_mappings=7)
            assert resolve_lineage_config(explicit) is explicit
            set_default_lineage_config(explicit)
            assert resolve_lineage_config(None) is explicit
            assert resolve_lineage_config(True) is explicit
            assert resolve_lineage_config(False) is None
        finally:
            set_default_lineage_config(previous)


class TestStoreAndCapture:
    def test_record_and_identity_lookup(self):
        rows = list(data_rows(4))
        with lineage_capture(LineageConfig()) as state:
            store = LineageStore(state)
            store.record(rows[2], (rows[0], rows[1]), tag=1)
            assert store.lookup(rows[2]) == ((rows[0], rows[1]), 1)
            assert len(store) == 1
            # Lookup matches by identity, not value: an equal twin misses.
            twin = list(data_rows(4))[2]
            assert twin == rows[2]
            assert store.lookup(twin) is None

    def test_ring_cap_evicts_oldest_and_counts_drops(self):
        rows = list(data_rows(6))
        with lineage_capture(LineageConfig(max_mappings=2)) as state:
            store = LineageStore(state)
            for out in rows[:3]:
                store.record(out, (rows[3],))
            assert len(store) == 2
            assert state.dropped == 1
            assert store.lookup(rows[0]) is None        # evicted first
            assert store.lookup(rows[2]) is not None

    def test_capture_exit_flushes_counters(self):
        rows = list(data_rows(4))
        mappings = global_registry().counter(*MAPPINGS_COUNTER)
        dropped = global_registry().counter(*DROPPED_COUNTER)
        before = mappings.total(), dropped.total()
        with lineage_capture(LineageConfig(max_mappings=2)) as state:
            store = LineageStore(state)
            for out in rows[:3]:
                store.record(out, (rows[3],))
        assert mappings.total() == before[0] + 3
        assert dropped.total() == before[1] + 1
        assert state.recorded == 0                       # tallies flushed

    def test_disabled_capture_yields_none(self):
        with lineage_capture(False) as state:
            assert state is None

    def test_nested_captures_restore_previous(self):
        ambient = active_lineage()
        with lineage_capture(True) as outer:
            assert active_lineage() is outer
            with lineage_capture(True) as inner:
                assert active_lineage() is inner
            assert active_lineage() is outer
        assert active_lineage() is ambient


class TestOperatorCapture:
    def test_identity_preserving_ops_record_nothing(self):
        rows = data_rows(10)
        node = P.RestrictNode(
            P.ScanNode(rows, name="T"), parse_predicate("n % 2 == 0", DATA))
        with lineage_capture(True) as state:
            out = list(node.rows_iter())
            assert state.recorded == 0
        stored = list(rows)
        assert all(any(o is r for r in stored) for o in out)

    def test_project_records_one_to_one(self):
        rows = data_rows(8)
        node = P.ProjectNode(P.ScanNode(rows, name="T"), ["n"])
        with lineage_capture(True):
            out = list(node.rows_iter())
        store = node.lineage
        assert store is not None and len(store) == len(out)
        stored = list(rows)
        for pos, o in enumerate(out):
            (source,), __ = store.lookup(o)
            assert source is stored[pos]

    def test_groupby_records_every_member(self):
        rows = data_rows(9, groups=3)
        node = P.GroupByNode(
            P.ScanNode(rows, name="T"), ["g"], [("count", "n", "cnt")])
        with lineage_capture(True):
            out = list(node.rows_iter())
        store = node.lineage
        members = [store.lookup(o)[0] for o in out]
        assert sum(len(group) for group in members) == 9
        for o, group in zip(out, members):
            assert all(row["g"] == o["g"] for row in group)

    def test_union_walk_routes_to_the_producing_side(self):
        left, right = data_rows(3), data_rows(4)
        node = P.UnionNode(
            P.ScanNode(left, name="L"), P.ScanNode(right, name="R"))
        with lineage_capture(True):
            out = list(node.rows_iter())
        walker = _Walker()
        walker.walk(node, out[0])
        walker.walk(node, out[-1])
        assert [table for table, __ in walker.rows] == ["L", "R"]

    def test_join_walk_reaches_both_sides(self):
        left, right = data_rows(6), data_rows(6)
        node = P.HashJoinNode(
            P.ScanNode(left, name="L"), P.ScanNode(right, name="R"),
            "n", "n")
        with lineage_capture(True):
            out = list(node.rows_iter())
        walker = _Walker()
        walker.walk(node, out[0])
        assert sorted(table for table, __ in walker.rows) == ["L", "R"]

    def test_explain_annotates_store_sizes(self):
        node = P.ProjectNode(P.ScanNode(data_rows(5), name="T"), ["n"])
        with lineage_capture(True):
            list(node.rows_iter())
        assert "lineage=5" in P.explain_plan(node)


class TestWhyOnFigures:
    def test_fig4_mark_traces_to_station_rows(self, weather_db):
        window = fig4_window(weather_db)
        px, py, item = mark_center(window)
        doc = why(window, px, py)
        assert doc["schema"] == LINEAGE_SCHEMA
        assert doc["picked"] and doc["complete"]
        assert doc["mark"]["relation"] == item.relation_name
        assert doc["rows"]
        assert all(entry["table"] == "Stations" for entry in doc["rows"])
        # Restrict/Scan is identity-preserving: the base row IS the mark's.
        expected = dict(zip(item.row.schema.names, item.row.values))
        assert doc["rows"][0]["values"] == expected

    def test_why_counts_walks(self, weather_db):
        window = fig4_window(weather_db)
        walks = global_registry().counter(*WALKS_COUNTER)
        before = walks.total()
        why(window, -10.0, -10.0)
        assert walks.total() == before + 1

    def test_miss_reports_unpicked(self, weather_db):
        window = fig4_window(weather_db)
        doc = why(window, -10.0, -10.0)
        assert not doc["picked"] and not doc["complete"]
        assert doc["rows"] == [] and doc["path"] is None
        assert "no mark at" in render_why(doc)

    def test_render_why_tree_shape(self, weather_db):
        window = fig4_window(weather_db)
        px, py, __ = mark_center(window)
        text = render_why(why(window, px, py))
        assert "mark at" in text
        assert "Scan" in text and "<- table 'Stations'" in text
        assert "base row(s)" in text
        assert "(provenance incomplete)" not in text


class TestReplay:
    def test_uncaptured_run_replays_to_the_same_base_row(self, monkeypatch):
        # Simulate a plan that executed with capture off (also neutralizes
        # the REPRO_LINEAGE=1 CI leg's ambient capture for this test).
        monkeypatch.setattr("repro.obs.lineage._ACTIVE", None)
        rows = data_rows(10)
        lazy = P.LazyRowSet(
            P.ProjectNode(P.ScanNode(rows, name="T"), ["n", "v"]))
        out = list(lazy)
        walker = _Walker()
        walker.walk_lazy(lazy, out[3])
        assert walker.replayed
        assert len(walker.rows) == 1
        table, base = walker.rows[0]
        assert table == "T" and base["n"] == 3

    def test_unseeded_sample_blocks_replay(self, monkeypatch):
        monkeypatch.setattr("repro.obs.lineage._ACTIVE", None)
        rows = data_rows(30)
        lazy = P.LazyRowSet(
            P.ProjectNode(
                P.SampleNode(P.ScanNode(rows, name="T"), 0.9, seed=None),
                ["n"]))
        out = list(lazy)
        assert out, "expected the 90% sample to keep some of 30 rows"
        with pytest.raises(_Incomplete):
            _Walker().walk_lazy(lazy, out[0])


class TestCrossBackendProperty:
    """Acceptance: identical base rows under row/columnar/parallel backends."""

    @pytest.mark.parametrize("seed", range(30))
    def test_backends_agree_on_base_rows(self, seed):
        rng = random.Random(seed)
        count = rng.randrange(40, 120)
        groups = rng.choice([3, 5, 7])
        mod = rng.choice([2, 3, 4])
        rows = RowSet.from_dicts(
            DATA,
            [{"n": i, "g": i % groups, "v": rng.randrange(100)}
             for i in range(count)],
        )

        def build() -> P.PlanNode:
            scan = P.ScanNode(rows, name="Base")
            kept = P.RestrictNode(
                scan, parse_predicate(f"n % {mod} == 0", DATA))
            return P.GroupByNode(
                kept, ["g"], [("count", "n", "cnt"), ("sum", "v", "total")])

        def run(root: P.PlanNode):
            with lineage_capture(True):
                return list(root.rows_iter())

        def base_rows(root: P.PlanNode, out, index: int):
            walker = _Walker()
            walker.walk(root, out[index])
            assert all(table == "Base" for table, __ in walker.rows)
            return sorted(tuple(row.values) for __, row in walker.rows)

        serial_root = build()
        serial_out = run(serial_root)
        assert serial_out
        index = rng.randrange(len(serial_out))
        expected = base_rows(serial_root, serial_out, index)
        assert expected, "a group must trace to at least one base row"

        columnar_root, __ = columnarize_plan(build(), ColumnarConfig())
        columnar_out = run(columnar_root)
        assert columnar_out == serial_out
        assert base_rows(columnar_root, columnar_out, index) == expected

        parallel_root, __ = parallelize_plan(
            build(),
            ParallelConfig(workers=4, morsel_size=16, min_partition_rows=1),
        )
        parallel_out = run(parallel_root)
        assert parallel_out == serial_out
        assert base_rows(parallel_root, parallel_out, index) == expected


class TestEngineKnob:
    def _program(self):
        from repro.dataflow.boxes_db import AddTableBox, ProjectBox
        from repro.dataflow.graph import Program

        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        proj = program.add_box(ProjectBox(fields=["name", "state"]))
        program.connect(src, "out", proj, "in")
        return program, proj

    def test_lineage_kwarg_resolves_like_columnar(self, weather_db):
        from repro.dataflow.engine import Engine

        previous = set_default_lineage_config(None)
        try:
            program, __ = self._program()
            assert Engine(program, weather_db).lineage is None
            enabled = Engine(program, weather_db, lineage=True)
            assert isinstance(enabled.lineage, LineageConfig)
            assert Engine(program, weather_db, lineage=False).lineage is None
            explicit = LineageConfig(max_mappings=9)
            assert Engine(
                program, weather_db, lineage=explicit).lineage is explicit
        finally:
            set_default_lineage_config(previous)

    def test_engine_forces_under_capture(self, weather_db):
        from repro.dataflow.engine import Engine

        program, proj = self._program()
        engine = Engine(program, weather_db, lineage=True)
        mappings = global_registry().counter(*MAPPINGS_COUNTER)
        before = mappings.total()
        rows = engine.output_of(proj).rows
        assert len(rows) > 0
        assert mappings.total() >= before + len(rows)


class TestOverheadBudget:
    def test_disabled_lineage_under_five_percent_of_fig4(self, weather_db):
        # Analytic bound, mirroring the tracer's: the disabled path is one
        # active_lineage() read per operator open, and operator opens are
        # bounded by the spans an enabled render records.  (span count) x
        # (measured per-call cost) must stay under 5% of the render time.
        scenario = cli._FIGURES["fig4"](weather_db)
        session = scenario.session
        name = sorted(session.windows)[0]
        tracer = Tracer(enabled=True)
        session.engine.invalidate()
        with push_tracer(tracer):
            session.window(name).render()
        span_count = len(tracer.finished())

        calls = 50_000
        start = perf_counter()
        for __ in range(calls):
            active_lineage()
        per_call_s = (perf_counter() - start) / calls

        best = min(_timed(lambda: (session.engine.invalidate(),
                                   session.window(name).render()))
                   for __ in range(3))
        assert span_count * per_call_s < 0.05 * best, (
            f"{span_count} opens x {per_call_s * 1e9:.0f}ns "
            f"vs render {best * 1e3:.1f}ms"
        )


def _timed(fn):
    start = perf_counter()
    fn()
    return perf_counter() - start


class TestEpochGauge:
    def test_mutation_publishes_labeled_gauge(self):
        from repro.dbms.relation import Table, table_epoch

        table = Table("GaugeT", DATA)
        table.insert({"n": 1, "g": 0, "v": 0})
        gauge = global_registry().get("storage.epoch")
        assert gauge is not None
        assert gauge.value(label="GaugeT") == table_epoch("GaugeT")

    def test_metrics_recorder_samples_per_table_series(self):
        from repro.dbms.relation import Table, table_epoch
        from repro.obs import MetricsRecorder

        table = Table("GaugeSampled", DATA)
        table.insert({"n": 1, "g": 0, "v": 0})
        recorder = MetricsRecorder()
        recorder.sample()
        series = recorder.series("storage.epoch|GaugeSampled")
        assert series is not None
        assert series.points()[-1][1] == table_epoch("GaugeSampled")


class TestCLI:
    @pytest.fixture(scope="class")
    def cli_pixel(self):
        # The CLI builds its own database; compute a hit pixel under the
        # same construction parameters as _cmd_why.
        from repro.data.weather import build_weather_database

        db = build_weather_database(extra_stations=40, every_days=30)
        window = fig4_window(db)
        px, py, __ = mark_center(window)
        return px, py

    def test_why_json_document(self, capsys, cli_pixel):
        px, py = cli_pixel
        assert cli.main(
            ["why", "--px", str(px), "--py", str(py), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == LINEAGE_SCHEMA
        assert doc["picked"] and doc["complete"]
        assert doc["rows"] and doc["rows"][0]["table"] == "Stations"

    def test_why_human_tree(self, capsys, cli_pixel):
        px, py = cli_pixel
        assert cli.main(["why", "--px", str(px), "--py", str(py)]) == 0
        out = capsys.readouterr().out
        assert "mark at" in out and "base row(s)" in out

    def test_why_strict_miss_fails(self, capsys):
        assert cli.main(
            ["why", "--px", "-10", "--py", "-10", "--strict"]) == 1
        assert "no mark at" in capsys.readouterr().out

    def test_stats_json_preregisters_lineage_counters(self, capsys):
        # PR-5/PR-7 convention: cold runs still emit the full counter set.
        assert cli.main(["stats", "--figure", "fig4", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        for counter in ("lineage.mappings", "lineage.dropped",
                        "lineage.walks"):
            assert counter in summary["metrics"], counter
