"""Unit tests: session conveniences added around the core operations —
viewers on edges (§10), elevation-map cycling (§6.1), like() predicates."""

from __future__ import annotations

import pytest

from repro.dbms.parser import parse_expression
from repro.dbms.tuples import Schema, Tuple
from repro.ui.session import Session


class TestViewerOnEdge:
    def test_debugging_viewer_taps_edge(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "state = 'LA'"}
        )
        edge = stations_session.connect(stations, "out", restrict, "in")
        window = stations_session.viewer_on_edge(edge, name="probe",
                                                 width=320, height=200)
        # The probe sees the pre-restrict data...
        window.viewer.pan_to(250.0, -2.0)
        window.viewer.set_elevation(600.0)
        assert window.render().count_nonbackground() > 0
        # ...and the original dataflow still works through the inserted T.
        assert len(stations_session.inspect(restrict).rows) == 3

    def test_edge_viewer_is_undoable(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "true"}
        )
        edge = stations_session.connect(stations, "out", restrict, "in")
        stations_session.viewer_on_edge(edge, name="probe")
        stations_session.undo()  # the viewer
        stations_session.undo()  # the T
        assert stations_session.windows == {}
        assert len(stations_session.program.boxes_of_type("T")) == 0
        assert len(stations_session.inspect(restrict).rows) == 5


class TestElevationMapCycling:
    def build_group_window(self, session: Session):
        a = session.add_table("Stations")
        b = session.add_table("Stations")
        stitch = session.add_box(
            "Stitch", {"arity": 2, "names": ["first", "second"]}
        )
        session.connect(a, "out", stitch, "c1")
        session.connect(b, "out", stitch, "c2")
        return session.add_viewer(stitch, name="pair", width=200, height=100)

    def test_cycling_advances_member(self, stations_session):
        window = self.build_group_window(stations_session)
        first_map = window.elevation_map()
        assert len(first_map) == 1
        member = window.cycle_elevation_map()
        assert member == "second"
        assert window.cycle_elevation_map() == "first"

    def test_default_map_follows_cycle(self, stations_session):
        window = self.build_group_window(stations_session)
        window.cycle_elevation_map()
        bars = window.elevation_map().bars()
        assert bars[0].name == "Stations"  # second member's sole component

    def test_single_composite_unaffected(self, stations_session):
        stations = stations_session.add_table("Stations")
        window = stations_session.add_viewer(stations, name="solo",
                                             width=100, height=80)
        assert len(window.elevation_map()) == 1
        assert window.cycle_elevation_map() == "main"


class TestLikePredicates:
    SCHEMA = Schema([("name", "text")])

    def matches(self, pattern: str, value: str) -> bool:
        expr = parse_expression(f"like(name, '{pattern}')", self.SCHEMA)
        return expr.evaluate(Tuple(self.SCHEMA, [value]))

    def test_percent_wildcard(self):
        assert self.matches("New%", "New Orleans")
        assert not self.matches("New%", "Baton Rouge")

    def test_underscore_wildcard(self):
        assert self.matches("B_ton Rouge", "Baton Rouge")
        assert not self.matches("B_ton Rouge", "Bton Rouge")

    def test_regex_metacharacters_are_literal(self):
        assert self.matches("a.b", "a.b")
        assert not self.matches("a.b", "axb")

    def test_full_match_semantics(self):
        assert not self.matches("Orleans", "New Orleans")
        assert self.matches("%Orleans", "New Orleans")

    def test_in_restrict_box(self, stations_session):
        stations = stations_session.add_table("Stations")
        restrict = stations_session.add_box(
            "Restrict", {"predicate": "like(name, '%e%')"}
        )
        stations_session.connect(stations, "out", restrict, "in")
        names = {r["name"] for r in stations_session.inspect(restrict).rows}
        assert "New Orleans" in names
        assert "Dallas" not in names
