"""Unit tests: primitive drawables (display.drawables, §5.1)."""

from __future__ import annotations

import pytest

from repro.dbms.parser import parse_expression
from repro.dbms.tuples import Schema, Tuple
from repro.display.drawables import (
    Circle,
    Line,
    Point,
    Polygon,
    Rectangle,
    Style,
    Text,
    ViewerDrawable,
    resolve_color,
)
from repro.errors import DisplayError
from repro.render.canvas import Canvas


class TestColors:
    def test_named_colors(self):
        assert resolve_color("black") == (0, 0, 0)
        assert resolve_color("RED") == (220, 50, 47)

    def test_rgb_triple(self):
        assert resolve_color((1, 2, 3)) == (1, 2, 3)

    def test_unknown_name(self):
        with pytest.raises(DisplayError, match="unknown color"):
            resolve_color("mauve-ish")

    def test_out_of_range_rgb(self):
        with pytest.raises(DisplayError):
            resolve_color((0, 0, 300))


class TestStyle:
    def test_defaults(self):
        style = Style()
        assert style.line_width == 1
        assert not style.filled

    def test_bad_width(self):
        with pytest.raises(DisplayError):
            Style(line_width=0)


class TestGeometry:
    def test_offset_flips_y_for_screen(self):
        # Positive y offset means "up" in world orientation → smaller py.
        drawable = Point(offset=(0.0, 10.0))
        x, y = drawable._origin(100.0, 100.0, 1.0)
        assert (x, y) == (100.0, 90.0)

    def test_world_units_scale_with_zoom(self):
        drawable = Circle(2.0, units="world")
        bbox_near = drawable.bbox(0, 0, world_scale=10.0)
        bbox_far = drawable.bbox(0, 0, world_scale=1.0)
        assert bbox_near[2] - bbox_near[0] == pytest.approx(40.0)
        assert bbox_far[2] - bbox_far[0] == pytest.approx(4.0)

    def test_screen_units_constant_under_zoom(self):
        drawable = Circle(2.0, units="screen")
        assert drawable.bbox(0, 0, 10.0) == drawable.bbox(0, 0, 1.0)

    def test_with_offset_returns_copy(self):
        original = Circle(2.0)
        shifted = original.with_offset(5.0, 5.0)
        assert original.offset == (0.0, 0.0)
        assert shifted.offset == (5.0, 5.0)

    def test_with_color_returns_copy(self):
        original = Text("hi")
        colored = original.with_color("red")
        assert original.color == (0, 0, 0)
        assert colored.color == (220, 50, 47)

    def test_bad_units(self):
        with pytest.raises(DisplayError):
            Point(units="parsec")


class TestValidation:
    def test_negative_circle(self):
        with pytest.raises(DisplayError):
            Circle(-1.0)

    def test_negative_rect(self):
        with pytest.raises(DisplayError):
            Rectangle(-1.0, 2.0)

    def test_polygon_needs_three_vertices(self):
        with pytest.raises(DisplayError):
            Polygon([(0, 0), (1, 1)])

    def test_wormhole_needs_destination(self):
        with pytest.raises(DisplayError):
            ViewerDrawable("")

    def test_wormhole_needs_positive_size(self):
        with pytest.raises(DisplayError):
            ViewerDrawable("dest", width=0)

    def test_wormhole_needs_positive_elevation(self):
        with pytest.raises(DisplayError):
            ViewerDrawable("dest", dest_elevation=0)


class TestPainting:
    def paint(self, drawable, scale=1.0, size=64):
        canvas = Canvas(size, size)
        drawable.paint(canvas, size / 2, size / 2, scale)
        return canvas

    def test_point_paints_pixels(self):
        assert self.paint(Point()).count_nonbackground() >= 1

    def test_line_paints_along_delta(self):
        canvas = self.paint(Line((20.0, 0.0)))
        assert canvas.count_nonbackground() >= 20

    def test_circle_outline_vs_filled(self):
        outline = self.paint(Circle(10.0))
        filled = self.paint(Circle(10.0, style=Style(filled=True)))
        assert filled.count_nonbackground() > outline.count_nonbackground()

    def test_rect_outline_vs_filled(self):
        outline = self.paint(Rectangle(20, 10))
        filled = self.paint(Rectangle(20, 10, style=Style(filled=True)))
        assert filled.count_nonbackground() > outline.count_nonbackground()

    def test_polygon_fill(self):
        triangle = Polygon([(0, 0), (20, 0), (10, 15)], style=Style(filled=True))
        assert self.paint(triangle).count_nonbackground() > 50

    def test_text_paints_glyphs(self):
        canvas = self.paint(Text("AB"))
        assert canvas.count_nonbackground() > 10

    def test_wormhole_paints_frame_only(self):
        wormhole = ViewerDrawable("dest", width=30, height=20)
        canvas = self.paint(wormhole)
        painted = canvas.count_nonbackground()
        assert 0 < painted < 30 * 20  # outline, not filled interior

    def test_painting_off_canvas_is_silent(self):
        canvas = Canvas(32, 32)
        Circle(5.0).paint(canvas, -100, -100, 1.0)
        Text("far away").paint(canvas, 500, 500, 1.0)
        assert canvas.count_nonbackground() == 0

    def test_color_lands_on_canvas(self):
        canvas = self.paint(Circle(5.0, color="red", style=Style(filled=True)))
        assert (220, 50, 47) in canvas.colors_used()


class TestExpressionConstructors:
    SCHEMA = Schema([("name", "text"), ("size", "float")])
    ROW = Tuple(SCHEMA, {"name": "Ada", "size": 4.0})

    def build(self, source: str):
        return parse_expression(source, self.SCHEMA).evaluate(self.ROW)

    def test_circle_constructor(self):
        [circle] = self.build("circle(size, 'blue')")
        assert circle.kind == "circle"
        assert circle.radius == 4.0

    def test_filled_variants(self):
        [disc] = self.build("filled_circle(2)")
        assert disc.style.filled
        [rect] = self.build("filled_rect(4, 2, 'red')")
        assert rect.style.filled

    def test_text_of_renders_value(self):
        [text] = self.build("text_of(name)")
        assert text.text == "Ada"
        [number] = self.build("text_of(size)")
        assert number.text == "4"

    def test_line_to_world_units(self):
        [line] = self.build("line_to(1.5, -0.5)")
        assert line.units == "world"
        assert line.delta == (1.5, -0.5)

    def test_combine_concatenates_in_order(self):
        result = self.build("combine(circle(1), point(), text_of(name))")
        assert [d.kind for d in result] == ["circle", "point", "text"]

    def test_offset_shifts_all(self):
        result = self.build("offset(combine(circle(1), point()), 3, 4)")
        assert all(d.offset == (3.0, 4.0) for d in result)

    def test_recolor(self):
        result = self.build("recolor(circle(1), 'green')")
        assert result[0].color == (66, 133, 66)

    def test_nothing_is_empty(self):
        assert self.build("nothing()") == []

    def test_wormhole_constructor(self):
        [hole] = self.build("wormhole('dest', 100, 50, 20, 1.0, 2.0)")
        assert hole.kind == "viewer"
        assert hole.destination == "dest"
        assert hole.dest_location == (1.0, 2.0)

    def test_type_errors_reported(self):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            parse_expression("circle('big')", self.SCHEMA)
        with pytest.raises(TypeCheckError):
            parse_expression("combine(size)", self.SCHEMA)
        with pytest.raises(TypeCheckError):
            parse_expression("offset(circle(1), 'a', 2)", self.SCHEMA)
