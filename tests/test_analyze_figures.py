"""End-to-end static analysis: the paper's figure programs lint clean,
serialization round-trips preserve lint results, the engine preflight gate
works, and the CLI ``lint`` command reports correctly."""

from __future__ import annotations

import json

import pytest

from repro import cli
from repro.analyze.checker import check_program
from repro.core import scenarios
from repro.dataflow.boxes_db import AddTableBox, RestrictBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dataflow.serialize import (
    clone_program,
    program_from_dict,
    program_to_dict,
)
from repro.errors import CatalogError, StaticAnalysisError
from repro.viewer.viewer import ViewerBox

FIGURES = {
    "fig1": scenarios.build_fig1_table_view,
    "fig4": scenarios.build_fig4_station_map,
    "fig7": scenarios.build_fig7_overlay,
    "fig8": scenarios.build_fig8_wormholes,
    "fig9": scenarios.build_fig9_magnifier,
    "fig10": scenarios.build_fig10_stitch,
    "fig11": scenarios.build_fig11_replicate,
}


@pytest.fixture(scope="module")
def figure_reports(weather_db):
    reports = {}
    for name, build in FIGURES.items():
        scenario = build(weather_db)
        reports[name] = (
            scenario.session.program,
            check_program(scenario.session.program, weather_db),
        )
    return reports


class TestFigureProgramsLint:
    @pytest.mark.parametrize("figure", sorted(FIGURES))
    def test_zero_errors(self, figure_reports, figure):
        _program, report = figure_reports[figure]
        assert not report.errors(), report.render()

    def test_fig4_is_fully_clean(self, figure_reports):
        _program, report = figure_reports["fig4"]
        assert len(report) == 0, report.render()


class TestRoundTripLintEquivalence:
    @pytest.mark.parametrize("figure", sorted(FIGURES))
    def test_clone_lints_identically(self, weather_db, figure_reports, figure):
        program, report = figure_reports[figure]
        clone = clone_program(program)
        clone_report = check_program(clone, weather_db)
        assert clone_report.keys() == report.keys()

    def test_defective_program_round_trips_defects(self, stations_db):
        program = Program("broken")
        source = program.add_box(AddTableBox(table="Nowhere"))
        viewer = program.add_box(ViewerBox())
        program.connect(source, "out", viewer, "in")
        before = check_program(program, stations_db)
        after = check_program(clone_program(program), stations_db)
        assert before.keys() == after.keys()
        assert "T2-E104" in after.codes()


class TestPortMetadata:
    def test_ports_recorded_in_payload(self, stations_db):
        program = Program("meta")
        program.add_box(AddTableBox(table="Stations"))
        payload = program_to_dict(program)
        (spec,) = payload["boxes"].values()
        assert spec["ports"]["outputs"] == [["out", "R", False]]

    def test_tampered_ports_fail_loudly(self, stations_db):
        program = Program("meta")
        program.add_box(AddTableBox(table="Stations"))
        payload = program_to_dict(program)
        (spec,) = payload["boxes"].values()
        spec["ports"]["outputs"] = [["out", "G", False]]
        with pytest.raises(CatalogError) as exc:
            program_from_dict(payload)
        assert "catalog has changed" in str(exc.value)

    def test_payload_without_ports_still_loads(self, stations_db):
        program = Program("meta")
        program.add_box(AddTableBox(table="Stations"))
        payload = program_to_dict(program)
        for spec in payload["boxes"].values():
            del spec["ports"]
        loaded = program_from_dict(payload)
        assert loaded.boxes()[0].type_name == "AddTable"


class TestEnginePreflight:
    def build(self, predicate):
        program = Program("preflight")
        source = program.add_box(AddTableBox(table="Stations"))
        restrict = program.add_box(RestrictBox(predicate=predicate))
        viewer = program.add_box(ViewerBox())
        program.connect(source, "out", restrict, "in")
        program.connect(restrict, "out", viewer, "in")
        return program, restrict

    def test_preflight_blocks_broken_program(self, stations_db):
        program, restrict = self.build("no_such_field > 1")
        engine = Engine(program, stations_db, preflight=True)
        with pytest.raises(StaticAnalysisError) as exc:
            engine.output_of(restrict, "out")
        assert "T2-E105" in str(exc.value)
        assert exc.value.report is not None

    def test_preflight_passes_good_program(self, stations_db):
        program, restrict = self.build("altitude > 100.0")
        engine = Engine(program, stations_db, preflight=True)
        rows = engine.output_of(restrict, "out")
        assert len(rows.rows) > 0

    def test_preflight_cached_per_version(self, stations_db):
        program, restrict = self.build("altitude > 100.0")
        engine = Engine(program, stations_db, preflight=True)
        assert engine.preflight() is not None  # first run returns the report
        assert engine.preflight() is None  # cached: same program version
        program.box(restrict).set_param("predicate", "altitude > 50.0")
        assert engine.preflight() is not None  # edit invalidates the cache

    def test_preflight_off_by_default(self, stations_db):
        program, restrict = self.build("no_such_field > 1")
        engine = Engine(program, stations_db)
        with pytest.raises(Exception) as exc:
            engine.output_of(restrict, "out")
        assert not isinstance(exc.value, StaticAnalysisError)


class TestCliLint:
    def test_lint_one_figure_human(self, capsys):
        assert cli.main(["lint", "--figure", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "== fig4 ==" in out
        assert "no diagnostics" in out

    def test_lint_json(self, capsys):
        assert cli.main(["lint", "--figure", "fig4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fig4"]["errors"] == 0

    def test_lint_saved_program_errors_exit_1(self, tmp_path, capsys):
        from repro.data.weather import build_weather_database
        from repro.dbms.storage import save_database_file

        db = build_weather_database(extra_stations=0, every_days=365)
        program = Program("busted")
        source = program.add_box(AddTableBox(table="Missing"))
        viewer = program.add_box(ViewerBox())
        program.connect(source, "out", viewer, "in")
        db.save_program("busted", program_to_dict(program))
        path = tmp_path / "db.json"
        save_database_file(db, path)

        code = cli.main(["lint", "--db", str(path), "--name", "busted"])
        assert code == 1
        assert "T2-E104" in capsys.readouterr().out

    def test_lint_name_without_db_is_usage_error(self, capsys):
        assert cli.main(["lint", "--name", "x"]) == 2
