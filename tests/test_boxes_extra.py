"""Unit tests: big-programmer boxes and scalar parameters (boxes_extra)."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.boxes_extra import (
    AggregateBox,
    DistinctBox,
    LimitBox,
    OrderByBox,
    ParameterBox,
    RenameBox,
    ThresholdBox,
    UnionBox,
)
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dataflow.registry import box_class_names, compatible_boxes
from repro.dataflow.ports import PortType
from repro.errors import GraphError, TypeCheckError


def run_chain(db, *boxes):
    program = Program()
    ids = [program.add_box(box) for box in boxes]
    for upstream, downstream in zip(ids, ids[1:]):
        program.connect(upstream, "out", downstream, "in")
    return Engine(program, db).output_of(ids[-1])


class TestAggregate:
    def test_group_count_avg(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            AggregateBox(keys=["state"],
                         aggregations=[["count", "station_id", "n"],
                                       ["avg", "altitude", "mean_alt"]]),
        )
        by_state = {row["state"]: row for row in relation.rows}
        assert by_state["LA"]["n"] == 3
        assert by_state["LA"]["mean_alt"] == pytest.approx((7 + 56 + 141) / 3)

    def test_output_validly_displayable(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            AggregateBox(keys=["state"],
                         aggregations=[["count", "station_id", "n"]]),
        )
        # §5.2 guarantee: fresh schema → default display still works.
        drawables = relation.display_of(relation.view_at(0))
        assert drawables
        assert relation.source_table is None  # derived, not updatable


class TestOrderLimitDistinctRename:
    def test_order_by_reorders_default_listing(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            OrderByBox(fields=["altitude"], descending=True),
        )
        altitudes = [row["altitude"] for row in relation.rows]
        assert altitudes == sorted(altitudes, reverse=True)
        # The default y-location is the sequence number, so ordering moved
        # the tallest station to the top row of the listing.
        assert relation.location_of(relation.view_at(0)) == (0.0, 0.0)

    def test_limit(self, stations_db):
        relation = run_chain(
            stations_db, AddTableBox(table="Stations"), LimitBox(count=2)
        )
        assert len(relation.rows) == 2

    def test_distinct(self, stations_db):
        from repro.dataflow.boxes_db import ProjectBox

        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            ProjectBox(fields=["state"]),
            DistinctBox(),
        )
        assert len(relation.rows) == 3  # LA, TX, MS

    def test_rename(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            RenameBox(old="altitude", new="elevation_ft"),
        )
        assert "elevation_ft" in relation.rows.schema
        assert "altitude" not in relation.rows.schema


class TestUnion:
    def test_bag_union(self, stations_db):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        union = program.add_box(UnionBox())
        program.connect(a, "out", union, "left")
        program.connect(b, "out", union, "right")
        relation = Engine(program, stations_db).output_of(union)
        assert len(relation.rows) == 10


class TestParameterAndThreshold:
    def build(self, db, predicate="altitude < param", value=100.0):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        param = program.add_box(ParameterBox(value_type="float", value=value))
        threshold = program.add_box(ThresholdBox(predicate=predicate))
        program.connect(src, "out", threshold, "in")
        program.connect(param, "out", threshold, "param")
        return program, Engine(program, db), param, threshold

    def test_scalar_flows_into_predicate(self, stations_db):
        __, engine, __, threshold = self.build(stations_db)
        relation = engine.output_of(threshold)
        assert sorted(r["name"] for r in relation.rows) == [
            "Baton Rouge", "New Orleans"
        ]

    def test_editing_parameter_invalidates(self, stations_db):
        program, engine, param, threshold = self.build(stations_db)
        assert len(engine.output_of(threshold).rows) == 2
        program.box(param).set_param("value", 300.0)
        assert len(engine.output_of(threshold).rows) == 4

    def test_scalar_port_types_checked(self, stations_db):
        program = Program()
        param = program.add_box(ParameterBox(value_type="text", value="x"))
        threshold = program.add_box(ThresholdBox(predicate="altitude < param"))
        with pytest.raises(TypeCheckError):
            program.connect(param, "out", threshold, "param")

    def test_parameter_value_coerced(self, stations_db):
        program = Program()
        param = program.add_box(ParameterBox(value_type="float", value=7))
        engine = Engine(program, stations_db)
        assert engine.output_of(param) == 7.0

    def test_non_boolean_threshold_predicate(self, stations_db):
        __, engine, __, threshold = self.build(
            stations_db, predicate="altitude + param"
        )
        with pytest.raises(TypeCheckError, match="boolean"):
            engine.output_of(threshold)


class TestRegistration:
    def test_extra_boxes_registered(self):
        names = box_class_names()
        for expected in ("Aggregate", "OrderBy", "Distinct", "Limit",
                         "Rename", "Union", "Parameter", "Threshold"):
            assert expected in names

    def test_apply_box_sees_extras(self):
        candidates = compatible_boxes([PortType("R")])
        assert "Aggregate" in candidates
        assert "OrderBy" in candidates

    def test_serialization_roundtrip(self, stations_db):
        from repro.dataflow.serialize import program_from_dict, program_to_dict

        program, engine, param, threshold = TestParameterAndThreshold().build(
            stations_db
        )
        restored = program_from_dict(program_to_dict(program))
        relation = Engine(restored, stations_db).output_of(threshold)
        assert len(relation.rows) == 2
