"""Property: imperative Session calls ≡ protocol-dispatched commands.

Thirty deterministic seeds each build a random visualization (pipeline of
relational boxes over a Stations table, ending in a viewer) twice — once
driven by the imperative :class:`~repro.ui.session.Session` methods, once
by wire-round-tripped protocol commands through ``Session.execute`` — and
assert the two sessions end pixel-identical (same PPM bytes) with
identical ``explain_data``.  The property must hold on all three
execution backends: serial-row, morsel-parallel (cached), and columnar.

This is the PR-9 "one code path" guarantee made falsifiable: if a demand
wrapper drifted from its protocol handler (different validation, different
defaults, a missed ``_sync_views``), some seed's pixels diverge.
"""

from __future__ import annotations

import random

import pytest

from repro.analyze.checker import check_program
from repro.dataflow.explain import explain_data
from repro.dbms.catalog import Database
from repro.dbms.columnar import ColumnarConfig, set_default_columnar_config
from repro.dbms.plan_parallel import (
    ParallelConfig,
    result_cache,
    set_default_config,
)
from repro.dbms.relation import Table
from repro.dbms.tuples import Schema
from repro.protocol import (
    Pan,
    PanTo,
    Render,
    SetElevation,
    Zoom,
    decode_command,
    encode_command,
    jsonable,
)
from repro.ui.session import Session

SEEDS = 30
ROWS = 600
FIELDS = ["station_id", "name", "state", "longitude", "latitude", "altitude"]
NUMERIC = ["station_id", "longitude", "latitude", "altitude"]

PARALLEL = ParallelConfig(workers=4, cache=True, morsel_size=128)


@pytest.fixture(scope="module")
def stations_db() -> Database:
    rng = random.Random(4242)
    db = Database("protocol_equivalence")
    table = Table("Stations", Schema([
        ("station_id", "int"),
        ("name", "text"),
        ("state", "text"),
        ("longitude", "float"),
        ("latitude", "float"),
        ("altitude", "float"),
    ]))
    table.insert_many(
        {
            "station_id": index,
            "name": f"S{index}",
            "state": rng.choice(["LA", "TX", "CA", "NY"]),
            "longitude": rng.uniform(-120, -70),
            "latitude": rng.uniform(25, 50),
            "altitude": rng.uniform(0, 140),
        }
        for index in range(ROWS)
    )
    db.add_table(table)
    return db


def random_step(rng: random.Random, step: int) -> tuple[str, dict]:
    kind = rng.choice(
        ["restrict", "sample", "project", "addattr", "orderby",
         "distinct", "limit"]
    )
    if kind == "restrict":
        field = rng.choice(NUMERIC)
        return "Restrict", {
            "predicate": f"{field} > {rng.uniform(-50, 150):.1f}"}
    if kind == "sample":
        return "Sample", {"probability": rng.choice([0.3, 0.6, 0.9]),
                          "seed": rng.randint(0, 99)}
    if kind == "project":
        count = rng.randint(2, len(FIELDS))
        return "Project", {"fields": rng.sample(FIELDS, count)}
    if kind == "addattr":
        field = rng.choice(NUMERIC)
        return "AddAttribute", {
            "name": f"a{step}",
            "definition": f"{field} * {rng.uniform(0.5, 3):.1f}",
        }
    if kind == "orderby":
        return "OrderBy", {"fields": [rng.choice(FIELDS)],
                           "descending": rng.random() < 0.5}
    if kind == "distinct":
        return "Distinct", {}
    return "Limit", {"count": rng.randint(1, 400)}


def build_session(db: Database, seed: int) -> Session:
    """One random visualization, deterministically derived from the seed."""
    rng = random.Random(seed)
    session = Session(db, f"equiv-{seed}")
    upstream = session.add_table("Stations")
    for step in range(rng.randint(1, 4)):
        name, params = random_step(rng, step)
        box_id = session.add_box(name, params)
        session.connect(upstream, "out", box_id, "in")
        upstream = box_id
    session.add_viewer(upstream, name="canvas", width=200, height=150)
    return session


def random_demands(seed: int) -> list:
    """The same demand sequence both sessions will execute."""
    rng = random.Random(seed * 7919 + 13)
    demands = []
    for _ in range(rng.randint(2, 6)):
        kind = rng.choice(["pan", "pan_to", "zoom", "set_elevation"])
        if kind == "pan":
            demands.append(Pan(window="canvas",
                               dx=round(rng.uniform(-60, 60), 2),
                               dy=round(rng.uniform(-60, 60), 2)))
        elif kind == "pan_to":
            demands.append(PanTo(window="canvas",
                                 cx=round(rng.uniform(-150, 350), 2),
                                 cy=round(rng.uniform(-150, 350), 2)))
        elif kind == "zoom":
            demands.append(Zoom(window="canvas",
                                factor=rng.choice([0.5, 1.5, 2.0, 4.0])))
        else:
            demands.append(SetElevation(
                window="canvas",
                elevation=round(rng.uniform(20, 600), 2)))
    demands.append(Render(window="canvas", format="ppm"))
    return demands


def drive_imperative(session: Session, demands) -> bytes:
    """Execute demands through the imperative Session methods."""
    for demand in demands:
        if isinstance(demand, Pan):
            session.pan(demand.window, demand.dx, demand.dy)
        elif isinstance(demand, PanTo):
            session.pan_to(demand.window, demand.cx, demand.cy)
        elif isinstance(demand, Zoom):
            session.zoom(demand.window, demand.factor)
        elif isinstance(demand, SetElevation):
            session.set_elevation(demand.window, demand.elevation)
    # The classic render path: CanvasWindow.render() -> Canvas.
    return session.window("canvas").render().ppm_bytes()


def drive_protocol(session: Session, demands) -> bytes:
    """Execute the same demands as wire-round-tripped protocol commands."""
    frame_bytes = b""
    for demand in demands:
        wire = decode_command(encode_command(demand))
        response = session.execute(wire)
        assert response.ok, f"{demand}: {response}"
        if isinstance(demand, Render):
            frame_bytes = response.data_bytes()
    return frame_bytes


def _strip_volatile(value):
    """Drop wall-clock plan timings; every other explain field must match."""
    if isinstance(value, dict):
        return {key: _strip_volatile(item) for key, item in value.items()
                if key != "wall_ms"}
    if isinstance(value, list):
        return [_strip_volatile(item) for item in value]
    return value


def _run_equivalence(db: Database) -> int:
    compared = 0
    for seed in range(SEEDS):
        probe = build_session(db, seed)
        if check_program(probe.program, db).errors():
            continue
        demands = random_demands(seed)

        imperative = build_session(db, seed)
        protocol = build_session(db, seed)
        # Same cold-cache starting line for both drives, so shared-cache
        # hit/miss status matches node for node.
        result_cache().clear()
        local_ppm = drive_imperative(imperative, demands)
        result_cache().clear()
        remote_ppm = drive_protocol(protocol, demands)
        assert local_ppm == remote_ppm, f"seed {seed}: pixels diverge"

        local_explain = explain_data(
            imperative.program, db, engine=imperative.engine)
        remote_explain = protocol.execute(
            decode_command('{"v": 1, "kind": "explain"}')).result
        # The wire flattens tuples to lists and stringifies dict keys;
        # normalize both sides the same way before comparing.
        assert _strip_volatile(jsonable(local_explain)) == \
            _strip_volatile(remote_explain), f"seed {seed}: explain diverges"
        compared += 1
    # A degenerate generator would vacuously pass; require real coverage.
    assert compared >= SEEDS // 2, compared
    return compared


def test_local_vs_protocol_serial_backend(stations_db):
    _run_equivalence(stations_db)


def test_local_vs_protocol_parallel_backend(stations_db):
    previous = set_default_config(PARALLEL)
    try:
        result_cache().clear()
        _run_equivalence(stations_db)
    finally:
        set_default_config(previous)
        result_cache().clear()


def test_local_vs_protocol_columnar_backend(stations_db):
    previous = set_default_columnar_config(ColumnarConfig())
    try:
        _run_equivalence(stations_db)
    finally:
        set_default_columnar_config(previous)
