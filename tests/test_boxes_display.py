"""Unit tests: drill-down and multi-view boxes (SetRange/Overlay/Shuffle/
Stitch/Replicate) and the overload machinery."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox, RestrictBox
from repro.dataflow.boxes_display import (
    OverlayBox,
    ReplicateBox,
    SetRangeBox,
    ShuffleBox,
    StitchBox,
)
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dataflow.overload import apply_to_relation, select_relation
from repro.display.displayable import Composite, DisplayableRelation, Group
from repro.errors import DisplayError, GraphError


def station_relation(db, engine_holder, name="Stations"):
    program = Program()
    src = program.add_box(AddTableBox(table=name))
    engine = Engine(program, db)
    engine_holder.append(engine)
    return engine.output_of(src)


class TestSetRange:
    def test_sets_elevation_range(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        rng = program.add_box(SetRangeBox(minimum=0.0, maximum=12.0))
        program.connect(src, "out", rng, "in")
        relation = Engine(program, stations_db).output_of(rng)
        assert relation.elevation_range.minimum == 0.0
        assert relation.elevation_range.maximum == 12.0

    def test_negative_range_for_underside(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        rng = program.add_box(SetRangeBox(minimum=-100.0, maximum=-1.0))
        program.connect(src, "out", rng, "in")
        relation = Engine(program, stations_db).output_of(rng)
        assert relation.elevation_range.visible_underside()
        assert not relation.elevation_range.contains(50.0)

    def test_inverted_range_rejected(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        rng = program.add_box(SetRangeBox(minimum=10.0, maximum=1.0))
        program.connect(src, "out", rng, "in")
        with pytest.raises(DisplayError):
            Engine(program, stations_db).output_of(rng)


class TestOverlay:
    def build_overlay(self, db, offset=None):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        overlay = program.add_box(OverlayBox(offset=offset))
        program.connect(a, "out", overlay, "base")
        program.connect(b, "out", overlay, "top")
        return Engine(program, db).output_of(overlay)

    def test_produces_composite_in_order(self, stations_db):
        composite = self.build_overlay(stations_db)
        assert isinstance(composite, Composite)
        assert len(composite) == 2
        # Unique component names generated on collision.
        assert composite.component_names() == ["Stations", "Stations_2"]

    def test_offset_recorded(self, stations_db):
        composite = self.build_overlay(stations_db, offset={"x": 5.0, "y": -1.0})
        entry = composite.entries[1]
        assert entry.offset_for("x") == 5.0
        assert entry.offset_for("y") == -1.0

    def test_dimension_mismatch_warns(self, stations_db):
        from repro.dataflow.boxes_attr import AddAttributeBox

        program = Program()
        flat = program.add_box(AddTableBox(table="Stations"))
        tall_src = program.add_box(AddTableBox(table="Stations"))
        tall = program.add_box(
            AddAttributeBox(name="alt", definition="altitude", location=True)
        )
        program.connect(tall_src, "out", tall, "in")
        overlay = program.add_box(OverlayBox())
        program.connect(tall, "out", overlay, "base")
        program.connect(flat, "out", overlay, "top")
        composite = Engine(program, stations_db).output_of(overlay)
        assert composite.dimension == 3
        assert any("mismatch" in warning for warning in composite.warnings)


class TestShuffle:
    def test_moves_component_to_top(self, stations_db):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        overlay = program.add_box(OverlayBox())
        program.connect(a, "out", overlay, "base")
        program.connect(b, "out", overlay, "top")
        shuffle = program.add_box(ShuffleBox(component="Stations"))
        program.connect(overlay, "out", shuffle, "in")
        composite = Engine(program, stations_db).output_of(shuffle)
        # 'Stations' now paints last (top of drawing order).
        assert composite.component_names() == ["Stations_2", "Stations"]

    def test_unknown_component(self, stations_db):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        shuffle = program.add_box(ShuffleBox(component="Ghost"))
        program.connect(a, "out", shuffle, "in")
        with pytest.raises(DisplayError, match="no component"):
            Engine(program, stations_db).output_of(shuffle)


class TestStitch:
    def test_stitches_composites_into_group(self, stations_db):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        stitch = program.add_box(
            StitchBox(arity=2, layout="vertical", names=["top", "bottom"])
        )
        program.connect(a, "out", stitch, "c1")
        program.connect(b, "out", stitch, "c2")
        group = Engine(program, stations_db).output_of(stitch)
        assert isinstance(group, Group)
        assert group.member_names() == ["top", "bottom"]
        assert group.layout == "vertical"
        assert group.grid_shape() == (2, 1)

    def test_tabular_layout(self, stations_db):
        program = Program()
        ids = [program.add_box(AddTableBox(table="Stations")) for __ in range(4)]
        stitch = program.add_box(
            StitchBox(arity=4, layout="tabular", table_shape=(2, 2))
        )
        for pos, box_id in enumerate(ids):
            program.connect(box_id, "out", stitch, f"c{pos + 1}")
        group = Engine(program, stations_db).output_of(stitch)
        assert group.grid_shape() == (2, 2)

    def test_bad_arity(self):
        with pytest.raises(GraphError):
            StitchBox(arity=0)
        with pytest.raises(GraphError):
            StitchBox(arity=2, names=["only-one"])


class TestReplicate:
    def test_partitions_relation(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        rep = program.add_box(
            ReplicateBox(predicates=["altitude < 100", "altitude >= 100"])
        )
        program.connect(src, "out", rep, "in")
        group = Engine(program, stations_db).output_of(rep)
        assert group.member_names() == ["part1", "part2"]
        low = group.member("part1").entries[0].relation
        high = group.member("part2").entries[0].relation
        assert len(low.rows) == 2
        assert len(high.rows) == 3

    def test_enum_field_partition(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        rep = program.add_box(ReplicateBox(enum_field="state"))
        program.connect(src, "out", rep, "in")
        group = Engine(program, stations_db).output_of(rep)
        assert len(group) == 3  # LA, TX, MS
        totals = sum(
            len(composite.entries[0].relation.rows) for __, composite in group
        )
        assert totals == 5

    def test_missing_partition_spec(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        rep = program.add_box(ReplicateBox())
        program.connect(src, "out", rep, "in")
        with pytest.raises(GraphError, match="predicates"):
            Engine(program, stations_db).output_of(rep)

    def test_group_input_requires_component_selection(self, stations_db):
        # Figure 11's overload: a group input partitions each member.
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        stitch = program.add_box(StitchBox(arity=2, names=["m1", "m2"]))
        program.connect(a, "out", stitch, "c1")
        program.connect(b, "out", stitch, "c2")
        rep = program.add_box(
            ReplicateBox(predicates=["state = 'LA'", "state != 'LA'"],
                         component="Stations", member="m1")
        )
        program.connect(stitch, "out", rep, "in")
        group = Engine(program, stations_db).output_of(rep)
        assert len(group) == 4  # 2 members x 2 partitions
        assert group.layout == "tabular"
        assert group.grid_shape() == (2, 2)


class TestOverloadMachinery:
    def test_r_level_op_on_composite(self, stations_db):
        holder = []
        relation = station_relation(stations_db, holder)
        composite = Composite([relation, relation.with_name("Copy")])
        result = apply_to_relation(
            composite,
            lambda rel: rel.with_rows(rel.rows),
            component="Copy",
        )
        assert isinstance(result, Composite)
        assert result.component_names() == ["Stations", "Copy"]

    def test_sole_component_selected_implicitly(self, stations_db):
        holder = []
        relation = station_relation(stations_db, holder)
        composite = Composite([relation])
        selected, rebuild = select_relation(composite)
        assert selected.name == "Stations"
        rebuilt = rebuild(selected.with_name("Stations"))
        assert isinstance(rebuilt, Composite)

    def test_ambiguous_selection_asks(self, stations_db):
        holder = []
        relation = station_relation(stations_db, holder)
        composite = Composite([relation, relation.with_name("Copy")])
        with pytest.raises(GraphError, match="specify"):
            select_relation(composite)

    def test_group_selection_by_member_and_component(self, stations_db):
        holder = []
        relation = station_relation(stations_db, holder)
        group = Group(
            [("g1", Composite([relation])),
             ("g2", Composite([relation.with_name("Other")]))]
        )
        selected, rebuild = select_relation(group, member="g2")
        assert selected.name == "Other"
        rebuilt = rebuild(selected)
        assert isinstance(rebuilt, Group)
        assert rebuilt.member_names() == ["g1", "g2"]

    def test_restrict_box_on_composite_via_overload(self, stations_db):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        overlay = program.add_box(OverlayBox())
        program.connect(a, "out", overlay, "base")
        program.connect(b, "out", overlay, "top")
        restrict = program.add_box(
            RestrictBox(predicate="state = 'LA'", component="Stations_2")
        )
        program.connect(overlay, "out", restrict, "in")
        composite = Engine(program, stations_db).output_of(restrict)
        assert isinstance(composite, Composite)
        assert len(composite.entry_named("Stations_2").relation.rows) == 3
        assert len(composite.entry_named("Stations").relation.rows) == 5
