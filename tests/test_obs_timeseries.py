"""Time-series telemetry: ring buffers, the recorder, exposition formats."""

from __future__ import annotations

import json
import threading
from time import perf_counter

import pytest

from repro.data.weather import build_weather_database
from repro.errors import ObservabilityError
from repro.obs import (
    TIMESERIES_SCHEMA,
    MetricsRecorder,
    MetricsRegistry,
    TimeSeries,
    validate_timeseries,
)


# ---------------------------------------------------------------------------
# TimeSeries ring buffer
# ---------------------------------------------------------------------------


def test_ring_buffer_before_wrap_keeps_everything():
    series = TimeSeries("t", capacity=8)
    for i in range(5):
        series.append(float(i), float(i * 10))
    assert len(series) == 5
    assert series.dropped == 0
    assert series.points() == [(float(i), float(i * 10)) for i in range(5)]


def test_ring_buffer_wraparound_retains_newest_in_order():
    series = TimeSeries("t", capacity=4)
    for i in range(10):
        series.append(float(i), float(i))
    assert len(series) == 4
    assert series.total_appends == 10
    assert series.dropped == 6
    # Sliding window: exactly the newest 4, oldest-first.
    assert series.points() == [(6.0, 6.0), (7.0, 7.0), (8.0, 8.0), (9.0, 9.0)]
    assert series.latest() == (9.0, 9.0)
    # Keep appending past a second wrap; order invariant holds.
    for i in range(10, 103):
        series.append(float(i), float(i))
    assert series.times() == [99.0, 100.0, 101.0, 102.0]


def test_ring_buffer_capacity_one_and_validation():
    series = TimeSeries("one", capacity=1)
    for i in range(3):
        series.append(float(i), float(-i))
    assert series.points() == [(2.0, -2.0)]
    with pytest.raises(ObservabilityError):
        TimeSeries("bad", capacity=0)


# ---------------------------------------------------------------------------
# MetricsRecorder sampling and derivation
# ---------------------------------------------------------------------------


def test_recorder_samples_counters_with_delta_and_rate():
    registry = MetricsRegistry()
    counter = registry.counter("work.items")
    recorder = MetricsRecorder(registry, capacity=16)
    counter.inc(5)
    recorder.sample(t=100.0)
    counter.inc(7)
    recorder.sample(t=102.0)
    values = recorder.series("work.items|_total")
    assert values.values() == [5.0, 12.0]
    # Times are re-origined so exports start near zero.
    assert values.times() == [0.0, 2.0]
    assert recorder.delta("work.items").values() == [5.0, 7.0]
    # Rate needs two samples: 7 items over 2 seconds.
    assert recorder.rate("work.items").values() == [3.5]


def test_recorder_samples_labels_gauges_and_histograms():
    registry = MetricsRegistry()
    counter = registry.counter("ops")
    gauge = registry.gauge("depth")
    histogram = registry.histogram("lat", buckets=(1.0, 10.0))
    counter.inc(2, label="a")
    counter.inc(3, label="b")
    gauge.set(7.5, label="q")
    histogram.observe(0.5)
    histogram.observe(4.0)
    recorder = MetricsRecorder(registry)
    recorder.sample(t=1.0)
    assert recorder.latest("ops|a") == 2.0
    assert recorder.latest("ops|b") == 3.0
    assert recorder.latest("ops|_total") == 5.0
    assert recorder.latest("depth|q") == 7.5
    assert recorder.latest("lat|_total|count") == 2.0
    assert recorder.latest("lat|_total|sum") == 4.5
    assert recorder.latest("lat|_total|mean") == 2.25


def test_recorder_snapshot_schema_and_validator_round_trip():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    recorder = MetricsRecorder(registry, capacity=4)
    recorder.sample(t=1.0)
    recorder.sample(t=2.0)
    snapshot = recorder.snapshot()
    assert snapshot["schema"] == TIMESERIES_SCHEMA
    assert snapshot["samples"] == 2
    assert snapshot["capacity"] == 4
    validate_timeseries(snapshot)
    # JSON round trip stays valid.
    validate_timeseries(json.loads(json.dumps(snapshot)))
    with pytest.raises(ObservabilityError):
        validate_timeseries({"schema": "nope"})
    with pytest.raises(ObservabilityError):
        validate_timeseries({"schema": TIMESERIES_SCHEMA,
                             "series": {"x": {"points": [[1]]}}})


def test_recorder_snapshot_reports_ring_drops():
    registry = MetricsRegistry()
    counter = registry.counter("c")
    recorder = MetricsRecorder(registry, capacity=3)
    for i in range(7):
        counter.inc()
        recorder.sample(t=float(i))
    entry = recorder.snapshot()["series"]["c|_total"]
    assert len(entry["points"]) == 3
    assert entry["dropped"] == 4


def test_prometheus_text_groups_families_and_escapes_labels():
    registry = MetricsRegistry()
    counter = registry.counter("box.fires")
    counter.inc(3, label='weird"label')
    registry.gauge("pool.depth").set(2.0)
    recorder = MetricsRecorder(registry)
    recorder.sample(t=1.0)
    text = recorder.prometheus_text()
    lines = text.splitlines()
    assert "# TYPE box_fires_total counter" in lines
    assert "box_fires_total 3" in lines
    assert 'box_fires_total{label="weird\\"label"} 3' in lines
    assert "# TYPE pool_depth gauge" in lines
    # Every family's samples sit contiguously under its single TYPE line.
    seen_types = [line.split()[2] for line in lines if line.startswith("# TYPE")]
    assert len(seen_types) == len(set(seen_types))
    current = None
    for line in lines:
        if line.startswith("# TYPE"):
            current = line.split()[2]
        else:
            assert line.startswith(current)


def test_recorder_background_thread_start_stop():
    registry = MetricsRegistry()
    counter = registry.counter("bg")
    recorder = MetricsRecorder(registry)
    recorder.start(interval_s=0.005)
    with pytest.raises(ObservabilityError):
        recorder.start(interval_s=0.005)
    deadline = perf_counter() + 5.0
    while recorder.samples_taken < 3 and perf_counter() < deadline:
        counter.inc()
    recorder.stop()
    assert recorder.samples_taken >= 3
    assert recorder.series("bg|_total") is not None
    # stop() is idempotent and restart works.
    recorder.stop()
    recorder.start(interval_s=0.01)
    recorder.stop()
    with pytest.raises(ObservabilityError):
        recorder.start(interval_s=0.0)


# ---------------------------------------------------------------------------
# Concurrency: sampling while a workers=4 engine fires
# ---------------------------------------------------------------------------


def test_concurrent_sampling_during_parallel_engine_renders():
    """No torn reads: a background recorder samples the global registry
    while a ``workers=4`` session renders; every counter series must be
    monotone (counters only go up) and every sample internally consistent."""
    from repro.core.scenarios import build_fig4_station_map
    from repro.dataflow.engine import EngineStats
    from repro.dbms.plan_parallel import resolve_config, set_default_config
    from repro.obs.metrics import global_registry

    db = build_weather_database(extra_stations=20, every_days=60)
    scenario = build_fig4_station_map(db)
    session = scenario.session
    session.engine.stats = EngineStats(global_registry())
    recorder = MetricsRecorder(global_registry(), capacity=512)
    previous = set_default_config(resolve_config(workers=4))
    stop = threading.Event()

    def hammer_samples():
        while not stop.is_set():
            recorder.sample()

    thread = threading.Thread(target=hammer_samples, daemon=True)
    thread.start()
    try:
        for _ in range(6):
            session.engine.invalidate()
            scenario.window().render()
    finally:
        stop.set()
        thread.join(timeout=10.0)
        set_default_config(previous)
    recorder.sample()
    assert recorder.samples_taken > 0
    fires = recorder.series("engine.box.fires|_total")
    assert fires is not None and len(fires) > 0
    for key in recorder.series_keys():
        if key.endswith("|delta") or key.endswith("|rate"):
            continue
        metric = key.split("|", 1)[0]
        if global_registry().get(metric) is None:
            continue
        if global_registry().get(metric).kind != "counter":
            continue
        values = recorder.series(key).values()
        assert values == sorted(values), f"counter series {key} went down"


# ---------------------------------------------------------------------------
# Overhead budget (acceptance: < 2% of a fig4 render per sample)
# ---------------------------------------------------------------------------


def test_recorder_sample_overhead_under_budget():
    from repro.core.scenarios import build_fig4_station_map
    from repro.dataflow.engine import EngineStats
    from repro.dbms.plan_parallel import result_cache

    db = build_weather_database(extra_stations=150, every_days=10)
    scenario = build_fig4_station_map(db)
    session = scenario.session
    # Hermetic registry: the engine's own per-box counters land here, so
    # the recorder samples the series mix this workload really produces —
    # not whatever labels earlier tests accumulated process-wide.
    registry = MetricsRegistry()
    session.engine.stats = EngineStats(registry)
    # Warm once, then time a representative render (best of 3 to shed
    # scheduler jitter).  Invalidate the engine memo AND the process-wide
    # result cache each round so every timed render does real work — other
    # tests may have left the shared cache warm.
    scenario.window().render()
    render_s = float("inf")
    for _ in range(3):
        session.engine.invalidate()
        result_cache().clear()
        start = perf_counter()
        scenario.window().render()
        render_s = min(render_s, perf_counter() - start)

    recorder = MetricsRecorder(registry, capacity=256)
    recorder.sample()  # first sample pays series allocation; exclude it
    per_sample_s = float("inf")
    for _ in range(5):
        start = perf_counter()
        for _ in range(20):
            recorder.sample()
        per_sample_s = min(per_sample_s, (perf_counter() - start) / 20)
    # One sample per render is the dashboard cadence; it must cost < 2%
    # of the render it observes.
    assert per_sample_s < 0.02 * render_s, (
        f"recorder sample {per_sample_s * 1e3:.3f}ms vs render "
        f"{render_s * 1e3:.1f}ms exceeds the 2% budget"
    )
