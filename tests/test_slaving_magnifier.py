"""Unit tests: slaving (§7.1) and magnifying glasses (§7.2)."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import AddAttributeBox, SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.errors import ViewerError
from repro.viewer.magnifier import MagnifyingGlass
from repro.viewer.slaving import SlavingManager
from repro.viewer.viewer import Viewer


def flat_viewer(db, name, with_slider=False) -> Viewer:
    program = Program()
    src = program.add_box(AddTableBox(table="Stations"))
    sx = program.add_box(SetAttributeBox(name="x", definition="longitude"))
    sy = program.add_box(SetAttributeBox(name="y", definition="latitude"))
    disp = program.add_box(
        SetAttributeBox(name="display", definition="filled_circle(3, 'blue')")
    )
    program.connect(src, "out", sx, "in")
    program.connect(sx, "out", sy, "in")
    program.connect(sy, "out", disp, "in")
    tail = disp
    if with_slider:
        alt = program.add_box(
            AddAttributeBox(name="alt", definition="altitude", location=True)
        )
        program.connect(disp, "out", alt, "in")
        tail = alt
    engine = Engine(program, db)
    viewer = Viewer(name, lambda: engine.output_of(tail), 200, 160)
    viewer.pan_to(-91.0, 30.5)
    viewer.set_elevation(10.0)
    return viewer


class TestSlaving:
    def test_pan_propagates_with_offset(self, stations_db):
        manager = SlavingManager()
        a = flat_viewer(stations_db, "a")
        b = flat_viewer(stations_db, "b")
        b.pan_to(-81.0, 30.5)  # 10 degrees east of a
        manager.slave(a, b)
        a.pan(2.0, 1.0)
        assert b.view().center == pytest.approx((-79.0, 31.5))

    def test_propagation_is_bidirectional(self, stations_db):
        manager = SlavingManager()
        a = flat_viewer(stations_db, "a")
        b = flat_viewer(stations_db, "b")
        manager.slave(a, b)
        b.pan(5.0, 0.0)
        assert a.view().center == pytest.approx((-86.0, 30.5))

    def test_elevation_ratio_maintained(self, stations_db):
        manager = SlavingManager()
        a = flat_viewer(stations_db, "a")
        b = flat_viewer(stations_db, "b")
        b.set_elevation(20.0)  # ratio 2:1 at link time
        manager.slave(a, b)
        a.set_elevation(5.0)
        assert b.view().elevation == pytest.approx(10.0)

    def test_slider_ranges_copied(self, stations_db):
        manager = SlavingManager()
        a = flat_viewer(stations_db, "a", with_slider=True)
        b = flat_viewer(stations_db, "b", with_slider=True)
        manager.slave(a, b)
        a.set_slider("alt", 0.0, 99.0)
        assert b.view().slider_ranges["alt"] == (0.0, 99.0)

    def test_dimension_mismatch_rejected(self, stations_db):
        manager = SlavingManager()
        flat = flat_viewer(stations_db, "flat")
        tall = flat_viewer(stations_db, "tall", with_slider=True)
        with pytest.raises(ViewerError, match="same dimensions"):
            manager.slave(flat, tall)

    def test_self_slaving_rejected(self, stations_db):
        manager = SlavingManager()
        a = flat_viewer(stations_db, "a")
        with pytest.raises(ViewerError, match="itself"):
            manager.slave(a, a)

    def test_unslave(self, stations_db):
        manager = SlavingManager()
        a = flat_viewer(stations_db, "a")
        b = flat_viewer(stations_db, "b")
        manager.slave(a, b)
        assert manager.unslave(a, b) == 1
        a.pan(5.0, 0.0)
        assert b.view().center == pytest.approx((-91.0, 30.5))  # unchanged

    def test_viewer_deletion_drops_links(self, stations_db):
        # §7.1: "When a viewer is deleted, all of its slaving relationships
        # are also deleted."
        manager = SlavingManager()
        a = flat_viewer(stations_db, "a")
        b = flat_viewer(stations_db, "b")
        c = flat_viewer(stations_db, "c")
        manager.slave(a, b)
        manager.slave(b, c)
        assert manager.remove_viewer(b) == 2
        assert len(manager) == 0

    def test_chain_propagation(self, stations_db):
        manager = SlavingManager()
        a = flat_viewer(stations_db, "a")
        b = flat_viewer(stations_db, "b")
        c = flat_viewer(stations_db, "c")
        manager.slave(a, b)
        manager.slave(b, c)
        a.pan(1.0, 0.0)
        assert b.view().center[0] == pytest.approx(-90.0)
        assert c.view().center[0] == pytest.approx(-90.0)

    def test_links_of(self, stations_db):
        manager = SlavingManager()
        a = flat_viewer(stations_db, "a")
        b = flat_viewer(stations_db, "b")
        link = manager.slave(a, b)
        assert manager.links_of(a) == [link]
        assert manager.links_of(b) == [link]


class TestMagnifyingGlass:
    def test_magnifies_center_point(self, stations_db):
        parent = flat_viewer(stations_db, "parent")
        glass = MagnifyingGlass(parent, rect=(50, 40, 80, 60), magnification=4.0)
        inner = glass.inner_view()
        assert inner.elevation == pytest.approx(parent.view().elevation / 4.0)
        # Centered over the world point under the rect center.
        expected = parent.view().to_world(50 + 40, 40 + 30)
        assert inner.center == pytest.approx(expected)

    def test_renders_onto_parent_canvas(self, stations_db):
        parent = flat_viewer(stations_db, "parent")
        parent.pan_to(-90.07, 29.95)  # over New Orleans
        result = parent.render()
        glass = MagnifyingGlass(parent, rect=(60, 50, 80, 60), magnification=2.0)
        before = result.canvas.copy()
        glass.render_onto(result.canvas)
        assert result.canvas.count_nonbackground() >= before.count_nonbackground()
        # The frame outline is visible.
        assert result.canvas.pixel(60, 50) == (64, 64, 64)

    def test_same_dimension_required(self, stations_db):
        parent = flat_viewer(stations_db, "parent")
        tall = flat_viewer(stations_db, "tall", with_slider=True)
        with pytest.raises(ViewerError, match="same dimension"):
            MagnifyingGlass(parent, rect=(0, 0, 50, 50),
                            source=tall.displayable)

    def test_alternative_source_rendered(self, stations_db):
        # Figure 9: the glass shows a different display of the same space.
        parent = flat_viewer(stations_db, "parent")
        parent.pan_to(-90.07, 29.95)
        alt = flat_viewer(stations_db, "alt")

        glass = MagnifyingGlass(
            parent, rect=(50, 40, 100, 80), magnification=1.0,
            source=alt.displayable,
        )
        canvas = parent.render().canvas
        glass.render_onto(canvas)
        assert canvas.region_nonbackground(50, 40, 150, 120) > 0

    def test_slaved_glass_follows_parent(self, stations_db):
        parent = flat_viewer(stations_db, "parent")
        glass = MagnifyingGlass(parent, rect=(50, 40, 80, 60), slaved=True)
        before = glass.inner_view().center
        parent.pan(2.0, 0.0)
        after = glass.inner_view().center
        assert after[0] == pytest.approx(before[0] + 2.0)

    def test_deleted_glass_refuses_to_render(self, stations_db):
        parent = flat_viewer(stations_db, "parent")
        glass = MagnifyingGlass(parent, rect=(0, 0, 50, 50))
        glass.delete()
        from repro.render.canvas import Canvas

        with pytest.raises(ViewerError, match="deleted"):
            glass.render_onto(Canvas(100, 100))

    def test_move_and_zoom_controls(self, stations_db):
        parent = flat_viewer(stations_db, "parent")
        glass = MagnifyingGlass(parent, rect=(0, 0, 50, 50), magnification=2.0)
        glass.move_to(20, 30)
        assert glass.rect[:2] == (20.0, 30.0)
        glass.set_magnification(8.0)
        assert glass.inner_view().elevation == pytest.approx(
            parent.view().elevation / 8.0
        )
        with pytest.raises(ViewerError):
            glass.set_magnification(0.0)

    def test_too_small_rect_rejected(self, stations_db):
        parent = flat_viewer(stations_db, "parent")
        with pytest.raises(ViewerError, match="small"):
            MagnifyingGlass(parent, rect=(0, 0, 2, 2))
