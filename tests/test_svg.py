"""Unit tests: SVG vector export (render.svg)."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.dataflow.boxes_attr import SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.boxes_display import StitchBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.errors import DisplayError
from repro.render.canvas import Canvas
from repro.render.svg import SvgCanvas, render_svg
from repro.viewer.viewer import Viewer

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: SvgCanvas) -> ET.Element:
    return ET.fromstring(svg.svg_document())


def tags(svg: SvgCanvas) -> list[str]:
    return [el.tag.removeprefix(SVG_NS) for el in parse(svg).iter()]


class TestSvgPrimitives:
    def test_document_is_valid_xml(self):
        svg = SvgCanvas(100, 80)
        svg.draw_line(0, 0, 50, 50, (0, 0, 0))
        svg.fill_circle(20, 20, 5, (255, 0, 0))
        svg.draw_text(10, 10, "hello & <world>", (0, 0, 0))
        root = parse(svg)
        assert root.get("width") == "100"
        assert root.get("viewBox") == "0 0 100 80"

    def test_each_primitive_produces_an_element(self):
        svg = SvgCanvas(64, 64)
        svg.draw_line(0, 0, 1, 1, (0, 0, 0))
        svg.draw_rect(0, 0, 10, 10, (0, 0, 0))
        svg.fill_rect(0, 0, 10, 10, (0, 0, 0))
        svg.draw_circle(5, 5, 2, (0, 0, 0))
        svg.fill_circle(5, 5, 2, (0, 0, 0))
        svg.draw_polygon([(0, 0), (5, 0), (2, 4)], (0, 0, 0))
        svg.fill_polygon([(0, 0), (5, 0), (2, 4)], (0, 0, 0))
        svg.draw_text(0, 0, "x", (0, 0, 0))
        svg.set_pixel(1, 1, (0, 0, 0))
        present = tags(svg)
        for tag in ("line", "rect", "circle", "polygon", "text"):
            assert tag in present

    def test_text_escaped(self):
        svg = SvgCanvas(64, 16)
        svg.draw_text(0, 0, "<&>", (0, 0, 0))
        assert "&lt;&amp;&gt;" in svg.svg_document()

    def test_blit_embeds_translated_group(self):
        inner = SvgCanvas(10, 10)
        inner.fill_rect(0, 0, 9, 9, (1, 2, 3))
        outer = SvgCanvas(40, 40)
        outer.blit(inner, 15, 20)
        document = outer.svg_document()
        assert "translate(15.00,20.00)" in document
        assert "rgb(1,2,3)" in document

    def test_blit_rejects_raster(self):
        outer = SvgCanvas(40, 40)
        with pytest.raises(DisplayError):
            outer.blit(Canvas(10, 10), 0, 0)

    def test_bad_size(self):
        with pytest.raises(DisplayError):
            SvgCanvas(0, 10)

    def test_to_svg_writes_file(self, tmp_path):
        svg = SvgCanvas(10, 10)
        path = svg.to_svg(tmp_path / "out.svg")
        assert path.read_text().startswith("<svg")


def map_viewer(db):
    program = Program()
    src = program.add_box(AddTableBox(table="Stations"))
    sx = program.add_box(SetAttributeBox(name="x", definition="longitude"))
    sy = program.add_box(SetAttributeBox(name="y", definition="latitude"))
    disp = program.add_box(
        SetAttributeBox(
            name="display",
            definition="combine(filled_circle(3,'blue'), "
                       "offset(text_of(name),0,-8))",
        )
    )
    program.connect(src, "out", sx, "in")
    program.connect(sx, "out", sy, "in")
    program.connect(sy, "out", disp, "in")
    engine = Engine(program, db)
    viewer = Viewer("map", lambda: engine.output_of(disp), 320, 240)
    viewer.pan_to(-91.8, 31.0)
    viewer.set_elevation(8.0)
    return viewer, program, engine


class TestRenderSvg:
    def test_scene_renders_to_svg(self, stations_db):
        viewer, *_ = map_viewer(stations_db)
        svg = render_svg(viewer)
        present = tags(svg)
        assert "circle" in present
        assert "text" in present
        # Station names appear as text content.
        texts = [el.text for el in parse(svg).iter(f"{SVG_NS}text")]
        assert "New Orleans" in texts

    def test_svg_and_raster_agree_on_visible_items(self, stations_db):
        viewer, *_ = map_viewer(stations_db)
        raster = viewer.render()
        svg = render_svg(viewer)
        circles = sum(1 for t in tags(svg) if t == "circle")
        raster_circles = sum(
            1 for item in raster.all_items() if item.drawable_kind == "circle"
        )
        assert circles == raster_circles

    def test_group_renders_member_cells(self, stations_db):
        program = Program()
        a = program.add_box(AddTableBox(table="Stations"))
        b = program.add_box(AddTableBox(table="Stations"))
        stitch = program.add_box(StitchBox(arity=2, names=["l", "r"]))
        program.connect(a, "out", stitch, "c1")
        program.connect(b, "out", stitch, "c2")
        engine = Engine(program, stations_db)
        viewer = Viewer("pair", lambda: engine.output_of(stitch), 400, 200)
        for member in ("l", "r"):
            viewer.pan_to(200.0, -2.0, member=member)
            viewer.set_elevation(500.0, member=member)
        svg = render_svg(viewer)
        document = svg.svg_document()
        assert document.count("translate(") >= 2  # one blit per member cell
