"""Unit tests: view states and tuple-wise scene rendering (render.scene)."""

from __future__ import annotations

import pytest

from repro.dbms.parser import parse_expression
from repro.dbms.relation import Method, RowSet
from repro.dbms.tuples import Schema
from repro.display.displayable import Composite, DisplayableRelation, Group
from repro.errors import ViewerError
from repro.render.canvas import Canvas
from repro.render.scene import (
    CanvasDef,
    SceneStats,
    ViewState,
    render_composite,
    render_group,
)

SCHEMA = Schema([("label", "text"), ("px", "float"), ("py", "float"),
                 ("level", "float")])


def dotted_relation(name="dots", rows=None, display="filled_circle(2)"):
    data = rows or [
        {"label": "origin", "px": 0.0, "py": 0.0, "level": 1.0},
        {"label": "east", "px": 10.0, "py": 0.0, "level": 2.0},
        {"label": "north", "px": 0.0, "py": 10.0, "level": 3.0},
    ]
    relation = DisplayableRelation(RowSet.from_dicts(SCHEMA, data), name=name)
    relation = relation.with_method_added(Method("x", "float", parse_expression("px")))
    relation = relation.with_method_added(Method("y", "float", parse_expression("py")))
    return relation.with_method_added(
        Method("display", "drawables", parse_expression(display))
    )


class TestViewState:
    def test_zero_elevation_rejected(self):
        with pytest.raises(ViewerError):
            ViewState(elevation=0.0)

    def test_negative_elevation_allowed_for_underside(self):
        view = ViewState(elevation=-10.0)
        assert view.visible_world_width == 10.0

    def test_scale_from_elevation(self):
        view = ViewState(elevation=100.0, viewport=(200, 100))
        assert view.scale == 2.0  # 200 px / 100 world units
        assert view.visible_world_height == 50.0

    def test_world_screen_roundtrip(self):
        view = ViewState(center=(5.0, -3.0), elevation=40.0, viewport=(400, 300))
        px, py = view.to_screen(7.5, -1.0)
        assert view.to_world(px, py) == pytest.approx((7.5, -1.0))

    def test_center_maps_to_viewport_middle(self):
        view = ViewState(center=(5.0, 5.0), elevation=10.0, viewport=(100, 80))
        assert view.to_screen(5.0, 5.0) == (50.0, 40.0)

    def test_y_axis_flipped(self):
        view = ViewState(center=(0.0, 0.0), elevation=10.0, viewport=(100, 100))
        __, py_up = view.to_screen(0.0, 1.0)
        __, py_down = view.to_screen(0.0, -1.0)
        assert py_up < 50 < py_down

    def test_world_bounds(self):
        view = ViewState(center=(0.0, 0.0), elevation=10.0, viewport=(100, 50))
        x0, y0, x1, y1 = view.world_bounds()
        assert (x1 - x0) == pytest.approx(10.0)
        assert (y1 - y0) == pytest.approx(5.0)

    def test_copy_is_deep_for_sliders(self):
        view = ViewState(slider_ranges={"alt": (0.0, 1.0)})
        clone = view.copy()
        clone.slider_ranges["alt"] = (5.0, 6.0)
        assert view.slider_ranges["alt"] == (0.0, 1.0)


class TestRenderComposite:
    def view(self, **kwargs):
        defaults = dict(center=(0.0, 0.0), elevation=40.0, viewport=(200, 200))
        defaults.update(kwargs)
        return ViewState(**defaults)

    def test_renders_each_tuple(self):
        canvas = Canvas(200, 200)
        stats = SceneStats()
        items = render_composite(canvas, dotted_relation(), self.view(),
                                 stats=stats)
        assert stats.tuples_rendered == 3
        assert len(items) == 3
        assert canvas.count_nonbackground() > 0

    def test_items_carry_provenance(self):
        canvas = Canvas(200, 200)
        items = render_composite(canvas, dotted_relation(), self.view())
        assert {item.relation_name for item in items} == {"dots"}
        assert {item.row["label"] for item in items} == {"origin", "east", "north"}

    def test_viewport_culling(self):
        view = self.view(center=(1000.0, 1000.0))
        stats = SceneStats()
        canvas = Canvas(200, 200)
        render_composite(canvas, dotted_relation(), view, stats=stats)
        assert stats.culled_by_viewport == 3
        assert canvas.count_nonbackground() == 0

    def test_cull_false_paints_anyway_offscreen_safe(self):
        view = self.view(center=(1000.0, 1000.0))
        stats = SceneStats()
        canvas = Canvas(200, 200)
        render_composite(canvas, dotted_relation(), view, cull=False, stats=stats)
        assert stats.culled_by_viewport == 0
        assert canvas.count_nonbackground() == 0  # clipped at paint

    def test_slider_culling(self):
        relation = dotted_relation().with_slider_added("level")
        view = self.view(slider_ranges={"level": (0.0, 1.5)})
        stats = SceneStats()
        render_composite(Canvas(200, 200), relation, view, stats=stats)
        assert stats.culled_by_slider == 2
        assert stats.tuples_rendered == 1

    def test_relation_without_dim_invariant_to_slider(self):
        # §6.1: relations lacking a dimension ignore its slider.
        relation = dotted_relation()
        view = self.view(slider_ranges={"level": (99.0, 100.0)})
        stats = SceneStats()
        render_composite(Canvas(200, 200), relation, view, stats=stats)
        assert stats.tuples_rendered == 3

    def test_elevation_range_culls_whole_relation(self):
        relation = dotted_relation().with_range(0.0, 10.0)
        stats = SceneStats()
        render_composite(Canvas(200, 200), relation, self.view(elevation=50.0),
                         stats=stats)
        assert stats.relations_culled_by_elevation == 1
        assert stats.tuples_considered == 0

    def test_drawing_order_later_on_top(self):
        red = dotted_relation("red", display="filled_circle(4, 'red')")
        blue = dotted_relation("blue", display="filled_circle(4, 'blue')")
        canvas = Canvas(200, 200)
        render_composite(canvas, Composite([red, blue]), self.view())
        center = canvas.pixel(100, 100)
        assert center == (38, 89, 166)  # blue painted last

    def test_composite_entry_offset_shifts(self):
        base = dotted_relation("base")
        composite = Composite([base]).overlay(
            dotted_relation("shifted", display="filled_circle(2, 'red')"),
            offset={"x": 15.0},
        )
        canvas = Canvas(200, 200)
        items = render_composite(canvas, composite, self.view())
        base_x = [i.bbox[0] for i in items if i.relation_name == "base"]
        shifted_x = [i.bbox[0] for i in items if i.relation_name == "shifted"]
        assert min(shifted_x) > min(base_x)

    def test_default_display_renders_text_rows(self):
        relation = DisplayableRelation(
            RowSet.from_dicts(SCHEMA, [
                {"label": "a", "px": 0.0, "py": 0.0, "level": 0.0},
                {"label": "b", "px": 0.0, "py": 0.0, "level": 0.0},
            ]),
            name="plain",
        )
        canvas = Canvas(400, 200)
        view = ViewState(center=(15.0, -0.5), elevation=40.0, viewport=(400, 200))
        stats = SceneStats()
        render_composite(canvas, relation, view, stats=stats)
        assert stats.tuples_rendered == 2
        assert canvas.count_nonbackground() > 50


class TestWormholeRendering:
    def test_nested_canvas_painted(self):
        inner = dotted_relation("inner", display="filled_circle(8, 'red')")
        outer = dotted_relation(
            "outer",
            rows=[{"label": "hole", "px": 0.0, "py": 0.0, "level": 0.0}],
            display="wormhole('dest', 80, 60, 40, 0, 0)",
        )

        def resolver(name):
            assert name == "dest"
            return CanvasDef(Composite([inner]), {}, 1.0)

        canvas = Canvas(200, 200)
        view = ViewState(center=(0.0, 0.0), elevation=40.0, viewport=(200, 200))
        render_composite(canvas, outer, view, resolver=resolver)
        # Red of the nested render visible inside the frame region.
        assert (220, 50, 47) in canvas.colors_used()

    def test_depth_limit_stops_recursion(self):
        # A canvas containing a wormhole to itself must terminate.
        loop = dotted_relation(
            "loop",
            rows=[{"label": "hole", "px": 0.0, "py": 0.0, "level": 0.0}],
            display="wormhole('self', 80, 60, 40, 0, 0)",
        )

        def resolver(name):
            return CanvasDef(Composite([loop]), {}, 1.0)

        canvas = Canvas(200, 200)
        view = ViewState(center=(0.0, 0.0), elevation=40.0, viewport=(200, 200))
        render_composite(canvas, loop, view, resolver=resolver)  # must return

    def test_group_destination_renders_members(self):
        # A wormhole onto a canvas showing a group renders every member
        # inside the frame (the render_group branch of nested rendering).
        inner = dotted_relation("inner", display="filled_circle(6, 'red')")
        group = Group([
            ("left", Composite([inner])),
            ("right", Composite([inner.with_name("other")])),
        ])
        outer = dotted_relation(
            "outer",
            rows=[{"label": "hole", "px": 0.0, "py": 0.0, "level": 0.0}],
            display="wormhole('dest', 160, 100, 40, 0, 0)",
        )

        def resolver(name):
            return CanvasDef(group, {}, 1.0)

        canvas = Canvas(240, 200)
        view = ViewState(center=(0.0, 0.0), elevation=40.0, viewport=(240, 200))
        render_composite(canvas, outer, view, resolver=resolver)
        assert (220, 50, 47) in canvas.colors_used()

    def test_without_resolver_frame_only(self):
        outer = dotted_relation(
            "outer",
            rows=[{"label": "hole", "px": 0.0, "py": 0.0, "level": 0.0}],
            display="wormhole('dest', 80, 60, 40, 0, 0)",
        )
        canvas = Canvas(200, 200)
        view = ViewState(center=(0.0, 0.0), elevation=40.0, viewport=(200, 200))
        items = render_composite(canvas, outer, view)
        assert len(items) == 1
        assert items[0].drawable_kind == "viewer"


class TestRenderGroup:
    def make_group(self):
        return Group(
            [
                ("left", Composite([dotted_relation("l")])),
                ("right", Composite([dotted_relation("r")])),
            ]
        )

    def views(self, group):
        return {
            name: ViewState(center=(0.0, 0.0), elevation=40.0)
            for name in group.member_names()
        }

    def test_each_member_rendered_in_cell(self):
        group = self.make_group()
        canvas = Canvas(400, 200)
        results = render_group(canvas, group, self.views(group))
        assert set(results) == {"left", "right"}
        assert canvas.region_nonbackground(0, 0, 200, 200) > 0
        assert canvas.region_nonbackground(200, 0, 400, 200) > 0

    def test_item_bboxes_in_canvas_coordinates(self):
        group = self.make_group()
        canvas = Canvas(400, 200)
        results = render_group(canvas, group, self.views(group))
        right_xs = [item.bbox[0] for item in results["right"]]
        assert all(x >= 200 for x in right_xs)

    def test_independent_member_views(self):
        group = self.make_group()
        views = self.views(group)
        views["right"] = ViewState(center=(1000.0, 0.0), elevation=40.0)
        canvas = Canvas(400, 200)
        results = render_group(canvas, group, views)
        assert len(results["left"]) == 3
        assert len(results["right"]) == 0  # panned away

    def test_missing_view_state_rejected(self):
        group = self.make_group()
        with pytest.raises(ViewerError, match="no view state"):
            render_group(Canvas(400, 200), group, {"left": ViewState()})

    def test_tabular_layout_cells(self):
        group = Group(
            [(f"m{i}", Composite([dotted_relation(f"r{i}")])) for i in range(4)],
            layout="tabular",
            table_shape=(2, 2),
        )
        canvas = Canvas(200, 200)
        views = {name: ViewState(elevation=40.0) for name in group.member_names()}
        results = render_group(canvas, group, views)
        assert len(results) == 4
        # Bottom-right cell has content.
        assert canvas.region_nonbackground(100, 100, 200, 200) > 0
