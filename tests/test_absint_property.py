"""Soundness property tests for the abstract interpreter (30 random seeds).

Two properties, checked against concrete execution:

1. **Value soundness** — for every expression and every row, the concrete
   result of ``expr.evaluate(row)`` lies inside the abstract value computed
   by ``abstract_eval`` from the table's column statistics.

2. **Proof soundness** — every hazard-impossibility proof the interpreter
   produces is concretely true on every row: a proven ``div_zero`` divisor
   never evaluates to zero, a proven ``sqrt_nonneg`` argument is never
   negative, and proven ``exact_int`` operands stay within ±2^53.  These
   are exactly the facts the columnar compiler relies on when it elides a
   runtime guard, so a violation here means an elided guard would have
   fired.
"""

from __future__ import annotations

import random

import pytest

from repro.analyze.absint import (
    HazardProofs,
    abstract_eval,
    env_from_stats,
)
from repro.dbms.catalog import stats_for
from repro.dbms.expr import Binary, Call, Conditional, Unary
from repro.dbms.parser import parse_expression
from repro.dbms.relation import RowSet
from repro.dbms.tuples import Schema
from repro.errors import EvaluationError

SCHEMA = Schema([("a", "int"), ("b", "int"), ("x", "float"), ("y", "float")])

# A mix of safe and hazardous shapes: bounded arithmetic, divisions whose
# divisor may or may not span zero, square-based denominators, calls, and
# conditionals.  Text columns are deliberately absent — the interesting
# domains are numeric.
EXPRESSIONS = (
    "a + b * 2",
    "a - b",
    "-a + abs(b)",
    "x * y + 1.0",
    "x * x",
    "x / (x * x + 1.0)",
    "a / (b * b + 1)",
    "x / y",
    "a / b",
    "(a + b) / (a - b)",
    "sqrt(x * x)",
    "sqrt(abs(y))",
    "sqrt(x)",
    "min(a, b) + max(a, b)",
    "floor(x) + ceil(y)",
    "if a < b then x else y",
    "if x > 0.0 then x / (x + 1.0) else 0.0 - x",
    "a % (b * b + 1)",
)

EXACT_INT = 2**53


def random_rows(rng: random.Random, count: int = 40) -> RowSet:
    dicts = []
    for _ in range(count):
        dicts.append(
            {
                "a": rng.randint(-50, 50),
                "b": rng.randint(-10, 10),
                # Occasionally huge floats so exact_int bounds get exercised.
                "x": rng.choice(
                    [rng.uniform(-100.0, 100.0), rng.uniform(-1e16, 1e16)]
                ),
                "y": rng.uniform(-5.0, 5.0),
            }
        )
    return RowSet.from_dicts(SCHEMA, dicts)


def walk(expr):
    yield expr
    if isinstance(expr, Binary):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, Unary):
        yield from walk(expr.operand)
    elif isinstance(expr, Conditional):
        yield from walk(expr.condition)
        yield from walk(expr.then_branch)
        yield from walk(expr.else_branch)
    elif isinstance(expr, Call):
        for arg in expr.args:
            yield from walk(arg)


def concrete(expr, row):
    """Evaluate, mapping runtime hazard traps to a sentinel."""
    try:
        return expr.evaluate(row)
    except EvaluationError:
        return EvaluationError


@pytest.mark.parametrize("seed", range(30))
def test_abstract_values_and_proofs_are_sound(seed):
    rng = random.Random(seed)
    rows = random_rows(rng)
    env = env_from_stats(stats_for(rows), SCHEMA)
    dict_rows = [row.as_dict() for row in rows]

    for source in EXPRESSIONS:
        expr = parse_expression(source, SCHEMA)
        proofs = HazardProofs()
        av = abstract_eval(expr, dict(env), SCHEMA, proofs)

        for row in dict_rows:
            value = concrete(expr, row)

            # Property 1: concrete results live inside the abstract value.
            if value is not EvaluationError:
                assert av.contains(value), (
                    f"seed={seed} {source!r}: concrete {value!r} "
                    f"escapes abstract {av!r} on row {row}"
                )

            # Property 2: every proof holds concretely on this row.
            for node in walk(expr):
                if proofs.proves(node, "div_zero"):
                    divisor = concrete(node.right, row)
                    assert divisor is not EvaluationError and divisor != 0, (
                        f"seed={seed} {source!r}: proven div_zero divisor "
                        f"({node.right}) evaluated to {divisor!r} on {row}"
                    )
                if proofs.proves(node, "sqrt_nonneg"):
                    arg = concrete(node.args[0], row)
                    assert arg is not EvaluationError and arg >= 0, (
                        f"seed={seed} {source!r}: proven sqrt_nonneg arg "
                        f"({node.args[0]}) evaluated to {arg!r} on {row}"
                    )
                if proofs.proves(node, "exact_int"):
                    for side in (node.left, node.right):
                        operand = concrete(side, row)
                        if operand is EvaluationError:
                            continue
                        assert abs(operand) <= EXACT_INT, (
                            f"seed={seed} {source!r}: proven exact_int "
                            f"operand ({side}) = {operand!r} exceeds 2^53"
                        )


@pytest.mark.parametrize("seed", range(0, 30, 7))
def test_proofs_never_cover_a_row_that_traps(seed):
    """If the *whole* expression carries a div_zero proof on its top-level
    division, evaluation must never raise on any generated row."""
    rng = random.Random(1000 + seed)
    rows = random_rows(rng)
    env = env_from_stats(stats_for(rows), SCHEMA)
    expr = parse_expression("x / (x * x + 1.0)", SCHEMA)
    proofs = HazardProofs()
    abstract_eval(expr, dict(env), SCHEMA, proofs)
    assert proofs.proves(expr, "div_zero")
    for row in rows:
        expr.evaluate(row.as_dict())  # must not raise
