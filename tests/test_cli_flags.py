"""Tests: the uniform CLI flag set across inspection subcommands.

``lint``/``explain``/``stats``/``trace``/``render`` share one argparse
parent parser, so ``--json``/``--timing``/``--strict``/``--workers`` parse
(and mean the same thing) on all of them.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.dbms.plan_parallel import default_config, result_cache

INSPECTION = ["lint", "explain", "stats", "trace", "render"]


def parse(argv):
    return build_parser().parse_args(argv)


class TestUniformParsing:
    @pytest.mark.parametrize("command", INSPECTION)
    def test_common_flags_accepted_everywhere(self, command):
        argv = [command, "--json", "--timing", "--strict", "--workers", "4",
                "--columnar"]
        if command == "render":
            argv += ["--out-dir", "out"]
        args = parse(argv)
        assert args.as_json is True
        assert args.timing is True
        assert args.strict is True
        assert args.workers == 4
        assert args.columnar is True

    @pytest.mark.parametrize("command", INSPECTION)
    def test_common_flags_default_off(self, command):
        argv = [command] if command != "render" else [command, "--out-dir", "x"]
        args = parse(argv)
        assert args.as_json is False
        assert args.timing is False
        assert args.strict is False
        assert args.workers is None
        assert args.columnar is False

    def test_non_inspection_commands_reject_common_flags(self):
        with pytest.raises(SystemExit):
            parse(["tables", "--db", "x.json", "--workers", "4"])


class TestWorkersFlag:
    def test_workers_config_restored_after_run(self, capsys):
        before = default_config()
        assert main(["explain", "--figure", "fig1", "--workers", "4"]) == 0
        assert default_config() is before
        capsys.readouterr()

    def test_explain_json_reports_parallel_and_cache(self, capsys):
        result_cache().clear()
        assert main(["explain", "--figure", "fig1", "--json",
                     "--workers", "4"]) == 0
        report = json.loads(capsys.readouterr().out)
        statuses = set()
        parallel_nodes = []

        def walk(tree):
            if "parallel" in tree:
                parallel_nodes.append(tree)
            for child in tree.get("children", ()):
                walk(child)

        for box in report["boxes"]:
            for output in box["outputs"]:
                for plan in output.get("plans", ()):
                    statuses.add(plan["cache"])
                    walk(plan["tree"])
        assert statuses & {"hit", "miss"}
        result_cache().clear()


class TestColumnarFlag:
    def test_columnar_config_restored_after_run(self, capsys):
        from repro.dbms.columnar import default_columnar_config

        before = default_columnar_config()
        assert main(["explain", "--figure", "fig1", "--columnar"]) == 0
        assert default_columnar_config() is before
        capsys.readouterr()

    def test_explain_json_reports_columnar_backend(self, capsys):
        # --workers 1 forces serial even under a REPRO_PARALLEL default;
        # otherwise the eligible chains ride inside ParallelMap morsels
        # and no standalone node reports the columnar backend.
        assert main(["explain", "--figure", "fig4", "--json",
                     "--columnar", "--workers", "1"]) == 0
        report = json.loads(capsys.readouterr().out)
        backends = set()

        def walk(tree):
            backends.add(tree["backend"])
            for child in tree.get("children", ()):
                walk(child)

        for box in report["boxes"]:
            for output in box["outputs"]:
                for plan in output.get("plans", ()):
                    walk(plan["tree"])
        assert "columnar" in backends

    def test_stats_preregisters_columnar_counters(self, capsys):
        assert main(["stats", "--figure", "fig1", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        for counter in ("columnar.batches", "columnar.fallback"):
            assert counter in summary["metrics"], counter


class TestJsonOutputs:
    def test_trace_json_summary(self, capsys, tmp_path):
        out = tmp_path / "trace.json"
        assert main(["trace", "fig1", "--out", str(out), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["target"] == "fig1"
        assert summary["spans"] > 0
        assert out.exists()

    def test_render_json_summary(self, capsys, tmp_path):
        assert main(["render", "--out-dir", str(tmp_path),
                     "--which", "fig1", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["figures"][0]["figure"] == "fig1"
        assert summary["figures"][0]["pixels"] > 0


class TestStrictSemantics:
    def test_render_strict_passes_on_nonblank_figures(self, capsys, tmp_path):
        assert main(["render", "--out-dir", str(tmp_path),
                     "--which", "fig1", "--strict"]) == 0
        capsys.readouterr()

    def test_lint_strict_still_gates_warnings(self, capsys):
        # Pre-existing behaviour routed through the shared parser.
        assert main(["lint", "--figure", "fig4", "--strict"]) in (0, 1)
        capsys.readouterr()


class TestValidateBenchRouting:
    def test_parallel_schema_routed_by_payload(self, capsys, tmp_path):
        payload = {
            "schema": "repro.bench.parallel/1",
            "benchmarks": [{
                "name": "demo",
                "arms": {"serial": {"workers": 0, "seconds": 0.5},
                         "workers_4": {"workers": 4, "seconds": 0.1}},
                "speedup": 5.0,
            }],
        }
        path = tmp_path / "BENCH_parallel.json"
        path.write_text(json.dumps(payload))
        assert main(["stats", "--validate-bench", str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_parallel_payload_rejected(self, capsys, tmp_path):
        payload = {"schema": "repro.bench.parallel/1",
                   "benchmarks": [{"name": "demo", "arms": {}}]}
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(payload))
        assert main(["stats", "--validate-bench", str(path)]) == 1
        capsys.readouterr()


class TestStatsJsonSchema:
    def test_pinned_shape_with_parallel_counters(self, capsys):
        """The `stats --json` contract: a repro.bench/1 summary whose
        metrics always include the PR-4 counter set, even when the run
        didn't happen to exercise cache or morsel pool."""
        assert main(["stats", "--figure", "fig4", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert set(summary) == {"schema", "spans", "events", "metrics",
                                "dropped"}
        assert summary["schema"] == "repro.bench/1"
        for counter in ("cache.hit", "cache.miss", "cache.evict",
                        "parallel.morsels"):
            assert counter in summary["metrics"], counter
        # Engine/render taxonomy is present too (the render really ran).
        assert "render.frames" in summary["metrics"]
        assert summary["spans"]  # non-empty span rollups


class TestTraceDefaultOut:
    def test_default_filename_is_deterministic(self, tmp_path, capsys,
                                               monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "trace_fig1.json" in out
        assert (tmp_path / "trace_fig1.json").exists()
        # Same invocation, same filename: CI artifact globs stay stable.
        assert main(["trace", "fig1"]) == 0
        capsys.readouterr()

    def test_explicit_out_still_wins(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["trace", "fig1", "--out", "mytrace.json"]) == 0
        capsys.readouterr()
        assert (tmp_path / "mytrace.json").exists()
        assert not (tmp_path / "trace_fig1.json").exists()


class TestDashboardCommand:
    def test_headless_dashboard_smoke(self, tmp_path, capsys):
        out_dir = tmp_path / "dash"
        assert main(["dashboard", "--figure", "fig1", "--renders", "2",
                     "--out-dir", str(out_dir), "--json", "--strict"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_draw_ops"] > 0
        charts = {entry["chart"]: entry for entry in payload["charts"]}
        assert set(charts) == {"spans", "cache", "rates"}
        for entry in charts.values():
            assert entry["draw_ops"] > 0
        assert (out_dir / "timeseries.json").exists()
        assert (out_dir / "metrics.prom").exists()
        for chart in charts:
            assert (out_dir / f"dashboard_{chart}.ppm").exists()
        # The exported snapshot validates against its schema.
        from repro.obs import validate_timeseries

        validate_timeseries(json.loads(
            (out_dir / "timeseries.json").read_text()))
