"""Unit tests: the Figure-5 attribute boxes."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import (
    AddAttributeBox,
    CombineDisplaysBox,
    RemoveAttributeBox,
    ScaleAttributeBox,
    SetAttributeBox,
    SwapAttributesBox,
    TranslateAttributeBox,
)
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.errors import DisplayError, GraphError, TypeCheckError


def run_chain(db, *boxes):
    program = Program()
    ids = [program.add_box(box) for box in boxes]
    for upstream, downstream in zip(ids, ids[1:]):
        program.connect(upstream, "out", downstream, "in")
    engine = Engine(program, db)
    return engine.output_of(ids[-1])


class TestAddAttribute:
    def test_adds_computed_attribute(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            AddAttributeBox(name="alt_m", definition="altitude * 0.3048"),
        )
        view = relation.view_at(0)
        assert view["alt_m"] == pytest.approx(7.0 * 0.3048)

    def test_location_attribute_adds_dimension(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            AddAttributeBox(name="alt", definition="altitude", location=True),
        )
        assert relation.dimension == 3
        assert "alt" in relation.slider_dims

    def test_location_x_does_not_become_slider(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            AddAttributeBox(name="x", definition="longitude", location=True),
        )
        assert relation.dimension == 2
        assert relation.has_custom_location is False  # y still default

    def test_non_numeric_location_rejected(self, stations_db):
        with pytest.raises(DisplayError):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                AddAttributeBox(name="loc", definition="name", location=True),
            )

    def test_declared_type_mismatch_rejected(self, stations_db):
        with pytest.raises(TypeCheckError):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                AddAttributeBox(name="bad", definition="name",
                                declared_type="int"),
            )

    def test_duplicate_name_rejected(self, stations_db):
        with pytest.raises(Exception):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                AddAttributeBox(name="altitude", definition="1.0"),
            )

    def test_definition_can_reference_sequence(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            AddAttributeBox(name="rank", definition="tioga_seq * 10"),
        )
        assert relation.view_at(2)["rank"] == 20


class TestSetAttribute:
    def test_establishes_custom_location(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            SetAttributeBox(name="x", definition="longitude"),
            SetAttributeBox(name="y", definition="latitude"),
        )
        assert relation.has_custom_location
        assert relation.location_of(relation.view_at(0))[:2] == (-90.07, 29.95)

    def test_redefines_existing_method(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            SetAttributeBox(name="x", definition="longitude"),
            SetAttributeBox(name="x", definition="longitude * 2"),
        )
        assert relation.view_at(0)["x"] == pytest.approx(-180.14)

    def test_cannot_redefine_stored_field(self, stations_db):
        with pytest.raises(GraphError, match="stored field"):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                SetAttributeBox(name="altitude", definition="1.0"),
            )

    def test_display_must_be_drawables(self, stations_db):
        with pytest.raises(DisplayError):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                SetAttributeBox(name="display", definition="altitude"),
            )

    def test_display_from_constructor_expression(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            SetAttributeBox(name="display",
                            definition="filled_circle(3, 'blue')"),
        )
        drawables = relation.display_of(relation.view_at(0))
        assert len(drawables) == 1
        assert drawables[0].kind == "circle"


class TestRemoveAttribute:
    def test_removes_computed(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            AddAttributeBox(name="tmp", definition="1"),
            RemoveAttributeBox(name="tmp"),
        )
        assert "tmp" not in relation.extended_schema

    def test_removes_stored(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            RemoveAttributeBox(name="altitude"),
        )
        assert "altitude" not in relation.rows.schema

    def test_protected_attributes(self, stations_db):
        for protected in ("x", "y", "display"):
            with pytest.raises(GraphError, match="required"):
                run_chain(
                    stations_db,
                    AddTableBox(table="Stations"),
                    RemoveAttributeBox(name=protected),
                )

    def test_removing_slider_dim_drops_dimension(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            AddAttributeBox(name="alt", definition="altitude", location=True),
            RemoveAttributeBox(name="alt"),
        )
        assert relation.dimension == 2

    def test_unknown_attribute(self, stations_db):
        with pytest.raises(GraphError, match="no attribute"):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                RemoveAttributeBox(name="ghost"),
            )


class TestSwapAttributes:
    def test_swap_computed_rotates_canvas(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            SetAttributeBox(name="x", definition="longitude"),
            SetAttributeBox(name="y", definition="latitude"),
            SwapAttributesBox(first="x", second="y"),
        )
        x, y = relation.location_of(relation.view_at(0))[:2]
        assert (x, y) == (29.95, -90.07)

    def test_swap_display_with_alternate(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            SetAttributeBox(name="display", definition="circle(5)"),
            AddAttributeBox(name="alt_display",
                            definition="filled_rect(4, 4, 'red')",
                            declared_type="drawables"),
            SwapAttributesBox(first="display", second="alt_display"),
        )
        drawables = relation.display_of(relation.view_at(0))
        assert drawables[0].kind == "rectangle"

    def test_swap_stored_fields(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            SwapAttributesBox(first="longitude", second="latitude"),
        )
        row = relation.rows[0]
        assert row["longitude"] == 29.95
        assert row["latitude"] == -90.07

    def test_swap_mixed_rejected(self, stations_db):
        with pytest.raises(GraphError, match="both"):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                SetAttributeBox(name="x", definition="longitude"),
                SwapAttributesBox(first="x", second="altitude"),
            )

    def test_swap_different_types_rejected(self, stations_db):
        with pytest.raises(TypeCheckError):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                SwapAttributesBox(first="name", second="altitude"),
            )

    def test_swap_same_name_rejected(self, stations_db):
        with pytest.raises(GraphError, match="distinct"):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                SwapAttributesBox(first="x", second="x"),
            )


class TestScaleTranslate:
    def test_scale_computed(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            SetAttributeBox(name="x", definition="longitude"),
            ScaleAttributeBox(name="x", amount=2.0),
        )
        assert relation.view_at(0)["x"] == pytest.approx(-180.14)

    def test_translate_computed(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            SetAttributeBox(name="y", definition="latitude"),
            TranslateAttributeBox(name="y", amount=10.0),
        )
        assert relation.view_at(0)["y"] == pytest.approx(39.95)

    def test_scale_stored_field(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            ScaleAttributeBox(name="altitude", amount=2.0),
        )
        assert relation.rows[0]["altitude"] == 14.0

    def test_translate_stored_int_stays_int(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            TranslateAttributeBox(name="station_id", amount=100.0),
        )
        assert relation.rows[0]["station_id"] == 101

    def test_scale_stored_int_fractional_rejected(self, stations_db):
        with pytest.raises(TypeCheckError, match="non-integer"):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                ScaleAttributeBox(name="station_id", amount=0.5),
            )

    def test_scale_text_rejected(self, stations_db):
        with pytest.raises(TypeCheckError, match="numeric"):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                ScaleAttributeBox(name="name", amount=2.0),
            )


class TestCombineDisplays:
    def test_combines_in_order_with_offset(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            AddAttributeBox(name="dot", definition="filled_circle(3, 'blue')",
                            declared_type="drawables"),
            AddAttributeBox(name="label", definition="text_of(name)",
                            declared_type="drawables"),
            CombineDisplaysBox(first="dot", second="label",
                               offset_x=0.0, offset_y=-10.0),
        )
        drawables = relation.display_of(relation.view_at(0))
        assert [d.kind for d in drawables] == ["circle", "text"]
        assert drawables[1].offset == (0.0, -10.0)

    def test_combined_becomes_display_attribute(self, stations_db):
        relation = run_chain(
            stations_db,
            AddTableBox(table="Stations"),
            AddAttributeBox(name="a", definition="circle(2)",
                            declared_type="drawables"),
            AddAttributeBox(name="b", definition="point()",
                            declared_type="drawables"),
            CombineDisplaysBox(first="a", second="b"),
        )
        assert relation.has_custom_display

    def test_non_drawable_attribute_rejected(self, stations_db):
        with pytest.raises(TypeCheckError, match="drawable"):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                AddAttributeBox(name="a", definition="circle(2)",
                                declared_type="drawables"),
                CombineDisplaysBox(first="a", second="altitude"),
            )

    def test_unknown_attribute_rejected(self, stations_db):
        with pytest.raises(GraphError):
            run_chain(
                stations_db,
                AddTableBox(table="Stations"),
                CombineDisplaysBox(first="ghost", second="ghost2"),
            )
