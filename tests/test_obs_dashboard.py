"""The self-hosted dashboard: recorded engine telemetry -> Tioga-2 charts."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs import MetricsRecorder, Tracer
from repro.obs.dashboard import (
    RATE_SERIES_METRICS,
    build_dashboard_program,
    build_telemetry_dashboard,
    record_figure_telemetry,
    render_dashboard,
    telemetry_database,
)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(scope="module")
def recorded():
    """One real fig4 recording shared by the module (renders are slow)."""
    return record_figure_telemetry(figure="fig4", renders=3, workers=2)


# ---------------------------------------------------------------------------
# Recording: real engine metrics actually move
# ---------------------------------------------------------------------------


def test_recording_captures_engine_and_render_series(recorded):
    recorder, tracer = recorded
    # renders + initial sample
    assert recorder.samples_taken >= 4
    keys = set(recorder.series_keys())
    assert "render.frames|_total" in keys
    assert "engine.box.fires|_total" in keys
    assert "parallel.morsels|_total" in keys
    assert "cache.hit|_total" in keys
    # Rate series exist for the dashboard's line chart.
    for metric in RATE_SERIES_METRICS:
        assert f"{metric}|_total|rate" in keys
    # The tracer saw render spans.
    assert any(span.name.startswith("render") for span in tracer.finished())


def test_recording_rejects_unknown_figure():
    with pytest.raises(ObservabilityError):
        record_figure_telemetry(figure="fig99")
    with pytest.raises(ObservabilityError):
        record_figure_telemetry(renders=0)


# ---------------------------------------------------------------------------
# Ingestion: telemetry lands in ordinary DBMS tables
# ---------------------------------------------------------------------------


def test_telemetry_database_tables(recorded):
    recorder, tracer = recorded
    db = telemetry_database(recorder, tracer)
    spans = db.table("SpanSamples")
    cache = db.table("CacheOps")
    rates = db.table("OpRates")
    axes = db.table("DashboardAxes")
    assert len(spans) > 0
    assert len(cache) == 3          # hit / miss / evict bars
    assert len(rates) > 0
    assert len(axes) == 6           # two axis segments per chart
    # Chart coordinates are normalized into the chart world box.
    for row in spans:
        assert 0.0 <= row["x_pos"] <= 360.0
        assert 0.0 <= row["y_pos"] <= 220.0
    series_names = {row["series"] for row in rates}
    assert series_names <= set(RATE_SERIES_METRICS)
    assert len(series_names) >= 2


def test_telemetry_database_without_tracer():
    registry = MetricsRegistry()
    registry.counter("cache.hit").inc(3)
    recorder = MetricsRecorder(registry)
    recorder.sample(t=1.0)
    db = telemetry_database(recorder, tracer=None)
    assert len(db.table("SpanSamples")) == 0
    assert len(db.table("CacheOps")) == 3


# ---------------------------------------------------------------------------
# The program + headless render (acceptance: >0 draw ops from real metrics)
# ---------------------------------------------------------------------------


def test_dashboard_renders_headless_with_draw_ops(recorded):
    recorder, tracer = recorded
    db = telemetry_database(recorder, tracer)
    scenario = build_dashboard_program(db)
    assert set(scenario.session.windows) == {"spans", "cache", "rates"}
    result = render_dashboard(scenario)
    for chart in ("spans", "cache", "rates"):
        assert result[chart]["draw_ops"] > 0, f"{chart} chart painted nothing"
        assert result[chart]["pixels"] > 0
    assert result["total_draw_ops"] > 0
    # The scatter's draw count is driven by the recorded span rows — the
    # dashboard is visualizing its own telemetry, not canned data.
    assert result["spans"]["draw_ops"] >= len(db.table("SpanSamples"))


def test_dashboard_program_is_ordinary_boxes_and_arrows(recorded):
    recorder, tracer = recorded
    db = telemetry_database(recorder, tracer)
    scenario = build_dashboard_program(db)
    program = scenario.session.program
    type_names = {box.type_name for box in program.boxes()}
    # Built from the same vocabulary as the paper's figures.
    assert {"AddTable", "Restrict", "SetAttribute", "Overlay",
            "Viewer"} <= type_names


def test_build_telemetry_dashboard_one_call():
    db, scenario = build_telemetry_dashboard(figure="fig1", renders=2,
                                             workers=0)
    result = render_dashboard(scenario)
    assert result["total_draw_ops"] > 0
    assert len(db.table("CacheOps")) == 3


def test_dashboard_accepts_precaptured_recorder():
    recorder, tracer = record_figure_telemetry(figure="fig1", renders=2,
                                               workers=0)
    db, scenario = build_telemetry_dashboard(recorder=recorder,
                                             tracer=tracer)
    assert len(db.table("SpanSamples")) > 0
    assert render_dashboard(scenario)["total_draw_ops"] > 0
