"""Unit tests: schemas and tuples (repro.dbms.tuples)."""

from __future__ import annotations

import pytest

from repro.dbms import types as T
from repro.dbms.tuples import Field, Schema, Tuple
from repro.errors import SchemaError, TypeCheckError


@pytest.fixture()
def schema() -> Schema:
    return Schema([("name", "text"), ("age", "int"), ("score", "float")])


class TestField:
    def test_field_by_type_name(self):
        field = Field("age", "int")
        assert field.type is T.INT

    def test_field_by_type_object(self):
        assert Field("age", T.INT).type is T.INT

    def test_illegal_names_rejected(self):
        for bad in ("", "1abc", "a-b", "a b", "_lead"):
            with pytest.raises(SchemaError):
                Field(bad, "int")

    def test_equality_and_hash(self):
        assert Field("a", "int") == Field("a", "int")
        assert Field("a", "int") != Field("a", "float")
        assert hash(Field("a", "int")) == hash(Field("a", "int"))


class TestSchema:
    def test_names_in_order(self, schema):
        assert schema.names == ("name", "age", "score")

    def test_duplicate_field_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([("a", "int"), ("a", "float")])

    def test_field_lookup(self, schema):
        assert schema.field("age").type is T.INT

    def test_missing_field_raises_with_names(self, schema):
        with pytest.raises(SchemaError, match="name, age, score"):
            schema.field("height")

    def test_position(self, schema):
        assert schema.position("score") == 2

    def test_contains(self, schema):
        assert "age" in schema
        assert "height" not in schema

    def test_project_reorders(self, schema):
        projected = schema.project(["score", "name"])
        assert projected.names == ("score", "name")

    def test_without(self, schema):
        assert schema.without("age").names == ("name", "score")

    def test_without_missing_raises(self, schema):
        with pytest.raises(SchemaError):
            schema.without("height")

    def test_extend(self, schema):
        extended = schema.extend(Field("height", "float"))
        assert extended.names[-1] == "height"
        assert len(schema) == 3  # original untouched

    def test_extend_duplicate_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.extend(Field("age", "float"))

    def test_rename(self, schema):
        renamed = schema.rename("age", "years")
        assert renamed.names == ("name", "years", "score")
        assert renamed.type_of("years") is T.INT

    def test_rename_collision_rejected(self, schema):
        with pytest.raises(SchemaError):
            schema.rename("age", "name")

    def test_equality(self, schema):
        assert schema == Schema([("name", "text"), ("age", "int"), ("score", "float")])
        assert schema != schema.without("age")


class TestTuple:
    def test_build_from_dict(self, schema):
        row = Tuple(schema, {"name": "ada", "age": 36, "score": 9.5})
        assert row["name"] == "ada"
        assert row["age"] == 36

    def test_build_from_sequence(self, schema):
        row = Tuple(schema, ["ada", 36, 9.5])
        assert row["score"] == 9.5

    def test_missing_field_raises(self, schema):
        with pytest.raises(SchemaError, match="missing"):
            Tuple(schema, {"name": "ada", "age": 36})

    def test_extra_field_raises(self, schema):
        with pytest.raises(SchemaError, match="unknown"):
            Tuple(schema, {"name": "ada", "age": 36, "score": 1.0, "x": 2})

    def test_wrong_arity_raises(self, schema):
        with pytest.raises(SchemaError):
            Tuple(schema, ["ada", 36])

    def test_values_coerced(self, schema):
        row = Tuple(schema, {"name": "ada", "age": 36, "score": 9})
        assert isinstance(row["score"], float)

    def test_type_error_names_field(self, schema):
        with pytest.raises(TypeCheckError, match="age"):
            Tuple(schema, {"name": "ada", "age": "old", "score": 1.0})

    def test_replace(self, schema):
        row = Tuple(schema, ["ada", 36, 9.5])
        updated = row.replace(age=37)
        assert updated["age"] == 37
        assert row["age"] == 36  # immutable original

    def test_replace_unknown_field(self, schema):
        row = Tuple(schema, ["ada", 36, 9.5])
        with pytest.raises(SchemaError):
            row.replace(height=1.7)

    def test_project(self, schema):
        row = Tuple(schema, ["ada", 36, 9.5])
        projected = row.project(["score", "name"])
        assert projected.values == (9.5, "ada")
        assert projected.schema.names == ("score", "name")

    def test_get_with_default(self, schema):
        row = Tuple(schema, ["ada", 36, 9.5])
        assert row.get("age") == 36
        assert row.get("height", -1) == -1

    def test_as_dict(self, schema):
        row = Tuple(schema, ["ada", 36, 9.5])
        assert row.as_dict() == {"name": "ada", "age": 36, "score": 9.5}

    def test_equality_and_hash(self, schema):
        a = Tuple(schema, ["ada", 36, 9.5])
        b = Tuple(schema, ["ada", 36, 9.5])
        c = Tuple(schema, ["bob", 36, 9.5])
        assert a == b
        assert a != c
        assert hash(a) == hash(b)
        assert len({a, b, c}) == 2
