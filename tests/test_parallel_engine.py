"""Integration tests: Engine(workers=..., cache=...) and the render path.

The engine-level contract of the parallel subsystem: identical values to a
serial engine (down to rendered pixels), cross-engine sharing through the
result cache, EXPLAIN visibility of both, and correct invalidation when a
table changes under a live cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import scenarios
from repro.data.weather import build_weather_database
from repro.data.workloads import build_pairs_tables
from repro.dataflow.boxes_db import AddTableBox, JoinBox, RestrictBox
from repro.dataflow.engine import Engine
from repro.dataflow.explain import explain, explain_data
from repro.dataflow.graph import Program
from repro.dbms.catalog import Database
from repro.dbms.plan_parallel import (
    ParallelConfig,
    result_cache,
    set_default_config,
)
from repro.dbms.update import ScriptedDialog, generic_update


@pytest.fixture(autouse=True)
def _clean_cache():
    result_cache().clear()
    yield
    result_cache().clear()


def join_program():
    left, right = build_pairs_tables(120, 5, seed=9)
    db = Database("engine_parallel")
    db.add_table(left)
    db.add_table(right)
    program = Program("join")
    src_l = program.add_box(AddTableBox(table="Left"))
    src_r = program.add_box(AddTableBox(table="Right"))
    join = program.add_box(JoinBox(left_key="key", right_key="ref"))
    keep = program.add_box(RestrictBox(predicate="measure > 0.5"))
    program.connect(src_l, "out", join, "left")
    program.connect(src_r, "out", join, "right")
    program.connect(join, "out", keep, "in")
    return db, program, keep


def forced_rows(db, program, box_id, **knobs):
    return tuple(Engine(program, db, **knobs).output_of(box_id).rows.force())


class TestEngineKnobs:
    def test_parallel_engine_matches_serial(self):
        db, program, keep = join_program()
        serial = forced_rows(db, program, keep, workers=0, cache=False)
        parallel = forced_rows(db, program, keep, workers=4)
        assert parallel == serial

    def test_serial_knobs_disable_everything(self):
        db, program, keep = join_program()
        engine = Engine(program, db, workers=0, cache=False)
        assert engine.parallel is None
        engine.output_of(keep)
        stats = result_cache().stats()
        assert stats["entries"] == 0

    def test_cross_engine_cache_hit(self):
        db, program, keep = join_program()
        first = forced_rows(db, program, keep, workers=4)
        before = result_cache().stats()
        second = forced_rows(db, program, keep, workers=4)
        after = result_cache().stats()
        assert second == first
        assert after["hits"] > before["hits"]

    def test_env_default_config_applies(self, monkeypatch):
        previous = set_default_config(
            ParallelConfig(workers=2, cache=True)
        )
        try:
            db, program, keep = join_program()
            engine = Engine(program, db)    # no explicit knobs
            assert engine.parallel is not None
            assert engine.parallel.workers == 2
        finally:
            set_default_config(previous)


class TestExplainVisibility:
    def test_explain_data_reports_cache_and_parallel(self):
        db, program, keep = join_program()
        engine = Engine(program, db, workers=4)
        engine.output_of(keep)
        report = explain_data(program, db, engine=engine)

        statuses = set()
        parallel_ops = []

        def walk(tree):
            if "parallel" in tree:
                parallel_ops.append(tree["op"])
            for child in tree.get("children", ()):
                walk(child)

        for box in report["boxes"]:
            for output in box["outputs"]:
                for plan in output.get("plans", ()):
                    statuses.add(plan["cache"])
                    walk(plan["tree"])
        assert "miss" in statuses
        assert parallel_ops    # at least one node was parallelized

    def test_explain_data_reports_hit_on_second_engine(self):
        db, program, keep = join_program()
        forced_rows(db, program, keep, workers=4)
        engine = Engine(program, db, workers=4)
        engine.output_of(keep)
        report = explain_data(program, db, engine=engine)
        statuses = {
            plan["cache"]
            for box in report["boxes"]
            for output in box["outputs"]
            for plan in output.get("plans", ())
        }
        assert "hit" in statuses

    def test_text_explain_mentions_cache_status(self):
        db, program, keep = join_program()
        forced_rows(db, program, keep, workers=4)
        engine = Engine(program, db, workers=4)
        engine.output_of(keep)
        text = explain(program, db, engine=engine)
        assert "result cache: hit" in text


class TestInvalidation:
    def test_table_insert_invalidates_engine_results(self):
        db, program, keep = join_program()
        first = forced_rows(db, program, keep, workers=4)
        db.table("Right").insert({"ref": 1, "measure": 0.9})
        second = forced_rows(db, program, keep, workers=4)
        assert len(second) == len(first) + 1

    def test_generic_update_invalidates(self):
        db, program, keep = join_program()
        first = forced_rows(db, program, keep, workers=4)
        table = db.table("Right")
        victim = next(row for row in table.snapshot()
                      if row["measure"] <= 0.5)
        result = generic_update(
            table, victim, ScriptedDialog({"measure": "0.99"})
        )
        assert result.applied
        second = forced_rows(db, program, keep, workers=4)
        assert len(second) == len(first) + 1


class TestPixelIdenticalRenders:
    @pytest.mark.parametrize("build", [
        scenarios.build_fig1_table_view,
        scenarios.build_fig4_station_map,
        scenarios.build_fig7_overlay,
    ])
    def test_figure_renders_identically_under_parallel(self, build):
        db = build_weather_database(extra_stations=10, every_days=90)
        serial = build(db)
        window = (serial.named.get("window")
                  or serial.named.get("map_window"))
        baseline = window.render().pixels.copy()

        previous = set_default_config(
            ParallelConfig(workers=4, cache=True, morsel_size=256)
        )
        try:
            result_cache().clear()
            parallel = build(db)
            window = (parallel.named.get("window")
                      or parallel.named.get("map_window"))
            first = window.render().pixels.copy()
            # Render again so the second pass is served from the cache.
            second = window.render().pixels.copy()
        finally:
            set_default_config(previous)
        assert np.array_equal(baseline, first)
        assert np.array_equal(baseline, second)
