"""Failure-injection tests: errors must surface cleanly and never corrupt
engine caches, program structure, or session state."""

from __future__ import annotations

import pytest

from repro.dataflow.box import Box
from repro.dataflow.boxes_db import AddTableBox, RestrictBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dataflow.ports import Port
from repro.errors import EvaluationError, GraphError, TiogaError, TypeCheckError
from repro.ui.session import Session


class FlakyBox(Box):
    """Fails for the first ``failures`` fires, then passes input through."""

    type_name = "_Flaky"

    def __init__(self, failures: int = 1):
        super().__init__({"failures": failures})
        self.inputs = [Port("in", "R")]
        self.outputs = [Port("out", "R")]
        self.attempts = 0

    def fire(self, inputs, context):
        self.attempts += 1
        if self.attempts <= self.param("failures"):
            raise EvaluationError(f"injected failure #{self.attempts}")
        return {"out": inputs["in"]}


def flaky_chain(db, failures=1):
    program = Program()
    src = program.add_box(AddTableBox(table="Stations"))
    flaky = FlakyBox(failures=failures)
    flaky_id = program.add_box(flaky)
    program.connect(src, "out", flaky_id, "in")
    tail = program.add_box(RestrictBox(predicate="state = 'LA'"))
    program.connect(flaky_id, "out", tail, "in")
    return program, Engine(program, db), flaky, tail


class TestEngineFailures:
    def test_failure_propagates(self, stations_db):
        __, engine, __f, tail = flaky_chain(stations_db)
        with pytest.raises(EvaluationError, match="injected"):
            engine.output_of(tail)

    def test_failed_fire_not_cached(self, stations_db):
        # After the failure window passes, re-demand succeeds: the failed
        # attempt must not have poisoned the cache.
        __, engine, flaky, tail = flaky_chain(stations_db, failures=1)
        with pytest.raises(EvaluationError):
            engine.output_of(tail)
        result = engine.output_of(tail)
        assert len(result.rows) == 3
        assert flaky.attempts == 2

    def test_upstream_success_cached_across_failure(self, stations_db):
        program, engine, flaky, tail = flaky_chain(stations_db, failures=1)
        with pytest.raises(EvaluationError):
            engine.output_of(tail)
        engine.output_of(tail)
        src = program.boxes_of_type("AddTable")[0].box_id
        assert engine.stats.fires[src] == 1  # source fired once in total

    def test_bad_predicate_fails_every_demand(self, stations_db):
        program = Program()
        src = program.add_box(AddTableBox(table="Stations"))
        bad = program.add_box(RestrictBox(predicate="ghost > 1"))
        program.connect(src, "out", bad, "in")
        engine = Engine(program, stations_db)
        for __ in range(2):
            with pytest.raises(TypeCheckError):
                engine.output_of(bad)

    def test_incomplete_outputs_detected(self, stations_db):
        class HalfBox(Box):
            type_name = "_Half"

            def __init__(self):
                super().__init__({})
                self.outputs = [Port("a", "R"), Port("b", "R")]

            def fire(self, inputs, context):
                return {"a": None}  # forgot 'b'

        program = Program()
        half = program.add_box(HalfBox())
        engine = Engine(program, stations_db)
        with pytest.raises(GraphError, match="without producing"):
            engine.output_of(half, "a")


class TestSessionFailures:
    def test_failed_connect_keeps_program_consistent(self, stations_session):
        stations = stations_session.add_table("Stations")
        join = stations_session.add_box(
            "Join", {"left_key": "station_id", "right_key": "station_id"}
        )
        stations_session.connect(stations, "out", join, "left")
        edges_before = len(stations_session.program.edges())
        with pytest.raises(GraphError):
            # Same input twice: rejected, nothing half-connected.
            stations_session.connect(stations, "out", join, "left")
        assert len(stations_session.program.edges()) == edges_before

    def test_failed_render_leaves_windows_usable(self, stations_session):
        stations = stations_session.add_table("Stations")
        bad = stations_session.add_box("Restrict", {"predicate": "ghost = 1"})
        stations_session.connect(stations, "out", bad, "in")
        window = stations_session.add_viewer(bad, name="broken",
                                             width=100, height=80)
        with pytest.raises(TiogaError):
            window.render()
        # Fix the program; the same window now renders.
        stations_session.set_param(bad, "predicate", "state = 'LA'")
        assert window.render().count_nonbackground() >= 0

    def test_inspect_missing_box(self, stations_session):
        with pytest.raises(GraphError, match="no box"):
            stations_session.inspect(999)

    def test_update_with_bad_value_changes_nothing(self, stations_session):
        from repro.errors import UpdateError

        stations = stations_session.add_table("Stations")
        set_x = stations_session.add_box(
            "SetAttribute", {"name": "x", "definition": "longitude"}
        )
        stations_session.connect(stations, "out", set_x, "in")
        set_y = stations_session.add_box(
            "SetAttribute", {"name": "y", "definition": "latitude"}
        )
        stations_session.connect(set_x, "out", set_y, "in")
        window = stations_session.add_viewer(set_y, name="map",
                                             width=160, height=120)
        window.viewer.pan_to(-91.0, 30.5)
        window.viewer.set_elevation(12.0)
        result = window.viewer.render()
        item = result.all_items()[0]
        table = stations_session.database.table("Stations")
        version = table.version
        with pytest.raises(UpdateError, match="altitude"):
            stations_session.update_item(
                "map", item, {"altitude": "not-a-number"}
            )
        assert table.version == version  # nothing committed

    def test_undo_after_failed_operation_sequence(self, stations_session):
        stations = stations_session.add_table("Stations")
        with pytest.raises(Exception):
            stations_session.add_box("NoSuchBox")
        # The failed add still pushed a snapshot; undo must cope.
        stations_session.undo()
        stations_session.undo()
        assert len(stations_session.program) == 0
