"""Unit tests: the Viewer runtime (viewer.viewer)."""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import AddAttributeBox, SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.boxes_display import StitchBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.errors import ViewerError
from repro.viewer.viewer import MAIN_MEMBER, Viewer, ViewerBox


def map_viewer(db, width=200, height=160) -> Viewer:
    """Stations positioned at (longitude, latitude) with an Altitude slider."""
    program = Program()
    src = program.add_box(AddTableBox(table="Stations"))
    sx = program.add_box(SetAttributeBox(name="x", definition="longitude"))
    sy = program.add_box(SetAttributeBox(name="y", definition="latitude"))
    disp = program.add_box(
        SetAttributeBox(name="display", definition="filled_circle(2, 'blue')")
    )
    alt = program.add_box(
        AddAttributeBox(name="alt", definition="altitude", location=True)
    )
    program.connect(src, "out", sx, "in")
    program.connect(sx, "out", sy, "in")
    program.connect(sy, "out", disp, "in")
    program.connect(disp, "out", alt, "in")
    engine = Engine(program, db)
    viewer = Viewer("map", lambda: engine.output_of(alt), width, height)
    viewer.pan_to(-91.8, 31.0)
    viewer.set_elevation(8.0)
    return viewer


def group_viewer(db) -> Viewer:
    program = Program()
    a = program.add_box(AddTableBox(table="Stations"))
    b = program.add_box(AddTableBox(table="Stations"))
    stitch = program.add_box(StitchBox(arity=2, names=["one", "two"]))
    program.connect(a, "out", stitch, "c1")
    program.connect(b, "out", stitch, "c2")
    engine = Engine(program, db)
    return Viewer("pair", lambda: engine.output_of(stitch), 400, 200)


class TestPositionControl:
    def test_pan_moves_center(self, stations_db):
        viewer = map_viewer(stations_db)
        viewer.pan(1.0, -0.5)
        assert viewer.view().center == pytest.approx((-90.8, 30.5))

    def test_zoom_divides_elevation(self, stations_db):
        viewer = map_viewer(stations_db)
        viewer.zoom(2.0)
        assert viewer.view().elevation == 4.0

    def test_zoom_out(self, stations_db):
        viewer = map_viewer(stations_db)
        viewer.zoom(0.5)
        assert viewer.view().elevation == 16.0

    def test_bad_zoom_factor(self, stations_db):
        with pytest.raises(ViewerError):
            map_viewer(stations_db).zoom(0.0)

    def test_elevation_must_stay_positive(self, stations_db):
        # Zero elevation means passing through a wormhole (§6.2).
        with pytest.raises(ViewerError, match="wormhole"):
            map_viewer(stations_db).set_elevation(0.0)

    def test_slider_range_set(self, stations_db):
        viewer = map_viewer(stations_db)
        viewer.set_slider("alt", 0.0, 100.0)
        assert viewer.view().slider_ranges["alt"] == (0.0, 100.0)

    def test_unknown_slider_rejected(self, stations_db):
        with pytest.raises(ViewerError, match="slider"):
            map_viewer(stations_db).set_slider("depth", 0, 1)

    def test_empty_slider_range_rejected(self, stations_db):
        with pytest.raises(ViewerError, match="empty"):
            map_viewer(stations_db).set_slider("alt", 10, 0)

    def test_moved_callbacks_fire(self, stations_db):
        viewer = map_viewer(stations_db)
        calls = []
        viewer.moved_callbacks.append(lambda v, member: calls.append(member))
        viewer.pan(1, 1)
        viewer.zoom(2)
        viewer.set_slider("alt", 0, 10)
        assert calls == [MAIN_MEMBER] * 3


class TestRendering:
    def test_render_produces_items(self, stations_db):
        viewer = map_viewer(stations_db)
        result = viewer.render()
        assert result.canvas.count_nonbackground() > 0
        # NO, BR, Shreveport (LA) and Jackson (MS) are inside the frame.
        assert len(result.all_items()) == 4

    def test_slider_filters_rendered_tuples(self, stations_db):
        viewer = map_viewer(stations_db)
        viewer.set_slider("alt", 0.0, 60.0)
        result = viewer.render()
        labels = {item.row["name"] for item in result.all_items()}
        assert labels == {"New Orleans", "Baton Rouge"}

    def test_render_reflects_database_change(self, stations_db):
        viewer = map_viewer(stations_db)
        before = len(viewer.render().all_items())
        stations_db.table("Stations").insert(
            {"station_id": 9, "name": "Gretna", "state": "LA",
             "longitude": -90.05, "latitude": 29.91, "altitude": 3.0}
        )
        assert len(viewer.render().all_items()) == before + 1

    def test_dimension(self, stations_db):
        assert map_viewer(stations_db).dimension() == 3


class TestPicking:
    def test_pick_hits_topmost(self, stations_db):
        viewer = map_viewer(stations_db)
        result = viewer.render()
        item = result.all_items()[0]
        cx = (item.bbox[0] + item.bbox[2]) / 2
        cy = (item.bbox[1] + item.bbox[3]) / 2
        hit = viewer.pick(cx, cy)
        assert hit is not None
        assert hit.row == item.row

    def test_pick_misses_empty_space(self, stations_db):
        viewer = map_viewer(stations_db)
        viewer.render()
        assert viewer.pick(1.0, 1.0) is None

    def test_pick_renders_lazily(self, stations_db):
        viewer = map_viewer(stations_db)
        assert viewer.last_result is None
        viewer.pick(0, 0)
        assert viewer.last_result is not None


class TestGroupViewer:
    def test_member_names(self, stations_db):
        viewer = group_viewer(stations_db)
        assert viewer.member_names() == ["one", "two"]
        assert viewer.is_group()

    def test_member_addressing_required(self, stations_db):
        viewer = group_viewer(stations_db)
        with pytest.raises(ViewerError, match="name the member"):
            viewer.view()

    def test_independent_member_positions(self, stations_db):
        viewer = group_viewer(stations_db)
        viewer.pan_to(10.0, 0.0, member="one")
        viewer.pan_to(-10.0, 0.0, member="two")
        assert viewer.view("one").center == (10.0, 0.0)
        assert viewer.view("two").center == (-10.0, 0.0)

    def test_render_group(self, stations_db):
        viewer = group_viewer(stations_db)
        for member in viewer.member_names():
            viewer.pan_to(200.0, -2.0, member=member)
            viewer.set_elevation(400.0, member=member)
        result = viewer.render()
        assert set(result.items) == {"one", "two"}
        assert result.canvas.count_nonbackground() > 0

    def test_unknown_member(self, stations_db):
        viewer = group_viewer(stations_db)
        with pytest.raises(ViewerError, match="no member"):
            viewer.view("three")

    def test_elevation_map_per_member(self, stations_db):
        viewer = group_viewer(stations_db)
        bars = viewer.elevation_map("one").bars()
        assert [bar.name for bar in bars] == ["Stations"]


class TestViewerBox:
    def test_input_is_group_typed(self):
        box = ViewerBox(name="v")
        assert str(box.inputs[0].type) == "G"
        assert box.outputs == []

    def test_fire_is_inert(self):
        assert ViewerBox().fire({}, None) == {}
