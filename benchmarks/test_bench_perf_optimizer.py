"""Perf-6: the browsing-query optimizer ([Che95], deferred by §9).

A naive browsing program filters *after* an Observations ⋈ Stations join;
the optimizer pushes the Restrict into the join input.  The shape claim:
pushdown shrinks the join's input by the filter's selectivity and the
optimized plan wins accordingly; merging adjacent Restricts removes an
intermediate materialization.
"""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_db import AddTableBox, JoinBox, RestrictBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dataflow.optimize import optimize


def naive_program():
    """Join everything, filter afterwards — how a little programmer builds it."""
    program = Program()
    obs = program.add_box(AddTableBox(table="Observations"))
    sta = program.add_box(AddTableBox(table="Stations"))
    join = program.add_box(
        JoinBox(left_key="station_id", right_key="station_id")
    )
    program.connect(obs, "out", join, "left")
    program.connect(sta, "out", join, "right")
    r1 = program.add_box(RestrictBox(predicate="state = 'LA'"))
    program.connect(join, "out", r1, "in")
    r2 = program.add_box(RestrictBox(predicate="temperature > 85.0"))
    program.connect(r1, "out", r2, "in")
    return program, r2


@pytest.mark.parametrize("plan", ["naive", "optimized"])
def test_perf_optimizer_pushdown(benchmark, weather_db, plan):
    program, tail = naive_program()
    if plan == "optimized":
        program, log = optimize(program, weather_db)
        assert log  # rewrites happened
        tail = max(program.box_ids(), key=lambda b: len(program.upstream_of(b)))

    def cold_demand():
        return Engine(program, weather_db).output_of(tail)

    result = benchmark(cold_demand)
    assert len(result.rows) > 0
    assert all(row["state"] == "LA" for row in result.rows)
    assert all(row["temperature"] > 85.0 for row in result.rows)


def test_perf_optimizer_plans_agree(benchmark, weather_db):
    program, tail = naive_program()
    optimized, log = optimize(program, weather_db)

    fast_tail = max(
        optimized.box_ids(), key=lambda b: len(optimized.upstream_of(b))
    )

    def both():
        naive_rows = Engine(program, weather_db).output_of(tail).rows
        fast_rows = Engine(optimized, weather_db).output_of(fast_tail).rows
        return naive_rows, fast_rows

    naive_rows, fast_rows = benchmark(both)
    assert sorted(map(repr, naive_rows)) == sorted(map(repr, fast_rows))


def test_perf_optimizer_rewrite_cost(benchmark, weather_db):
    """The optimizer itself must be cheap relative to one evaluation."""
    program, __ = naive_program()
    optimized, log = benchmark(optimize, program, weather_db)
    assert len(log) >= 2  # merge + pushdown
