"""Figure 1: the program window and the default table view.

Regenerates the paper's first screenshot — Stations → Restrict (Louisiana) →
Project → viewer with the default two-dimensional table format — and times
the complete build-and-render cycle a user experiences after each
incremental edit.
"""

from __future__ import annotations

from repro.core.scenarios import build_fig1_table_view


def build_and_render(db):
    scenario = build_fig1_table_view(db)
    canvas = scenario.window().render()
    return scenario, canvas


def test_fig01_build_and_render(benchmark, weather_db):
    scenario, canvas = benchmark(build_and_render, weather_db)
    program = scenario.session.program
    assert sorted(box.type_name for box in program.boxes()) == [
        "AddTable", "Project", "Restrict", "Viewer",
    ]
    restricted = scenario.session.inspect(scenario["restrict"])
    assert len(restricted.rows) == 18  # the Louisiana stations
    assert canvas.count_nonbackground() > 500  # the table listing is visible


def test_fig01_incremental_refinement(benchmark, weather_db):
    """The §1.2 story: each predicate edit re-renders only the changed
    suffix; this is the latency of one direct-manipulation refinement."""
    scenario = build_fig1_table_view(weather_db)
    session = scenario.session
    window = scenario.window()
    window.render()
    toggle = {"current": "LA"}

    def refine():
        toggle["current"] = "TX" if toggle["current"] == "LA" else "LA"
        session.set_param(
            scenario["restrict"], "predicate",
            f"state = '{toggle['current']}'",
        )
        return window.render()

    canvas = benchmark(refine)
    assert canvas.count_nonbackground() > 0
