"""Figure 3: the database-operation boxes.

One benchmark per cataloged operation — Add Table, Project, Restrict,
Sample, Join — timing a cold demand (fire) of the box over the weather data.
"""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_db import (
    AddTableBox,
    JoinBox,
    ProjectBox,
    RestrictBox,
    SampleBox,
)
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program


def single_box_demand(db, box_factory, table="Observations"):
    program = Program()
    src = program.add_box(AddTableBox(table=table))
    box_id = program.add_box(box_factory())
    program.connect(src, "out", box_id, "in")
    engine = Engine(program, db)
    return engine.output_of(box_id)


def test_fig03_add_table(benchmark, weather_db):
    def demand():
        program = Program()
        src = program.add_box(AddTableBox(table="Observations"))
        return Engine(program, weather_db).output_of(src)

    relation = benchmark(demand)
    assert len(relation.rows) == len(weather_db.table("Observations"))


def test_fig03_restrict(benchmark, weather_db):
    relation = benchmark(
        single_box_demand, weather_db,
        lambda: RestrictBox(predicate="temperature > 80.0"),
    )
    assert 0 < len(relation.rows) < len(weather_db.table("Observations"))


def test_fig03_project(benchmark, weather_db):
    relation = benchmark(
        single_box_demand, weather_db,
        lambda: ProjectBox(fields=["station_id", "obs_date", "temperature"]),
    )
    assert relation.rows.schema.names == ("station_id", "obs_date",
                                          "temperature")


def test_fig03_sample(benchmark, weather_db):
    relation = benchmark(
        single_box_demand, weather_db,
        lambda: SampleBox(probability=0.1, seed=42),
    )
    total = len(weather_db.table("Observations"))
    assert 0.05 * total < len(relation.rows) < 0.15 * total


@pytest.mark.parametrize("strategy", ["hash", "nested_loop"])
def test_fig03_join(benchmark, weather_db, strategy):
    """The Stations ⋈ Observations step behind every time-series figure.

    The nested-loop arm is the paper-era baseline; hash should win by a wide
    margin at this cardinality (see also test_bench_perf_join).
    """
    def demand():
        program = Program()
        obs = program.add_box(AddTableBox(table="Observations"))
        sta = program.add_box(AddTableBox(table="Stations"))
        la = program.add_box(RestrictBox(predicate="state = 'LA'"))
        program.connect(sta, "out", la, "in")
        join = program.add_box(
            JoinBox(left_key="station_id", right_key="station_id",
                    strategy=strategy)
        )
        program.connect(obs, "out", join, "left")
        program.connect(la, "out", join, "right")
        return Engine(program, weather_db).output_of(join)

    relation = benchmark(demand)
    assert len(relation.rows) > 0
    assert "name" in relation.rows.schema
