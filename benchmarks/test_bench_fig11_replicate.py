"""Figure 11: the replicated viewer (records before/after 1990).

Times the Replicate fire (partition + stitch) and the group render, and
asserts the partition's correctness properties.
"""

from __future__ import annotations

import pytest

from repro.core.scenarios import build_fig11_replicate


@pytest.fixture(scope="module")
def scenario(weather_db):
    return build_fig11_replicate(weather_db)


def test_fig11_partition_fire(benchmark, scenario):
    session = scenario.session
    engine = session.engine
    replicate = scenario["replicate"]

    def demand_cold():
        engine.invalidate(replicate)
        return engine.output_of(replicate)

    group = benchmark(demand_cold)
    assert group.member_names() == ["part1", "part2"]
    early = group.member("part1").entries[0].relation
    late = group.member("part2").entries[0].relation
    assert all(row["obs_date"].year < 1990 for row in early.rows)
    assert all(row["obs_date"].year >= 1990 for row in late.rows)
    total = len(early.rows) + len(late.rows)
    source = session.inspect(scenario["temperature"])
    assert total == len(source.rows)


def test_fig11_group_render(benchmark, scenario):
    window = scenario.window()
    result = benchmark(window.viewer.render)
    assert set(result.items) == {"part1", "part2"}
    assert result.canvas.count_nonbackground() > 100


def test_fig11_enum_partition(benchmark, weather_db):
    """The enumerated-type partition path (§7.4: "or an enumerated type")."""
    from repro.ui.session import Session

    def build():
        session = Session(weather_db, "enum-partition")
        stations = session.add_table("Stations")
        restrict = session.add_box(
            "Restrict",
            {"predicate": "state = 'LA' or state = 'TX' or state = 'MS'"},
        )
        session.connect(stations, "out", restrict, "in")
        replicate = session.add_box(
            "Replicate", {"enum_field": "state", "layout": "vertical"}
        )
        session.connect(restrict, "out", replicate, "in")
        return session.inspect(replicate)

    group = benchmark(build)
    assert len(group) >= 1
    member_rows = [
        len(composite.entries[0].relation.rows) for __, composite in group
    ]
    assert all(count > 0 for count in member_rows)
