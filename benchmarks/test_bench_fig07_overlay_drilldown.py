"""Figures 6/7: drill down via Set Range, Overlay, and Shuffle.

Times the overlaid-map render at high and low elevation and asserts the
figure's shape claim: station names exist only beneath the legibility
elevation while the 2-D state map stays put (invariant in the Altitude
slider dimension).
"""

from __future__ import annotations

import pytest

from repro.core.scenarios import NAME_MAX_ELEVATION, build_fig7_overlay


@pytest.fixture(scope="module")
def scenario(weather_db):
    return build_fig7_overlay(weather_db)


def _labels(result):
    return sum(1 for item in result.all_items() if item.drawable_kind == "text")


@pytest.mark.parametrize("where", ["high", "low"])
def test_fig07_render_at_elevation(benchmark, scenario, where):
    window = scenario.window()
    elevation = NAME_MAX_ELEVATION + 10 if where == "high" else \
        NAME_MAX_ELEVATION / 2
    window.viewer.set_elevation(elevation)
    result = benchmark(window.viewer.render)
    if where == "high":
        assert _labels(result) == 0  # names illegible → range-hidden
        assert result.stats.relations_culled_by_elevation == 1
    else:
        assert _labels(result) > 0
    # The map lines render at both elevations.
    names = {item.relation_name for item in result.all_items()}
    assert any("Map" in name for name in names)


def test_fig07_drill_down_sweep(benchmark, scenario):
    """A full drill-down: descend through the legibility threshold."""
    window = scenario.window()

    def sweep():
        labels = []
        for elevation in (30.0, 18.0, 10.0, 4.0):
            window.viewer.set_elevation(elevation)
            labels.append(_labels(window.viewer.render()))
        return labels

    labels = benchmark(sweep)
    assert labels[0] == labels[1] == 0
    assert labels[2] > 0
    assert labels[3] > 0


def test_fig07_altitude_slider_leaves_map(benchmark, scenario):
    """§6.1: the 2-D map is invariant in the Altitude dimension."""
    window = scenario.window()
    window.viewer.set_elevation(8.0)

    def slider_to_impossible_range():
        window.viewer.set_slider("Altitude", 10_000.0, 20_000.0)
        result = window.viewer.render()
        window.viewer.set_slider("Altitude", float("-inf"), float("inf"))
        return result

    result = benchmark(slider_to_impossible_range)
    kinds = {item.drawable_kind for item in result.all_items()}
    assert "line" in kinds       # map still there
    assert "circle" not in kinds  # every station slider-culled


def test_fig07_elevation_map_manipulation(benchmark, scenario):
    """Direct manipulation of the elevation map: drag a bar's range."""
    window = scenario.window()
    target = window.elevation_map().bars()[-1].name

    def drag_range():
        emap = window.elevation_map()
        emap.set_range(target, 0.0, 100.0)
        window.viewer.set_elevation(50.0)
        shown = _labels(window.viewer.render())
        emap.set_range(target, 0.0, NAME_MAX_ELEVATION)
        return shown

    shown = benchmark(drag_range)
    assert shown > 0
