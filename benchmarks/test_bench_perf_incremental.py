"""Perf-4: incremental programming via memoized re-evaluation.

"There is no distinction between constructing a program, modifying an
existing program, and using an existing program" (§1.2) — affordable only if
an edit recomputes just the affected suffix.  We edit a 10-box chain at the
tail and at the head and time the re-demand; the shape claim: tail edits are
much cheaper than head edits, and both beat the no-memoization ablation.
"""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_db import AddTableBox, RestrictBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program

CHAIN = 10


def chain_program():
    program = Program()
    src = program.add_box(AddTableBox(table="Observations"))
    previous = src
    box_ids = []
    for i in range(CHAIN):
        box_id = program.add_box(
            RestrictBox(predicate=f"temperature > {i - 40}.0")
        )
        src_port = "out" if previous != src else "out"
        program.connect(previous, src_port, box_id, "in")
        previous = box_id
        box_ids.append(box_id)
    return program, box_ids


@pytest.mark.parametrize("where", ["tail", "head"])
def test_perf_incremental_edit(benchmark, weather_db, where):
    program, box_ids = chain_program()
    engine = Engine(program, weather_db)
    tail = box_ids[-1]
    engine.output_of(tail)  # warm
    target = box_ids[-1] if where == "tail" else box_ids[0]
    counter = {"n": 0}

    def edit_and_redemand():
        counter["n"] += 1
        box = program.box(target)
        box.set_param(
            "predicate", f"temperature > {-40 - (counter['n'] % 5)}.0"
        )
        engine.output_of(tail)
        return engine.stats

    stats = benchmark(edit_and_redemand)
    assert stats.total_fires() > 0


def test_perf_incremental_fire_counts(weather_db):
    """The invariant behind the timing gap: a tail edit refires 1 box, a
    head edit refires the whole chain (asserted, not timed)."""
    program, box_ids = chain_program()
    engine = Engine(program, weather_db)
    tail = box_ids[-1]
    engine.output_of(tail)

    engine.stats.reset()
    program.box(tail).set_param("predicate", "temperature > -100.0")
    engine.output_of(tail)
    tail_fires = engine.stats.total_fires()

    engine.stats.reset()
    program.box(box_ids[0]).set_param("predicate", "temperature > -101.0")
    engine.output_of(tail)
    head_fires = engine.stats.total_fires()

    assert tail_fires == 1
    assert head_fires == CHAIN


def test_perf_no_memoization_ablation(benchmark, weather_db):
    """The ablation arm: clearing the cache before each re-demand recomputes
    the full chain every time."""
    program, box_ids = chain_program()
    engine = Engine(program, weather_db)
    tail = box_ids[-1]
    engine.output_of(tail)

    def cold_redemand():
        engine.invalidate()
        return engine.output_of(tail)

    result = benchmark(cold_redemand)
    assert len(result.rows) > 0
