"""Lineage arms: capture cost on a recording plan and on a full render.

Two claims ride into ``BENCH_obs.json`` behind ``repro bench-diff
--strict``: with capture off, operators pay only a module-global read per
node open (the ``disabled`` arms must track their capture-less history),
and with capture on, cost stays within a small constant factor while every
identity-breaking output row gains a recorded mapping
(docs/OBSERVABILITY.md, "Lineage & why-provenance").
"""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dbms import plan as P
from repro.dbms.parser import parse_predicate
from repro.obs.lineage import lineage_capture
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite


@pytest.fixture(scope="module")
def points_rows(points_db_20k):
    return points_db_20k.table("Points").snapshot()


@pytest.fixture(scope="module")
def scatter(points_db_20k):
    program = Program()
    src = program.add_box(AddTableBox(table="Points"))
    set_x = program.add_box(SetAttributeBox(name="x", definition="x_pos"))
    set_y = program.add_box(SetAttributeBox(name="y", definition="y_pos"))
    display = program.add_box(
        SetAttributeBox(name="display", definition="filled_circle(2)")
    )
    program.connect(src, "out", set_x, "in")
    program.connect(set_x, "out", set_y, "in")
    program.connect(set_y, "out", display, "in")
    engine = Engine(program, points_db_20k)
    return engine.output_of(display)


DEEP_ZOOM = ViewState(center=(0.0, 0.0), elevation=30.0, viewport=(320, 240))


def aggregate_plan(rows) -> P.GroupByNode:
    scan = P.ScanNode(rows, name="Points")
    kept = P.RestrictNode(scan, parse_predicate("value > 25.0", rows.schema))
    return P.GroupByNode(
        kept, ["category"],
        [("count", "point_id", "cnt"), ("avg", "value", "mean_value")],
    )


@pytest.mark.parametrize("capture", [False, True],
                         ids=["disabled", "capture"])
def test_perf_lineage_groupby_20k(benchmark, points_rows, capture):
    """A recording operator over 20k rows, with and without capture."""

    def run():
        node = aggregate_plan(points_rows)
        if capture:
            with lineage_capture(True):
                return node, list(node.rows_iter())
        return node, list(node.rows_iter())

    node, out = benchmark(run)
    assert out, "the aggregation must produce groups"
    if capture:
        store = node.lineage
        assert store is not None and len(store) == len(out)


@pytest.mark.parametrize("capture", [False, True],
                         ids=["disabled", "capture"])
def test_perf_lineage_render_deep_zoom(benchmark, scatter, capture):
    """The culling render under ambient capture vs. without.

    The cull path is identity-preserving (synthesized Restricts), so the
    capture arm measures pure bookkeeping overhead on a render-shaped
    workload — the cost a user pays for leaving REPRO_LINEAGE=1 on.
    """

    def render():
        canvas = Canvas(320, 240)
        stats = SceneStats()
        if capture:
            with lineage_capture(True) as state:
                render_composite(canvas, scatter, DEEP_ZOOM, stats=stats)
                return stats, state
        render_composite(canvas, scatter, DEEP_ZOOM, stats=stats)
        return stats, None

    stats, state = benchmark(render)
    assert stats.tuples_considered == 20_000
    assert stats.culled_by_viewport > 19_000
