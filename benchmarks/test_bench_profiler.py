"""Profiler and request-context arms: the cost of PR-10 observability.

Two claims ride into ``BENCH_obs.json`` behind ``repro bench-diff
--strict``: the continuous sampler at its default 67hz must not move a
render-shaped workload (the ``profiled`` arm tracks its ``disabled``
history — the <3% budget the analytic guards in
``tests/test_obs_profiler.py`` and ``tests/test_server_obs.py`` also
enforce), and the per-request context machinery (mint + double adopt +
dispatch/request spans, what the server pays per command) is noise next
to the work a command does (docs/OBSERVABILITY.md, "Request tracing").
"""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.obs.profiler import Profiler
from repro.obs.trace import TraceContext, current_tracer
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite


@pytest.fixture(scope="module")
def scatter(points_db_20k):
    program = Program()
    src = program.add_box(AddTableBox(table="Points"))
    set_x = program.add_box(SetAttributeBox(name="x", definition="x_pos"))
    set_y = program.add_box(SetAttributeBox(name="y", definition="y_pos"))
    display = program.add_box(
        SetAttributeBox(name="display", definition="filled_circle(2)")
    )
    program.connect(src, "out", set_x, "in")
    program.connect(set_x, "out", set_y, "in")
    program.connect(set_y, "out", display, "in")
    engine = Engine(program, points_db_20k)
    return engine.output_of(display)


DEEP_ZOOM = ViewState(center=(0.0, 0.0), elevation=30.0, viewport=(320, 240))


def _render(scatter) -> SceneStats:
    canvas = Canvas(320, 240)
    stats = SceneStats()
    render_composite(canvas, scatter, DEEP_ZOOM, stats=stats)
    return stats


@pytest.mark.parametrize("profiled", [False, True],
                         ids=["disabled", "profiled"])
def test_perf_profiler_render_deep_zoom(benchmark, scatter, profiled):
    """The culling render with the 67hz sampler running vs. without.

    The profiled arm measures what a server render pays for leaving the
    continuous profiler on — the statistical sampler's whole-process
    steady-state cost, not a per-call hook.
    """
    if profiled:
        profiler = Profiler()
        with profiler:
            stats = benchmark(lambda: _render(scatter))
        assert profiler.ticks > 0, "the sampler must have run"
    else:
        stats = benchmark(lambda: _render(scatter))
    assert stats.tuples_considered == 20_000
    assert stats.culled_by_viewport > 19_000


@pytest.mark.parametrize("traced", [False, True], ids=["bare", "traced"])
def test_perf_profiler_request_context(benchmark, scatter, traced):
    """A render wrapped in the full per-command context machinery vs. bare.

    The traced arm performs exactly what ``TiogaServer.execute`` +
    ``CommandExecutor.run`` add per command: mint a context, adopt it,
    open ``server.dispatch``, re-adopt the child on the "worker", open
    ``request.render``, then do the work.
    """
    tracer = current_tracer()  # the bench harness's enabled tracer

    def run_traced() -> SceneStats:
        ctx = TraceContext.new(session="bench", command="render")
        with tracer.adopt(ctx):
            with tracer.span("server.dispatch", command="render") as span:
                child = ctx.child_of(span)
                with tracer.adopt(child):
                    with tracer.span("request.render", command="render"):
                        return _render(scatter)

    stats = benchmark(run_traced if traced else
                      (lambda: _render(scatter)))
    assert stats.tuples_considered == 20_000
