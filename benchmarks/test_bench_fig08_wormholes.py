"""Figure 8: wormholes and the rear view mirror.

Times the expensive parts of the wormhole machinery: rendering a canvas with
nested destination previews, passing through, and rendering the underside in
the mirror.
"""

from __future__ import annotations

import pytest

from repro.core.scenarios import build_fig8_wormholes


@pytest.fixture(scope="module")
def scenario(weather_db):
    built = build_fig8_wormholes(weather_db)
    viewer = built["map_window"].viewer
    viewer.pan_to(-90.07, 29.95)  # New Orleans
    viewer.set_elevation(1.5)
    return built


def test_fig08_render_with_nested_previews(benchmark, scenario):
    viewer = scenario["map_window"].viewer
    result = benchmark(viewer.render)
    wormholes = [i for i in result.all_items() if i.drawable_kind == "viewer"]
    assert wormholes  # the zoomed-in view reveals wormholes


def test_fig08_traverse_and_back(benchmark, scenario):
    session = scenario.session
    viewer = scenario["map_window"].viewer
    viewer.render()
    target = viewer.visible_wormholes()[0]

    def round_trip():
        destination = session.navigator.traverse(target)
        home = session.navigator.go_back()
        return destination, home

    destination, home = benchmark(round_trip)
    assert destination.name == "tempseries"
    assert home.name == "map"


def test_fig08_destination_render(benchmark, scenario):
    session = scenario.session
    viewer = scenario["map_window"].viewer
    viewer.render()
    destination = session.navigator.traverse(viewer.visible_wormholes()[0])
    destination.set_elevation(120.0)
    result = benchmark(destination.render)
    assert len(result.all_items()) > 0
    session.navigator.go_back()


def test_fig08_rear_view_mirror(benchmark, scenario):
    session = scenario.session
    viewer = scenario["map_window"].viewer
    viewer.render()
    destination = session.navigator.traverse(viewer.visible_wormholes()[0])
    destination.set_elevation(20.0)
    mirror = scenario["map_window"].mirror

    canvas = benchmark(mirror.render)
    assert canvas.count_nonbackground() > 0
    assert mirror.visible_wormholes()  # the way home
    session.navigator.go_back()
