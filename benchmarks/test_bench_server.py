"""Server load: 50 concurrent WebSocket viewers over the fig4 station map.

Every viewer walks the *same* deterministic demand script (pan to a shared
sequence of world positions, render after each move), so sessions collide
on the shared result cache exactly the way slaved viewers do in the paper:
the first session to reach a view pays the miss, the other 49 hit.  The
benchmark records request→frame latency quantiles across all viewers plus
command throughput and cache counters into ``BENCH_server.json``
(``repro.bench.server/1``), which CI diffs against the committed baseline.

The in-test assertions are deliberately lenient (a loaded CI box jitters);
the regression gate is ``repro bench-diff`` over the recorded quantiles.
"""

from __future__ import annotations

import threading
import time

from repro.data.weather import build_weather_database
from repro.obs.metrics import MetricsRegistry
from repro.protocol import FrameReply, OpenProgram, PanTo, Render
from repro.server import ServerThread, connect

VIEWERS = 50
RENDERS_PER_VIEWER = 6

#: Shared world positions every viewer pans to, in order.  Identical across
#: sessions so their render plans share result-cache entries.
_SCRIPT = [(-95.0 + 6.0 * step, 38.0 + 1.5 * step)
           for step in range(RENDERS_PER_VIEWER)]


def _viewer(url: str, latencies: list[float], frames: list[int],
            errors: list[str], barrier: threading.Barrier) -> None:
    try:
        with connect(url, timeout=120.0) as client:
            assert client.request(OpenProgram(name="fig4")).ok
            barrier.wait(timeout=60)    # all viewers start demanding at once
            for cx, cy in _SCRIPT:
                client.request(PanTo(window="stations", cx=cx, cy=cy))
                started = time.perf_counter()
                frame = client.request(Render(window="stations",
                                              format="png"))
                latencies.append(time.perf_counter() - started)
                assert isinstance(frame, FrameReply), frame
                assert frame.data_bytes().startswith(b"\x89PNG")
                frames.append(frame.cache_hits)
                time.sleep(0.01)        # think time between interactions
    except Exception as exc:  # noqa: BLE001 - surfaced by the main thread
        errors.append(repr(exc))


def _quantile(sorted_values: list[float], q: float) -> float:
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def test_server_load_fig4_50_viewers(record_server):
    registry = MetricsRegistry()
    latencies: list[float] = []
    frame_hits: list[int] = []
    errors: list[str] = []
    barrier = threading.Barrier(VIEWERS)

    with ServerThread(build_weather_database(), registry=registry,
                      pool_workers=8) as server:
        url = f"ws://{server.host}:{server.port}/ws"
        threads = [
            threading.Thread(
                target=_viewer,
                args=(url, latencies, frame_hits, errors, barrier),
            )
            for _ in range(VIEWERS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(300)
        wall = time.perf_counter() - started
        commands = registry.counter("server.commands").total()
        dropped = registry.counter("server.frames_dropped").total()

    assert not errors, errors[:3]
    assert len(latencies) == VIEWERS * RENDERS_PER_VIEWER

    ordered = sorted(latencies)
    p50 = _quantile(ordered, 0.50)
    p99 = _quantile(ordered, 0.99)
    cache = server.database  # keep the database alive until counters read
    del cache
    hits = sum(frame_hits)

    record_server({
        "name": "fig4_ws_load",
        "viewers": VIEWERS,
        "renders_per_viewer": RENDERS_PER_VIEWER,
        "latency": {
            "p50_s": round(p50, 6),
            "p99_s": round(p99, 6),
            "mean_s": round(sum(ordered) / len(ordered), 6),
            "max_s": round(ordered[-1], 6),
        },
        "throughput_cps": round(commands / wall, 2),
        "frames": {
            "delivered": len(latencies),
            "dropped": int(dropped),
        },
        "cache": {"hits": hits},
    })

    # Request/reply pacing means no frame may ever be coalesced away.
    assert dropped == 0
    # Cross-session sharing must engage: 50 sessions render 6 shared views,
    # so far more frames hit the cache than miss.
    assert hits >= VIEWERS * RENDERS_PER_VIEWER // 2
    # Generous wall-clock ceiling; the real gate is bench-diff on quantiles.
    assert p99 < 1.5, f"p99 {p99:.3f}s"
