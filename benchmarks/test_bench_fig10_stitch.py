"""Figure 10: stitched temperature/precipitation viewers with slaving.

Times the two-member group render and the slaved pan gesture ("whenever the
user changes the date range under temperature, the precipitation display
changes to display the same date range").
"""

from __future__ import annotations

import pytest

from repro.core.scenarios import build_fig10_stitch


@pytest.fixture(scope="module")
def scenario(weather_db):
    return build_fig10_stitch(weather_db)


def test_fig10_group_render(benchmark, scenario):
    window = scenario.window()
    result = benchmark(window.viewer.render)
    assert set(result.items) == {"temperature", "precipitation"}
    assert result.items["temperature"]
    assert result.items["precipitation"]


def test_fig10_slaved_pan(benchmark, scenario):
    viewer = scenario.window().viewer
    step = {"sign": 1}

    def pan_date_range():
        step["sign"] = -step["sign"]
        viewer.pan(20.0 * step["sign"], 0.0, member="temperature")
        return (
            viewer.view("temperature").center[0],
            viewer.view("precipitation").center[0],
        )

    temp_x, precip_x = benchmark(pan_date_range)
    assert temp_x == pytest.approx(precip_x)  # same date range (§7.3)


def test_fig10_slaved_pan_and_render(benchmark, scenario):
    window = scenario.window()
    step = {"sign": 1}

    def gesture():
        step["sign"] = -step["sign"]
        window.viewer.pan(20.0 * step["sign"], 0.0, member="temperature")
        return window.viewer.render()

    result = benchmark(gesture)
    assert result.canvas.count_nonbackground() > 0
