"""Perf-8: the columnar execution backend (row vs vectorized kernels).

Three workloads shaped like the paper's interactive hot paths — the
fast-scatter viewport cull, the deep-zoom culling render, and the
Stations⋈Observations-style join feeding a slider restrict — each run
twice: once on the serial row backend, once with ``columnarize_plan``
selecting vectorized numpy kernels.  Rows, order, and pixels are asserted
identical between the arms (the backend is an implementation ablation, not
a semantics change); the timing arms + speedups are recorded to
``BENCH_columnar.json`` and gated by ``repro bench-diff`` in CI.  See
``docs/COLUMNAR.md``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.render.scene as scene
from repro.data.workloads import build_pairs_tables, build_points_database
from repro.dataflow.boxes_attr import SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dbms import plan as P
from repro.dbms.columnar import ColumnarConfig, set_default_columnar_config
from repro.dbms.parser import parse_predicate
from repro.dbms.plan_rewrite import columnarize_plan
from repro.obs import global_registry
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite

_ROUNDS = 3

# Canonical declarations — must match the emitting kernels in repro.dbms.plan.
_BATCHES = ("columnar.batches", "column batches produced by columnar kernels")
_FALLBACK = ("columnar.fallback",
             "column batches re-evaluated on the row path after a data hazard")


def _pull(node):
    return [row for batch in node.open() for row in batch]


def _best_of(make, run, rounds=_ROUNDS):
    best = float("inf")
    out = None
    for __ in range(rounds):
        subject = make()
        start = time.perf_counter()
        out = run(subject)
        best = min(best, time.perf_counter() - start)
    return best, out


def _counter_deltas(fn):
    """Run ``fn`` and return (result, columnar batch/fallback deltas)."""
    registry = global_registry()
    batches = registry.counter(*_BATCHES)
    fallback = registry.counter(*_FALLBACK)
    before = (batches.value(), fallback.value())
    result = fn()
    return result, {
        "columnar.batches": batches.value() - before[0],
        "columnar.fallback": fallback.value() - before[1],
    }


def _entry(name, workload, row_s, col_s, counters):
    return {
        "name": name,
        "workload": workload,
        "arms": {
            "row": {"seconds": round(row_s, 6)},
            "columnar": {"seconds": round(col_s, 6)},
        },
        "speedup": round(row_s / col_s, 2),
        "counters": counters,
    }


# ---------------------------------------------------------------------------
# Arm 1: the synthesized viewport-cull Restrict (the fast-scatter shape)
# ---------------------------------------------------------------------------

def test_perf_columnar_fast_scatter_cull(points_db_20k, record_columnar):
    """The viewport cull predicate over 20k points, row vs vectorized.

    This is exactly the Restrict the scene culler synthesizes for a deep
    zoom: four numeric comparisons conjoined, almost everything filtered
    out.  The row arm evaluates the predicate tuple-at-a-time through the
    expression interpreter; the columnar arm compiles it to numpy mask
    arithmetic over whole-column batches.
    """
    rows = points_db_20k.table("Points").snapshot()
    predicate = parse_predicate(
        "(x_pos > -5.0) and (x_pos < 5.0) and "
        "(y_pos > -4.0) and (y_pos < 4.0)",
        rows.schema,
    )

    def row_plan():
        return P.RestrictNode(P.ScanNode(rows, name="Points"), predicate)

    def columnar_plan():
        root, __ = columnarize_plan(row_plan(), ColumnarConfig())
        return root

    row_s, row_rows = _best_of(row_plan, _pull, rounds=5)
    (col_s, col_rows), counters = _counter_deltas(
        lambda: _best_of(columnar_plan, _pull, rounds=5))
    assert [r.values for r in row_rows] == [r.values for r in col_rows]
    assert counters["columnar.fallback"] == 0
    speedup = row_s / col_s
    record_columnar(_entry(
        "fast_scatter_cull_restrict",
        {"points": 20_000, "kept": len(row_rows)},
        row_s, col_s, counters,
    ))
    assert speedup >= 15.0


# ---------------------------------------------------------------------------
# Arm 2: the deep-zoom culling render, end to end
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def scatter_100k():
    """A 100k-point scatter: big enough that cull evaluation dominates."""
    db = build_points_database(100_000, seed=3)
    program = Program()
    src = program.add_box(AddTableBox(table="Points"))
    set_x = program.add_box(SetAttributeBox(name="x", definition="x_pos"))
    set_y = program.add_box(SetAttributeBox(name="y", definition="y_pos"))
    display = program.add_box(
        SetAttributeBox(
            name="display",
            definition="combine(filled_circle(2), "
                       "offset(text_of(point_id), 0, -6))",
        )
    )
    program.connect(src, "out", set_x, "in")
    program.connect(set_x, "out", set_y, "in")
    program.connect(set_y, "out", display, "in")
    return Engine(program, db).output_of(display)


def test_perf_columnar_culling_render(scatter_100k, record_columnar):
    """Full deep-zoom renders with the cull plan on each backend.

    The fast scatter path is disabled so every render goes through the
    synthesized culling plan — the row-vs-columnar comparison then measures
    the whole pipeline (plan execution + drawables for the survivors),
    which is what a viewer actually pays per pan/zoom step.
    """
    view = ViewState(center=(0.0, 0.0), elevation=30.0, viewport=(320, 240))
    original = scene._try_fast_scatter
    scene._try_fast_scatter = lambda *a, **k: None

    def render(_=None):
        canvas = Canvas(320, 240)
        render_composite(canvas, scatter_100k, view, stats=SceneStats())
        return canvas

    try:
        row_s, row_canvas = _best_of(lambda: None, render)
        previous = set_default_columnar_config(ColumnarConfig())
        try:
            (col_s, col_canvas), counters = _counter_deltas(
                lambda: _best_of(lambda: None, render))
        finally:
            set_default_columnar_config(previous)
    finally:
        scene._try_fast_scatter = original
    assert np.array_equal(row_canvas.pixels, col_canvas.pixels)
    assert counters["columnar.batches"] > 0
    speedup = row_s / col_s
    record_columnar(_entry(
        "culling_deep_zoom_render",
        {"points": 100_000, "viewport": [320, 240]},
        row_s, col_s, counters,
    ))
    assert speedup >= 5.0


# ---------------------------------------------------------------------------
# Arm 3: hash join feeding a selective restrict (deferred materialization)
# ---------------------------------------------------------------------------

def test_perf_columnar_join_restrict(record_columnar):
    """Stations⋈Observations-shaped join under a selective slider restrict.

    The row arm materializes every joined tuple and then interprets the
    predicate per row; the columnar arm probes with sorted key arrays,
    filters the joined *columns*, and only builds tuples for the few
    survivors — the deferred-materialization win columnar execution is for.
    """
    left, right = build_pairs_tables(800, 8, seed=7)
    left_rows, right_rows = left.snapshot(), right.snapshot()

    def row_plan():
        join = P.HashJoinNode(
            P.ScanNode(left_rows, name="Left"),
            P.ScanNode(right_rows, name="Right"),
            "key", "ref",
        )
        predicate = parse_predicate("measure > 0.97", join.schema)
        return P.RestrictNode(join, predicate)

    def columnar_plan():
        root, __ = columnarize_plan(row_plan(), ColumnarConfig())
        return root

    row_s, row_rows_out = _best_of(row_plan, _pull, rounds=5)
    (col_s, col_rows_out), counters = _counter_deltas(
        lambda: _best_of(columnar_plan, _pull, rounds=5))
    assert [r.values for r in row_rows_out] == \
        [r.values for r in col_rows_out]
    assert counters["columnar.fallback"] == 0
    speedup = row_s / col_s
    record_columnar(_entry(
        "join_selective_restrict",
        {"left_rows": 800, "right_rows": 6_400,
         "kept": len(row_rows_out)},
        row_s, col_s, counters,
    ))
    assert speedup >= 5.0


# ---------------------------------------------------------------------------
# Arm 4: hazard-guard elision (guarded vs statically proven unguarded)
# ---------------------------------------------------------------------------

def test_perf_columnar_guard_elision(points_db_20k, record_columnar):
    """Arithmetic restrict with a division, guarded vs proven-unguarded.

    The divisor has the shape ``y*y + 1.0`` — structurally >= 1.0 — so the
    abstract interpreter proves ``div_zero`` impossible and the compiler
    drops the vectorized zero-scan pre-check from the kernel.  Both arms
    run the *columnar* backend; the ablation is purely the guard, so rows
    must match exactly and the unguarded arm must record elisions.
    """
    from repro.analyze.absint import set_absint_enabled
    from repro.dbms.expr_compile import ELIDED_COUNTER

    rows = points_db_20k.table("Points").snapshot()
    predicate = parse_predicate(
        "x_pos / (y_pos * y_pos + 1.0) > 0.25", rows.schema)

    def columnar_plan():
        root, __ = columnarize_plan(
            P.RestrictNode(P.ScanNode(rows, name="Points"), predicate),
            ColumnarConfig(),
        )
        return root

    elided = global_registry().counter(*ELIDED_COUNTER)
    guarded_s, guarded_rows = _best_of(columnar_plan, _pull, rounds=5)
    before = elided.value()
    set_absint_enabled(True)
    try:
        (unguarded_s, unguarded_rows), counters = _counter_deltas(
            lambda: _best_of(columnar_plan, _pull, rounds=5))
    finally:
        set_absint_enabled(False)
    counters["absint.guards_elided"] = elided.value() - before
    assert counters["absint.guards_elided"] > 0
    assert counters["columnar.fallback"] == 0
    assert [r.values for r in guarded_rows] == \
        [r.values for r in unguarded_rows]
    speedup = guarded_s / unguarded_s
    record_columnar({
        "name": "guard_elision_arith_restrict",
        "workload": {"points": 20_000, "kept": len(guarded_rows)},
        "arms": {
            "guarded": {"seconds": round(guarded_s, 6)},
            "unguarded": {"seconds": round(unguarded_s, 6)},
        },
        "speedup": round(speedup, 2),
        "counters": counters,
    })
    # Dropping a guard can only remove work; leave generous jitter slack.
    assert speedup >= 0.8
