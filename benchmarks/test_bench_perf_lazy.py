"""Perf-2: "Execution is lazy, evaluating only what is required to produce
the demanded visualization" (§2).

A program with several expensive branches but only one demanded viewer.
Lazy demand fires the demanded path only; the eager ablation fires every
box.  The shape claim: lazy work (and time) is proportional to the demanded
path, not to program size.
"""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_db import AddTableBox, JoinBox, RestrictBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program


def branchy_program(branches: int = 4):
    """One cheap demanded branch plus ``branches`` expensive undemanded ones
    (each an Observations self-join-ish restrict chain)."""
    program = Program()
    stations = program.add_box(AddTableBox(table="Stations"))
    demanded = program.add_box(RestrictBox(predicate="state = 'LA'"))
    program.connect(stations, "out", demanded, "in")
    for i in range(branches):
        obs = program.add_box(AddTableBox(table="Observations"))
        sta = program.add_box(AddTableBox(table="Stations"))
        join = program.add_box(
            JoinBox(left_key="station_id", right_key="station_id")
        )
        program.connect(obs, "out", join, "left")
        program.connect(sta, "out", join, "right")
        tail = program.add_box(
            RestrictBox(predicate=f"temperature > {60 + i}.0")
        )
        program.connect(join, "out", tail, "in")
    return program, demanded


def test_perf_lazy_demand(benchmark, weather_db):
    program, demanded = branchy_program()

    def lazy():
        engine = Engine(program, weather_db)
        engine.output_of(demanded)
        return engine.stats

    stats = benchmark(lazy)
    assert stats.total_fires() == 2  # AddTable + Restrict only


def test_perf_eager_ablation(benchmark, weather_db):
    program, demanded = branchy_program()

    def eager():
        engine = Engine(program, weather_db)
        engine.evaluate_all()
        return engine.stats

    stats = benchmark(eager)
    assert stats.total_fires() == len(program.boxes())


def test_perf_lazy_does_less_work(weather_db):
    """The invariant behind the timing gap (asserted, not timed)."""
    program, demanded = branchy_program()
    lazy = Engine(program, weather_db)
    lazy.output_of(demanded)
    eager = Engine(program, weather_db)
    eager.evaluate_all()
    assert lazy.stats.total_fires() * 5 <= eager.stats.total_fires()


def test_perf_memoized_redemand(benchmark, weather_db):
    """Re-demanding an unchanged program is pure cache traffic."""
    program, demanded = branchy_program()
    engine = Engine(program, weather_db)
    engine.output_of(demanded)
    fires = engine.stats.total_fires()

    result = benchmark(engine.output_of, demanded)
    assert engine.stats.total_fires() == fires  # zero new fires
    assert len(result.rows) == 18
