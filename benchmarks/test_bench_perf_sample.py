"""Perf-1: "Sample is useful for improving interactive response by reducing
the size of data sets to be processed" (§4.2).

Sweeps the retention probability over a 20k-point scatter and times the
demand-and-render loop.  The shape claim: latency falls roughly linearly
with the retained fraction, so heavy sampling buys interactivity.
"""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox, SampleBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite


def build_pipeline(db, probability):
    program = Program()
    src = program.add_box(AddTableBox(table="Points"))
    sample = program.add_box(SampleBox(probability=probability, seed=7))
    set_x = program.add_box(SetAttributeBox(name="x", definition="x_pos"))
    set_y = program.add_box(SetAttributeBox(name="y", definition="y_pos"))
    display = program.add_box(
        SetAttributeBox(name="display", definition="point()")
    )
    program.connect(src, "out", sample, "in")
    program.connect(sample, "out", set_x, "in")
    program.connect(set_x, "out", set_y, "in")
    program.connect(set_y, "out", display, "in")
    return program, display


@pytest.mark.parametrize("probability", [1.0, 0.5, 0.1, 0.01])
def test_perf_sample_sweep(benchmark, points_db_20k, probability):
    program, tail = build_pipeline(points_db_20k, probability)
    view = ViewState(center=(0.0, 0.0), elevation=1100.0, viewport=(320, 240))

    def demand_and_render():
        engine = Engine(program, points_db_20k)  # cold demand each round
        relation = engine.output_of(tail)
        canvas = Canvas(320, 240)
        stats = SceneStats()
        render_composite(canvas, relation, view, stats=stats)
        return relation, stats

    relation, stats = benchmark(demand_and_render)
    expected = 20_000 * probability
    assert abs(len(relation.rows) - expected) < max(60, expected * 0.3)
    assert stats.tuples_considered == len(relation.rows)


def test_perf_sample_interactive_pan(benchmark, points_db_20k):
    """The motivating loop: with a 10% sample, pan-and-rerender over the
    cached (already sampled) relation."""
    program, tail = build_pipeline(points_db_20k, 0.1)
    engine = Engine(program, points_db_20k)
    relation = engine.output_of(tail)
    state = {"x": 0.0}

    def pan_and_render():
        state["x"] += 10.0
        view = ViewState(center=(state["x"] % 200, 0.0), elevation=1100.0,
                         viewport=(320, 240))
        canvas = Canvas(320, 240)
        render_composite(canvas, relation, view)
        return canvas

    canvas = benchmark(pan_and_render)
    assert canvas.count_nonbackground() > 0
