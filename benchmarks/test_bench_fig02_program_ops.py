"""Figure 2: the nine program-editing operations.

Exercises the full catalog — New/Add/Load/Save Program, Apply Box, Delete
Box (with its legality rules), Replace Box, T, Encapsulate — as one editing
session and times it.  Program edits are the interaction loop of the system;
they must be instantaneous.
"""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.ui.session import Session


def full_editing_session(db) -> Session:
    session = Session(db, "fig2-demo")

    # Add Table (a special case of Apply Box with zero inputs, §4.2).
    stations = session.add_table("Stations")

    # Apply Box: select the source edge's output, pick Restrict from the menu.
    restrict = session.add_box("Restrict", {"predicate": "state = 'LA'"})
    edge = session.connect(stations, "out", restrict, "in")
    candidates = session.apply_box_candidates([edge])
    assert "Sample" in candidates
    sample = session.apply_box([edge], "Sample", {"probability": 1.0, "seed": 1})

    # T: tap the edge for inspection.
    session.insert_t(session.program.edges()[0])

    # Replace Box: swap the Sample for a Project with compatible types.
    session.replace_box(sample, "Project", {"fields": ["name", "state"]})

    # Delete Box: a 1-in/1-out pass-through splices; an illegal delete raises.
    deletable = session.add_box("Restrict", {"predicate": "true"})
    session.connect(restrict, "out", deletable, "in")
    session.delete_box(deletable)

    # Encapsulate the restrict into a reusable catalog box.
    session.encapsulate([restrict], f"la_only_{session.program.version}",
                        register=False)

    # Save Program / New Program / Load Program round trip.
    session.save_program()
    session.new_program("scratch")
    session.load_program("fig2-demo")
    return session


def test_fig02_all_program_operations(benchmark, weather_db):
    session = benchmark(full_editing_session, weather_db)
    assert len(session.program) >= 4
    assert weather_db.has_program("fig2-demo")


def test_fig02_delete_legality_rules(benchmark, weather_db):
    """Delete Box's restriction is semantic, not advisory: deleting a box
    whose outputs feed others (and is not a pass-through) must fail fast."""

    def attempt_illegal_delete():
        session = Session(weather_db, "illegal-delete")
        stations = session.add_table("Stations")
        restrict = session.add_box("Restrict", {"predicate": "true"})
        session.connect(stations, "out", restrict, "in")
        with pytest.raises(GraphError):
            session.delete_box(stations)
        return session

    session = benchmark(attempt_illegal_delete)
    assert len(session.program) == 2  # nothing was deleted


def test_fig02_undo(benchmark, weather_db):
    """The undo button restores the previous program snapshot."""
    session = Session(weather_db, "undo-bench")
    session.add_table("Stations")

    def add_and_undo():
        session.add_box("Restrict", {"predicate": "true"})
        session.undo()
        return len(session.program)

    remaining = benchmark(add_and_undo)
    assert remaining == 1
