"""Perf-5: join strategies for the Stations ⋈ Observations step.

Sweeps 1:N workloads over hash, nested-loop, and index-probe strategies.
The shape claim: nested-loop is quadratic and loses by orders of magnitude
as inputs grow; the hash build and the pre-built index probe stay near-linear
and converge.
"""

from __future__ import annotations

import pytest

from repro.data.workloads import build_pairs_tables
from repro.dbms.algebra import join_hash, join_nested_loop
from repro.dbms.index import HashIndex, indexed_equi_join

SIZES = {
    "small": (50, 4),     # 50 x 200
    "medium": (200, 5),   # 200 x 1000
    "large": (500, 6),    # 500 x 3000
}

_CACHE: dict[str, tuple] = {}


def workload(name: str):
    if name not in _CACHE:
        left_count, per_left = SIZES[name]
        left, right = build_pairs_tables(left_count, per_left, seed=5)
        _CACHE[name] = (left.snapshot(), right.snapshot(), HashIndex(right, "ref"))
    return _CACHE[name]


@pytest.mark.parametrize("size", list(SIZES))
def test_perf_join_hash(benchmark, size):
    left, right, __ = workload(size)
    result = benchmark(join_hash, left, right, "key", "ref")
    assert len(result) == len(right)  # every right row matches exactly once


@pytest.mark.parametrize("size", list(SIZES))
def test_perf_join_nested_loop(benchmark, size):
    left, right, __ = workload(size)
    result = benchmark(join_nested_loop, left, right, "key", "ref")
    assert len(result) == len(right)


@pytest.mark.parametrize("size", list(SIZES))
def test_perf_join_index_probe(benchmark, size):
    left, right, index = workload(size)
    pairs = benchmark(indexed_equi_join, left, index, "key")
    assert len(pairs) == len(right)


def test_perf_join_strategies_agree(benchmark):
    """All strategies compute the same join (asserted on the medium size)."""
    left, right, index = workload("medium")

    def all_three():
        h = join_hash(left, right, "key", "ref")
        n = join_nested_loop(left, right, "key", "ref")
        p = indexed_equi_join(left, index, "key")
        return h, n, p

    h, n, p = benchmark(all_three)
    assert sorted(map(repr, h)) == sorted(map(repr, n))
    assert len(p) == len(h)
