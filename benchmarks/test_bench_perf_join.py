"""Perf-5: join strategies for the Stations ⋈ Observations step.

Sweeps 1:N workloads over hash, nested-loop, and index-probe strategies.
The shape claim: nested-loop is quadratic and loses by orders of magnitude
as inputs grow; the hash build and the pre-built index probe stay near-linear
and converge.
"""

from __future__ import annotations

import time

import pytest

from repro.data.workloads import build_pairs_tables
from repro.dataflow.boxes_db import AddTableBox, JoinBox, RestrictBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dbms.algebra import join_hash, join_nested_loop
from repro.dbms.catalog import Database
from repro.dbms.index import HashIndex, indexed_equi_join
from repro.dbms.plan_parallel import result_cache

SIZES = {
    "small": (50, 4),     # 50 x 200
    "medium": (200, 5),   # 200 x 1000
    "large": (500, 6),    # 500 x 3000
}

_CACHE: dict[str, tuple] = {}


def workload(name: str):
    if name not in _CACHE:
        left_count, per_left = SIZES[name]
        left, right = build_pairs_tables(left_count, per_left, seed=5)
        _CACHE[name] = (left.snapshot(), right.snapshot(), HashIndex(right, "ref"))
    return _CACHE[name]


@pytest.mark.parametrize("size", list(SIZES))
def test_perf_join_hash(benchmark, size):
    left, right, __ = workload(size)
    result = benchmark(join_hash, left, right, "key", "ref")
    assert len(result) == len(right)  # every right row matches exactly once


@pytest.mark.parametrize("size", list(SIZES))
def test_perf_join_nested_loop(benchmark, size):
    left, right, __ = workload(size)
    result = benchmark(join_nested_loop, left, right, "key", "ref")
    assert len(result) == len(right)


@pytest.mark.parametrize("size", list(SIZES))
def test_perf_join_index_probe(benchmark, size):
    left, right, index = workload(size)
    pairs = benchmark(indexed_equi_join, left, index, "key")
    assert len(pairs) == len(right)


def test_perf_join_strategies_agree(benchmark):
    """All strategies compute the same join (asserted on the medium size)."""
    left, right, index = workload("medium")

    def all_three():
        h = join_hash(left, right, "key", "ref")
        n = join_nested_loop(left, right, "key", "ref")
        p = indexed_equi_join(left, index, "key")
        return h, n, p

    h, n, p = benchmark(all_three)
    assert sorted(map(repr, h)) == sorted(map(repr, n))
    assert len(p) == len(h)


# ---------------------------------------------------------------------------
# Parallel scaling: slaved viewers sharing one join through the result cache
# ---------------------------------------------------------------------------

_ARMS = {"serial": 0, "workers_1": 1, "workers_2": 2, "workers_4": 4}
_VIEWERS = 8    # independent engines demanding the same join (slaving model)
_ROUNDS = 3


def _slaved_join_workload():
    """A large Stations⋈Observations-shaped program, 800 x 6400 rows."""
    left, right = build_pairs_tables(800, 8, seed=7)
    db = Database("bench_parallel")
    db.add_table(left)
    db.add_table(right)
    program = Program()
    src_l = program.add_box(AddTableBox(table="Left"))
    src_r = program.add_box(AddTableBox(table="Right"))
    join = program.add_box(JoinBox(left_key="key", right_key="ref"))
    keep = program.add_box(RestrictBox(predicate="measure > 0.25"))
    program.connect(src_l, "out", join, "left")
    program.connect(src_r, "out", join, "right")
    program.connect(join, "out", keep, "in")
    return db, program, keep


def _run_viewers(db, program, box_id, workers: int):
    """Force the join output through _VIEWERS fresh engines (one per viewer)."""
    if workers == 0:
        knobs = {"workers": 0, "cache": False}   # fully serial, no sharing
    else:
        knobs = {"workers": workers, "cache": True}
    rows = None
    for __ in range(_VIEWERS):
        engine = Engine(program, db, **knobs)
        rows = engine.output_of(box_id).rows.force()
    return rows


def test_perf_join_parallel_cache_speedup(record_parallel):
    """Repeated demands of one join: the shared result cache must win big.

    The serial arm re-executes the join per viewer; the parallel arms pay
    one miss and then share the materialization, which is where the paper's
    slaved-viewer interaction pattern gets its speedup.
    """
    db, program, box_id = _slaved_join_workload()
    cache = result_cache()
    arms: dict[str, dict] = {}
    baseline = None
    for arm, workers in _ARMS.items():
        best = float("inf")
        rows = None
        for __ in range(_ROUNDS):
            cache.clear()
            start = time.perf_counter()
            rows = _run_viewers(db, program, box_id, workers)
            best = min(best, time.perf_counter() - start)
        arms[arm] = {"workers": workers, "seconds": round(best, 6)}
        if baseline is None:
            baseline = rows
        else:
            assert rows == baseline    # every arm computes the same join
    stats = cache.stats()
    assert stats["hits"] >= _VIEWERS - 1    # the cache actually engaged
    speedup = arms["serial"]["seconds"] / arms["workers_4"]["seconds"]
    record_parallel({
        "name": "join_slaved_viewers",
        "workload": {"left_rows": 800, "right_rows": 6400,
                     "viewers": _VIEWERS},
        "arms": arms,
        "speedup": round(speedup, 2),
        "cache": {"hits": stats["hits"], "misses": stats["misses"]},
    })
    assert speedup >= 1.8
