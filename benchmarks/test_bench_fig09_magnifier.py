"""Figure 9: the magnifying glass showing an alternative display.

Times the composite render (outer viewer + inner magnified viewer with the
swapped precipitation display) and a glass drag.
"""

from __future__ import annotations

import pytest

from repro.core.scenarios import build_fig9_magnifier


@pytest.fixture(scope="module")
def scenario(weather_db):
    return build_fig9_magnifier(weather_db)


def test_fig09_render_with_glass(benchmark, scenario):
    window = scenario.window()
    canvas = benchmark(window.render)
    glass = scenario["glass"]
    x, y, __, __h = glass.rect
    assert canvas.pixel(int(x), int(y)) == (64, 64, 64)  # glass frame


def test_fig09_swap_branch_is_alternative_display(benchmark, scenario):
    """The Swap Attribute branch produces the precipitation visualization of
    the same relation — demanded through the engine cache."""
    session = scenario.session

    def demand():
        return session.inspect(scenario["swap_tail"])

    swapped = benchmark(demand)
    drawables = swapped.display_of(swapped.view_at(0))
    assert drawables[0].color == (66, 133, 66)  # precipitation green
    # The un-swapped branch still shows temperature red.
    original = session.inspect(scenario["tee"], "out1")
    assert original.display_of(original.view_at(0))[0].color == (220, 50, 47)


def test_fig09_drag_glass(benchmark, scenario):
    window = scenario.window()
    glass = scenario["glass"]
    positions = [(380.0, 150.0), (420.0, 170.0)]
    state = {"i": 0}

    def drag():
        state["i"] = (state["i"] + 1) % 2
        glass.move_to(*positions[state["i"]])
        return window.render()

    canvas = benchmark(drag)
    assert canvas.count_nonbackground() > 0
