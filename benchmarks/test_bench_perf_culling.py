"""Perf-3: viewer-side filtering "to the ranges specified by the sliders ...
and to the visible real estate on the screen" (§2).

Renders a 20k-point canvas zoomed deep into a small region with culling on
and off.  The shape claim: with culling, render cost tracks the few visible
tuples; without it, every tuple's drawables are constructed and clipped.
Culling is semantics-preserving (identical pixels — property-tested in
tests/test_property_render.py).
"""

from __future__ import annotations

import pytest

from repro.dataflow.boxes_attr import SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite


@pytest.fixture(scope="module")
def scatter(points_db_20k):
    program = Program()
    src = program.add_box(AddTableBox(table="Points"))
    set_x = program.add_box(SetAttributeBox(name="x", definition="x_pos"))
    set_y = program.add_box(SetAttributeBox(name="y", definition="y_pos"))
    display = program.add_box(
        SetAttributeBox(
            name="display",
            definition="combine(filled_circle(2), offset(text_of(point_id), 0, -6))",
        )
    )
    program.connect(src, "out", set_x, "in")
    program.connect(set_x, "out", set_y, "in")
    program.connect(set_y, "out", display, "in")
    engine = Engine(program, points_db_20k)
    return engine.output_of(display)


DEEP_ZOOM = ViewState(center=(0.0, 0.0), elevation=30.0, viewport=(320, 240))


@pytest.mark.parametrize("cull", [True, False], ids=["culling", "no-culling"])
def test_perf_culling_deep_zoom(benchmark, scatter, cull):
    def render():
        canvas = Canvas(320, 240)
        stats = SceneStats()
        render_composite(canvas, scatter, DEEP_ZOOM, cull=cull, stats=stats)
        return canvas, stats

    canvas, stats = benchmark(render)
    assert stats.tuples_considered == 20_000
    if cull:
        # The deep zoom sees well under 1% of the points.
        assert stats.culled_by_viewport > 19_000
        assert stats.drawables_painted < 600
    else:
        assert stats.culled_by_viewport == 0
        assert stats.drawables_painted == 40_000


def test_perf_culling_pushdown_plan_stats(scatter):
    """The deep zoom takes the plan-pushdown path: culling runs as
    synthesized Restrict nodes, so display functions are evaluated for
    strictly fewer tuples than are scanned (asserted from plan stats)."""
    stats = SceneStats()
    render_composite(Canvas(320, 240), scatter, DEEP_ZOOM, stats=stats)
    assert stats.cull_plans, "expected the synthesized culling plan"
    (plan,) = stats.cull_plans
    assert plan.stats.rows_in == 20_000
    assert plan.stats.rows_out < plan.stats.rows_in
    # Only the survivors reach display-function evaluation (some of those
    # still bbox-clip: the cull margin keeps anchors near the edge).
    assert stats.tuples_rendered <= plan.stats.rows_out
    assert plan.stats.rows_out < 600


def test_perf_culling_zoom_sweep(benchmark, scatter):
    """Flying downward: render cost should fall as the view narrows."""
    def sweep():
        rendered = []
        for elevation in (1100.0, 300.0, 80.0, 20.0):
            view = ViewState(center=(0.0, 0.0), elevation=elevation,
                             viewport=(320, 240))
            stats = SceneStats()
            render_composite(Canvas(320, 240), scatter, view, stats=stats)
            rendered.append(stats.tuples_rendered)
        return rendered

    rendered = benchmark(sweep)
    assert rendered[0] > rendered[-1]
    assert all(earlier >= later for earlier, later in zip(rendered, rendered[1:]))
