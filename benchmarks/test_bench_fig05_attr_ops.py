"""Figure 5: the location/display attribute operations.

Times a pipeline applying the whole catalog — Add, Set, Swap, Scale,
Translate, Combine Displays, Remove — to the Stations relation, demanding
the final displayable (all method type-checks included).
"""

from __future__ import annotations

from repro.dataflow.boxes_attr import (
    AddAttributeBox,
    CombineDisplaysBox,
    RemoveAttributeBox,
    ScaleAttributeBox,
    SetAttributeBox,
    SwapAttributesBox,
    TranslateAttributeBox,
)
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program


def attribute_pipeline(db):
    program = Program()
    boxes = [
        AddTableBox(table="Stations"),
        SetAttributeBox(name="x", definition="longitude"),
        SetAttributeBox(name="y", definition="latitude"),
        # Scale/translate the canvas (x stretched, y shifted).
        ScaleAttributeBox(name="x", amount=1.5),
        TranslateAttributeBox(name="y", amount=-25.0),
        # Two display attributes...
        AddAttributeBox(name="dot", definition="filled_circle(3, 'blue')",
                        declared_type="drawables"),
        AddAttributeBox(name="label", definition="text_of(name)",
                        declared_type="drawables"),
        # ...combined into the active display with a relative offset.
        CombineDisplaysBox(first="dot", second="label", offset_y=-10.0),
        # An alternative display, swapped in and back out.
        AddAttributeBox(name="alt", definition="filled_rect(4, 4, 'red')",
                        declared_type="drawables"),
        SwapAttributesBox(first="display", second="alt"),
        SwapAttributesBox(first="display", second="alt"),
        # A scratch attribute added then removed.
        AddAttributeBox(name="scratch", definition="altitude * 2"),
        RemoveAttributeBox(name="scratch"),
        # Altitude as a slider dimension.
        AddAttributeBox(name="Altitude", definition="altitude",
                        location=True),
    ]
    ids = [program.add_box(box) for box in boxes]
    for upstream, downstream in zip(ids, ids[1:]):
        program.connect(upstream, "out", downstream, "in")
    engine = Engine(program, db)
    return engine.output_of(ids[-1])


def test_fig05_attribute_pipeline(benchmark, weather_db):
    relation = benchmark(attribute_pipeline, weather_db)
    assert relation.dimension == 3
    assert relation.has_custom_location
    assert relation.has_custom_display
    view0 = relation.view_at(0)
    x, y, __ = relation.location_of(view0)
    assert x == view0["longitude"] * 1.5
    assert y == view0["latitude"] - 25.0
    drawables = relation.display_of(view0)
    assert [d.kind for d in drawables] == ["circle", "text"]
    assert "scratch" not in relation.extended_schema
