"""Perf: streaming plan execution vs per-stage materialization.

The same Restrict → Project → Join chain run two ways: as one composed
physical plan (operators stream batches; only the hash join's build side is
ever held in memory) and as chained algebra calls (every stage materializes
its full output).  The shape claim, asserted from per-operator plan stats:
streaming stages buffer O(1) rows — intermediate state is bounded by the
*output* flowing through, not the input scanned — while the materializing
arm allocates a full row set per stage.
"""

from __future__ import annotations

import pytest

from repro.dbms import algebra
from repro.dbms.parser import parse_predicate
from repro.dbms.plan import (
    HashJoinNode,
    ProjectNode,
    RestrictNode,
    ScanNode,
)

PREDICATE = "temperature > 69.0"
FIELDS = ["station_id", "temperature"]


@pytest.fixture(scope="module")
def chain_inputs(weather_db):
    observations = weather_db.table("Observations").snapshot()
    stations = weather_db.table("Stations").snapshot()
    return observations, stations


def build_chain(observations, stations):
    """Restrict → Project → HashJoin as one streaming plan."""
    restrict = RestrictNode(
        ScanNode(observations, name="Observations"),
        parse_predicate(PREDICATE, observations.schema),
    )
    project = ProjectNode(restrict, FIELDS)
    join = HashJoinNode(
        project, ScanNode(stations, name="Stations"),
        "station_id", "station_id",
    )
    return restrict, project, join


def run_materializing(observations, stations):
    """The ablation: every stage materializes its full output."""
    filtered = algebra.restrict_predicate(observations, PREDICATE)
    projected = algebra.project(filtered, FIELDS)
    joined = algebra.join(projected, stations, "station_id", "station_id")
    return filtered, projected, joined


def test_perf_streaming_chain(benchmark, chain_inputs):
    observations, stations = chain_inputs

    def run():
        __, __, join = build_chain(observations, stations)
        return join.execute()

    result = benchmark(run)
    assert len(result) > 0


def test_perf_materializing_chain(benchmark, chain_inputs):
    observations, stations = chain_inputs
    result = benchmark(
        lambda: run_materializing(observations, stations)[2]
    )
    assert len(result) > 0


def test_perf_streaming_buffers_output_only(chain_inputs):
    """The invariant behind the memory gap (asserted from plan stats)."""
    observations, stations = chain_inputs
    restrict, project, join = build_chain(observations, stations)
    streamed = join.execute()

    filtered, projected, joined = run_materializing(observations, stations)
    assert streamed == joined  # same rows, same order

    # The chain was selective: far fewer rows flowed than were scanned.
    assert restrict.stats.rows_in == len(observations)
    assert restrict.stats.rows_out == len(filtered)
    assert restrict.stats.rows_out * 4 < restrict.stats.rows_in

    # Streaming stages hold no per-stage state: intermediates are O(output)
    # flowing through batches, never an O(input) materialization.
    assert restrict.stats.rows_buffered == 0
    assert project.stats.rows_buffered == 0
    # Only the join's build side (the small Stations table) is ever held.
    assert join.stats.rows_buffered == len(stations)
    peak_plan_state = sum(
        node.stats.rows_buffered for node in (restrict, project, join)
    )
    # The materializing arm's intermediates dwarf the plan's peak state.
    materialized_intermediate = len(filtered) + len(projected)
    assert peak_plan_state == len(stations)
    assert materialized_intermediate > 2 * peak_plan_state
