"""Shared fixtures for the benchmark harness.

The weather database is sized so every figure scenario is non-trivial but a
full ``pytest benchmarks/ --benchmark-only`` run stays in the minutes range.
"""

from __future__ import annotations

import pytest

from repro.data.weather import build_weather_database
from repro.data.workloads import build_points_database


@pytest.fixture(scope="session")
def weather_db():
    """Stations across North America + ~10k observations straddling 1990."""
    return build_weather_database(extra_stations=60, every_days=30)


@pytest.fixture(scope="session")
def points_db_20k():
    """20k random points for the sampling/culling sweeps."""
    return build_points_database(20_000, seed=3)


@pytest.fixture(scope="session")
def points_db_5k():
    return build_points_database(5_000, seed=4)
