"""Shared fixtures for the benchmark harness.

The weather database is sized so every figure scenario is non-trivial but a
full ``pytest benchmarks/ --benchmark-only`` run stays in the minutes range.

Every benchmark test also runs under an enabled tracer (``repro.obs``); the
per-test span rollups plus pytest-benchmark timings are written to
``BENCH_obs.json`` (``REPRO_BENCH_OBS`` overrides the path) at session end —
the telemetry artifact the CI observability job uploads and schema-checks.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.data.weather import build_weather_database
from repro.data.workloads import build_points_database
from repro.obs import (
    BENCH_SCHEMA,
    COLUMNAR_BENCH_SCHEMA,
    PARALLEL_BENCH_SCHEMA,
    SERVER_BENCH_SCHEMA,
    Tracer,
    declarations,
    push_tracer,
    run_summary,
    validate_bench_summary,
    validate_columnar_bench,
    validate_parallel_bench,
    validate_server_bench,
)


@pytest.fixture(scope="session")
def weather_db():
    """Stations across North America + ~10k observations straddling 1990."""
    return build_weather_database(extra_stations=60, every_days=30)


@pytest.fixture(scope="session")
def points_db_20k():
    """20k random points for the sampling/culling sweeps."""
    return build_points_database(20_000, seed=3)


@pytest.fixture(scope="session")
def points_db_5k():
    return build_points_database(5_000, seed=4)


# ---------------------------------------------------------------------------
# Benchmark telemetry: per-test tracer -> BENCH_obs.json
# ---------------------------------------------------------------------------

_TELEMETRY: list[dict] = []


@pytest.fixture(autouse=True)
def _obs_telemetry(request):
    """Attach a capped tracer to every benchmark test.

    The cap bounds memory when a benchmark loops thousands of rounds; the
    rollup still counts every span recorded before the cap and reports the
    overflow in ``dropped``.
    """
    if "benchmark" not in request.fixturenames:
        yield
        return
    fixture = request.getfixturevalue("benchmark")
    tracer = Tracer(enabled=True, max_spans=50_000)
    with push_tracer(tracer):
        yield
    entry = {
        "name": request.node.nodeid,
        "timing": _benchmark_timing(fixture),
        "telemetry": run_summary(tracer),
    }
    _TELEMETRY.append(entry)


def _benchmark_timing(fixture):
    """pytest-benchmark timing stats, or None under --benchmark-disable."""
    meta = getattr(fixture, "stats", None)
    stats = getattr(meta, "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return None
    return {
        "mean_s": stats.mean,
        "min_s": stats.min,
        "max_s": stats.max,
        "stddev_s": stats.stddev,
        "rounds": stats.rounds,
    }


# ---------------------------------------------------------------------------
# Parallel-scaling telemetry: arm timings -> BENCH_parallel.json
# ---------------------------------------------------------------------------

_PARALLEL: list[dict] = []


@pytest.fixture(scope="session")
def record_parallel():
    """Collector for the parallel-scaling benchmarks.

    Each call records one benchmark entry (name + timing arms + speedup);
    the session hook below schema-checks and writes them all to
    ``BENCH_parallel.json`` (``REPRO_BENCH_PARALLEL`` overrides the path).
    """

    def record(entry: dict) -> None:
        _PARALLEL.append(entry)

    return record


# ---------------------------------------------------------------------------
# Columnar-backend telemetry: row-vs-columnar arms -> BENCH_columnar.json
# ---------------------------------------------------------------------------

_COLUMNAR: list[dict] = []


@pytest.fixture(scope="session")
def record_columnar():
    """Collector for the row-vs-columnar backend benchmarks.

    Each call records one benchmark entry (name + row/columnar timing arms +
    speedup + columnar counters); the session hook below schema-checks and
    writes them all to ``BENCH_columnar.json`` (``REPRO_BENCH_COLUMNAR``
    overrides the path).
    """

    def record(entry: dict) -> None:
        _COLUMNAR.append(entry)

    return record


# ---------------------------------------------------------------------------
# Server-load telemetry: concurrent-viewer runs -> BENCH_server.json
# ---------------------------------------------------------------------------

_SERVER: list[dict] = []


@pytest.fixture(scope="session")
def record_server():
    """Collector for the multi-session server load benchmarks.

    Each call records one benchmark entry (name + viewer count + latency
    quantiles + throughput + frame/cache counters); the session hook below
    schema-checks and writes them all to ``BENCH_server.json``
    (``REPRO_BENCH_SERVER`` overrides the path).
    """

    def record(entry: dict) -> None:
        _SERVER.append(entry)

    return record


def pytest_sessionfinish(session, exitstatus):
    if _TELEMETRY:
        payload = {
            "schema": BENCH_SCHEMA,
            "benchmarks": _TELEMETRY,
            "metric_declarations": declarations(),
        }
        validate_bench_summary(payload)
        out = Path(os.environ.get("REPRO_BENCH_OBS",
                                  session.config.rootpath / "BENCH_obs.json"))
        out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    if _PARALLEL:
        payload = {
            "schema": PARALLEL_BENCH_SCHEMA,
            "benchmarks": _PARALLEL,
        }
        validate_parallel_bench(payload)
        out = Path(os.environ.get(
            "REPRO_BENCH_PARALLEL",
            session.config.rootpath / "BENCH_parallel.json"))
        out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    if _COLUMNAR:
        payload = {
            "schema": COLUMNAR_BENCH_SCHEMA,
            "benchmarks": _COLUMNAR,
        }
        validate_columnar_bench(payload)
        out = Path(os.environ.get(
            "REPRO_BENCH_COLUMNAR",
            session.config.rootpath / "BENCH_columnar.json"))
        out.write_text(json.dumps(payload, indent=1, sort_keys=True))
    if _SERVER:
        payload = {
            "schema": SERVER_BENCH_SCHEMA,
            "benchmarks": _SERVER,
        }
        validate_server_bench(payload)
        out = Path(os.environ.get(
            "REPRO_BENCH_SERVER",
            session.config.rootpath / "BENCH_server.json"))
        out.write_text(json.dumps(payload, indent=1, sort_keys=True))
