"""Figure 4: the station scatter map with the Altitude slider.

Times the render of the geographic visualization and a slider drag (the
interactive filtering loop of §3/§5.1).
"""

from __future__ import annotations

import pytest

from repro.core.scenarios import build_fig4_station_map


@pytest.fixture(scope="module")
def scenario(weather_db):
    return build_fig4_station_map(weather_db)


def test_fig04_render(benchmark, scenario):
    window = scenario.window()
    window.viewer.set_slider("Altitude", float("-inf"), float("inf"))
    result = benchmark(window.viewer.render)
    names = {item.row["name"] for item in result.all_items()}
    assert "New Orleans" in names
    assert "Shreveport" in names
    # Circle + name per station.
    kinds = [item.drawable_kind for item in result.all_items()]
    assert kinds.count("circle") == kinds.count("text")


def test_fig04_slider_drag(benchmark, scenario):
    """One slider gesture: set the Altitude range and re-render."""
    window = scenario.window()
    state = {"low": True}

    def drag():
        state["low"] = not state["low"]
        high = 60.0 if state["low"] else 1e9
        window.viewer.set_slider("Altitude", 0.0, high)
        return window.viewer.render()

    result = benchmark(drag)
    assert result.stats.tuples_considered > 0


def test_fig04_pan_and_zoom(benchmark, scenario):
    """The fly-over loop: pan a step and re-render."""
    window = scenario.window()
    window.viewer.set_slider("Altitude", float("-inf"), float("inf"))
    step = {"sign": 1}

    def fly():
        step["sign"] = -step["sign"]
        window.viewer.pan(0.4 * step["sign"], 0.0)
        return window.viewer.render()

    result = benchmark(fly)
    assert result.canvas.count_nonbackground() > 0
