"""Section 8: screen-object updates.

Times the full click-to-refresh loop: pick the screen object, run the update
dialog, install the new tuple with an SQL-style update, and re-render (the
table-version signature invalidates the whole demanded path).
"""

from __future__ import annotations

import itertools

import pytest

from repro.data.weather import build_weather_database
from repro.ui.session import Session


@pytest.fixture()
def fresh_session():
    """A fresh, mutable database per benchmark (updates change it)."""
    db = build_weather_database(extra_stations=20, every_days=60)
    session = Session(db, "update-bench")
    stations = session.add_table("Stations")
    restrict = session.add_box("Restrict", {"predicate": "state = 'LA'"})
    session.connect(stations, "out", restrict, "in")
    set_x = session.add_box("SetAttribute", {"name": "x", "definition": "longitude"})
    session.connect(restrict, "out", set_x, "in")
    set_y = session.add_box("SetAttribute", {"name": "y", "definition": "latitude"})
    session.connect(set_x, "out", set_y, "in")
    display = session.add_box(
        "SetAttribute",
        {"name": "display", "definition": "filled_circle(3, 'blue')"},
    )
    session.connect(set_y, "out", display, "in")
    window = session.add_viewer(display, name="map", width=320, height=240)
    window.viewer.pan_to(-91.8, 31.0)
    window.viewer.set_elevation(8.0)
    window.viewer.render()
    return session, window


def test_sec08_click_update_rerender(benchmark, fresh_session):
    session, window = fresh_session
    counter = itertools.count(1)

    def click_and_update():
        result = window.viewer.render()
        item = result.all_items()[0]
        cx = (item.bbox[0] + item.bbox[2]) / 2
        cy = (item.bbox[1] + item.bbox[3]) / 2
        outcome = session.update_at(
            "map", cx, cy, {"altitude": f"{next(counter)}.0"}
        )
        window.viewer.render()  # refresh with the new table version
        return outcome

    outcome = benchmark(click_and_update)
    assert outcome.applied


def test_sec08_update_invalidates_downstream(benchmark, fresh_session):
    """The refresh is incremental: one table-version bump refires exactly
    the demanded pipeline, not an unrelated branch."""
    session, window = fresh_session
    # An unrelated branch over Observations that must stay cached.
    other = session.add_table("Observations")
    other_restrict = session.add_box(
        "Restrict", {"predicate": "temperature > 200.0"}
    )
    session.connect(other, "out", other_restrict, "in")
    session.inspect(other_restrict)
    fires_before = dict(session.engine.stats.fires)
    counter = itertools.count(1000)

    def update_once():
        result = window.viewer.render()
        item = result.all_items()[0]
        cx = (item.bbox[0] + item.bbox[2]) / 2
        cy = (item.bbox[1] + item.bbox[3]) / 2
        session.update_at("map", cx, cy, {"altitude": f"{next(counter)}.0"})
        window.viewer.render()
        session.inspect(other_restrict)  # still cached
        return session.engine.stats.fires

    fires_after = benchmark(update_once)
    assert fires_after[other_restrict] == fires_before[other_restrict]
