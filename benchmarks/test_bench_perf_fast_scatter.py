"""Perf-7: the vectorized scatter fast path (an implementation ablation).

For the common scatter shape — x/y bound to stored columns, a constant
display — location extraction and culling run over numpy arrays instead of
per-tuple virtual rows.  The shape claim: the fast path wins and the win
grows with the culled fraction (deep zoom); equivalence is property-tested
in tests/test_fast_scatter.py.
"""

from __future__ import annotations

import pytest

import repro.render.scene as scene
from repro.dataflow.boxes_attr import AddAttributeBox, SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite


@pytest.fixture(scope="module")
def scatter(points_db_20k):
    program = Program()
    src = program.add_box(AddTableBox(table="Points"))
    set_x = program.add_box(SetAttributeBox(name="x", definition="x_pos"))
    set_y = program.add_box(SetAttributeBox(name="y", definition="y_pos"))
    display = program.add_box(
        SetAttributeBox(name="display", definition="filled_circle(2, 'blue')")
    )
    slider = program.add_box(
        AddAttributeBox(name="value_dim", definition="value", location=True)
    )
    program.connect(src, "out", set_x, "in")
    program.connect(set_x, "out", set_y, "in")
    program.connect(set_y, "out", display, "in")
    program.connect(display, "out", slider, "in")
    return Engine(program, points_db_20k).output_of(slider)


VIEWS = {
    "deep-zoom": ViewState(center=(0.0, 0.0), elevation=30.0,
                           viewport=(320, 240)),
    "overview": ViewState(center=(0.0, 0.0), elevation=1100.0,
                          viewport=(320, 240)),
}


@pytest.mark.parametrize("where", list(VIEWS))
@pytest.mark.parametrize("path", ["fast", "general"])
def test_perf_fast_scatter(benchmark, scatter, where, path):
    view = VIEWS[where]
    original = scene._try_fast_scatter
    if path == "general":
        scene._try_fast_scatter = lambda *a, **k: None
    try:
        def render():
            stats = SceneStats()
            render_composite(Canvas(320, 240), scatter, view, stats=stats)
            return stats

        stats = benchmark(render)
    finally:
        scene._try_fast_scatter = original
    assert stats.tuples_considered == 20_000
