"""Perf-7: the vectorized scatter fast path (an implementation ablation).

For the common scatter shape — x/y bound to stored columns, a constant
display — location extraction and culling run over numpy arrays instead of
per-tuple virtual rows.  The shape claim: the fast path wins and the win
grows with the culled fraction (deep zoom); equivalence is property-tested
in tests/test_fast_scatter.py.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.render.scene as scene
from repro.dataflow.boxes_attr import AddAttributeBox, SetAttributeBox
from repro.dataflow.boxes_db import AddTableBox
from repro.dataflow.engine import Engine
from repro.dataflow.graph import Program
from repro.dbms.plan_parallel import (
    ParallelConfig,
    result_cache,
    set_default_config,
)
from repro.render.canvas import Canvas
from repro.render.scene import SceneStats, ViewState, render_composite


@pytest.fixture(scope="module")
def scatter(points_db_20k):
    program = Program()
    src = program.add_box(AddTableBox(table="Points"))
    set_x = program.add_box(SetAttributeBox(name="x", definition="x_pos"))
    set_y = program.add_box(SetAttributeBox(name="y", definition="y_pos"))
    display = program.add_box(
        SetAttributeBox(name="display", definition="filled_circle(2, 'blue')")
    )
    slider = program.add_box(
        AddAttributeBox(name="value_dim", definition="value", location=True)
    )
    program.connect(src, "out", set_x, "in")
    program.connect(set_x, "out", set_y, "in")
    program.connect(set_y, "out", display, "in")
    program.connect(display, "out", slider, "in")
    return Engine(program, points_db_20k).output_of(slider)


VIEWS = {
    "deep-zoom": ViewState(center=(0.0, 0.0), elevation=30.0,
                           viewport=(320, 240)),
    "overview": ViewState(center=(0.0, 0.0), elevation=1100.0,
                          viewport=(320, 240)),
}


@pytest.mark.parametrize("where", list(VIEWS))
@pytest.mark.parametrize("path", ["fast", "general"])
def test_perf_fast_scatter(benchmark, scatter, where, path):
    view = VIEWS[where]
    original = scene._try_fast_scatter
    if path == "general":
        scene._try_fast_scatter = lambda *a, **k: None
    try:
        def render():
            stats = SceneStats()
            render_composite(Canvas(320, 240), scatter, view, stats=stats)
            return stats

        stats = benchmark(render)
    finally:
        scene._try_fast_scatter = original
    assert stats.tuples_considered == 20_000


# ---------------------------------------------------------------------------
# Parallel scaling: repeated pan/zoom renders through the cull-plan cache
# ---------------------------------------------------------------------------

_ARMS = {"serial": 0, "workers_1": 1, "workers_2": 2, "workers_4": 4}
_RENDERS = 10   # re-renders of one viewport (the pan-and-return pattern)
_ROUNDS = 3


def test_perf_scatter_parallel_cache_speedup(scatter, record_parallel):
    """Re-rendering one viewport must hit the result cache, pixel-identically.

    The fast scatter path is disabled so every render goes through the
    synthesized viewport-cull plan — the code path the result cache fronts.
    The serial arm re-runs the cull per render; the cached arms pay one miss
    and then reuse the kept-row fragment.  Deep zoom is the representative
    view: culling 20k tuples dominates, drawing the few survivors is cheap.
    """
    view = VIEWS["deep-zoom"]
    cache = result_cache()
    original = scene._try_fast_scatter
    scene._try_fast_scatter = lambda *a, **k: None
    arms: dict[str, dict] = {}
    canvases: dict[str, Canvas] = {}
    try:
        for arm, workers in _ARMS.items():
            config = (None if workers == 0
                      else ParallelConfig(workers=workers, cache=True))
            previous = set_default_config(config)
            try:
                best = float("inf")
                canvas = None
                for __ in range(_ROUNDS):
                    cache.clear()
                    start = time.perf_counter()
                    for __ in range(_RENDERS):
                        canvas = Canvas(320, 240)
                        render_composite(canvas, scatter, view,
                                         stats=SceneStats())
                    best = min(best, time.perf_counter() - start)
            finally:
                set_default_config(previous)
            arms[arm] = {"workers": workers, "seconds": round(best, 6)}
            canvases[arm] = canvas
    finally:
        scene._try_fast_scatter = original
    stats = cache.stats()
    assert stats["hits"] >= _RENDERS - 1    # the cull-plan cache engaged
    for arm in _ARMS:
        assert np.array_equal(canvases["serial"].pixels, canvases[arm].pixels)
    speedup = arms["serial"]["seconds"] / arms["workers_4"]["seconds"]
    record_parallel({
        "name": "scatter_repeated_renders",
        "workload": {"points": 20_000, "renders": _RENDERS,
                     "viewport": [320, 240]},
        "arms": arms,
        "speedup": round(speedup, 2),
        "cache": {"hits": stats["hits"], "misses": stats["misses"]},
    })
    assert speedup >= 1.8
